//! `rideshare` — command-line interface to the framework.
//!
//! Subcommands:
//!
//! - `generate` — synthesise a day of the Porto market and write
//!   `trips.csv` / `drivers.csv`,
//! - `summary` — structural statistics of a market loaded from CSVs,
//! - `solve` — run the offline greedy (Alg. 1) on CSVs and print routes,
//! - `simulate` — replay the order stream online (Alg. 3 or 4),
//! - `bound` — compute the LP upper bound `Z_f*`,
//! - `sweep` — run the scenario × policy matrix through the parallel
//!   sharded sweep engine and emit a JSON/CSV report,
//! - `orchestrate` — the same matrix fanned out across N worker *child
//!   processes* through a crash-safe spool directory, merged
//!   byte-identical to `sweep --canonical`,
//! - `worker` — the child side of `orchestrate`: claim spool units via
//!   atomic rename, run them, publish canonical results,
//! - `replay` — stream a synthetic Porto day of any size (millions of
//!   orders) through the bounded-memory streaming engine,
//! - `export` — write that same event stream as a JSONL/CSV event log a
//!   daemon can ingest,
//! - `serve` — the long-running dispatch daemon: ingest live events from
//!   a (tailed) file or a TCP frame stream, snapshot metrics at window
//!   boundaries, roll state daily, and drain to a result byte-identical
//!   to `replay` over the same trace,
//! - `query` — range queries over a telemetry store recorded with
//!   `--tsdb-dir` (serve or replay): label-filtered series merge,
//!   windowed `sum/avg/rate/min/max`, canonical JSON or table output,
//! - `audit` — the workspace determinism & invariant auditor: lex every
//!   in-scope source file, fire the per-crate-tier rules, and fail on
//!   any unwaived finding or unused waiver.
//!
//! Examples:
//!
//! ```sh
//! rideshare generate --tasks 300 --drivers 40 --seed 7 --out /tmp/day
//! rideshare summary  --dir /tmp/day
//! rideshare solve    --dir /tmp/day
//! rideshare simulate --dir /tmp/day --policy nearest
//! rideshare bound    --dir /tmp/day
//! rideshare sweep    --scenarios all --threads 8 --json report.json
//! rideshare replay   --tasks 1000000 --drivers 450 --policy margin
//! rideshare export   --tasks 400 --drivers 60 --out /tmp/day.jsonl
//! rideshare serve    --source jsonl:/tmp/day.jsonl --snapshot-dir /tmp/snaps
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use rideshare::prelude::*;
use rideshare::trace::{drivers_from_csv, drivers_to_csv, trips_from_csv, trips_to_csv};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "generate" => generate(&args[1..]),
        "summary" => with_market(&args[1..], |market| {
            println!("{}", rideshare::core::MarketSummary::of(&market));
            Ok(())
        }),
        "solve" => with_market(&args[1..], solve),
        "simulate" => with_market(&args[1..], |market| simulate(&args[1..], market)),
        "bound" => with_market(&args[1..], bound),
        "sweep" => sweep(&args[1..]),
        "orchestrate" => orchestrate_cmd(&args[1..]),
        "worker" => worker_cmd(&args[1..]),
        "replay" => replay(&args[1..]),
        "export" => export(&args[1..]),
        "serve" => serve(&args[1..]),
        "query" => query(&args[1..]),
        "audit" => match audit(&args[1..]) {
            Ok(clean) => {
                return if clean {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => Err(e),
        },
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand '{other}'\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
rideshare — optimization framework for online ride-sharing markets

USAGE:
  rideshare generate [--tasks N] [--drivers N] [--seed S]
                     [--model hitch|hwh] [--delivery] --out DIR
  rideshare summary  --dir DIR
  rideshare solve    --dir DIR            (offline greedy, Alg. 1)
  rideshare simulate --dir DIR [--policy margin|nearest|batch-<W>|batch-opt-<W>]
                                          (Algs. 3-4 / batched dispatch)
  rideshare bound    --dir DIR            (LP upper bound Z_f*)
  rideshare sweep    [--scenarios all|tiny|a,b,…]
                     [--policies p,q,…|w-sweep]
                     [--threads N] [--no-bound] [--canonical]
                     [--json PATH] [--csv PATH]
                     (scenario × policy matrix, parallel sharded)
  rideshare orchestrate --spool DIR
                     [--scenarios all|tiny|a,b,…] [--policies p,q,…|w-sweep]
                     [--workers N] [--threads N] [--no-bound] [--resume]
                     [--timeout T] [--retries K] [--canonical]
                     [--json PATH] [--csv PATH] [--fault-crash-once]
                     (the sweep matrix fanned out over N worker processes
                      through a crash-safe spool; merge is byte-identical
                      to `sweep --canonical`)
  rideshare worker   --spool DIR [--id ID] [--threads N] [--poll-ms N]
                     [--crash-once FILE] [--crash-on-unit NAME]
                     (spool worker; spawned by orchestrate, also runnable
                      by hand against an existing spool)
  rideshare replay   [--tasks N] [--drivers N] [--seed S] [--input FILE.rtb]
                     [--policy margin|nearest|batch-<W>|batch-opt-<W>]
                     [--model hitch|hwh] [--delivery]
                     [--surge-window MINS] [--no-grid] [--quiet-table]
                     [--shards N] [--regions K] [--canonical]
                     [--tsdb-dir DIR] [--tsdb-scenario NAME]
                     (bounded-memory streaming replay; N can be millions)
  rideshare export   [--tasks N] [--drivers N] [--seed S]
                     [--model hitch|hwh] [--delivery] [--regions K]
                     [--surge-window MINS] [--format jsonl|csv|bin]
                     [--out PATH]
                     (write the priced event stream as an ingestable log)
  rideshare serve    --source jsonl:PATH|csv:PATH|tcp:ADDR
                     [--policy margin|nearest|batch-<W>|batch-opt-<W>]
                     [--shards N] [--regions K] [--follow]
                     [--snapshot-dir DIR] [--snapshot-mins M] [--day-hours H]
                     [--tsdb-dir DIR] [--tsdb-scenario NAME]
                     [--no-grid] [--quiet-table] [--canonical]
                     (long-running dispatch daemon over a live event feed)
  rideshare query    --tsdb DIR [--list]
                     [--filter k=v,k=v …] [--from T] [--to T] [--step T]
                     [--agg sum|avg|rate|min|max] [--canonical]
                     (range queries over a recorded telemetry store)
  rideshare audit    [--root DIR] [--json] [--check] [--verbose]
                     (static determinism/invariant audit of the workspace
                      sources; exits nonzero on any unwaived finding)

DIR holds trips.csv and drivers.csv as written by `generate`.
`sweep --scenarios list` prints the catalog. Policies: greedy, maxMargin,
nearest, random, batch-<W> and batch-opt-<W> where <W> is a hold window
like 3m or 90s (greedy vs optimal per-batch matcher); `w-sweep` expands
to the batching study (window sweep under both matchers). --canonical
omits wall-times so reports are byte-identical across thread counts (the
CI snapshot form).

`orchestrate` runs the same matrix across `--workers` child processes: it
splits the catalog into one self-describing unit file per scenario under
`--spool DIR`, workers claim units by atomic rename (the filesystem is
the lock), run them through the identical sweep core, and publish
canonical results the parent merges in catalog order — byte-identical to
`sweep --canonical`, for any worker count. A worker that dies mid-unit
leaves its claim behind: the parent requeues the unit (bounded by
`--retries` attempts, then poisons it and fails), kills workers stuck
past `--timeout` (seconds, or 90s/30m/2h/1d), and `--resume` continues a
partial spool without recomputing finished units. The spool survives
every failure, so a poisoned or interrupted run is always resumable.

`replay` never materialises the trace: trips generate lazily in publish
order, prices come from the rolling-window surge pricer (default 30 min;
0 disables surge), and resident state stays O(held orders + drivers) —
the logged high-water mark shows it. `--shards N` runs the region-sharded
parallel engine over an N-region trace (or `--regions K ≥ N` regions
folded round-robin): decisions and metrics are byte-identical to
`--shards 1` on the same `--regions`, only faster. `--canonical` omits
wall-clock lines so reports diff clean across shard counts.

`replay --input FILE.rtb` skips the generator and the pricer entirely:
events decode zero-copy out of the binary log `export --format bin`
wrote (fixed-width records, see crates/trace rtb docs), with decisions
byte-identical to the generator-fed pipeline over the same trace.

`--tsdb-dir DIR` (replay and serve) additionally records per-window
metric deltas — served, rejected, revenue, profit, wait_secs, deadhead,
active_drivers — into the embedded telemetry store at DIR, losslessly on
the exact fixed-point grid, labelled {scenario, policy, region, shard,
metric}. `query` reads such a store back: `--filter` narrows by label
(`policy=margin,metric=profit`), `--from/--to` bound the half-open time
range, `--step` sets the window (plain seconds or 90s/30m/2h/1d), and
`--agg` picks the projection. `--canonical` emits byte-stable JSON
(schema rideshare-tsdb/1, exact integers only); `--list` tables the
stored series instead.

`export` writes the replay pipeline's event stream (drivers, priced
tasks, end-of-stream marker) as a JSONL, CSV or binary `.rtb` log.
`serve` ingests such
a log — or the same events framed over TCP (`tcp:ADDR` binds and serves
one connection) — through the identical engines: a drained daemon's
table and summary are byte-identical to `replay --canonical` on the same
trace, for any shard count and any ingestion backend. `--follow` tails a
growing file until its end-of-stream line; `--snapshot-dir` receives
canonical-JSON metrics snapshots every `--snapshot-mins` (default 60) of
stream time, per-day tables at each `--day-hours` (default 24) rollover,
and a final cumulative snapshot. Malformed or contract-violating input
drains cleanly and exits nonzero — never a panic.";

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// The `--input` path as display text for error messages (empty when the
/// flag is absent, which the call sites never hit).
fn input_label(input: &Option<PathBuf>) -> String {
    input
        .as_deref()
        .map_or_else(String::new, |p| p.display().to_string())
}

fn parse_flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag_value(args, name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad value '{v}' for {name}")),
    }
}

fn generate(args: &[String]) -> Result<(), String> {
    let tasks: usize = parse_flag(args, "--tasks", 300)?;
    let drivers: usize = parse_flag(args, "--drivers", 40)?;
    let seed: u64 = parse_flag(args, "--seed", 0)?;
    let out = PathBuf::from(
        flag_value(args, "--out").ok_or_else(|| format!("--out DIR required\n{USAGE}"))?,
    );
    let model = match flag_value(args, "--model") {
        Some("hwh") => DriverModel::HomeWorkHome,
        _ => DriverModel::Hitchhiking,
    };
    let base = if args.iter().any(|a| a == "--delivery") {
        TraceConfig::porto_delivery()
    } else {
        TraceConfig::porto()
    };
    let trace = base
        .with_seed(seed)
        .with_task_count(tasks)
        .with_driver_count(drivers, model)
        .generate();
    std::fs::create_dir_all(&out).map_err(|e| format!("creating {}: {e}", out.display()))?;
    let write = |name: &str, data: String| -> Result<(), String> {
        let path = out.join(name);
        std::fs::write(&path, data).map_err(|e| format!("writing {}: {e}", path.display()))
    };
    write("trips.csv", trips_to_csv(&trace.trips))?;
    write("drivers.csv", drivers_to_csv(&trace.drivers))?;
    println!(
        "wrote {} trips and {} drivers to {}",
        trace.trips.len(),
        trace.drivers.len(),
        out.display()
    );
    Ok(())
}

fn load_market(dir: &Path) -> Result<Market, String> {
    let read = |name: &str| -> Result<String, String> {
        let path = dir.join(name);
        std::fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))
    };
    let trips = trips_from_csv(&read("trips.csv")?)?;
    let drivers = drivers_from_csv(&read("drivers.csv")?)?;
    let trace = rideshare::trace::Trace {
        trips,
        drivers,
        speed: SpeedModel::urban(),
        bbox: rideshare::geo::porto::bounding_box(),
    };
    Ok(Market::from_trace(&trace, &MarketBuildOptions::default()))
}

fn with_market(
    args: &[String],
    f: impl FnOnce(Market) -> Result<(), String>,
) -> Result<(), String> {
    let dir = flag_value(args, "--dir").ok_or_else(|| format!("--dir DIR required\n{USAGE}"))?;
    f(load_market(Path::new(dir))?)
}

fn solve(market: Market) -> Result<(), String> {
    let out = solve_greedy(&market, Objective::Profit);
    out.assignment
        .validate(&market)
        .map_err(|e| e.to_string())?;
    let profit = out.assignment.objective_value(&market, Objective::Profit);
    println!(
        "greedy: {} tasks served by {} drivers, profit {profit}",
        out.assignment.served_count(),
        out.assignment.active_driver_count(),
    );
    for (n, route) in out.assignment.routes().iter().enumerate() {
        if route.tasks.is_empty() {
            continue;
        }
        let ids: Vec<String> = route.tasks.iter().map(|t| t.index().to_string()).collect();
        println!("  driver#{n}: tasks [{}]", ids.join(", "));
    }
    Ok(())
}

fn simulate(args: &[String], market: Market) -> Result<(), String> {
    use rideshare::bench::PolicySpec;
    use rideshare::online::{run_batched_with, validate_online_result};

    let sim = Simulator::new(&market);
    let result = match flag_value(args, "--policy") {
        Some("nearest") => sim.run(&mut NearestDriver::new(), SimulationOptions::default()),
        Some("margin") | None => sim.run(&mut MaxMargin::new(), SimulationOptions::default()),
        Some(batch) => match PolicySpec::parse(batch).and_then(|p| p.batch_options()) {
            // One source of truth for a batched policy's options: the same
            // `PolicySpec::batch_options` the sweep engine dispatches with.
            Some(opts) => run_batched_with(&market, opts),
            None => {
                return Err(format!(
                    "unknown policy '{batch}' (margin|nearest|batch-<W>|batch-opt-<W>)"
                ))
            }
        },
    };
    validate_online_result(&market, &result).map_err(|e| e.to_string())?;
    println!(
        "online: served {}/{} ({:.1}%), profit {}",
        result.served,
        market.num_tasks(),
        result.service_rate() * 100.0,
        result.total_profit(&market),
    );
    if let (Some(wait), Some(cands)) = (result.mean_wait_mins(), result.mean_candidates()) {
        println!(
            "        mean wait {wait:.1} min, deadhead {:.1} km, {cands:.1} candidates/dispatch",
            result.total_deadhead_km(),
        );
    }
    Ok(())
}

/// Parses the shared `--scenarios` / `--policies` matrix grammar of
/// `sweep` and `orchestrate`, so the two subcommands can never disagree
/// about what a catalog selection means.
fn parse_sweep_matrix(
    args: &[String],
) -> Result<
    (
        Vec<rideshare::bench::Scenario>,
        Vec<rideshare::bench::PolicySpec>,
    ),
    String,
> {
    use rideshare::bench::{PolicySpec, Scenario};

    let scenarios: Vec<Scenario> = match flag_value(args, "--scenarios").unwrap_or("all") {
        "all" => Scenario::catalog(),
        "tiny" => Scenario::tiny_catalog(),
        names => names
            .split(',')
            .map(|n| {
                Scenario::by_name(n.trim())
                    .ok_or_else(|| format!("unknown scenario '{n}' (try --scenarios list)"))
            })
            .collect::<Result<_, _>>()?,
    };
    let policies: Vec<PolicySpec> = match flag_value(args, "--policies") {
        None => PolicySpec::default_set(),
        Some("w-sweep") => PolicySpec::w_sweep_set(),
        Some(names) => names
            .split(',')
            .map(|n| PolicySpec::parse(n.trim()).ok_or_else(|| format!("unknown policy '{n}'")))
            .collect::<Result<_, _>>()?,
    };
    Ok((scenarios, policies))
}

fn sweep(args: &[String]) -> Result<(), String> {
    use rideshare::bench::{run_sweep, Scenario, SweepOptions};

    if flag_value(args, "--scenarios") == Some("list") {
        for s in Scenario::catalog() {
            println!("{:<14} {}", s.name, s.summary);
        }
        return Ok(());
    }
    let (scenarios, policies) = parse_sweep_matrix(args)?;
    let threads: usize = match flag_value(args, "--threads") {
        Some(v) => v
            .parse()
            .map_err(|_| format!("bad value '{v}' for --threads"))?,
        None => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    };
    let opts = SweepOptions {
        threads,
        compute_bound: !args.iter().any(|a| a == "--no-bound"),
    };
    let with_timing = !args.iter().any(|a| a == "--canonical");

    // audit:allow(wall-clock): operator-facing elapsed-time display only; --canonical drops these lines, which is exactly what the CI byte-identity diffs compare.
    let start = std::time::Instant::now();
    let report = run_sweep(&scenarios, &policies, opts);
    let elapsed = start.elapsed().as_secs_f64();

    println!("{}", report.render());
    println!(
        "{} cells ({} scenarios × {} policies) on {threads} thread(s) in {elapsed:.2}s",
        report.cells.len(),
        scenarios.len(),
        policies.len(),
    );
    if let Some(path) = flag_value(args, "--json") {
        std::fs::write(path, report.to_json(with_timing))
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = flag_value(args, "--csv") {
        std::fs::write(path, report.to_csv(with_timing))
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// `rideshare orchestrate`: the sweep matrix fanned out over worker
/// child processes through a crash-safe spool, merged byte-identical to
/// `sweep --canonical`.
fn orchestrate_cmd(args: &[String]) -> Result<(), String> {
    use rideshare::bench::{orchestrate, OrchestrateOptions};

    let spool = PathBuf::from(
        flag_value(args, "--spool").ok_or_else(|| format!("--spool DIR required\n{USAGE}"))?,
    );
    let (scenarios, policies) = parse_sweep_matrix(args)?;
    let workers: usize = parse_flag(args, "--workers", 2)?;
    let threads: usize = match flag_value(args, "--threads") {
        Some(v) => v
            .parse()
            .map_err(|_| format!("bad value '{v}' for --threads"))?,
        None => {
            // Split the machine across the worker pool by default.
            let total = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
            (total / workers.max(1)).max(1)
        }
    };
    let timeout_secs = parse_secs_flag(args, "--timeout", 300)?;
    if timeout_secs <= 0 {
        return Err("--timeout must be positive".into());
    }
    let retries: usize = parse_flag(args, "--retries", 3)?;
    let exe = std::env::current_exe().map_err(|e| format!("resolving own binary: {e}"))?;
    let mut worker_extra_args = Vec::new();
    if args.iter().any(|a| a == "--fault-crash-once") {
        // CI fault injection: exactly one worker (marker-create wins) dies
        // right after its next claim, exercising the requeue path.
        worker_extra_args.extend([
            "--crash-once".to_string(),
            spool.join("crash.marker").display().to_string(),
        ]);
    }
    let opts = OrchestrateOptions {
        workers,
        worker_cmd: vec![exe.display().to_string(), "worker".to_string()],
        worker_extra_args,
        threads_per_worker: threads,
        compute_bound: !args.iter().any(|a| a == "--no-bound"),
        resume: args.iter().any(|a| a == "--resume"),
        unit_timeout: std::time::Duration::from_secs(timeout_secs as u64),
        max_attempts: retries,
        ..OrchestrateOptions::default()
    };

    // audit:allow(wall-clock): operator-facing elapsed-time display only; --canonical drops these lines, which is exactly what the CI byte-identity diffs compare.
    let start = std::time::Instant::now();
    let outcome = orchestrate(&spool, &scenarios, &policies, &opts).map_err(|e| e.to_string())?;
    let elapsed = start.elapsed().as_secs_f64();

    println!("{}", outcome.report.render());
    println!(
        "{} cells ({} scenarios × {} policies) over {workers} worker process(es), \
         {} unit(s) resumed, {} requeue(s), {} respawn(s)",
        outcome.report.cells.len(),
        scenarios.len(),
        policies.len(),
        outcome.resumed,
        outcome.requeues,
        outcome.respawns,
    );
    if !args.iter().any(|a| a == "--canonical") {
        println!("        {elapsed:.2}s wall");
    }
    // The merged report carries no wall-times (workers publish the
    // canonical form), so both outputs are always canonical.
    if let Some(path) = flag_value(args, "--json") {
        std::fs::write(path, outcome.report.to_json(false))
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = flag_value(args, "--csv") {
        std::fs::write(path, outcome.report.to_csv(false))
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// `rideshare worker`: the child side of `orchestrate`. Claims spool
/// units until the catalog is drained. The fault-injection flags exist
/// for the crash-safety tests; an injected crash exits with code 86,
/// deliberately leaving the claim orphaned for the parent to recover.
fn worker_cmd(args: &[String]) -> Result<(), String> {
    use rideshare::bench::{run_worker, WorkerOptions, WorkerOutcome};

    let spool = PathBuf::from(
        flag_value(args, "--spool").ok_or_else(|| format!("--spool DIR required\n{USAGE}"))?,
    );
    let poll_ms: u64 = parse_flag(args, "--poll-ms", 25)?;
    let opts = WorkerOptions {
        spool,
        id: flag_value(args, "--id").map_or_else(|| std::process::id().to_string(), str::to_string),
        threads: parse_flag(args, "--threads", 1)?,
        poll_interval: std::time::Duration::from_millis(poll_ms),
        crash_once: flag_value(args, "--crash-once").map(PathBuf::from),
        crash_on_unit: flag_value(args, "--crash-on-unit").map(str::to_string),
    };
    match run_worker(&opts).map_err(|e| e.to_string())? {
        WorkerOutcome::Drained { units_done } => {
            println!("worker: spool drained, ran {units_done} unit(s)");
            Ok(())
        }
        WorkerOutcome::CrashRequested => {
            eprintln!("worker: injected crash, abandoning claim");
            std::process::exit(86);
        }
    }
}

/// Parses `--policy` into the shard-stable streaming policy spec, through
/// the same `PolicySpec` grammar as `simulate` and `sweep`. Shared by
/// `replay` and `serve` so both sides of the equivalence pin agree on
/// what a policy label means.
fn parse_stream_policy(args: &[String]) -> Result<rideshare::online::ShardPolicySpec, String> {
    use rideshare::bench::PolicySpec;
    use rideshare::online::ShardPolicySpec;

    match flag_value(args, "--policy") {
        Some("nearest") => Ok(ShardPolicySpec::Nearest { seed: 0 }),
        Some("margin") | None => Ok(ShardPolicySpec::MaxMargin),
        Some(label) => match PolicySpec::parse(label).and_then(|p| p.batch_options()) {
            Some(opts) => Ok(ShardPolicySpec::Batched {
                window: opts.window,
                matcher: opts.matcher,
            }),
            None => Err(format!(
                "unknown policy '{label}' (margin|nearest|batch-<W>|batch-opt-<W>)"
            )),
        },
    }
}

fn replay(args: &[String]) -> Result<(), String> {
    use rideshare::metrics::StreamMetrics;
    use rideshare::online::{
        replay_sharded, wire_to_event, BoxPartitioner, ShardOptions, StreamEngine, StreamEvent,
        StreamOptions,
    };
    use rideshare::trace::rtb;

    let tasks: usize = parse_flag(args, "--tasks", 100_000)?;
    let drivers: usize = parse_flag(args, "--drivers", 450)?;
    let seed: u64 = parse_flag(args, "--seed", 0)?;
    let surge_mins: i64 = parse_flag(args, "--surge-window", 30)?;
    let shards: usize = parse_flag(args, "--shards", 1)?;
    // Typed zero-shard rejection — the partitioner would `% 0` otherwise.
    let shard_options = ShardOptions::try_new(shards).map_err(|e| format!("--shards: {e}"))?;
    // Sharding is lossless only over disjoint service regions (see
    // ARCHITECTURE.md); `--shards N` therefore defaults to an N-region
    // trace, and `--regions K` decouples the two (K ≥ N regions fold onto
    // N shards round-robin).
    let regions: usize = parse_flag(args, "--regions", shards.max(1))?;
    if regions < shards {
        return Err(format!(
            "--regions {regions} < --shards {shards}: a shard would own no region"
        ));
    }
    let canonical = args.iter().any(|a| a == "--canonical");
    let model = match flag_value(args, "--model") {
        Some("hwh") => DriverModel::HomeWorkHome,
        _ => DriverModel::Hitchhiking,
    };
    let base = if args.iter().any(|a| a == "--delivery") {
        TraceConfig::porto_delivery()
    } else {
        TraceConfig::porto()
    };
    let mut config = base
        .with_seed(seed)
        .with_task_count(tasks)
        .with_driver_count(drivers, model);
    if regions > 1 {
        config = config.with_regions(regions);
    }

    // The streaming policy, parsed through the same PolicySpec grammar as
    // `simulate` and `sweep` — one shard-stable spec for both paths.
    let spec = parse_stream_policy(args)?;

    // The full streaming pipeline: lazy trip generation → incremental
    // pricing → bounded-memory dispatch (sequential or region-sharded) →
    // windowed metrics. Nothing here is O(trace).
    let stream = config.stream();
    let speed = stream.speed();
    let bbox = stream.bounding_box();
    let build = MarketBuildOptions {
        surge_window: (surge_mins > 0).then(|| TimeDelta::from_mins(surge_mins)),
        ..MarketBuildOptions::default()
    };
    let mut pricer = rideshare::core::StreamPricer::new(&build, bbox, speed, stream.drivers());

    let options = if args.iter().any(|a| a == "--no-grid") {
        StreamOptions::default()
    } else {
        StreamOptions::default().grid(bbox)
    };
    // `--tsdb-dir` interposes the telemetry recorder between the engine
    // and the metrics accumulator: per-window deltas persist to the
    // embedded store (queryable later via `rideshare query`) while the
    // replay report stays byte-identical — the recorder forwards every
    // callback unchanged.
    let mut metrics = open_recorder(args, "replay", regions, shards, StreamMetrics::hourly())?;

    // `--input FILE.rtb` replaces the generator + pricer with the binary
    // event log `export --format bin` wrote: the whole file is slurped
    // once and records decode zero-copy out of the buffer, so nothing but
    // the dispatch engine itself runs in the hot loop. The decisions are
    // byte-identical to the generator-fed pipeline over the same trace
    // (the rtb_equivalence battery pins this).
    let input = flag_value(args, "--input").map(PathBuf::from);
    let rtb_data = match &input {
        Some(path) => {
            Some(std::fs::read(path).map_err(|e| format!("reading {}: {e}", path.display()))?)
        }
        None => None,
    };

    // audit:allow(wall-clock): operator-facing elapsed-time display only; --canonical drops these lines, which is exactly what the CI byte-identity diffs compare.
    let start = std::time::Instant::now();
    let summary = if let Some(data) = &rtb_data {
        let mut slice =
            rtb::RtbSlice::new(data).map_err(|e| format!("{}: {e}", input_label(&input)))?;
        if shards > 1 {
            let partitioner = BoxPartitioner::new(config.region_boxes());
            // replay_sharded consumes a plain iterator; a decode error
            // parks here and surfaces after the engine drains.
            let decode_err = std::cell::RefCell::new(None);
            let events = std::iter::from_fn(|| match slice.next() {
                Ok(wire) => wire.and_then(wire_to_event),
                Err(e) => {
                    *decode_err.borrow_mut() = Some(e);
                    None
                }
            });
            let summary = replay_sharded(
                speed,
                events,
                spec,
                &partitioner,
                shard_options.stream(options).validate(false),
                &mut metrics,
            );
            if let Some(e) = decode_err.into_inner() {
                return Err(format!("{}: {e}", input_label(&input)));
            }
            summary
        } else {
            let mut holder = spec.holder();
            let mut policy = holder.as_policy();
            let mut engine = StreamEngine::new(speed, options);
            loop {
                let wire = slice
                    .next()
                    .map_err(|e| format!("{}: {e}", input_label(&input)))?;
                match wire.and_then(wire_to_event) {
                    Some(event) => engine.push(event, &mut policy, &mut metrics),
                    None => break,
                }
            }
            engine.finish(&mut policy, &mut metrics)
        }
    } else if shards > 1 {
        let partitioner = BoxPartitioner::new(config.region_boxes());
        let driver_events: Vec<StreamEvent> = stream
            .drivers()
            .iter()
            .map(|shift| StreamEvent::DriverOnline(Driver::from(shift)))
            .collect();
        let task_events = stream.map(move |trip| StreamEvent::TaskPublished(pricer.price(&trip)));
        replay_sharded(
            speed,
            driver_events.into_iter().chain(task_events),
            spec,
            &partitioner,
            shard_options.stream(options).validate(false),
            &mut metrics,
        )
    } else {
        let mut holder = spec.holder();
        let mut policy = holder.as_policy();
        let mut engine = StreamEngine::new(speed, options);
        for shift in stream.drivers() {
            engine.push(
                StreamEvent::DriverOnline(Driver::from(shift)),
                &mut policy,
                &mut metrics,
            );
        }
        for trip in stream {
            let task = pricer.price(&trip);
            engine.push(StreamEvent::TaskPublished(task), &mut policy, &mut metrics);
        }
        engine.finish(&mut policy, &mut metrics)
    };
    let elapsed = start.elapsed().as_secs_f64();

    // Flush + dismantle the recorder: a latched recording error fails
    // the run *after* dispatch completed, like a snapshot write error.
    let (tsdb_store, metrics) = metrics.finish().map_err(|e| format!("tsdb: {e}"))?;

    if !args.iter().any(|a| a == "--quiet-table") {
        println!("{}", metrics.render());
    }
    println!(
        "replay: served {}/{} ({:.1}%), revenue {:.2}, profit {:.2}",
        summary.served,
        summary.tasks,
        metrics.service_rate() * 100.0,
        metrics.revenue(),
        metrics.profit(),
    );
    if let (Some(wait), Some(income)) = (
        metrics.mean_wait_mins(),
        metrics.mean_income_per_active_driver(),
    ) {
        println!(
            "        mean wait {wait:.1} min, deadhead {:.1} km, {} active drivers, \
             {income:.2} mean income",
            metrics.total_deadhead_km(),
            metrics.active_drivers(),
        );
    }
    println!(
        "        {} region(s) × {} shard(s); peak resident state: {} held orders + {} \
         drivers ({} compacted) (O(active + drivers), trace never materialised)",
        regions, shards, summary.peak_held_tasks, summary.drivers, summary.compacted_drivers,
    );
    if !canonical {
        println!(
            "        {:.0} tasks/s over {elapsed:.2}s",
            summary.tasks as f64 / elapsed.max(1e-9),
        );
    }
    report_recording(tsdb_store.as_ref());
    Ok(())
}

/// Opens the telemetry recorder around `inner` when `--tsdb-dir` is
/// present (labels: `--tsdb-scenario` or the subcommand name, the
/// `--policy` spelling, and the run's region/shard counts); otherwise a
/// pure pass-through, so replay/serve keep one sink code path.
fn open_recorder<S: rideshare::online::StreamSink>(
    args: &[String],
    subcommand: &str,
    regions: usize,
    shards: usize,
    inner: S,
) -> Result<TsdbRecorder<S>, String> {
    match flag_value(args, "--tsdb-dir") {
        None => Ok(TsdbRecorder::passthrough(inner)),
        Some(dir) => {
            let store = TsdbStore::open(Path::new(dir)).map_err(|e| format!("tsdb: {e}"))?;
            let scenario = flag_value(args, "--tsdb-scenario").unwrap_or(subcommand);
            let policy = flag_value(args, "--policy").unwrap_or("margin");
            let labels = RunLabels::new(scenario, policy, regions, shards);
            Ok(TsdbRecorder::new(store, labels, inner))
        }
    }
}

/// One stdout line naming what a `--tsdb-dir` run persisted (stable
/// text, so recorded and unrecorded runs differ only by this line).
fn report_recording(store: Option<&TsdbStore>) {
    if let Some(store) = store {
        println!(
            "        tsdb: recorded {} series to {}",
            store.series().count(),
            store.dir().display()
        );
    }
}

/// Export output encoding: a line format, or the fixed-width binary
/// `.rtb` record stream replay can consume directly.
enum ExportFormat {
    Lines(rideshare::online::IngestFormat),
    Bin,
}

fn export(args: &[String]) -> Result<(), String> {
    use rideshare::online::{event_to_line, event_to_wire, IngestFormat, StreamEvent};
    use rideshare::trace::{rtb, wire};
    use std::io::Write as _;

    let tasks: usize = parse_flag(args, "--tasks", 100_000)?;
    let drivers: usize = parse_flag(args, "--drivers", 450)?;
    let seed: u64 = parse_flag(args, "--seed", 0)?;
    let surge_mins: i64 = parse_flag(args, "--surge-window", 30)?;
    let regions: usize = parse_flag(args, "--regions", 1)?;
    let format = match flag_value(args, "--format") {
        Some("csv") => ExportFormat::Lines(IngestFormat::Csv),
        Some("jsonl") | None => ExportFormat::Lines(IngestFormat::Jsonl),
        Some("bin") => ExportFormat::Bin,
        Some(other) => return Err(format!("unknown format '{other}' (jsonl|csv|bin)")),
    };
    let model = match flag_value(args, "--model") {
        Some("hwh") => DriverModel::HomeWorkHome,
        _ => DriverModel::Hitchhiking,
    };
    let base = if args.iter().any(|a| a == "--delivery") {
        TraceConfig::porto_delivery()
    } else {
        TraceConfig::porto()
    };
    let mut config = base
        .with_seed(seed)
        .with_task_count(tasks)
        .with_driver_count(drivers, model);
    if regions > 1 {
        config = config.with_regions(regions);
    }

    // The same lazy pipeline `replay` runs — trips generate in publish
    // order, the surge pricer turns them into priced tasks — but the
    // events leave as text lines instead of entering an engine, so a
    // daemon ingesting this log decides exactly what `replay` decides.
    let stream = config.stream();
    let build = MarketBuildOptions {
        surge_window: (surge_mins > 0).then(|| TimeDelta::from_mins(surge_mins)),
        ..MarketBuildOptions::default()
    };
    let mut pricer = rideshare::core::StreamPricer::new(
        &build,
        stream.bounding_box(),
        stream.speed(),
        stream.drivers(),
    );

    let mut out: Box<dyn std::io::Write> = match flag_value(args, "--out") {
        Some(path) => Box::new(std::io::BufWriter::new(
            std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?,
        )),
        None => Box::new(std::io::BufWriter::new(std::io::stdout())),
    };
    let mut count = 0usize;
    match format {
        ExportFormat::Lines(format) => {
            let mut emit = |line: String| -> Result<(), String> {
                writeln!(out, "{line}").map_err(|e| format!("writing event log: {e}"))
            };
            for shift in stream.drivers() {
                emit(event_to_line(
                    &StreamEvent::DriverOnline(Driver::from(shift)),
                    format,
                ))?;
                count += 1;
            }
            for trip in stream {
                let task = pricer.price(&trip);
                emit(event_to_line(&StreamEvent::TaskPublished(task), format))?;
                count += 1;
            }
            let eos = match format {
                IngestFormat::Jsonl => wire::to_json_line(&wire::WireEvent::Eos),
                IngestFormat::Csv => wire::to_csv_line(&wire::WireEvent::Eos),
            };
            emit(eos)?;
        }
        ExportFormat::Bin => {
            let io_err = |e: std::io::Error| format!("writing .rtb stream: {e}");
            let mut writer = rtb::RtbWriter::new(out).map_err(io_err)?;
            for shift in stream.drivers() {
                let event = StreamEvent::DriverOnline(Driver::from(shift));
                writer.write_event(&event_to_wire(&event)).map_err(io_err)?;
                count += 1;
            }
            for trip in stream {
                let event = StreamEvent::TaskPublished(pricer.price(&trip));
                writer.write_event(&event_to_wire(&event)).map_err(io_err)?;
                count += 1;
            }
            writer.finish().map_err(io_err)?;
        }
    }
    if let Some(path) = flag_value(args, "--out") {
        println!("wrote {count} events (+ end-of-stream) to {path}");
    }
    Ok(())
}

fn serve(args: &[String]) -> Result<(), String> {
    use rideshare::metrics::MetricsJournal;
    use rideshare::online::{
        BoxPartitioner, FileSource, IngestFormat, IngestSource, ServeConfig, ServeDaemon,
        ServeStop, ShardOptions, StreamOptions, TcpSource,
    };

    let source_arg = flag_value(args, "--source")
        .ok_or_else(|| format!("--source jsonl:PATH|csv:PATH|tcp:ADDR required\n{USAGE}"))?;
    let shards: usize = parse_flag(args, "--shards", 1)?;
    // Typed zero-shard rejection — the partitioner would `% 0` otherwise.
    let shard_options = ShardOptions::try_new(shards).map_err(|e| format!("--shards: {e}"))?;
    let regions: usize = parse_flag(args, "--regions", shards.max(1))?;
    if regions < shards {
        return Err(format!(
            "--regions {regions} < --shards {shards}: a shard would own no region"
        ));
    }
    let day_hours: i64 = parse_flag(args, "--day-hours", 24)?;
    if day_hours <= 0 {
        return Err("--day-hours must be positive".into());
    }
    let snapshot_mins: i64 = parse_flag(args, "--snapshot-mins", 60)?;
    if snapshot_mins <= 0 {
        return Err("--snapshot-mins must be positive".into());
    }
    let snapshot_dir = flag_value(args, "--snapshot-dir").map(PathBuf::from);
    if let Some(dir) = &snapshot_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    }
    let canonical = args.iter().any(|a| a == "--canonical");
    let follow = args.iter().any(|a| a == "--follow");
    let spec = parse_stream_policy(args)?;

    let options = if args.iter().any(|a| a == "--no-grid") {
        StreamOptions::default()
    } else {
        // The daemon has no trace in hand; the replay pipeline's bounding
        // box is the city model's, so using it here keeps the pruning
        // grid — and therefore the equivalence pin — identical.
        StreamOptions::default().grid(rideshare::geo::porto::bounding_box())
    };
    let mut config = ServeConfig::new(shards)
        .shard_options(shard_options.stream(options).validate(false))
        .day_length(TimeDelta::from_hours(day_hours));
    if snapshot_dir.is_some() {
        config = config.snapshot_every(TimeDelta::from_mins(snapshot_mins));
    }

    // `--regions K` reconstructs the same region geometry `replay` slices
    // the trace by, so the partition (and thus every decision) matches.
    let boxes = TraceConfig::porto().with_regions(regions).region_boxes();
    let partitioner = BoxPartitioner::new(boxes);
    let mut daemon = ServeDaemon::new(SpeedModel::urban(), spec, config);
    if shards > 1 {
        daemon = daemon.with_partitioner(&partitioner);
    }

    let mut source: Box<dyn IngestSource> = match source_arg.split_once(':') {
        Some(("jsonl", path)) => Box::new(
            FileSource::open(Path::new(path), IngestFormat::Jsonl)
                .map_err(|e| format!("opening {path}: {e}"))?
                .follow(follow),
        ),
        Some(("csv", path)) => Box::new(
            FileSource::open(Path::new(path), IngestFormat::Csv)
                .map_err(|e| format!("opening {path}: {e}"))?
                .follow(follow),
        ),
        Some(("tcp", addr)) => {
            let listener =
                std::net::TcpListener::bind(addr).map_err(|e| format!("binding {addr}: {e}"))?;
            // Stderr, so canonical stdout diffs stay clean.
            eprintln!(
                "serve: listening on {}",
                listener.local_addr().map_err(|e| e.to_string())?
            );
            let (conn, peer) = listener.accept().map_err(|e| format!("accepting: {e}"))?;
            eprintln!("serve: ingesting from {peer}");
            Box::new(TcpSource::from_stream(conn))
        }
        _ => {
            return Err(format!(
                "bad --source '{source_arg}' (jsonl:PATH|csv:PATH|tcp:ADDR)"
            ))
        }
    };

    // The daemon's sink: the metrics journal, optionally behind the
    // telemetry recorder (`--tsdb-dir`) persisting per-window deltas as
    // they close — same interposer pattern as `replay`.
    let mut sink = open_recorder(args, "serve", regions, shards, MetricsJournal::hourly())?;
    // Both hooks write files; a RefCell keeps the shared "first write
    // error" without making the helper uniquely borrowed by one closure.
    let write_err: std::cell::RefCell<Option<String>> = std::cell::RefCell::new(None);
    let dir = snapshot_dir.as_deref();
    let write_snapshot = |name: String, json: String| {
        let Some(dir) = dir else { return };
        let path = dir.join(name);
        if let Err(e) = std::fs::write(&path, json + "\n") {
            write_err
                .borrow_mut()
                .get_or_insert(format!("writing {}: {e}", path.display()));
        }
    };
    // audit:allow(wall-clock): operator-facing elapsed-time display only; --canonical drops these lines, which is exactly what the CI byte-identity diffs compare.
    let start = std::time::Instant::now();
    let outcome = daemon.run(
        source.as_mut(),
        &mut sink,
        |p, sink: &mut TsdbRecorder<MetricsJournal>| {
            write_snapshot(
                format!("snap-{:05}.json", p.seq),
                sink.inner().cumulative().to_canonical_json(),
            );
        },
        |d, sink: &mut TsdbRecorder<MetricsJournal>| {
            let closed = sink.inner_mut().roll_day();
            write_snapshot(format!("day-{:05}.json", d.day), closed.to_canonical_json());
            // Day rollover is the store's durability boundary: seal open
            // chunks and rewrite the index, so a killed daemon keeps
            // every closed day. Errors latch like snapshot write errors.
            if let Err(e) = sink.flush_store() {
                write_err.borrow_mut().get_or_insert(format!("tsdb: {e}"));
            }
        },
    );
    let elapsed = start.elapsed().as_secs_f64();
    let report = &outcome.report;
    let (tsdb_store, journal) = sink.finish().map_err(|e| format!("tsdb: {e}"))?;
    let metrics = journal.cumulative();
    if let Some(dir) = &snapshot_dir {
        let path = dir.join("final.json");
        std::fs::write(&path, metrics.to_canonical_json() + "\n")
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
    }

    // Mirror `replay`'s report exactly (modulo the `serve:` prefix and the
    // daemon-only lines): the serve-equivalence CI cell diffs the two.
    if !args.iter().any(|a| a == "--quiet-table") {
        println!("{}", metrics.render());
    }
    println!(
        "serve: served {}/{} ({:.1}%), revenue {:.2}, profit {:.2}",
        report.summary.served,
        report.summary.tasks,
        metrics.service_rate() * 100.0,
        metrics.revenue(),
        metrics.profit(),
    );
    if let (Some(wait), Some(income)) = (
        metrics.mean_wait_mins(),
        metrics.mean_income_per_active_driver(),
    ) {
        println!(
            "        mean wait {wait:.1} min, deadhead {:.1} km, {} active drivers, \
             {income:.2} mean income",
            metrics.total_deadhead_km(),
            metrics.active_drivers(),
        );
    }
    println!(
        "        {} region(s) × {} shard(s); peak resident state: {} held orders + {} \
         drivers ({} compacted) (O(active + drivers), trace never materialised)",
        regions,
        shards,
        report.summary.peak_held_tasks,
        report.summary.drivers,
        report.summary.compacted_drivers,
    );
    println!(
        "        {} event(s), {} window(s), {} day(s) rolled, {} snapshot(s); stop: {}",
        report.events,
        report.windows,
        report.days,
        report.snapshots,
        match report.stop {
            ServeStop::Drained => "drained",
            ServeStop::Shutdown => "shutdown",
            ServeStop::Error => "ingest error",
        },
    );
    if !canonical {
        println!(
            "        {:.0} tasks/s over {elapsed:.2}s",
            report.summary.tasks as f64 / elapsed.max(1e-9),
        );
    }
    report_recording(tsdb_store.as_ref());
    if let Some(e) = write_err.into_inner() {
        return Err(e);
    }
    match outcome.error {
        Some(e) => Err(format!("ingest: {e}")),
        None => Ok(()),
    }
}

/// Parses a duration flag: plain seconds or a `90s`/`30m`/`2h`/`1d`
/// suffix form.
fn parse_secs_flag(args: &[String], name: &str, default: i64) -> Result<i64, String> {
    let Some(v) = flag_value(args, name) else {
        return Ok(default);
    };
    let (digits, mult) = match v.as_bytes().last() {
        Some(b's') => (&v[..v.len() - 1], 1),
        Some(b'm') => (&v[..v.len() - 1], 60),
        Some(b'h') => (&v[..v.len() - 1], 3600),
        Some(b'd') => (&v[..v.len() - 1], 86_400),
        _ => (v, 1),
    };
    digits
        .parse::<i64>()
        .ok()
        .and_then(|n| n.checked_mul(mult))
        .ok_or_else(|| format!("bad value '{v}' for {name} (seconds, or 90s/30m/2h/1d)"))
}

/// `rideshare query`: range queries over a recorded telemetry store.
fn query(args: &[String]) -> Result<(), String> {
    use rideshare::tsdb::query::render_table as render_query_table;
    use rideshare::tsdb::to_canonical_json;

    let dir = flag_value(args, "--tsdb").ok_or_else(|| format!("--tsdb DIR required\n{USAGE}"))?;
    // Querying is read-only: a missing directory is an error, not an
    // invitation to create an empty store (which `open` would do).
    if !Path::new(dir).is_dir() {
        return Err(format!("--tsdb: no store directory at {dir}"));
    }
    let store = TsdbStore::open(Path::new(dir)).map_err(|e| format!("tsdb: {e}"))?;

    if args.iter().any(|a| a == "--list") {
        let mut total: u64 = 0;
        println!(
            "{:>5} | {:>8} | {:>10} | {:>10} | series",
            "id", "samples", "first", "last"
        );
        for (key, info) in store.series() {
            let fmt_t = |t: Option<i64>| t.map_or_else(|| "-".to_string(), |t| t.to_string());
            println!(
                "{:>5} | {:>8} | {:>10} | {:>10} | {}",
                info.id,
                info.samples,
                fmt_t(info.first_t),
                fmt_t(info.last_t),
                key.canonical(),
            );
            total += info.samples;
        }
        println!("{} series, {total} samples", store.series().count());
        return Ok(());
    }

    let filter = match flag_value(args, "--filter") {
        Some(s) => LabelFilter::parse(s).map_err(|e| format!("--filter: {e}"))?,
        None => LabelFilter::any(),
    };
    let agg = match flag_value(args, "--agg") {
        None => Agg::Sum,
        Some(s) => {
            Agg::parse(s).ok_or_else(|| format!("bad --agg '{s}' (sum|avg|rate|min|max)"))?
        }
    };
    // The default range is the whole store: pre-epoch samples (bucket 0
    // absorbs pre-epoch publishes, so rejections can land at negative
    // stream time) must count, or query totals drift from the
    // accumulator totals the equivalence battery pins them to.
    let q = RangeQuery {
        filter,
        from: parse_secs_flag(args, "--from", i64::MIN)?,
        to: parse_secs_flag(args, "--to", i64::MAX)?,
        step: parse_secs_flag(args, "--step", 3600)?,
    };
    let result = run_query(&store, &q).map_err(|e| format!("query: {e}"))?;
    if args.iter().any(|a| a == "--canonical") {
        print!("{}", to_canonical_json(&q, agg, &result));
    } else {
        print!("{}", render_query_table(&q, agg, &result));
        println!(
            "query: {} series merged{}",
            result.matched.len(),
            if q.filter.canonical().is_empty() {
                String::new()
            } else {
                format!(" (filter {})", q.filter.canonical())
            },
        );
    }
    Ok(())
}

fn bound(market: Market) -> Result<(), String> {
    let ub = lp_upper_bound(&market, Objective::Profit, UpperBoundOptions::default())
        .map_err(|e| e.to_string())?;
    println!(
        "Z_f* = {:.2} ({} rounds, {} columns, converged: {})",
        ub.bound, ub.rounds, ub.columns, ub.converged
    );
    Ok(())
}

/// `rideshare audit`: run the static determinism/invariant audit.
///
/// Returns `Ok(true)` when the tree is clean (zero unwaived findings,
/// zero unused or malformed waivers), `Ok(false)` when findings remain
/// (the caller exits nonzero), `Err` on I/O or flag problems.
fn audit(args: &[String]) -> Result<bool, String> {
    let root = flag_value(args, "--root").map_or_else(|| PathBuf::from("."), PathBuf::from);
    let json = args.iter().any(|a| a == "--json");
    let check = args.iter().any(|a| a == "--check");
    let verbose = args.iter().any(|a| a == "--verbose");
    if !root.join("Cargo.toml").is_file() {
        return Err(format!(
            "{} does not look like the workspace root (no Cargo.toml); pass --root DIR",
            root.display()
        ));
    }
    let report = rideshare::audit::run_audit(&root).map_err(|e| e.to_string())?;
    if json {
        println!("{}", report.to_canonical_json());
    } else if check && report.is_clean() {
        // CI mode stays quiet on success apart from the summary line.
        print!(
            "{}",
            report
                .render_human(false)
                .lines()
                .last()
                .map(|l| format!("{l}\n"))
                .unwrap_or_default()
        );
    } else {
        print!("{}", report.render_human(verbose));
    }
    Ok(report.is_clean())
}
