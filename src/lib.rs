//! **rideshare** — an optimization framework for online ride-sharing
//! markets.
//!
//! A production-quality Rust reproduction of *"An Optimization Framework
//! for Online Ride-sharing Markets"* (Jia, Xu & Liu — ICDCS 2017,
//! arXiv:1612.03797). The facade re-exports every subsystem crate of the
//! workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`audit`] | `rideshare-audit` | workspace determinism & invariant auditor (`rideshare audit`) |
//! | [`types`] | `rideshare-types` | ids, time, money newtypes |
//! | [`geo`] | `rideshare-geo` | coordinates, distances, speed model, grid index, Porto city model |
//! | [`trace`] | `rideshare-trace` | Porto-calibrated synthetic trace generation + statistics |
//! | [`pricing`] | `rideshare-pricing` | surge multipliers (SM), Eq. 15 fares, WTP |
//! | [`graph`] | `rideshare-graph` | weighted DAGs and longest-path DP |
//! | [`lp`] | `rideshare-lp` | simplex, packing LP (column generation), branch & bound |
//! | [`core`] | `rideshare-core` | the market model, task maps, GA, `Z_f*`, exact ILP, Fig. 2 |
//! | [`online`] | `rideshare-online` | the online simulator, Nearest & maxMargin dispatch, streaming engines, the `serve` daemon |
//! | [`metrics`] | `rideshare-metrics` | evaluation metrics and table rendering |
//! | [`tsdb`] | `rideshare-tsdb` | embedded telemetry time-series store: lossless chunks, label index, range queries (`rideshare query`) |
//! | [`bench`](mod@bench) | `rideshare-bench` | scenario catalog, parallel sharded sweep engine, multi-process sweep orchestrator (`rideshare orchestrate`), figure harness |
//!
//! # Quickstart
//!
//! ```
//! use rideshare::prelude::*;
//!
//! // One synthetic day of the Porto market: 200 orders, 25 commuters.
//! let trace = TraceConfig::porto()
//!     .with_seed(42)
//!     .with_task_count(200)
//!     .with_driver_count(25, DriverModel::Hitchhiking)
//!     .generate();
//! let market = Market::from_trace(&trace, &MarketBuildOptions::default());
//!
//! // Offline: the 1/(D+1)-approximate greedy (Alg. 1).
//! let offline = solve_greedy(&market, Objective::Profit);
//!
//! // Online: replay the order stream through maxMargin (Alg. 4).
//! let sim = Simulator::new(&market);
//! let online = sim.run(&mut MaxMargin::new(), SimulationOptions::default());
//!
//! // Offline information advantage: greedy should not lose to the
//! // online heuristic by much on any seed, and both must be feasible.
//! offline.assignment.validate(&market).unwrap();
//! validate_online(&market, &online.assignment).unwrap();
//! ```

// Lint levels (unsafe_code, missing_docs) come from [workspace.lints].

pub use rideshare_audit as audit;
pub use rideshare_bench as bench;
pub use rideshare_core as core;
pub use rideshare_geo as geo;
pub use rideshare_graph as graph;
pub use rideshare_lp as lp;
pub use rideshare_metrics as metrics;
pub use rideshare_online as online;
pub use rideshare_pricing as pricing;
pub use rideshare_trace as trace;
pub use rideshare_tsdb as tsdb;
pub use rideshare_types as types;

/// The most commonly used items, importable in one line.
pub mod prelude {
    pub use rideshare_bench::{
        orchestrate, run_sweep, run_worker, OrchestrateOptions, OrchestrateOutcome, PolicySpec,
        Scenario, SweepOptions, SweepReport, WorkerOptions, WorkerOutcome,
    };
    pub use rideshare_core::{
        disjoint_components, lp_upper_bound, performance_ratio, sharded_upper_bound, solve_exact,
        solve_greedy, solve_sharded, Assignment, Driver, DriverRoute, DriverView, ExactOptions,
        Market, MarketBuildOptions, Objective, StreamPricer, Task, UpperBoundOptions,
    };
    pub use rideshare_geo::{BoundingBox, GeoPoint, SpeedModel};
    pub use rideshare_metrics::{
        render_series, render_table, MarketMetrics, MetricsJournal, Series, StreamMetrics,
    };
    pub use rideshare_online::{
        market_events, replay_sharded, replay_stream, run_batched, run_batched_with,
        validate_online, validate_online_result, BatchEngine, BatchMatcher, BatchOptions,
        BoxPartitioner, CollectingSink, DispatchPolicy, FileSource, GridHashPartitioner,
        IngestError, IngestFormat, IngestSource, IterSource, MatcherKind, MaxMargin, NearestDriver,
        RandomDispatch, RegionPartitioner, ServeConfig, ServeDaemon, ServeOutcome, ServeReport,
        ServeStop, ShardOptions, ShardPolicySpec, ShardedStreamEngine, SimulationOptions,
        Simulator, StreamEngine, StreamEvent, StreamOptions, StreamPolicy, StreamSink,
        StreamSummary, TcpSource,
    };
    pub use rideshare_pricing::{FareModel, SurgeConfig, SurgeEngine, WtpModel};
    pub use rideshare_trace::{
        DriverModel, DriverShift, Trace, TraceConfig, TraceStream, TripRecord,
    };
    pub use rideshare_tsdb::{
        run_query, Agg, LabelFilter, RangeQuery, RunLabels, TsdbRecorder, TsdbStore,
    };
    pub use rideshare_types::{
        ConfigError, DriverId, Money, OrchestrateError, TaskId, TimeDelta, Timestamp,
    };
}
