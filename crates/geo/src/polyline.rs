//! GPS trajectory polylines.
//!
//! The ECML/PKDD-15 Porto dataset stores each trip as a *polyline*: GPS
//! fixes sampled every 15 seconds. The paper derives trip distance and
//! duration from these polylines; this module provides the same
//! representation so synthetic traces can carry full trajectories and the
//! derivation can be replicated (length = sum of fix-to-fix distances,
//! duration = (fixes − 1) × 15 s).

use crate::GeoPoint;

/// The Porto dataset's GPS sampling period, in seconds.
pub const GPS_SAMPLE_SECS: i64 = 15;

/// A GPS trajectory: an ordered list of fixes.
///
/// # Examples
///
/// ```
/// use rideshare_geo::{GeoPoint, Polyline};
/// let a = GeoPoint::new(41.15, -8.61);
/// let line = Polyline::new(vec![a, a.offset_km(0.0, 1.0), a.offset_km(0.0, 2.0)]);
/// assert!((line.length_km() - 2.0).abs() < 0.01);
/// assert_eq!(line.duration_secs(), 30); // 3 fixes → 2 intervals
/// ```
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Polyline {
    fixes: Vec<GeoPoint>,
}

impl Polyline {
    /// Creates a polyline from GPS fixes.
    #[must_use]
    pub fn new(fixes: Vec<GeoPoint>) -> Self {
        Self { fixes }
    }

    /// The fixes in order.
    #[must_use]
    pub fn fixes(&self) -> &[GeoPoint] {
        &self.fixes
    }

    /// Number of fixes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.fixes.len()
    }

    /// `true` when the polyline has no fixes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fixes.is_empty()
    }

    /// The first fix (trip origin), if any.
    #[must_use]
    pub fn start(&self) -> Option<GeoPoint> {
        self.fixes.first().copied()
    }

    /// The last fix (trip destination), if any.
    #[must_use]
    pub fn end(&self) -> Option<GeoPoint> {
        self.fixes.last().copied()
    }

    /// Total path length: the sum of consecutive fix-to-fix great-circle
    /// distances, in kilometres (the dataset's distance derivation).
    #[must_use]
    pub fn length_km(&self) -> f64 {
        self.fixes.windows(2).map(|w| w[0].haversine_km(w[1])).sum()
    }

    /// Trip duration implied by the 15-second sampling:
    /// `(fixes − 1) × 15 s` (the dataset's duration derivation).
    #[must_use]
    pub fn duration_secs(&self) -> i64 {
        (self.fixes.len().saturating_sub(1) as i64) * GPS_SAMPLE_SECS
    }

    /// Straight-line origin→destination distance, in kilometres; the ratio
    /// `length_km / crow_km` is the trip's empirical detour factor.
    #[must_use]
    pub fn crow_km(&self) -> f64 {
        match (self.start(), self.end()) {
            (Some(a), Some(b)) => a.haversine_km(b),
            _ => 0.0,
        }
    }

    /// Linear interpolation along the path: `frac ∈ [0, 1]` maps to the
    /// point that fraction of the *length* along the polyline.
    ///
    /// Returns `None` for polylines with fewer than one fix.
    #[must_use]
    pub fn point_at(&self, frac: f64) -> Option<GeoPoint> {
        if self.fixes.is_empty() {
            return None;
        }
        if self.fixes.len() == 1 {
            return Some(self.fixes[0]);
        }
        let frac = frac.clamp(0.0, 1.0);
        let total = self.length_km();
        if total == 0.0 {
            return Some(self.fixes[0]);
        }
        let mut remaining = frac * total;
        for w in self.fixes.windows(2) {
            let seg = w[0].haversine_km(w[1]);
            if remaining <= seg {
                let t = if seg == 0.0 { 0.0 } else { remaining / seg };
                return Some(GeoPoint::new(
                    w[0].lat() + (w[1].lat() - w[0].lat()) * t,
                    w[0].lon() + (w[1].lon() - w[0].lon()) * t,
                ));
            }
            remaining -= seg;
        }
        self.end()
    }

    /// Synthesises a plausible trajectory from `from` to `to` with the
    /// dataset's sampling: `n_fixes` points along a gently curved path
    /// (quadratic bend of `bend_km` at the midpoint, emulating road
    /// detours).
    ///
    /// # Panics
    ///
    /// Panics if `n_fixes < 2`.
    #[must_use]
    pub fn synthesize(from: GeoPoint, to: GeoPoint, n_fixes: usize, bend_km: f64) -> Self {
        assert!(n_fixes >= 2, "a trajectory needs at least two fixes");
        // Perpendicular bend direction (rotate the segment by 90°).
        let dlat = to.lat() - from.lat();
        let dlon = to.lon() - from.lon();
        let norm = (dlat * dlat + dlon * dlon).sqrt().max(1e-12);
        let (perp_lat, perp_lon) = (-dlon / norm, dlat / norm);
        // Degrees per km at this latitude (approximate, fine at city scale).
        let deg_per_km = 1.0 / 111.0;

        let fixes = (0..n_fixes)
            .map(|i| {
                let t = i as f64 / (n_fixes - 1) as f64;
                // Quadratic bump peaking at the midpoint.
                let bump = 4.0 * t * (1.0 - t) * bend_km * deg_per_km;
                GeoPoint::new(
                    from.lat() + dlat * t + perp_lat * bump,
                    from.lon() + dlon * t + perp_lon * bump,
                )
            })
            .collect();
        Self { fixes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> GeoPoint {
        GeoPoint::new(41.15, -8.61)
    }

    #[test]
    fn straight_line_length_and_duration() {
        let line = Polyline::new(vec![
            base(),
            base().offset_km(0.0, 1.0),
            base().offset_km(0.0, 2.0),
            base().offset_km(0.0, 3.0),
        ]);
        assert!((line.length_km() - 3.0).abs() < 0.01);
        assert_eq!(line.duration_secs(), 45);
        assert!((line.crow_km() - 3.0).abs() < 0.01);
        assert_eq!(line.len(), 4);
    }

    #[test]
    fn empty_and_singleton() {
        let empty = Polyline::default();
        assert!(empty.is_empty());
        assert_eq!(empty.length_km(), 0.0);
        assert_eq!(empty.duration_secs(), 0);
        assert!(empty.point_at(0.5).is_none());

        let single = Polyline::new(vec![base()]);
        assert_eq!(single.duration_secs(), 0);
        assert_eq!(single.point_at(0.7), Some(base()));
    }

    #[test]
    fn point_at_endpoints_and_midpoint() {
        let line = Polyline::new(vec![base(), base().offset_km(0.0, 2.0)]);
        let start = line.point_at(0.0).unwrap();
        let end = line.point_at(1.0).unwrap();
        assert!(start.haversine_km(base()) < 1e-6);
        assert!(end.haversine_km(base().offset_km(0.0, 2.0)) < 1e-6);
        let mid = line.point_at(0.5).unwrap();
        assert!((mid.haversine_km(base()) - 1.0).abs() < 0.01);
        // Clamping.
        assert_eq!(line.point_at(-1.0).unwrap(), start);
    }

    #[test]
    fn synthesized_trajectory_connects_endpoints_with_detour() {
        let from = base();
        let to = base().offset_km(0.0, 5.0);
        let line = Polyline::synthesize(from, to, 21, 0.8);
        assert_eq!(line.len(), 21);
        assert!(line.start().unwrap().haversine_km(from) < 1e-6);
        assert!(line.end().unwrap().haversine_km(to) < 1e-6);
        // The bend makes the path measurably longer than the crow flies.
        assert!(line.length_km() > line.crow_km() * 1.01);
        assert_eq!(line.duration_secs(), 20 * GPS_SAMPLE_SECS);
    }

    #[test]
    fn zero_bend_is_straight() {
        let from = base();
        let to = base().offset_km(3.0, 4.0);
        let line = Polyline::synthesize(from, to, 10, 0.0);
        assert!((line.length_km() - line.crow_km()).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "two fixes")]
    fn synthesize_needs_two_fixes() {
        let _ = Polyline::synthesize(base(), base(), 1, 0.0);
    }
}
