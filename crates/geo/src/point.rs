//! Latitude/longitude points and distance computations.

use core::fmt;

/// Mean Earth radius in kilometres (IUGG value).
pub(crate) const EARTH_RADIUS_KM: f64 = 6371.0088;

/// A geographic point: latitude and longitude in decimal degrees.
///
/// This is the paper's location tuple `(u, v)` where `u` is latitude and `v`
/// is longitude (§III-A).
///
/// # Examples
///
/// ```
/// use rideshare_geo::GeoPoint;
/// let p = GeoPoint::new(41.15, -8.61);
/// assert_eq!(p.lat(), 41.15);
/// assert_eq!(p.lon(), -8.61);
/// assert_eq!(p.haversine_km(p), 0.0);
/// ```
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct GeoPoint {
    lat: f64,
    lon: f64,
}

impl GeoPoint {
    /// Creates a point from latitude and longitude in decimal degrees.
    ///
    /// Latitude is clamped to `[-90, 90]`; longitude is normalised to
    /// `(-180, 180]`.
    #[must_use]
    pub fn new(lat: f64, lon: f64) -> Self {
        let lat = lat.clamp(-90.0, 90.0);
        // Only renormalise out-of-range longitudes: the wrap-around formula
        // is not an exact identity in floating point, and in-range inputs
        // must round-trip bit-for-bit.
        let lon = if lon > -180.0 && lon <= 180.0 {
            lon
        } else {
            let wrapped = (lon + 180.0).rem_euclid(360.0) - 180.0;
            if wrapped == -180.0 {
                180.0
            } else {
                wrapped
            }
        };
        Self { lat, lon }
    }

    /// Returns the latitude in decimal degrees.
    #[must_use]
    pub const fn lat(self) -> f64 {
        self.lat
    }

    /// Returns the longitude in decimal degrees.
    #[must_use]
    pub const fn lon(self) -> f64 {
        self.lon
    }

    /// Great-circle distance to `other` in kilometres (haversine formula).
    ///
    /// Exact on the spherical Earth model; use
    /// [`GeoPoint::equirectangular_km`] in hot loops over a city-scale area.
    #[must_use]
    pub fn haversine_km(self, other: GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().min(1.0).asin()
    }

    /// Equirectangular-projection distance to `other` in kilometres.
    ///
    /// Within a city-scale bounding box (tens of km) this is within a small
    /// fraction of a percent of the haversine distance and roughly 3× faster,
    /// which matters inside the `O(NM²)` task-map construction.
    #[must_use]
    pub fn equirectangular_km(self, other: GeoPoint) -> f64 {
        let mean_lat = ((self.lat + other.lat) / 2.0).to_radians();
        let dx = (other.lon - self.lon).to_radians() * mean_lat.cos();
        let dy = (other.lat - self.lat).to_radians();
        EARTH_RADIUS_KM * (dx * dx + dy * dy).sqrt()
    }

    /// Returns the midpoint with `other` using simple coordinate averaging
    /// (adequate at city scale; not meridian-crossing safe).
    #[must_use]
    pub fn midpoint(self, other: GeoPoint) -> GeoPoint {
        GeoPoint::new((self.lat + other.lat) / 2.0, (self.lon + other.lon) / 2.0)
    }

    /// Moves the point by the given kilometre offsets (north, east).
    ///
    /// Useful for constructing synthetic instances with precise geometry.
    #[must_use]
    pub fn offset_km(self, north_km: f64, east_km: f64) -> GeoPoint {
        let dlat = north_km / EARTH_RADIUS_KM * (180.0 / core::f64::consts::PI);
        let dlon = east_km / (EARTH_RADIUS_KM * self.lat.to_radians().cos())
            * (180.0 / core::f64::consts::PI);
        GeoPoint::new(self.lat + dlat, self.lon + dlon)
    }
}

impl fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.5}, {:.5})", self.lat, self.lon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn porto_downtown() -> GeoPoint {
        GeoPoint::new(41.1496, -8.6109)
    }

    #[test]
    fn normalisation() {
        let p = GeoPoint::new(95.0, 190.0);
        assert_eq!(p.lat(), 90.0);
        assert_eq!(p.lon(), -170.0);
        let q = GeoPoint::new(0.0, -180.0);
        assert_eq!(q.lon(), 180.0);
    }

    #[test]
    fn haversine_known_distance() {
        // Porto -> Lisbon is roughly 274 km great-circle.
        let porto = GeoPoint::new(41.1496, -8.6109);
        let lisbon = GeoPoint::new(38.7223, -9.1393);
        let d = porto.haversine_km(lisbon);
        assert!((270.0..280.0).contains(&d), "got {d}");
    }

    #[test]
    fn haversine_is_symmetric_and_zero_on_self() {
        let a = porto_downtown();
        let b = GeoPoint::new(41.2, -8.7);
        assert!((a.haversine_km(b) - b.haversine_km(a)).abs() < 1e-12);
        assert_eq!(a.haversine_km(a), 0.0);
    }

    #[test]
    fn equirectangular_close_to_haversine_at_city_scale() {
        let a = porto_downtown();
        let b = GeoPoint::new(41.20, -8.55);
        let h = a.haversine_km(b);
        let e = a.equirectangular_km(b);
        assert!((h - e).abs() / h < 1e-3, "haversine {h} vs equirect {e}");
    }

    #[test]
    fn offset_km_round_trip() {
        let a = porto_downtown();
        let b = a.offset_km(3.0, 4.0);
        let d = a.haversine_km(b);
        assert!((d - 5.0).abs() < 0.01, "expected ~5 km, got {d}");
    }

    #[test]
    fn midpoint_average() {
        let a = GeoPoint::new(41.0, -8.0);
        let b = GeoPoint::new(42.0, -9.0);
        let m = a.midpoint(b);
        assert!((m.lat() - 41.5).abs() < 1e-12);
        assert!((m.lon() + 8.5).abs() < 1e-12);
    }

    #[test]
    fn display_format() {
        assert_eq!(
            GeoPoint::new(41.1, -8.6).to_string(),
            "(41.10000, -8.60000)"
        );
    }
}
