//! Speed and cost models: distances → travel times and monetary costs.

use rideshare_types::{Money, TimeDelta};

use crate::GeoPoint;

/// Converts straight-line distances into travel times and travel costs.
///
/// The paper's §V-A estimates arrival times by "the estimated distance
/// divided by the average speed of the driver", and §VI-A estimates the cost
/// of each trip as distance × unit gasoline price. Real road networks are
/// longer than great circles, so a *detour factor* scales the straight-line
/// distance into an effective driven distance first.
///
/// # Examples
///
/// ```
/// use rideshare_geo::{GeoPoint, SpeedModel};
/// let model = SpeedModel::new(30.0, 1.3, 0.12);
/// let a = GeoPoint::new(41.15, -8.61);
/// let b = a.offset_km(0.0, 10.0); // 10 km due east
/// // 10 km * 1.3 detour = 13 km driven, at 30 km/h = 26 min.
/// let eta = model.travel_time(a, b);
/// assert!((eta.as_mins_f64() - 26.0).abs() < 0.5);
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SpeedModel {
    speed_kmh: f64,
    detour_factor: f64,
    cost_per_km: f64,
}

impl SpeedModel {
    /// Creates a speed model.
    ///
    /// # Panics
    ///
    /// Panics if `speed_kmh` is not strictly positive, if `detour_factor`
    /// is below 1, or if `cost_per_km` is negative.
    #[must_use]
    pub fn new(speed_kmh: f64, detour_factor: f64, cost_per_km: f64) -> Self {
        assert!(speed_kmh > 0.0, "speed must be positive, got {speed_kmh}");
        assert!(
            detour_factor >= 1.0,
            "detour factor must be >= 1, got {detour_factor}"
        );
        assert!(
            cost_per_km >= 0.0,
            "cost per km must be non-negative, got {cost_per_km}"
        );
        Self {
            speed_kmh,
            detour_factor,
            cost_per_km,
        }
    }

    /// A typical urban profile: 25 km/h average speed, 1.35 road detour
    /// factor, €0.12/km fuel cost — consistent with the Porto taxi trace's
    /// median trip (≈ 6–8 minutes over ≈ 2–3 km).
    #[must_use]
    pub fn urban() -> Self {
        Self::new(25.0, 1.35, 0.12)
    }

    /// Average driving speed in km/h.
    #[must_use]
    pub const fn speed_kmh(&self) -> f64 {
        self.speed_kmh
    }

    /// Multiplier from straight-line to driven distance.
    #[must_use]
    pub const fn detour_factor(&self) -> f64 {
        self.detour_factor
    }

    /// Fuel/operating cost per driven kilometre, in currency units.
    #[must_use]
    pub const fn cost_per_km(&self) -> f64 {
        self.cost_per_km
    }

    /// Effective driven distance between two points, in kilometres.
    #[must_use]
    pub fn driven_km(&self, from: GeoPoint, to: GeoPoint) -> f64 {
        from.equirectangular_km(to) * self.detour_factor
    }

    /// Estimated travel time between two points (the paper's `l` values).
    #[must_use]
    pub fn travel_time(&self, from: GeoPoint, to: GeoPoint) -> TimeDelta {
        self.travel_time_for_km(self.driven_km(from, to))
    }

    /// Travel time for an already-known driven distance.
    #[must_use]
    pub fn travel_time_for_km(&self, driven_km: f64) -> TimeDelta {
        TimeDelta::from_secs_f64(driven_km / self.speed_kmh * 3600.0)
    }

    /// Estimated travel cost between two points (the paper's `c` values).
    #[must_use]
    pub fn travel_cost(&self, from: GeoPoint, to: GeoPoint) -> Money {
        self.cost_for_km(self.driven_km(from, to))
    }

    /// Travel cost for an already-known driven distance.
    #[must_use]
    pub fn cost_for_km(&self, driven_km: f64) -> Money {
        Money::new(driven_km * self.cost_per_km)
    }

    /// Distance (km) coverable within `delta` — the reachability radius used
    /// by candidate-set queries in the online simulator.
    #[must_use]
    pub fn reachable_km(&self, delta: TimeDelta) -> f64 {
        if delta.is_negative() {
            return 0.0;
        }
        delta.as_hours_f64() * self.speed_kmh / self.detour_factor
    }
}

impl Default for SpeedModel {
    fn default() -> Self {
        Self::urban()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn travel_time_matches_speed() {
        let m = SpeedModel::new(60.0, 1.0, 0.1);
        let a = GeoPoint::new(41.0, -8.6);
        let b = a.offset_km(0.0, 30.0);
        let t = m.travel_time(a, b);
        // 30 km at 60 km/h = 30 minutes.
        assert!((t.as_mins_f64() - 30.0).abs() < 0.2, "{t}");
    }

    #[test]
    fn detour_scales_time_and_cost() {
        let base = SpeedModel::new(30.0, 1.0, 0.10);
        let detour = SpeedModel::new(30.0, 1.5, 0.10);
        let a = GeoPoint::new(41.0, -8.6);
        let b = a.offset_km(5.0, 0.0);
        let ratio =
            detour.travel_time(a, b).as_secs() as f64 / base.travel_time(a, b).as_secs() as f64;
        assert!((ratio - 1.5).abs() < 0.01);
        assert!(detour
            .travel_cost(a, b)
            .approx_eq(base.travel_cost(a, b) * 1.5));
    }

    #[test]
    fn zero_distance_is_free_and_instant() {
        let m = SpeedModel::urban();
        let a = GeoPoint::new(41.1, -8.6);
        assert_eq!(m.travel_time(a, a), TimeDelta::ZERO);
        assert!(m.travel_cost(a, a).approx_eq(Money::ZERO));
    }

    #[test]
    fn reachable_km_inverse_of_travel_time() {
        let m = SpeedModel::urban();
        let km = m.reachable_km(TimeDelta::from_mins(30));
        let t = m.travel_time_for_km(km * m.detour_factor());
        assert!((t.as_mins_f64() - 30.0).abs() < 0.1);
        assert_eq!(m.reachable_km(TimeDelta::from_secs(-5)), 0.0);
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn rejects_zero_speed() {
        let _ = SpeedModel::new(0.0, 1.0, 0.1);
    }

    #[test]
    #[should_panic(expected = "detour factor")]
    fn rejects_sub_unit_detour() {
        let _ = SpeedModel::new(10.0, 0.9, 0.1);
    }
}
