//! Geospatial substrate for the ride-sharing market framework.
//!
//! The paper estimates travel times as "the estimated distance divided by the
//! average speed of the driver" (§V-A) over latitude/longitude tuples
//! `(u, v)`. This crate provides exactly that substrate:
//!
//! - [`GeoPoint`]: a `(latitude, longitude)` pair in degrees,
//! - great-circle distances ([`GeoPoint::haversine_km`]) and the cheaper
//!   equirectangular approximation used in hot loops,
//! - [`BoundingBox`]: rectangular city regions with uniform sampling support,
//! - [`SpeedModel`]: converts distances to travel times and travel costs
//!   (gasoline cost per km, per the paper's §VI-A cost estimate),
//! - [`GridIndex`]: a uniform spatial hash over a bounding box for fast
//!   nearest-driver candidate queries in the online simulator,
//! - [`porto`]: the Porto, Portugal city model matching the ECML/PKDD-15
//!   trace used by the paper's evaluation.
//!
//! # Examples
//!
//! ```
//! use rideshare_geo::{GeoPoint, SpeedModel};
//!
//! let ribeira = GeoPoint::new(41.1407, -8.6110);
//! let airport = GeoPoint::new(41.2481, -8.6814);
//! let km = ribeira.haversine_km(airport);
//! assert!((11.0..14.5).contains(&km));
//!
//! let speed = SpeedModel::urban();
//! let eta = speed.travel_time(ribeira, airport);
//! assert!(eta.as_mins_f64() > 10.0);
//! ```

// Lint levels (unsafe_code, missing_docs) come from [workspace.lints].

mod bbox;
mod grid;
mod point;
mod polyline;
pub mod porto;
mod speed;

pub use bbox::BoundingBox;
pub use grid::{CellId, GridIndex};
pub use point::GeoPoint;
pub use polyline::{Polyline, GPS_SAMPLE_SECS};
pub use speed::SpeedModel;
