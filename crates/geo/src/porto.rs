//! City model of Porto, Portugal — the city of the ECML/PKDD-15 taxi trace
//! used in the paper's evaluation (§VI-A).
//!
//! The constants here describe the metropolitan service area of the 442
//! Porto taxis in the original dataset. They calibrate the synthetic trace
//! generator (`rideshare-trace`) so that trip lengths, durations, and the
//! spatial density of demand reproduce the trace's published marginals.

use crate::{BoundingBox, GeoPoint};

/// Number of taxis in the ECML/PKDD-15 Porto trace.
pub const TRACE_TAXI_COUNT: usize = 442;

/// Approximate number of trips in the one-year trace ("more than one
/// million trip records", §VI-A).
pub const TRACE_TRIP_COUNT: usize = 1_700_000;

/// Bounding box of the Porto metropolitan service area.
///
/// Spans roughly 33 km west–east and 33 km south–north, covering Porto, Vila
/// Nova de Gaia, Matosinhos, and the airport corridor.
#[must_use]
pub fn bounding_box() -> BoundingBox {
    BoundingBox::new(41.05, 41.35, -8.80, -8.40)
}

/// City centre (Avenida dos Aliados).
#[must_use]
pub fn center() -> GeoPoint {
    GeoPoint::new(41.1496, -8.6109)
}

/// Francisco Sá Carneiro Airport — a persistent demand hotspot.
#[must_use]
pub fn airport() -> GeoPoint {
    GeoPoint::new(41.2481, -8.6814)
}

/// Campanhã railway station — the trace's single busiest pickup stand.
#[must_use]
pub fn campanha_station() -> GeoPoint {
    GeoPoint::new(41.1496, -8.5856)
}

/// Demand hotspots with relative weights, used by the trace generator's
/// spatial mixture model: most pickups cluster downtown, with secondary
/// mass at the station and the airport.
#[must_use]
pub fn demand_hotspots() -> Vec<(GeoPoint, f64)> {
    vec![
        (center(), 0.45),
        (campanha_station(), 0.20),
        (airport(), 0.10),
        (GeoPoint::new(41.1621, -8.6220), 0.15), // Boavista
        (GeoPoint::new(41.1230, -8.6120), 0.10), // Gaia riverside
    ]
}

/// Typical hotspot dispersion (standard deviation of the Gaussian cloud
/// around each hotspot), in kilometres.
pub const HOTSPOT_SIGMA_KM: f64 = 1.8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn landmarks_inside_bounding_box() {
        let bbox = bounding_box();
        assert!(bbox.contains(center()));
        assert!(bbox.contains(airport()));
        assert!(bbox.contains(campanha_station()));
    }

    #[test]
    fn bounding_box_is_city_scale() {
        let bbox = bounding_box();
        assert!(
            (25.0..45.0).contains(&bbox.width_km()),
            "{}",
            bbox.width_km()
        );
        assert!(
            (25.0..45.0).contains(&bbox.height_km()),
            "{}",
            bbox.height_km()
        );
    }

    #[test]
    fn hotspot_weights_sum_to_one() {
        let total: f64 = demand_hotspots().iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for (p, w) in demand_hotspots() {
            assert!(bounding_box().contains(p));
            assert!(w > 0.0);
        }
    }

    #[test]
    fn airport_is_not_downtown() {
        assert!(center().haversine_km(airport()) > 8.0);
    }
}
