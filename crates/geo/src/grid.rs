//! A uniform spatial grid index over a bounding box.
//!
//! The online dispatcher repeatedly asks "which drivers are within reach of
//! this pickup point?". A linear scan is `O(N)` per query; the grid cuts this
//! to the drivers in nearby cells. The surge-pricing engine reuses the same
//! cells as its supply/demand aggregation regions ("a given geographic
//! area", §III-A).

use crate::{BoundingBox, GeoPoint};

/// Identifier of a grid cell: `(row, col)` indices.
///
/// # Examples
///
/// ```
/// use rideshare_geo::CellId;
/// let c = CellId::new(2, 3);
/// assert_eq!((c.row(), c.col()), (2, 3));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CellId {
    row: u16,
    col: u16,
}

impl CellId {
    /// Creates a cell id from row (latitude axis) and column (longitude
    /// axis) indices.
    #[must_use]
    pub const fn new(row: u16, col: u16) -> Self {
        Self { row, col }
    }

    /// Row index (south → north).
    #[must_use]
    pub const fn row(self) -> u16 {
        self.row
    }

    /// Column index (west → east).
    #[must_use]
    pub const fn col(self) -> u16 {
        self.col
    }
}

/// A uniform grid over a [`BoundingBox`] storing ids of type `T` per cell.
///
/// `T` is any small copyable id (driver index, task index). Out-of-box points
/// are clamped to the nearest boundary cell, so every point maps to a valid
/// cell.
///
/// # Examples
///
/// ```
/// use rideshare_geo::{BoundingBox, GeoPoint, GridIndex};
/// let bbox = BoundingBox::new(41.0, 41.3, -8.8, -8.4);
/// let mut grid: GridIndex<u32> = GridIndex::new(bbox, 8, 8);
/// let p = GeoPoint::new(41.15, -8.6);
/// grid.insert(p, 7);
/// let near: Vec<u32> = grid.query_radius(p, 1.0).collect();
/// assert_eq!(near, vec![7]);
/// ```
#[derive(Clone, Debug)]
pub struct GridIndex<T> {
    bbox: BoundingBox,
    rows: u16,
    cols: u16,
    cells: Vec<Vec<(GeoPoint, T)>>,
    len: usize,
}

impl<T: Copy + PartialEq> GridIndex<T> {
    /// Creates an empty grid with `rows × cols` cells over `bbox`.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    #[must_use]
    pub fn new(bbox: BoundingBox, rows: u16, cols: u16) -> Self {
        assert!(rows > 0 && cols > 0, "grid must have at least one cell");
        Self {
            bbox,
            rows,
            cols,
            cells: vec![Vec::new(); rows as usize * cols as usize],
            len: 0,
        }
    }

    /// Number of stored entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the grid stores no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bounding box this grid covers.
    #[must_use]
    pub fn bounding_box(&self) -> BoundingBox {
        self.bbox
    }

    /// Number of rows (latitude axis).
    #[must_use]
    pub const fn rows(&self) -> u16 {
        self.rows
    }

    /// Number of columns (longitude axis).
    #[must_use]
    pub const fn cols(&self) -> u16 {
        self.cols
    }

    /// Maps a point to its cell id (out-of-box points clamp to the border).
    #[must_use]
    pub fn cell_of(&self, point: GeoPoint) -> CellId {
        let u = (point.lat() - self.bbox.min_lat())
            / (self.bbox.max_lat() - self.bbox.min_lat()).max(f64::MIN_POSITIVE);
        let v = (point.lon() - self.bbox.min_lon())
            / (self.bbox.max_lon() - self.bbox.min_lon()).max(f64::MIN_POSITIVE);
        let row = ((u * f64::from(self.rows)).floor() as i64).clamp(0, i64::from(self.rows) - 1);
        let col = ((v * f64::from(self.cols)).floor() as i64).clamp(0, i64::from(self.cols) - 1);
        CellId::new(row as u16, col as u16)
    }

    fn cell_index(&self, cell: CellId) -> usize {
        cell.row() as usize * self.cols as usize + cell.col() as usize
    }

    /// Inserts an entry at `point`.
    pub fn insert(&mut self, point: GeoPoint, id: T) {
        let idx = self.cell_index(self.cell_of(point));
        self.cells[idx].push((point, id));
        self.len += 1;
    }

    /// Removes the entry with the given id at (or near) `point`.
    ///
    /// Returns `true` if an entry was removed. The point must map to the
    /// same cell it was inserted into.
    pub fn remove(&mut self, point: GeoPoint, id: T) -> bool {
        let idx = self.cell_index(self.cell_of(point));
        let cell = &mut self.cells[idx];
        if let Some(pos) = cell.iter().position(|(_, e)| *e == id) {
            cell.swap_remove(pos);
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Moves an entry from `old_point` to `new_point`.
    ///
    /// Returns `true` if the entry was found and moved.
    pub fn relocate(&mut self, old_point: GeoPoint, new_point: GeoPoint, id: T) -> bool {
        if self.remove(old_point, id) {
            self.insert(new_point, id);
            true
        } else {
            false
        }
    }

    /// All `(point, id)` entries in the cells intersecting the `radius_km`
    /// box around `center`.
    fn entries_near(
        &self,
        center: GeoPoint,
        radius_km: f64,
    ) -> impl Iterator<Item = &(GeoPoint, T)> + '_ {
        self.cells_near(center, radius_km)
            .flat_map(|(_, entries)| entries.iter())
    }

    /// The cells intersecting the `radius_km` box around `center`, as
    /// `(slot, entries)` pairs, where `slot` is the cell's dense linear
    /// index (`row * cols + col`, the same for the life of the grid).
    ///
    /// This is the cell-granular face of [`GridIndex::query_radius_coarse`]:
    /// callers that keep per-cell side tables (e.g. an availability floor
    /// per cell, letting a dispatcher skip a whole cell with one compare)
    /// index them by `slot` and decide per cell whether to scan `entries`.
    pub fn cells_near(
        &self,
        center: GeoPoint,
        radius_km: f64,
    ) -> impl Iterator<Item = (usize, &[(GeoPoint, T)])> + '_ {
        let cell_h_km = self.bbox.height_km() / f64::from(self.rows);
        let cell_w_km = self.bbox.width_km() / f64::from(self.cols);
        let row_span = if cell_h_km > 0.0 {
            (radius_km / cell_h_km).ceil() as i64 + 1
        } else {
            i64::from(self.rows)
        };
        let col_span = if cell_w_km > 0.0 {
            (radius_km / cell_w_km).ceil() as i64 + 1
        } else {
            i64::from(self.cols)
        };
        let c = self.cell_of(center);
        let row_lo = (i64::from(c.row()) - row_span).max(0) as u16;
        let row_hi = (i64::from(c.row()) + row_span).min(i64::from(self.rows) - 1) as u16;
        let col_lo = (i64::from(c.col()) - col_span).max(0) as u16;
        let col_hi = (i64::from(c.col()) + col_span).min(i64::from(self.cols) - 1) as u16;

        (row_lo..=row_hi)
            .flat_map(move |r| (col_lo..=col_hi).map(move |col| CellId::new(r, col)))
            .map(move |cell| {
                let slot = self.cell_index(cell);
                (slot, self.cells[slot].as_slice())
            })
    }

    /// Total number of cell slots (`rows * cols`); the exclusive upper
    /// bound of every `slot` yielded by [`GridIndex::cells_near`].
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.rows as usize * self.cols as usize
    }

    /// The dense slot of the cell containing `point` (out-of-box points
    /// clamp to the border, as in [`GridIndex::cell_of`]).
    #[must_use]
    pub fn slot_of(&self, point: GeoPoint) -> usize {
        self.cell_index(self.cell_of(point))
    }

    /// The entries currently stored in cell `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= self.slot_count()`.
    #[must_use]
    pub fn slot_entries(&self, slot: usize) -> &[(GeoPoint, T)] {
        self.cells[slot].as_slice()
    }

    /// Iterates over all ids whose stored point lies within `radius_km`
    /// (haversine) of `center`.
    ///
    /// Only the cells overlapping the radius are scanned.
    pub fn query_radius(&self, center: GeoPoint, radius_km: f64) -> impl Iterator<Item = T> + '_ {
        self.entries_near(center, radius_km)
            .filter(move |(p, _)| p.haversine_km(center) <= radius_km)
            .map(|(_, id)| *id)
    }

    /// Iterates over all ids stored in cells that intersect the
    /// `radius_km` box around `center` — a cheap **superset** of
    /// [`GridIndex::query_radius`]: no per-entry distance filter is
    /// applied, so entries up to a cell-diagonal beyond the radius may be
    /// yielded.
    ///
    /// Use this when the caller re-checks candidates exactly anyway (the
    /// online dispatcher's feasibility predicate does): skipping the
    /// haversine filter here avoids computing every distance twice.
    pub fn query_radius_coarse(
        &self,
        center: GeoPoint,
        radius_km: f64,
    ) -> impl Iterator<Item = T> + '_ {
        self.entries_near(center, radius_km).map(|(_, id)| *id)
    }

    /// Number of entries currently stored in `cell`.
    #[must_use]
    pub fn cell_count(&self, cell: CellId) -> usize {
        self.cells[self.cell_index(cell)].len()
    }

    /// Iterates over every stored `(point, id)` pair.
    pub fn iter(&self) -> impl Iterator<Item = (GeoPoint, T)> + '_ {
        self.cells.iter().flatten().map(|(p, id)| (*p, *id))
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        for cell in &mut self.cells {
            cell.clear();
        }
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_grid() -> GridIndex<u32> {
        GridIndex::new(BoundingBox::new(41.0, 41.3, -8.8, -8.4), 10, 10)
    }

    #[test]
    fn insert_query_remove() {
        let mut g = test_grid();
        let p = GeoPoint::new(41.15, -8.6);
        g.insert(p, 1);
        g.insert(GeoPoint::new(41.16, -8.61), 2);
        g.insert(GeoPoint::new(41.29, -8.41), 3); // far away
        assert_eq!(g.len(), 3);

        let mut near: Vec<u32> = g.query_radius(p, 2.0).collect();
        near.sort_unstable();
        assert_eq!(near, vec![1, 2]);

        assert!(g.remove(p, 1));
        assert!(!g.remove(p, 1));
        assert_eq!(g.len(), 2);
        let near: Vec<u32> = g.query_radius(p, 2.0).collect();
        assert_eq!(near, vec![2]);
    }

    #[test]
    fn radius_zero_matches_exact_point_only() {
        let mut g = test_grid();
        let p = GeoPoint::new(41.2, -8.5);
        g.insert(p, 9);
        let hits: Vec<u32> = g.query_radius(p, 0.0).collect();
        assert_eq!(hits, vec![9]);
        let none: Vec<u32> = g.query_radius(GeoPoint::new(41.21, -8.5), 0.5).collect();
        assert!(none.is_empty());
    }

    #[test]
    fn out_of_box_points_clamp() {
        let mut g = test_grid();
        let outside = GeoPoint::new(40.0, -9.5);
        g.insert(outside, 4);
        assert_eq!(g.cell_of(outside), CellId::new(0, 0));
        assert_eq!(g.len(), 1);
        // Removal uses the same clamped cell.
        assert!(g.remove(outside, 4));
    }

    #[test]
    fn relocate_moves_entry() {
        let mut g = test_grid();
        let a = GeoPoint::new(41.05, -8.75);
        let b = GeoPoint::new(41.28, -8.42);
        g.insert(a, 5);
        assert!(g.relocate(a, b, 5));
        assert!(g.query_radius(a, 1.0).next().is_none());
        let hits: Vec<u32> = g.query_radius(b, 1.0).collect();
        assert_eq!(hits, vec![5]);
        assert!(!g.relocate(a, b, 99));
    }

    #[test]
    fn query_equals_linear_scan() {
        // The grid query must agree with a brute-force filter.
        let mut g = test_grid();
        let mut points = Vec::new();
        // Deterministic pseudo-random scatter.
        let mut state = 42u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for i in 0..200u32 {
            let p = GeoPoint::new(41.0 + 0.3 * next(), -8.8 + 0.4 * next());
            points.push((p, i));
            g.insert(p, i);
        }
        let center = GeoPoint::new(41.15, -8.6);
        for radius in [0.5, 1.0, 3.0, 10.0, 50.0] {
            let mut got: Vec<u32> = g.query_radius(center, radius).collect();
            got.sort_unstable();
            let mut want: Vec<u32> = points
                .iter()
                .filter(|(p, _)| p.haversine_km(center) <= radius)
                .map(|(_, i)| *i)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "radius {radius}");
        }
    }

    #[test]
    fn coarse_query_is_a_superset() {
        let mut g = test_grid();
        let mut state = 7u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for i in 0..200u32 {
            g.insert(GeoPoint::new(41.0 + 0.3 * next(), -8.8 + 0.4 * next()), i);
        }
        let center = GeoPoint::new(41.15, -8.6);
        for radius in [0.5, 1.0, 3.0, 10.0, 50.0] {
            let coarse: Vec<u32> = g.query_radius_coarse(center, radius).collect();
            for id in g.query_radius(center, radius) {
                assert!(coarse.contains(&id), "radius {radius}: {id} missing");
            }
        }
    }

    #[test]
    fn clear_and_iter() {
        let mut g = test_grid();
        g.insert(GeoPoint::new(41.1, -8.6), 1);
        g.insert(GeoPoint::new(41.2, -8.5), 2);
        assert_eq!(g.iter().count(), 2);
        g.clear();
        assert!(g.is_empty());
        assert_eq!(g.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_cells_rejected() {
        let _: GridIndex<u32> = GridIndex::new(BoundingBox::new(0.0, 1.0, 0.0, 1.0), 0, 4);
    }
}
