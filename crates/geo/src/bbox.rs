//! Rectangular geographic regions.

use crate::GeoPoint;

/// An axis-aligned latitude/longitude bounding box.
///
/// Used to describe the service area of a city (the paper partitions the
/// market "in city's scale", §I) and to sample uniform random locations for
/// the Monte-Carlo driver generation of §VI-A.
///
/// # Examples
///
/// ```
/// use rideshare_geo::{BoundingBox, GeoPoint};
/// let porto = rideshare_geo::porto::bounding_box();
/// assert!(porto.contains(GeoPoint::new(41.15, -8.61)));
/// assert!(!porto.contains(GeoPoint::new(38.72, -9.14))); // Lisbon
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct BoundingBox {
    min_lat: f64,
    max_lat: f64,
    min_lon: f64,
    max_lon: f64,
}

impl BoundingBox {
    /// Creates a bounding box from corner coordinates.
    ///
    /// Coordinates are reordered if given in the wrong order, so the result
    /// always satisfies `min ≤ max` on both axes.
    #[must_use]
    pub fn new(lat_a: f64, lat_b: f64, lon_a: f64, lon_b: f64) -> Self {
        Self {
            min_lat: lat_a.min(lat_b),
            max_lat: lat_a.max(lat_b),
            min_lon: lon_a.min(lon_b),
            max_lon: lon_a.max(lon_b),
        }
    }

    /// Southern latitude bound in degrees.
    #[must_use]
    pub const fn min_lat(&self) -> f64 {
        self.min_lat
    }

    /// Northern latitude bound in degrees.
    #[must_use]
    pub const fn max_lat(&self) -> f64 {
        self.max_lat
    }

    /// Western longitude bound in degrees.
    #[must_use]
    pub const fn min_lon(&self) -> f64 {
        self.min_lon
    }

    /// Eastern longitude bound in degrees.
    #[must_use]
    pub const fn max_lon(&self) -> f64 {
        self.max_lon
    }

    /// Returns `true` if `point` lies inside the box (inclusive bounds).
    #[must_use]
    pub fn contains(&self, point: GeoPoint) -> bool {
        (self.min_lat..=self.max_lat).contains(&point.lat())
            && (self.min_lon..=self.max_lon).contains(&point.lon())
    }

    /// The geometric centre of the box.
    #[must_use]
    pub fn center(&self) -> GeoPoint {
        GeoPoint::new(
            (self.min_lat + self.max_lat) / 2.0,
            (self.min_lon + self.max_lon) / 2.0,
        )
    }

    /// Interpolates a point inside the box from unit-square coordinates.
    ///
    /// `(0, 0)` maps to the south-west corner, `(1, 1)` to the north-east
    /// corner. Inputs are clamped to `[0, 1]`, so any `f64` pair yields an
    /// in-box point; combined with an external RNG this provides the uniform
    /// Monte-Carlo location sampling of §VI-A without this crate depending
    /// on a specific RNG.
    #[must_use]
    pub fn lerp(&self, u: f64, v: f64) -> GeoPoint {
        let u = u.clamp(0.0, 1.0);
        let v = v.clamp(0.0, 1.0);
        GeoPoint::new(
            self.min_lat + u * (self.max_lat - self.min_lat),
            self.min_lon + v * (self.max_lon - self.min_lon),
        )
    }

    /// Width of the box in kilometres, measured along its central latitude.
    #[must_use]
    pub fn width_km(&self) -> f64 {
        let c = self.center();
        GeoPoint::new(c.lat(), self.min_lon).haversine_km(GeoPoint::new(c.lat(), self.max_lon))
    }

    /// Height of the box in kilometres, measured along its central longitude.
    #[must_use]
    pub fn height_km(&self) -> f64 {
        let c = self.center();
        GeoPoint::new(self.min_lat, c.lon()).haversine_km(GeoPoint::new(self.max_lat, c.lon()))
    }

    /// Diagonal (south-west to north-east) length in kilometres — an upper
    /// bound on any in-box trip distance.
    #[must_use]
    pub fn diagonal_km(&self) -> f64 {
        GeoPoint::new(self.min_lat, self.min_lon)
            .haversine_km(GeoPoint::new(self.max_lat, self.max_lon))
    }

    /// Expands the box by `margin_deg` degrees on every side.
    #[must_use]
    pub fn expanded(&self, margin_deg: f64) -> BoundingBox {
        BoundingBox::new(
            self.min_lat - margin_deg,
            self.max_lat + margin_deg,
            self.min_lon - margin_deg,
            self.max_lon + margin_deg,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_box() -> BoundingBox {
        BoundingBox::new(41.0, 41.3, -8.8, -8.4)
    }

    #[test]
    fn corner_reordering() {
        let b = BoundingBox::new(41.3, 41.0, -8.4, -8.8);
        assert_eq!(b.min_lat(), 41.0);
        assert_eq!(b.max_lat(), 41.3);
        assert_eq!(b.min_lon(), -8.8);
        assert_eq!(b.max_lon(), -8.4);
    }

    #[test]
    fn containment_inclusive() {
        let b = unit_box();
        assert!(b.contains(GeoPoint::new(41.0, -8.8)));
        assert!(b.contains(GeoPoint::new(41.3, -8.4)));
        assert!(b.contains(b.center()));
        assert!(!b.contains(GeoPoint::new(40.99, -8.6)));
        assert!(!b.contains(GeoPoint::new(41.1, -8.39)));
    }

    #[test]
    fn lerp_corners_and_clamping() {
        let b = unit_box();
        assert_eq!(b.lerp(0.0, 0.0), GeoPoint::new(41.0, -8.8));
        assert_eq!(b.lerp(1.0, 1.0), GeoPoint::new(41.3, -8.4));
        assert_eq!(b.lerp(-3.0, 9.0), GeoPoint::new(41.0, -8.4));
        assert!(b.contains(b.lerp(0.37, 0.92)));
    }

    #[test]
    fn dimensions_positive_and_consistent() {
        let b = unit_box();
        assert!(b.width_km() > 0.0);
        assert!(b.height_km() > 0.0);
        let diag = b.diagonal_km();
        assert!(diag > b.width_km().max(b.height_km()));
        assert!(diag < b.width_km() + b.height_km());
    }

    #[test]
    fn expansion_grows_box() {
        let b = unit_box().expanded(0.1);
        assert_eq!(b.min_lat(), 40.9);
        assert_eq!(b.max_lon(), -8.3);
        assert!(b.contains(GeoPoint::new(40.95, -8.35)));
    }
}
