//! Evaluation metrics and experiment output formatting (§VI).
//!
//! Computes the quantities the paper's evaluation plots:
//!
//! - the **performance ratio** of an algorithm against the LP upper bound
//!   `Z_f*` (or exact `Z*` at small scale) — Fig. 5,
//! - **total market revenue** — Fig. 6,
//! - **rate of served tasks** — Fig. 7,
//! - **average revenue per worker** — Fig. 8,
//! - **average tasks per worker** — Fig. 9,
//!
//! plus plain-text table/series rendering so experiment binaries can print
//! paper-comparable rows without a plotting dependency.
//!
//! # Examples
//!
//! ```
//! use rideshare_core::{solve_greedy, Market, MarketBuildOptions, Objective};
//! use rideshare_metrics::MarketMetrics;
//! use rideshare_trace::{DriverModel, TraceConfig};
//!
//! let trace = TraceConfig::porto()
//!     .with_seed(1)
//!     .with_task_count(100)
//!     .with_driver_count(10, DriverModel::Hitchhiking)
//!     .generate();
//! let market = Market::from_trace(&trace, &MarketBuildOptions::default());
//! let ga = solve_greedy(&market, Objective::Profit);
//! let m = MarketMetrics::of(&market, &ga.assignment);
//! assert!(m.served_rate <= 1.0);
//! assert!(m.avg_tasks_per_worker >= 0.0);
//! ```

// Lint levels (unsafe_code, missing_docs) come from [workspace.lints].

mod journal;
mod market_metrics;
mod stream_stats;
mod table;
mod timeseries;

pub use journal::MetricsJournal;
pub use market_metrics::MarketMetrics;
pub use stream_stats::{
    fixed_to_f64, SnapshotError, StreamBucket, StreamMetrics, FIXED_POINT_SCALE, SNAPSHOT_SCHEMA,
};
pub use table::{render_bars, render_pivot, render_series, render_table, Series};
pub use timeseries::{HourBucket, HourlyBreakdown};
