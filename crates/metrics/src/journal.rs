//! Day-partitioned metrics for the long-running dispatch daemon.
//!
//! A daemon that runs for weeks cannot report through one undifferentiated
//! accumulator: operators want *per-day* tables alongside the cumulative
//! ones, and the serve loop wants a metrics rollover at each day boundary.
//! [`MetricsJournal`] is a [`StreamSink`] that feeds every decision to
//! **two** [`StreamMetrics`] accumulators — the open day and the
//! cumulative run — so either view is exact at any instant:
//!
//! - the cumulative accumulator is literally a single whole-run
//!   [`StreamMetrics`], so it compares `==` (and snapshots
//!   byte-identically) to the accumulator a plain
//!   `rideshare_online::replay_stream` over the same trace would produce —
//!   day rollovers never perturb it;
//! - [`roll_day`](MetricsJournal::roll_day) closes the open day and
//!   returns it, starting a fresh accumulator that indexes the same fleet
//!   (driver slots carry over; see [`StreamMetrics::register_drivers`]),
//!   so per-driver tables stay aligned across days;
//! - because [`StreamMetrics::merge`] is exact, the closed days plus the
//!   open day always merge back to the cumulative accumulator `==` — the
//!   unit tests pin this conservation law.

use rideshare_core::{Driver, Task};
use rideshare_online::{DispatchEvent, StreamSink};
use rideshare_types::{TimeDelta, Timestamp};

use crate::StreamMetrics;

/// A [`StreamSink`] maintaining an open-day and a cumulative
/// [`StreamMetrics`] in lockstep. See the module docs.
#[derive(Clone, PartialEq, Debug)]
pub struct MetricsJournal {
    bucket_len: TimeDelta,
    cumulative: StreamMetrics,
    day: StreamMetrics,
    days_closed: usize,
}

impl MetricsJournal {
    /// A journal whose accumulators bucket by `bucket_len`.
    ///
    /// # Panics
    ///
    /// Panics unless `bucket_len` is strictly positive.
    #[must_use]
    pub fn with_bucket(bucket_len: TimeDelta) -> Self {
        Self {
            bucket_len,
            cumulative: StreamMetrics::with_bucket(bucket_len),
            day: StreamMetrics::with_bucket(bucket_len),
            days_closed: 0,
        }
    }

    /// The conventional hour-of-day journal.
    #[must_use]
    pub fn hourly() -> Self {
        Self::with_bucket(TimeDelta::from_hours(1))
    }

    /// The cumulative whole-run accumulator — exactly what a single
    /// [`StreamMetrics`] fed the same decisions would hold.
    #[must_use]
    pub fn cumulative(&self) -> &StreamMetrics {
        &self.cumulative
    }

    /// The open (not yet rolled) day's accumulator.
    #[must_use]
    pub fn day(&self) -> &StreamMetrics {
        &self.day
    }

    /// Days closed so far; the open day has this index.
    #[must_use]
    pub fn days_closed(&self) -> usize {
        self.days_closed
    }

    /// Closes the open day and returns its accumulator; a fresh day
    /// indexing the same driver fleet starts immediately. The cumulative
    /// accumulator is untouched.
    pub fn roll_day(&mut self) -> StreamMetrics {
        let mut fresh = StreamMetrics::with_bucket(self.bucket_len);
        fresh.register_drivers(self.cumulative.incomes().len());
        self.days_closed += 1;
        std::mem::replace(&mut self.day, fresh)
    }

    /// Consumes the journal, yielding the cumulative accumulator.
    #[must_use]
    pub fn into_cumulative(self) -> StreamMetrics {
        self.cumulative
    }
}

impl StreamSink for MetricsJournal {
    fn driver_online(&mut self, driver: &Driver) {
        self.cumulative.driver_online(driver);
        self.day.driver_online(driver);
    }

    fn dispatched(&mut self, task: &Task, event: &DispatchEvent) {
        self.cumulative.dispatched(task, event);
        self.day.dispatched(task, event);
    }

    fn rejected(&mut self, task: &Task, decision_time: Timestamp) {
        // Fully qualified: the inherent `StreamMetrics::rejected` getter
        // shadows the trait method.
        StreamSink::rejected(&mut self.cumulative, task, decision_time);
        StreamSink::rejected(&mut self.day, task, decision_time);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rideshare_core::{Market, MarketBuildOptions};
    use rideshare_online::{market_events, replay_stream, MaxMargin, StreamOptions, StreamPolicy};
    use rideshare_trace::{DriverModel, TraceConfig};

    fn market() -> Market {
        let trace = TraceConfig::porto()
            .with_seed(97)
            .with_task_count(220)
            .with_driver_count(18, DriverModel::Hitchhiking)
            .generate();
        Market::from_trace(&trace, &MarketBuildOptions::default())
    }

    /// Replays once into a plain accumulator and once into a journal that
    /// rolls every 60 tasks, then checks both conservation laws.
    #[test]
    fn cumulative_is_exact_and_days_conserve() {
        let market = market();
        let mut whole = StreamMetrics::hourly();
        let _ = replay_stream(
            market.speed(),
            market_events(&market),
            &mut StreamPolicy::Instant(&mut MaxMargin::new()),
            StreamOptions::default(),
            &mut whole,
        );

        let mut journal = MetricsJournal::hourly();
        let mut days = Vec::new();
        let mut sink_events = 0usize;
        struct Rolling<'a> {
            journal: &'a mut MetricsJournal,
            days: &'a mut Vec<StreamMetrics>,
            decided: &'a mut usize,
        }
        impl StreamSink for Rolling<'_> {
            fn driver_online(&mut self, d: &rideshare_core::Driver) {
                self.journal.driver_online(d);
            }
            fn dispatched(&mut self, t: &rideshare_core::Task, e: &DispatchEvent) {
                self.journal.dispatched(t, e);
                *self.decided += 1;
                if (*self.decided).is_multiple_of(60) {
                    self.days.push(self.journal.roll_day());
                }
            }
            fn rejected(&mut self, t: &rideshare_core::Task, at: Timestamp) {
                self.journal.rejected(t, at);
                *self.decided += 1;
                if (*self.decided).is_multiple_of(60) {
                    self.days.push(self.journal.roll_day());
                }
            }
        }
        let _ = replay_stream(
            market.speed(),
            market_events(&market),
            &mut StreamPolicy::Instant(&mut MaxMargin::new()),
            StreamOptions::default(),
            &mut Rolling {
                journal: &mut journal,
                days: &mut days,
                decided: &mut sink_events,
            },
        );

        assert!(days.len() >= 2, "test should roll at least twice");
        assert_eq!(journal.days_closed(), days.len());
        // Law 1: rollovers never perturb the cumulative accumulator.
        assert_eq!(*journal.cumulative(), whole);
        assert_eq!(
            journal.cumulative().to_canonical_json(),
            whole.to_canonical_json()
        );
        // Law 2: closed days ⊕ open day == cumulative, exactly.
        let mut folded = StreamMetrics::hourly();
        folded.register_drivers(whole.incomes().len());
        for d in &days {
            folded.merge(d);
        }
        folded.merge(journal.day());
        assert_eq!(folded, whole, "day partition does not conserve metrics");
        // Driver tables stay fleet-aligned across rolls.
        assert_eq!(journal.day().incomes().len(), whole.incomes().len());
    }
}
