//! Hour-of-day breakdowns of market activity.
//!
//! The aggregate metrics of Figs. 6–9 hide *when* the market is tight; the
//! surge discussion of §VI-C is fundamentally about peak hours. This module
//! buckets demand, service, and revenue by hour of day so experiments can
//! show where rejections concentrate.

use rideshare_core::Market;
use rideshare_online::SimulationResult;

/// Per-hour market activity.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct HourBucket {
    /// Tasks published in this hour.
    pub published: usize,
    /// Of those, tasks that were served.
    pub served: usize,
    /// Revenue of the served tasks.
    pub revenue: f64,
}

impl HourBucket {
    /// Served fraction of this hour's demand (0 when no demand).
    #[must_use]
    pub fn service_rate(&self) -> f64 {
        if self.published == 0 {
            0.0
        } else {
            self.served as f64 / self.published as f64
        }
    }
}

/// A 24-slot hour-of-day breakdown.
#[derive(Clone, PartialEq, Debug)]
pub struct HourlyBreakdown {
    buckets: [HourBucket; 24],
}

impl HourlyBreakdown {
    /// Buckets a simulation result by the hour of each task's publish time.
    ///
    /// Tasks published outside `[0h, 24h)` (possible for orders placed just
    /// before midnight with early-morning pickups) are clamped into the
    /// nearest bucket.
    #[must_use]
    pub fn of(market: &Market, result: &SimulationResult) -> Self {
        let mut buckets = [HourBucket::default(); 24];
        // Revenue accumulates on the crate's i128 fixed-point grid (the
        // PR 5 contract): the total is exact and order-independent, and
        // each bucket converts to `f64` exactly once at the end.
        let mut revenue = [crate::stream_stats::FixedSum::default(); 24];
        for (i, task) in market.tasks().iter().enumerate() {
            let hour = (task.publish_time.as_secs().div_euclid(3600)).clamp(0, 23) as usize;
            buckets[hour].published += 1;
            if result.dispatch.get(i).copied().flatten().is_some() {
                buckets[hour].served += 1;
                revenue[hour].add(task.price.as_f64());
            }
        }
        for (b, r) in buckets.iter_mut().zip(revenue) {
            b.revenue = r.as_f64();
        }
        Self { buckets }
    }

    /// The bucket for a given hour (`0..24`).
    ///
    /// # Panics
    ///
    /// Panics if `hour >= 24`.
    #[must_use]
    pub fn hour(&self, hour: usize) -> HourBucket {
        self.buckets[hour]
    }

    /// All 24 buckets in order.
    #[must_use]
    pub fn buckets(&self) -> &[HourBucket; 24] {
        &self.buckets
    }

    /// The hour with the most published demand.
    #[must_use]
    pub fn peak_demand_hour(&self) -> usize {
        self.buckets
            .iter()
            .enumerate()
            .max_by_key(|(_, b)| b.published)
            .map(|(h, _)| h)
            .unwrap_or(0)
    }

    /// The hour with the lowest service rate among hours with demand, if
    /// any hour has demand.
    #[must_use]
    pub fn tightest_hour(&self) -> Option<usize> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, b)| b.published > 0)
            .min_by(|(_, a), (_, b)| {
                a.service_rate()
                    .partial_cmp(&b.service_rate())
                    .expect("finite rates")
            })
            .map(|(h, _)| h)
    }

    /// Totals across all hours: `(published, served, revenue)`.
    #[must_use]
    pub fn totals(&self) -> (usize, usize, f64) {
        self.buckets.iter().fold((0, 0, 0.0), |(p, s, r), b| {
            (p + b.published, s + b.served, r + b.revenue)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rideshare_core::MarketBuildOptions;
    use rideshare_online::{MaxMargin, SimulationOptions, Simulator};
    use rideshare_trace::{DriverModel, TraceConfig};

    fn run(tasks: usize, drivers: usize) -> (Market, SimulationResult) {
        let trace = TraceConfig::porto()
            .with_seed(71)
            .with_task_count(tasks)
            .with_driver_count(drivers, DriverModel::Hitchhiking)
            .generate();
        let market = Market::from_trace(&trace, &MarketBuildOptions::default());
        let result =
            Simulator::new(&market).run(&mut MaxMargin::new(), SimulationOptions::default());
        (market, result)
    }

    #[test]
    fn totals_match_simulation() {
        let (market, result) = run(200, 30);
        let hb = HourlyBreakdown::of(&market, &result);
        let (published, served, revenue) = hb.totals();
        assert_eq!(published, market.num_tasks());
        assert_eq!(served, result.served);
        let direct = result.assignment.total_revenue(&market).as_f64();
        assert!((revenue - direct).abs() < 1e-6);
    }

    #[test]
    fn peak_hour_is_a_demand_peak() {
        let (market, result) = run(400, 10);
        let hb = HourlyBreakdown::of(&market, &result);
        let peak = hb.peak_demand_hour();
        let max_published = hb.buckets().iter().map(|b| b.published).max().unwrap();
        assert_eq!(hb.hour(peak).published, max_published);
        // The default demand profile peaks in the evening rush.
        assert!((17..=21).contains(&peak), "peak at {peak}");
    }

    #[test]
    fn tightest_hour_has_min_rate() {
        let (market, result) = run(300, 15);
        let hb = HourlyBreakdown::of(&market, &result);
        let tight = hb.tightest_hour().expect("there is demand");
        let min_rate = hb
            .buckets()
            .iter()
            .filter(|b| b.published > 0)
            .map(HourBucket::service_rate)
            .fold(f64::INFINITY, f64::min);
        assert!((hb.hour(tight).service_rate() - min_rate).abs() < 1e-12);
    }

    #[test]
    fn empty_simulation() {
        let (market, mut result) = run(50, 5);
        result.dispatch = vec![None; market.num_tasks()];
        let hb = HourlyBreakdown::of(&market, &result);
        let (published, served, revenue) = hb.totals();
        assert_eq!(published, 50);
        assert_eq!(served, 0);
        assert_eq!(revenue, 0.0);
        assert_eq!(hb.hour(0).service_rate(), 0.0);
    }
}
