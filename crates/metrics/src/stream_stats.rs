//! Incremental, windowed, **mergeable** metrics for streaming replay.
//!
//! [`crate::MarketMetrics`] and [`crate::HourlyBreakdown`] need the whole
//! market and result in memory. A million-task streaming replay has
//! neither, so [`StreamMetrics`] implements
//! [`rideshare_online::StreamSink`] and accumulates everything the
//! reports need *as decisions happen*: totals, time-bucketed
//! served/revenue/profit tables (Figs. 6–7 off a stream), and per-driver
//! income (Figs. 8–9). Resident state is `O(time buckets + drivers)` —
//! bounded by the replayed horizon and fleet, never by the trace length.
//!
//! Profit comes from the Eq. 14 margins recorded on each
//! [`rideshare_online::DispatchEvent`]: margins telescope along every
//! driver's route, so their sum equals the run's total profit (Eq. 4)
//! without ever touching a [`rideshare_core::Market`] — a property the
//! facade's stream-equivalence suite checks against the materialised
//! objective.
//!
//! # Merging, and why the accumulators are fixed-point
//!
//! The region-sharded replay engine folds one [`StreamMetrics`] per shard
//! into a whole-stream report via [`StreamMetrics::merge`]. For the fold
//! to be trustworthy it must be **associative, commutative, and equal to
//! accumulating the whole stream in one place** — *exactly*, not up to a
//! tolerance, because the sharded engine's contract is byte-identity.
//! Plain `f64 +=` cannot deliver that: float addition is not associative,
//! so per-shard sums folded in any order drift from the sequential sum in
//! the last bits. Every monetary/distance accumulator here is therefore a
//! 128-bit fixed-point integer ([`FixedSum`]): each incoming `f64` is
//! quantised once (2⁻⁴⁰ resolution — sub-picocent, far below [`Money`]'s
//! own 10⁻⁴ tolerance) and summation becomes integer addition, which is
//! order-independent by construction. Waits accumulate as whole seconds.
//! Two metrics built from the same decisions in any grouping are `==`.
//!
//! [`Money`]: rideshare_types::Money
//!
//! # Examples
//!
//! ```
//! use rideshare_core::{Market, MarketBuildOptions};
//! use rideshare_metrics::StreamMetrics;
//! use rideshare_online::{market_events, replay_stream, MaxMargin, StreamOptions, StreamPolicy};
//! use rideshare_trace::{DriverModel, TraceConfig};
//!
//! let trace = TraceConfig::porto()
//!     .with_seed(8)
//!     .with_task_count(150)
//!     .with_driver_count(12, DriverModel::Hitchhiking)
//!     .generate();
//! let market = Market::from_trace(&trace, &MarketBuildOptions::default());
//!
//! let mut metrics = StreamMetrics::hourly();
//! let summary = replay_stream(
//!     market.speed(),
//!     market_events(&market),
//!     &mut StreamPolicy::Instant(&mut MaxMargin::new()),
//!     StreamOptions::default(),
//!     &mut metrics,
//! );
//! assert_eq!(metrics.served(), summary.served);
//! assert!(metrics.service_rate() <= 1.0);
//! println!("{}", metrics.render());
//! ```

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use rideshare_core::{Driver, Task};
use rideshare_online::{DispatchEvent, StreamSink};
use rideshare_trace::wire::{parse_json, JsonValue};
use rideshare_types::{TimeDelta, Timestamp};

use crate::table::render_table;

/// Schema tag of the canonical snapshot JSON —
/// [`StreamMetrics::to_canonical_json`] always writes it first, and
/// [`StreamMetrics::from_canonical_json`] refuses anything else. Bump on
/// any layout change.
pub const SNAPSHOT_SCHEMA: &str = "rideshare-stream-metrics/1";

/// A snapshot string could not be decoded back into [`StreamMetrics`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotError(String);

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad metrics snapshot: {}", self.0)
    }
}

impl Error for SnapshotError {}

/// An order-independent sum of `f64` values: each addend is quantised once
/// to a 2⁻⁴⁰ grid and accumulated in `i128`, so `a + (b + c)` and
/// `(a + b) + c` are the same integer — the property that makes
/// [`StreamMetrics::merge`] exact (see the module docs).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub(crate) struct FixedSum(pub(crate) i128);

/// 2⁴⁰: ~9.1 × 10⁻¹³ resolution per addend.
const FIXED_SCALE: f64 = (1u64 << 40) as f64;

/// The fixed-point grid scale (2⁴⁰) shared by every monetary/distance
/// accumulator: raw i128 values from [`StreamMetrics::revenue_raw`] and
/// friends are `value × 2⁴⁰`. Public so downstream consumers (the
/// telemetry store's human-readable rendering) can project raw integers
/// back to units without re-deriving the constant.
pub const FIXED_POINT_SCALE: f64 = FIXED_SCALE;

/// Projects a raw fixed-point integer (2⁻⁴⁰ grid) to `f64` units — the
/// same conversion [`StreamMetrics::revenue`] applies to its accumulator.
/// Lossy for magnitudes beyond 2⁵³ grid steps, which is why equality
/// checks compare the raw integers instead.
#[must_use]
pub fn fixed_to_f64(raw: i128) -> f64 {
    raw as f64 / FIXED_SCALE
}

impl FixedSum {
    pub(crate) fn add(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "non-finite metric value");
        self.0 += (x * FIXED_SCALE).round() as i128;
    }

    pub(crate) fn merge(&mut self, other: FixedSum) {
        self.0 += other.0;
    }

    pub(crate) fn as_f64(self) -> f64 {
        self.0 as f64 / FIXED_SCALE
    }
}

/// One time bucket of streamed market activity.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct StreamBucket {
    /// Orders published in this bucket.
    pub published: usize,
    /// Of those, orders dispatched.
    pub served: usize,
    revenue: FixedSum,
    profit: FixedSum,
}

impl StreamBucket {
    /// Revenue (Σ `pₘ`) of this bucket's served orders.
    #[must_use]
    pub fn revenue(&self) -> f64 {
        self.revenue.as_f64()
    }

    /// Profit (Σ Eq. 14 margins) of this bucket's served orders.
    #[must_use]
    pub fn profit(&self) -> f64 {
        self.profit.as_f64()
    }

    /// Served fraction of this bucket's demand (0 when no demand).
    #[must_use]
    pub fn service_rate(&self) -> f64 {
        if self.published == 0 {
            0.0
        } else {
            self.served as f64 / self.published as f64
        }
    }

    fn merge(&mut self, other: &StreamBucket) {
        self.published += other.published;
        self.served += other.served;
        self.revenue.merge(other.revenue);
        self.profit.merge(other.profit);
    }
}

/// The incremental accumulator: totals, a time-bucketed activity table,
/// and per-driver income, fed through the [`StreamSink`] callbacks.
/// Mergeable — see [`StreamMetrics::merge`].
#[derive(Clone, PartialEq, Debug)]
pub struct StreamMetrics {
    bucket_len: TimeDelta,
    buckets: Vec<StreamBucket>,
    totals: StreamBucket,
    rejected: usize,
    wait_secs_sum: i64,
    deadhead_km: FixedSum,
    /// Per-driver income (Σ margins), indexed by driver.
    income: Vec<FixedSum>,
    /// Per-driver served-task counts.
    tasks_per_driver: Vec<u32>,
}

impl StreamMetrics {
    /// An accumulator bucketing by the given window length.
    ///
    /// # Panics
    ///
    /// Panics unless `bucket_len` is strictly positive.
    #[must_use]
    pub fn with_bucket(bucket_len: TimeDelta) -> Self {
        assert!(
            bucket_len > TimeDelta::ZERO,
            "bucket length must be positive"
        );
        Self {
            bucket_len,
            buckets: Vec::new(),
            totals: StreamBucket::default(),
            rejected: 0,
            wait_secs_sum: 0,
            deadhead_km: FixedSum::default(),
            income: Vec::new(),
            tasks_per_driver: Vec::new(),
        }
    }

    /// The conventional hour-of-day accumulator.
    #[must_use]
    pub fn hourly() -> Self {
        Self::with_bucket(TimeDelta::from_hours(1))
    }

    /// Folds `other` into `self`. The two must use the same bucket length.
    ///
    /// The fold is **associative and commutative, and exact**: merging any
    /// partition of a decision stream (e.g. one accumulator per region
    /// shard) in any order compares `==` to accumulating the whole stream
    /// into one instance — integer accumulators make reordering invisible
    /// (module docs). This is what lets the region-sharded replay engine
    /// report whole-stream metrics without ever serialising decisions
    /// through a single accumulator.
    ///
    /// # Panics
    ///
    /// Panics if the bucket lengths differ.
    pub fn merge(&mut self, other: &StreamMetrics) {
        assert_eq!(
            self.bucket_len, other.bucket_len,
            "cannot merge metrics with different bucket lengths"
        );
        if self.buckets.len() < other.buckets.len() {
            self.buckets
                .resize(other.buckets.len(), StreamBucket::default());
        }
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            b.merge(o);
        }
        self.totals.merge(&other.totals);
        self.rejected += other.rejected;
        self.wait_secs_sum += other.wait_secs_sum;
        self.deadhead_km.merge(other.deadhead_km);
        if self.income.len() < other.income.len() {
            self.income.resize(other.income.len(), FixedSum::default());
            self.tasks_per_driver
                .resize(other.tasks_per_driver.len(), 0);
        }
        for (i, o) in self.income.iter_mut().zip(&other.income) {
            i.merge(*o);
        }
        for (t, o) in self
            .tasks_per_driver
            .iter_mut()
            .zip(&other.tasks_per_driver)
        {
            *t += *o;
        }
    }

    fn bucket_mut(&mut self, at: Timestamp) -> &mut StreamBucket {
        // Pre-midnight publishes (possible for orders placed just before
        // the day starts) clamp into the first bucket.
        let idx = (at.as_secs().div_euclid(self.bucket_len.as_secs())).max(0) as usize;
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, StreamBucket::default());
        }
        &mut self.buckets[idx]
    }

    /// The filled time buckets, index `k` covering
    /// `[k·bucket, (k+1)·bucket)` (index 0 also absorbs pre-epoch
    /// publishes).
    #[must_use]
    pub fn buckets(&self) -> &[StreamBucket] {
        &self.buckets
    }

    /// Orders seen so far.
    #[must_use]
    pub fn published(&self) -> usize {
        self.totals.published
    }

    /// Orders dispatched so far.
    #[must_use]
    pub fn served(&self) -> usize {
        self.totals.served
    }

    /// Orders rejected so far.
    #[must_use]
    pub fn rejected(&self) -> usize {
        self.rejected
    }

    /// Total revenue as the raw i128 accumulator on the 2⁻⁴⁰ fixed-point
    /// grid — the exact integer behind [`StreamMetrics::revenue`].
    ///
    /// The telemetry store ([`rideshare-tsdb`]) persists this integer, not
    /// the `f64` projection, so recorded series and live accumulators can
    /// be compared with `==` rather than a tolerance. Divide by
    /// [`FIXED_POINT_SCALE`] (or use [`fixed_to_f64`]) to recover units.
    ///
    /// [`rideshare-tsdb`]: index.html
    #[must_use]
    pub fn revenue_raw(&self) -> i128 {
        self.totals.revenue.0
    }

    /// Total profit as the raw i128 fixed-point accumulator — the exact
    /// integer behind [`StreamMetrics::profit`]. See
    /// [`StreamMetrics::revenue_raw`] for the grid contract.
    #[must_use]
    pub fn profit_raw(&self) -> i128 {
        self.totals.profit.0
    }

    /// Total deadhead distance as the raw i128 fixed-point accumulator —
    /// the exact integer behind [`StreamMetrics::total_deadhead_km`]. See
    /// [`StreamMetrics::revenue_raw`] for the grid contract.
    #[must_use]
    pub fn deadhead_raw(&self) -> i128 {
        self.deadhead_km.0
    }

    /// Total rider wait over served orders, in whole seconds (waits
    /// accumulate as integers, so this is exact and merge-stable).
    #[must_use]
    pub fn wait_secs_total(&self) -> i64 {
        self.wait_secs_sum
    }

    /// Served fraction of all demand so far — Fig. 7's metric, live.
    #[must_use]
    pub fn service_rate(&self) -> f64 {
        self.totals.service_rate()
    }

    /// Total revenue (Σ `pₘ`) of served orders — Fig. 6's metric, live.
    #[must_use]
    pub fn revenue(&self) -> f64 {
        self.totals.revenue()
    }

    /// Total profit so far: Σ Eq. 14 margins, which telescopes to the
    /// materialised Eq. 4 objective.
    #[must_use]
    pub fn profit(&self) -> f64 {
        self.totals.profit()
    }

    /// Mean rider wait over served orders, in minutes.
    #[must_use]
    pub fn mean_wait_mins(&self) -> Option<f64> {
        (self.totals.served > 0)
            .then(|| self.wait_secs_sum as f64 / 60.0 / self.totals.served as f64)
    }

    /// Total empty kilometres driven to reach pickups.
    #[must_use]
    pub fn total_deadhead_km(&self) -> f64 {
        self.deadhead_km.as_f64()
    }

    /// Drivers that served at least one order.
    #[must_use]
    pub fn active_drivers(&self) -> usize {
        self.tasks_per_driver.iter().filter(|&&n| n > 0).count()
    }

    /// Mean income over *active* drivers (Fig. 8's "average revenue per
    /// worker", profit flavoured), `None` when nobody served.
    #[must_use]
    pub fn mean_income_per_active_driver(&self) -> Option<f64> {
        let active = self.active_drivers();
        // Sum exactly in the i128 fixed-point domain, convert once: the
        // mean inherits the accumulators' order-independence.
        let mut total = FixedSum::default();
        for i in &self.income {
            total.merge(*i);
        }
        (active > 0).then(|| total.as_f64() / active as f64)
    }

    /// Mean served tasks per active driver (Fig. 9's metric).
    #[must_use]
    pub fn mean_tasks_per_active_driver(&self) -> Option<f64> {
        let active = self.active_drivers();
        (active > 0).then(|| {
            // Integer sum is exact; one final division is order-free.
            let total: u64 = self.tasks_per_driver.iter().map(|&n| u64::from(n)).sum();
            total as f64 / active as f64
        })
    }

    /// Per-driver income (Σ margins), indexed by driver id.
    #[must_use]
    pub fn incomes(&self) -> Vec<f64> {
        self.income.iter().map(|i| i.as_f64()).collect()
    }

    /// Renders the non-empty time buckets as an aligned text table
    /// (`bucket | published | served | rate | revenue | profit`).
    #[must_use]
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, b)| b.published > 0)
            .map(|(k, b)| {
                let start =
                    Timestamp::EPOCH + TimeDelta::from_secs(k as i64 * self.bucket_len.as_secs());
                vec![
                    format!("{start}"),
                    b.published.to_string(),
                    b.served.to_string(),
                    format!("{:.3}", b.service_rate()),
                    format!("{:.2}", b.revenue()),
                    format!("{:.2}", b.profit()),
                ]
            })
            .collect();
        render_table(
            &["bucket", "published", "served", "rate", "revenue", "profit"],
            &rows,
        )
    }

    /// Pre-registers driver slots `0..count` (idempotent, never shrinks) —
    /// what [`StreamSink::driver_online`] does, without needing the
    /// [`Driver`] values. Day-rollover machinery uses this to start a
    /// fresh accumulator that indexes the same fleet.
    pub fn register_drivers(&mut self, count: usize) {
        if self.income.len() < count {
            self.income.resize(count, FixedSum::default());
            self.tasks_per_driver.resize(count, 0);
        }
    }

    /// Serialises the accumulator as one line of **canonical JSON**: fixed
    /// key order, no whitespace, fixed-point accumulators as exact decimal
    /// strings (raw `i128` units of 2⁻⁴⁰ — never a lossy float), sparse
    /// bucket/driver tables plus explicit counts so the round trip through
    /// [`Self::from_canonical_json`] restores a value that compares `==`.
    /// Equal metrics produce byte-identical snapshots, which is what lets
    /// the serve-equivalence battery diff daemon snapshots across shard
    /// counts and ingestion backends.
    #[must_use]
    pub fn to_canonical_json(&self) -> String {
        let mut s = String::with_capacity(256);
        let _ = write!(
            s,
            "{{\"schema\":\"{SNAPSHOT_SCHEMA}\",\"bucket_secs\":{},\"published\":{},\"served\":{},\"rejected\":{},\"revenue\":\"{}\",\"profit\":\"{}\",\"wait_secs\":{},\"deadhead\":\"{}\",\"bucket_count\":{},\"buckets\":[",
            self.bucket_len.as_secs(),
            self.totals.published,
            self.totals.served,
            self.rejected,
            self.totals.revenue.0,
            self.totals.profit.0,
            self.wait_secs_sum,
            self.deadhead_km.0,
            self.buckets.len(),
        );
        let mut first = true;
        for (k, b) in self.buckets.iter().enumerate() {
            if *b == StreamBucket::default() {
                continue;
            }
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(
                s,
                "[{k},{},{},\"{}\",\"{}\"]",
                b.published, b.served, b.revenue.0, b.profit.0
            );
        }
        let _ = write!(s, "],\"driver_count\":{},\"drivers\":[", self.income.len());
        let mut first = true;
        for (d, (income, tasks)) in self.income.iter().zip(&self.tasks_per_driver).enumerate() {
            if income.0 == 0 && *tasks == 0 {
                continue;
            }
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(s, "[{d},\"{}\",{tasks}]", income.0);
        }
        s.push_str("]}");
        s
    }

    /// Decodes a [`Self::to_canonical_json`] snapshot. Exact inverse: the
    /// result compares `==` to the serialised accumulator.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] on malformed JSON, a schema tag other
    /// than [`SNAPSHOT_SCHEMA`], or out-of-range/inconsistent fields —
    /// never panics on hostile input.
    pub fn from_canonical_json(s: &str) -> Result<Self, SnapshotError> {
        let v = parse_json(s).map_err(SnapshotError)?;
        let schema = v
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| SnapshotError("missing schema tag".into()))?;
        if schema != SNAPSHOT_SCHEMA {
            return Err(SnapshotError(format!(
                "schema {schema:?}, expected {SNAPSHOT_SCHEMA:?}"
            )));
        }
        let bucket_secs = json_i64(&v, "bucket_secs")?;
        if bucket_secs <= 0 {
            return Err(SnapshotError(format!(
                "bucket_secs {bucket_secs} must be positive"
            )));
        }
        let mut m = StreamMetrics::with_bucket(TimeDelta::from_secs(bucket_secs));
        m.totals.published = json_usize(&v, "published")?;
        m.totals.served = json_usize(&v, "served")?;
        m.rejected = json_usize(&v, "rejected")?;
        m.totals.revenue = FixedSum(json_i128_str(&v, "revenue")?);
        m.totals.profit = FixedSum(json_i128_str(&v, "profit")?);
        m.wait_secs_sum = json_i64(&v, "wait_secs")?;
        m.deadhead_km = FixedSum(json_i128_str(&v, "deadhead")?);

        let bucket_count = json_usize(&v, "bucket_count")?;
        if bucket_count > MAX_SNAPSHOT_SLOTS {
            return Err(SnapshotError(format!(
                "bucket_count {bucket_count} too large"
            )));
        }
        m.buckets.resize(bucket_count, StreamBucket::default());
        for row in json_rows(&v, "buckets")? {
            let [k, published, served, revenue, profit] = row_fields::<5>(row)?;
            let k = cell_usize(k)?;
            let b = m
                .buckets
                .get_mut(k)
                .ok_or_else(|| SnapshotError(format!("bucket index {k} out of range")))?;
            *b = StreamBucket {
                published: cell_usize(published)?,
                served: cell_usize(served)?,
                revenue: FixedSum(cell_i128_str(revenue)?),
                profit: FixedSum(cell_i128_str(profit)?),
            };
        }

        let driver_count = json_usize(&v, "driver_count")?;
        if driver_count > MAX_SNAPSHOT_SLOTS {
            return Err(SnapshotError(format!(
                "driver_count {driver_count} too large"
            )));
        }
        m.register_drivers(driver_count);
        for row in json_rows(&v, "drivers")? {
            let [d, income, tasks] = row_fields::<3>(row)?;
            let d = cell_usize(d)?;
            if d >= driver_count {
                return Err(SnapshotError(format!("driver index {d} out of range")));
            }
            m.income[d] = FixedSum(cell_i128_str(income)?);
            m.tasks_per_driver[d] = u32::try_from(cell_usize(tasks)?)
                .map_err(|_| SnapshotError("task count overflows u32".into()))?;
        }
        Ok(m)
    }
}

/// Upper bound on snapshot-declared bucket/driver table sizes, so a
/// hostile snapshot cannot make [`StreamMetrics::from_canonical_json`]
/// allocate unbounded memory. Generous: 2²⁴ hourly buckets is ~1914
/// years of stream time.
const MAX_SNAPSHOT_SLOTS: usize = 1 << 24;

fn json_num<'v>(v: &'v JsonValue, key: &str) -> Result<&'v str, SnapshotError> {
    v.get(key)
        .and_then(JsonValue::num)
        .ok_or_else(|| SnapshotError(format!("missing numeric field {key:?}")))
}

fn json_i64(v: &JsonValue, key: &str) -> Result<i64, SnapshotError> {
    json_num(v, key)?
        .parse()
        .map_err(|_| SnapshotError(format!("field {key:?} is not an i64")))
}

fn json_usize(v: &JsonValue, key: &str) -> Result<usize, SnapshotError> {
    json_num(v, key)?
        .parse()
        .map_err(|_| SnapshotError(format!("field {key:?} is not a usize")))
}

fn json_i128_str(v: &JsonValue, key: &str) -> Result<i128, SnapshotError> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| SnapshotError(format!("missing string field {key:?}")))?
        .parse()
        .map_err(|_| SnapshotError(format!("field {key:?} is not an i128 string")))
}

fn json_rows<'v>(v: &'v JsonValue, key: &str) -> Result<&'v [JsonValue], SnapshotError> {
    v.get(key)
        .and_then(JsonValue::arr)
        .ok_or_else(|| SnapshotError(format!("missing array field {key:?}")))
}

fn row_fields<const N: usize>(row: &JsonValue) -> Result<[&JsonValue; N], SnapshotError> {
    let cells = row
        .arr()
        .ok_or_else(|| SnapshotError("table row is not an array".into()))?;
    if cells.len() != N {
        return Err(SnapshotError(format!(
            "table row has {} cells, expected {N}",
            cells.len()
        )));
    }
    let mut out = [row; N];
    for (o, c) in out.iter_mut().zip(cells) {
        *o = c;
    }
    Ok(out)
}

fn cell_usize(c: &JsonValue) -> Result<usize, SnapshotError> {
    c.num()
        .ok_or_else(|| SnapshotError("table cell is not a number".into()))?
        .parse()
        .map_err(|_| SnapshotError("table cell is not a usize".into()))
}

fn cell_i128_str(c: &JsonValue) -> Result<i128, SnapshotError> {
    c.as_str()
        .ok_or_else(|| SnapshotError("table cell is not a string".into()))?
        .parse()
        .map_err(|_| SnapshotError("table cell is not an i128 string".into()))
}

impl StreamSink for StreamMetrics {
    fn driver_online(&mut self, driver: &Driver) {
        let idx = driver.id.index();
        if self.income.len() <= idx {
            self.income.resize(idx + 1, FixedSum::default());
            self.tasks_per_driver.resize(idx + 1, 0);
        }
    }

    fn dispatched(&mut self, task: &Task, event: &DispatchEvent) {
        let b = self.bucket_mut(task.publish_time);
        b.published += 1;
        b.served += 1;
        b.revenue.add(task.price.as_f64());
        b.profit.add(event.margin);
        self.totals.published += 1;
        self.totals.served += 1;
        self.totals.revenue.add(task.price.as_f64());
        self.totals.profit.add(event.margin);
        self.wait_secs_sum += event.wait.as_secs();
        self.deadhead_km.add(event.deadhead_km);
        let d = event.driver.index();
        self.income[d].add(event.margin);
        self.tasks_per_driver[d] += 1;
    }

    fn rejected(&mut self, task: &Task, _decision_time: Timestamp) {
        self.bucket_mut(task.publish_time).published += 1;
        self.totals.published += 1;
        self.rejected += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rideshare_core::{Market, MarketBuildOptions};
    use rideshare_online::{
        market_events, replay_stream, MaxMargin, SimulationOptions, Simulator, StreamOptions,
        StreamPolicy,
    };
    use rideshare_trace::{DriverModel, TraceConfig};

    fn run(seed: u64, tasks: usize, drivers: usize) -> (Market, StreamMetrics) {
        let trace = TraceConfig::porto()
            .with_seed(seed)
            .with_task_count(tasks)
            .with_driver_count(drivers, DriverModel::Hitchhiking)
            .generate();
        let market = Market::from_trace(&trace, &MarketBuildOptions::default());
        let mut metrics = StreamMetrics::hourly();
        let _ = replay_stream(
            market.speed(),
            market_events(&market),
            &mut StreamPolicy::Instant(&mut MaxMargin::new()),
            StreamOptions::default(),
            &mut metrics,
        );
        (market, metrics)
    }

    #[test]
    fn totals_match_materialized_objective() {
        let (market, metrics) = run(91, 250, 25);
        let materialized =
            Simulator::new(&market).run(&mut MaxMargin::new(), SimulationOptions::default());
        assert_eq!(metrics.served(), materialized.served);
        assert_eq!(metrics.rejected(), materialized.rejected);
        assert_eq!(metrics.published(), market.num_tasks());
        // Margins telescope to the Eq. 4 objective.
        let objective = materialized.total_profit(&market).as_f64();
        assert!(
            (metrics.profit() - objective).abs() < 1e-6,
            "streamed profit {} vs objective {objective}",
            metrics.profit()
        );
        let revenue = materialized.assignment.total_revenue(&market).as_f64();
        assert!((metrics.revenue() - revenue).abs() < 1e-6);
        assert!(
            (metrics.mean_wait_mins().unwrap() - materialized.mean_wait_mins().unwrap()).abs()
                < 1e-9
        );
        assert!((metrics.total_deadhead_km() - materialized.total_deadhead_km()).abs() < 1e-6);
    }

    #[test]
    fn buckets_sum_to_totals() {
        let (_, metrics) = run(92, 300, 15);
        let published: usize = metrics.buckets().iter().map(|b| b.published).sum();
        let served: usize = metrics.buckets().iter().map(|b| b.served).sum();
        let profit: f64 = metrics.buckets().iter().map(|b| b.profit()).sum();
        assert_eq!(published, metrics.published());
        assert_eq!(served, metrics.served());
        assert!((profit - metrics.profit()).abs() < 1e-9);
    }

    #[test]
    fn per_driver_income_consistent() {
        let (market, metrics) = run(93, 200, 10);
        assert_eq!(metrics.incomes().len(), market.num_drivers());
        let total: f64 = metrics.incomes().iter().sum();
        assert!((total - metrics.profit()).abs() < 1e-9);
        assert!(metrics.active_drivers() <= market.num_drivers());
        if metrics.served() > 0 {
            assert!(metrics.mean_income_per_active_driver().is_some());
            assert!(metrics.mean_tasks_per_active_driver().unwrap() >= 1.0);
        }
    }

    #[test]
    fn render_is_well_formed() {
        let (_, metrics) = run(94, 120, 8);
        let table = metrics.render();
        assert!(table.contains("published"));
        assert!(table.lines().count() >= 2, "{table}");
    }

    #[test]
    fn empty_accumulator() {
        let metrics = StreamMetrics::hourly();
        assert_eq!(metrics.published(), 0);
        assert_eq!(metrics.service_rate(), 0.0);
        assert!(metrics.mean_wait_mins().is_none());
        assert!(metrics.mean_income_per_active_driver().is_none());
    }

    #[test]
    fn merge_of_a_partition_is_exact() {
        // Split one replay's decisions across two accumulators by task
        // parity; the fold must equal the whole-stream accumulator
        // *exactly* (PartialEq, not a tolerance) in either merge order.
        let trace = TraceConfig::porto()
            .with_seed(96)
            .with_task_count(250)
            .with_driver_count(20, DriverModel::Hitchhiking)
            .generate();
        let market = Market::from_trace(&trace, &MarketBuildOptions::default());
        let mut whole = StreamMetrics::hourly();
        let mut sink = rideshare_online::CollectingSink::new();
        let _ = replay_stream(
            market.speed(),
            market_events(&market),
            &mut StreamPolicy::Instant(&mut MaxMargin::new()),
            StreamOptions::default(),
            &mut sink,
        );
        let result = sink.into_result();

        let mut parts = [StreamMetrics::hourly(), StreamMetrics::hourly()];
        for p in &mut parts {
            for d in market.drivers() {
                p.driver_online(d);
            }
        }
        // Feed the whole accumulator and the partition from the same
        // decision records.
        for d in market.drivers() {
            whole.driver_online(d);
        }
        for e in &result.events {
            let task = &market.tasks()[e.task.index()];
            whole.dispatched(task, e);
            parts[e.task.index() % 2].dispatched(task, e);
        }
        for (t, d) in result.dispatch.iter().enumerate() {
            if d.is_none() {
                let task = &market.tasks()[t];
                StreamSink::rejected(&mut whole, task, task.publish_time);
                StreamSink::rejected(&mut parts[t % 2], task, task.publish_time);
            }
        }

        let mut ab = parts[0].clone();
        ab.merge(&parts[1]);
        let mut ba = parts[1].clone();
        ba.merge(&parts[0]);
        assert_eq!(ab, whole, "merge differs from whole-stream accumulation");
        assert_eq!(ba, whole, "merge is not commutative");
    }

    #[test]
    fn snapshot_round_trip_is_exact() {
        let (_, metrics) = run(95, 300, 25);
        let json = metrics.to_canonical_json();
        assert!(json.starts_with("{\"schema\":\"rideshare-stream-metrics/1\""));
        let back = StreamMetrics::from_canonical_json(&json).unwrap();
        assert_eq!(back, metrics, "snapshot round trip must be lossless");
        // Canonical: equal values serialise to identical bytes.
        assert_eq!(back.to_canonical_json(), json);
        // Empty accumulators round-trip too.
        let empty = StreamMetrics::hourly();
        let back = StreamMetrics::from_canonical_json(&empty.to_canonical_json()).unwrap();
        assert_eq!(back, empty);
    }

    #[test]
    fn hostile_snapshots_yield_errors_not_panics() {
        for bad in [
            "",
            "{",
            "[1,2,3]",
            "{\"schema\":\"other/9\"}",
            "{\"schema\":\"rideshare-stream-metrics/1\"}",
            // Negative / oversized counts.
            "{\"schema\":\"rideshare-stream-metrics/1\",\"bucket_secs\":-5,\"published\":0,\"served\":0,\"rejected\":0,\"revenue\":\"0\",\"profit\":\"0\",\"wait_secs\":0,\"deadhead\":\"0\",\"bucket_count\":0,\"buckets\":[],\"driver_count\":0,\"drivers\":[]}",
            "{\"schema\":\"rideshare-stream-metrics/1\",\"bucket_secs\":3600,\"published\":0,\"served\":0,\"rejected\":0,\"revenue\":\"0\",\"profit\":\"0\",\"wait_secs\":0,\"deadhead\":\"0\",\"bucket_count\":99999999999,\"buckets\":[],\"driver_count\":0,\"drivers\":[]}",
            // Out-of-range table indices.
            "{\"schema\":\"rideshare-stream-metrics/1\",\"bucket_secs\":3600,\"published\":0,\"served\":0,\"rejected\":0,\"revenue\":\"0\",\"profit\":\"0\",\"wait_secs\":0,\"deadhead\":\"0\",\"bucket_count\":1,\"buckets\":[[7,1,1,\"0\",\"0\"]],\"driver_count\":0,\"drivers\":[]}",
            "{\"schema\":\"rideshare-stream-metrics/1\",\"bucket_secs\":3600,\"published\":0,\"served\":0,\"rejected\":0,\"revenue\":\"0\",\"profit\":\"0\",\"wait_secs\":0,\"deadhead\":\"0\",\"bucket_count\":0,\"buckets\":[],\"driver_count\":1,\"drivers\":[[4,\"0\",1]]}",
            // Wrong arity and wrong cell types.
            "{\"schema\":\"rideshare-stream-metrics/1\",\"bucket_secs\":3600,\"published\":0,\"served\":0,\"rejected\":0,\"revenue\":\"0\",\"profit\":\"0\",\"wait_secs\":0,\"deadhead\":\"0\",\"bucket_count\":1,\"buckets\":[[0,1]],\"driver_count\":0,\"drivers\":[]}",
            "{\"schema\":\"rideshare-stream-metrics/1\",\"bucket_secs\":3600,\"published\":0,\"served\":0,\"rejected\":0,\"revenue\":7,\"profit\":\"0\",\"wait_secs\":0,\"deadhead\":\"0\",\"bucket_count\":0,\"buckets\":[],\"driver_count\":0,\"drivers\":[]}",
        ] {
            assert!(
                StreamMetrics::from_canonical_json(bad).is_err(),
                "accepted hostile snapshot {bad:?}"
            );
        }
    }

    #[test]
    fn register_drivers_matches_driver_online() {
        let mut a = StreamMetrics::hourly();
        a.register_drivers(5);
        a.register_drivers(3); // never shrinks
        assert_eq!(a.incomes().len(), 5);
    }

    #[test]
    #[should_panic(expected = "bucket lengths")]
    fn merging_mismatched_buckets_rejected() {
        let mut a = StreamMetrics::hourly();
        let b = StreamMetrics::with_bucket(TimeDelta::from_mins(30));
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bucket_rejected() {
        let _ = StreamMetrics::with_bucket(TimeDelta::ZERO);
    }
}
