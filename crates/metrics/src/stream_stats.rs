//! Incremental, windowed metrics for streaming replay.
//!
//! [`crate::MarketMetrics`] and [`crate::HourlyBreakdown`] need the whole
//! market and result in memory. A million-task streaming replay has
//! neither, so [`StreamMetrics`] implements
//! [`rideshare_online::StreamSink`] and accumulates everything the
//! reports need *as decisions happen*: totals, time-bucketed
//! served/revenue/profit tables (Figs. 6–7 off a stream), and per-driver
//! income (Figs. 8–9). Resident state is `O(time buckets + drivers)` —
//! bounded by the replayed horizon and fleet, never by the trace length.
//!
//! Profit comes from the Eq. 14 margins recorded on each
//! [`rideshare_online::DispatchEvent`]: margins telescope along every
//! driver's route, so their sum equals the run's total profit (Eq. 4)
//! without ever touching a [`rideshare_core::Market`] — a property the
//! facade's stream-equivalence suite checks against the materialised
//! objective.
//!
//! # Examples
//!
//! ```
//! use rideshare_core::{Market, MarketBuildOptions};
//! use rideshare_metrics::StreamMetrics;
//! use rideshare_online::{market_events, replay_stream, MaxMargin, StreamOptions, StreamPolicy};
//! use rideshare_trace::{DriverModel, TraceConfig};
//!
//! let trace = TraceConfig::porto()
//!     .with_seed(8)
//!     .with_task_count(150)
//!     .with_driver_count(12, DriverModel::Hitchhiking)
//!     .generate();
//! let market = Market::from_trace(&trace, &MarketBuildOptions::default());
//!
//! let mut metrics = StreamMetrics::hourly();
//! let summary = replay_stream(
//!     market.speed(),
//!     market_events(&market),
//!     &mut StreamPolicy::Instant(&mut MaxMargin::new()),
//!     StreamOptions::default(),
//!     &mut metrics,
//! );
//! assert_eq!(metrics.served(), summary.served);
//! assert!(metrics.service_rate() <= 1.0);
//! println!("{}", metrics.render());
//! ```

use rideshare_core::{Driver, Task};
use rideshare_online::{DispatchEvent, StreamSink};
use rideshare_types::{TimeDelta, Timestamp};

use crate::table::render_table;

/// One time bucket of streamed market activity.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct StreamBucket {
    /// Orders published in this bucket.
    pub published: usize,
    /// Of those, orders dispatched.
    pub served: usize,
    /// Revenue (Σ `pₘ`) of the served orders.
    pub revenue: f64,
    /// Profit (Σ Eq. 14 margins) of the served orders.
    pub profit: f64,
}

impl StreamBucket {
    /// Served fraction of this bucket's demand (0 when no demand).
    #[must_use]
    pub fn service_rate(&self) -> f64 {
        if self.published == 0 {
            0.0
        } else {
            self.served as f64 / self.published as f64
        }
    }
}

/// The incremental accumulator: totals, a time-bucketed activity table,
/// and per-driver income, fed through the [`StreamSink`] callbacks.
#[derive(Clone, Debug)]
pub struct StreamMetrics {
    bucket_len: TimeDelta,
    buckets: Vec<StreamBucket>,
    totals: StreamBucket,
    rejected: usize,
    wait_mins_sum: f64,
    deadhead_km: f64,
    /// Per-driver income (Σ margins), indexed by driver.
    income: Vec<f64>,
    /// Per-driver served-task counts.
    tasks_per_driver: Vec<u32>,
}

impl StreamMetrics {
    /// An accumulator bucketing by the given window length.
    ///
    /// # Panics
    ///
    /// Panics unless `bucket_len` is strictly positive.
    #[must_use]
    pub fn with_bucket(bucket_len: TimeDelta) -> Self {
        assert!(
            bucket_len > TimeDelta::ZERO,
            "bucket length must be positive"
        );
        Self {
            bucket_len,
            buckets: Vec::new(),
            totals: StreamBucket::default(),
            rejected: 0,
            wait_mins_sum: 0.0,
            deadhead_km: 0.0,
            income: Vec::new(),
            tasks_per_driver: Vec::new(),
        }
    }

    /// The conventional hour-of-day accumulator.
    #[must_use]
    pub fn hourly() -> Self {
        Self::with_bucket(TimeDelta::from_hours(1))
    }

    fn bucket_mut(&mut self, at: Timestamp) -> &mut StreamBucket {
        // Pre-midnight publishes (possible for orders placed just before
        // the day starts) clamp into the first bucket.
        let idx = (at.as_secs().div_euclid(self.bucket_len.as_secs())).max(0) as usize;
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, StreamBucket::default());
        }
        &mut self.buckets[idx]
    }

    /// The filled time buckets, index `k` covering
    /// `[k·bucket, (k+1)·bucket)` (index 0 also absorbs pre-epoch
    /// publishes).
    #[must_use]
    pub fn buckets(&self) -> &[StreamBucket] {
        &self.buckets
    }

    /// Orders seen so far.
    #[must_use]
    pub fn published(&self) -> usize {
        self.totals.published
    }

    /// Orders dispatched so far.
    #[must_use]
    pub fn served(&self) -> usize {
        self.totals.served
    }

    /// Orders rejected so far.
    #[must_use]
    pub fn rejected(&self) -> usize {
        self.rejected
    }

    /// Served fraction of all demand so far — Fig. 7's metric, live.
    #[must_use]
    pub fn service_rate(&self) -> f64 {
        self.totals.service_rate()
    }

    /// Total revenue (Σ `pₘ`) of served orders — Fig. 6's metric, live.
    #[must_use]
    pub fn revenue(&self) -> f64 {
        self.totals.revenue
    }

    /// Total profit so far: Σ Eq. 14 margins, which telescopes to the
    /// materialised Eq. 4 objective.
    #[must_use]
    pub fn profit(&self) -> f64 {
        self.totals.profit
    }

    /// Mean rider wait over served orders, in minutes.
    #[must_use]
    pub fn mean_wait_mins(&self) -> Option<f64> {
        (self.totals.served > 0).then(|| self.wait_mins_sum / self.totals.served as f64)
    }

    /// Total empty kilometres driven to reach pickups.
    #[must_use]
    pub fn total_deadhead_km(&self) -> f64 {
        self.deadhead_km
    }

    /// Drivers that served at least one order.
    #[must_use]
    pub fn active_drivers(&self) -> usize {
        self.tasks_per_driver.iter().filter(|&&n| n > 0).count()
    }

    /// Mean income over *active* drivers (Fig. 8's "average revenue per
    /// worker", profit flavoured), `None` when nobody served.
    #[must_use]
    pub fn mean_income_per_active_driver(&self) -> Option<f64> {
        let active = self.active_drivers();
        (active > 0).then(|| self.income.iter().sum::<f64>() / active as f64)
    }

    /// Mean served tasks per active driver (Fig. 9's metric).
    #[must_use]
    pub fn mean_tasks_per_active_driver(&self) -> Option<f64> {
        let active = self.active_drivers();
        (active > 0).then(|| {
            self.tasks_per_driver
                .iter()
                .map(|&n| f64::from(n))
                .sum::<f64>()
                / active as f64
        })
    }

    /// Per-driver income (Σ margins), indexed by driver id.
    #[must_use]
    pub fn incomes(&self) -> &[f64] {
        &self.income
    }

    /// Renders the non-empty time buckets as an aligned text table
    /// (`bucket | published | served | rate | revenue | profit`).
    #[must_use]
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, b)| b.published > 0)
            .map(|(k, b)| {
                let start =
                    Timestamp::EPOCH + TimeDelta::from_secs(k as i64 * self.bucket_len.as_secs());
                vec![
                    format!("{start}"),
                    b.published.to_string(),
                    b.served.to_string(),
                    format!("{:.3}", b.service_rate()),
                    format!("{:.2}", b.revenue),
                    format!("{:.2}", b.profit),
                ]
            })
            .collect();
        render_table(
            &["bucket", "published", "served", "rate", "revenue", "profit"],
            &rows,
        )
    }
}

impl StreamSink for StreamMetrics {
    fn driver_online(&mut self, driver: &Driver) {
        let idx = driver.id.index();
        if self.income.len() <= idx {
            self.income.resize(idx + 1, 0.0);
            self.tasks_per_driver.resize(idx + 1, 0);
        }
    }

    fn dispatched(&mut self, task: &Task, event: &DispatchEvent) {
        let b = self.bucket_mut(task.publish_time);
        b.published += 1;
        b.served += 1;
        b.revenue += task.price.as_f64();
        b.profit += event.margin;
        self.totals.published += 1;
        self.totals.served += 1;
        self.totals.revenue += task.price.as_f64();
        self.totals.profit += event.margin;
        self.wait_mins_sum += event.wait.as_mins_f64();
        self.deadhead_km += event.deadhead_km;
        let d = event.driver.index();
        self.income[d] += event.margin;
        self.tasks_per_driver[d] += 1;
    }

    fn rejected(&mut self, task: &Task, _decision_time: Timestamp) {
        self.bucket_mut(task.publish_time).published += 1;
        self.totals.published += 1;
        self.rejected += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rideshare_core::{Market, MarketBuildOptions};
    use rideshare_online::{
        market_events, replay_stream, MaxMargin, SimulationOptions, Simulator, StreamOptions,
        StreamPolicy,
    };
    use rideshare_trace::{DriverModel, TraceConfig};

    fn run(seed: u64, tasks: usize, drivers: usize) -> (Market, StreamMetrics) {
        let trace = TraceConfig::porto()
            .with_seed(seed)
            .with_task_count(tasks)
            .with_driver_count(drivers, DriverModel::Hitchhiking)
            .generate();
        let market = Market::from_trace(&trace, &MarketBuildOptions::default());
        let mut metrics = StreamMetrics::hourly();
        let _ = replay_stream(
            market.speed(),
            market_events(&market),
            &mut StreamPolicy::Instant(&mut MaxMargin::new()),
            StreamOptions::default(),
            &mut metrics,
        );
        (market, metrics)
    }

    #[test]
    fn totals_match_materialized_objective() {
        let (market, metrics) = run(91, 250, 25);
        let materialized =
            Simulator::new(&market).run(&mut MaxMargin::new(), SimulationOptions::default());
        assert_eq!(metrics.served(), materialized.served);
        assert_eq!(metrics.rejected(), materialized.rejected);
        assert_eq!(metrics.published(), market.num_tasks());
        // Margins telescope to the Eq. 4 objective.
        let objective = materialized.total_profit(&market).as_f64();
        assert!(
            (metrics.profit() - objective).abs() < 1e-6,
            "streamed profit {} vs objective {objective}",
            metrics.profit()
        );
        let revenue = materialized.assignment.total_revenue(&market).as_f64();
        assert!((metrics.revenue() - revenue).abs() < 1e-6);
        assert!(
            (metrics.mean_wait_mins().unwrap() - materialized.mean_wait_mins().unwrap()).abs()
                < 1e-9
        );
        assert!((metrics.total_deadhead_km() - materialized.total_deadhead_km()).abs() < 1e-9);
    }

    #[test]
    fn buckets_sum_to_totals() {
        let (_, metrics) = run(92, 300, 15);
        let published: usize = metrics.buckets().iter().map(|b| b.published).sum();
        let served: usize = metrics.buckets().iter().map(|b| b.served).sum();
        let profit: f64 = metrics.buckets().iter().map(|b| b.profit).sum();
        assert_eq!(published, metrics.published());
        assert_eq!(served, metrics.served());
        assert!((profit - metrics.profit()).abs() < 1e-9);
    }

    #[test]
    fn per_driver_income_consistent() {
        let (market, metrics) = run(93, 200, 10);
        assert_eq!(metrics.incomes().len(), market.num_drivers());
        let total: f64 = metrics.incomes().iter().sum();
        assert!((total - metrics.profit()).abs() < 1e-9);
        assert!(metrics.active_drivers() <= market.num_drivers());
        if metrics.served() > 0 {
            assert!(metrics.mean_income_per_active_driver().is_some());
            assert!(metrics.mean_tasks_per_active_driver().unwrap() >= 1.0);
        }
    }

    #[test]
    fn render_is_well_formed() {
        let (_, metrics) = run(94, 120, 8);
        let table = metrics.render();
        assert!(table.contains("published"));
        assert!(table.lines().count() >= 2, "{table}");
    }

    #[test]
    fn empty_accumulator() {
        let metrics = StreamMetrics::hourly();
        assert_eq!(metrics.published(), 0);
        assert_eq!(metrics.service_rate(), 0.0);
        assert!(metrics.mean_wait_mins().is_none());
        assert!(metrics.mean_income_per_active_driver().is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bucket_rejected() {
        let _ = StreamMetrics::with_bucket(TimeDelta::ZERO);
    }
}
