//! Plain-text tables and series for experiment output.

/// A named data series: `(x, y)` points, e.g. performance ratio over the
/// number of drivers.
#[derive(Clone, PartialEq, Debug)]
pub struct Series {
    /// Curve label (e.g. `"Greedy"`).
    pub label: String,
    /// `(x, y)` points in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    #[must_use]
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Returns `true` if `y` never decreases along the series.
    #[must_use]
    pub fn is_non_decreasing(&self) -> bool {
        self.points.windows(2).all(|w| w[0].1 <= w[1].1 + 1e-12)
    }

    /// Returns `true` if `y` never increases along the series.
    #[must_use]
    pub fn is_non_increasing(&self) -> bool {
        self.points.windows(2).all(|w| w[0].1 + 1e-12 >= w[1].1)
    }
}

/// Renders an aligned plain-text table.
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
///
/// # Examples
///
/// ```
/// use rideshare_metrics::render_table;
/// let out = render_table(
///     &["drivers", "ratio"],
///     &[vec!["20".into(), "0.71".into()], vec!["300".into(), "0.89".into()]],
/// );
/// assert!(out.contains("drivers"));
/// assert!(out.lines().count() == 4); // header + rule + 2 rows
/// ```
#[must_use]
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for (i, r) in rows.iter().enumerate() {
        assert_eq!(
            r.len(),
            headers.len(),
            "row {i} has {} cells for {} headers",
            r.len(),
            headers.len()
        );
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        for (w, cell) in widths.iter_mut().zip(r) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|h| (*h).to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for r in rows {
        out.push_str(&fmt_row(r, &widths));
        out.push('\n');
    }
    out
}

/// Renders one or more series as a table with a shared x column — the
/// printable form of a paper figure.
///
/// All series must be sampled at the same x values.
///
/// # Panics
///
/// Panics if the series have differing x grids.
#[must_use]
pub fn render_series(x_label: &str, series: &[Series]) -> String {
    if series.is_empty() {
        return String::new();
    }
    let xs: Vec<f64> = series[0].points.iter().map(|p| p.0).collect();
    for s in series {
        let sx: Vec<f64> = s.points.iter().map(|p| p.0).collect();
        assert_eq!(sx, xs, "series '{}' has a different x grid", s.label);
    }
    let labels: Vec<&str> = series.iter().map(|s| s.label.as_str()).collect();
    let mut headers = vec![x_label];
    headers.extend(labels);
    let rows: Vec<Vec<String>> = xs
        .iter()
        .enumerate()
        .map(|(i, &x)| {
            let mut row = vec![format_num(x)];
            row.extend(series.iter().map(|s| format_num(s.points[i].1)));
            row
        })
        .collect();
    render_table(&headers, &rows)
}

/// Renders a row × column matrix (e.g. scenario × policy) as an aligned
/// table: the first column holds `row_labels` under the `corner` header,
/// the remaining columns hold `cells`.
///
/// # Panics
///
/// Panics if `cells` is not `row_labels.len()` rows of
/// `col_labels.len()` cells each.
///
/// # Examples
///
/// ```
/// use rideshare_metrics::render_pivot;
/// let out = render_pivot(
///     "scenario",
///     &["porto-day", "delivery"],
///     &["greedy", "nearest"],
///     &[vec!["91.2".into(), "55.0".into()], vec!["40.1".into(), "22.9".into()]],
/// );
/// assert!(out.contains("porto-day"));
/// assert_eq!(out.lines().count(), 4); // header + rule + 2 rows
/// ```
#[must_use]
pub fn render_pivot(
    corner: &str,
    row_labels: &[&str],
    col_labels: &[&str],
    cells: &[Vec<String>],
) -> String {
    assert_eq!(
        cells.len(),
        row_labels.len(),
        "{} cell rows for {} row labels",
        cells.len(),
        row_labels.len()
    );
    let mut headers = vec![corner];
    headers.extend(col_labels);
    let rows: Vec<Vec<String>> = row_labels
        .iter()
        .zip(cells)
        .map(|(label, row)| {
            let mut r = vec![(*label).to_string()];
            r.extend(row.iter().cloned());
            r
        })
        .collect();
    render_table(&headers, &rows)
}

fn format_num(v: f64) -> String {
    if (v - v.round()).abs() < 1e-9 && v.abs() < 1e9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.4}")
    }
}

/// Renders a series as a horizontal ASCII bar chart — a terminal-friendly
/// stand-in for the paper's figures.
///
/// Bars are scaled to the maximum `y`; non-positive values render empty.
///
/// # Examples
///
/// ```
/// use rideshare_metrics::{render_bars, Series};
/// let mut s = Series::new("revenue");
/// s.push(20.0, 100.0);
/// s.push(40.0, 300.0);
/// let chart = render_bars(&s, 20);
/// assert!(chart.lines().count() == 3); // title + 2 bars
/// assert!(chart.contains("█"));
/// ```
#[must_use]
pub fn render_bars(series: &Series, width: usize) -> String {
    let max = series
        .points
        .iter()
        .map(|p| p.1)
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let mut out = format!("{}\n", series.label);
    let x_width = series
        .points
        .iter()
        .map(|p| format_num(p.0).len())
        .max()
        .unwrap_or(1);
    for &(x, y) in &series.points {
        let filled = ((y.max(0.0) / max) * width as f64).round() as usize;
        out.push_str(&format!(
            "{:>x_width$} | {}{} {}\n",
            format_num(x),
            "█".repeat(filled),
            " ".repeat(width.saturating_sub(filled)),
            format_num(y),
        ));
    }
    // Trim the trailing newline for symmetric composition.
    out.pop();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_monotonicity_helpers() {
        let mut up = Series::new("up");
        up.push(1.0, 1.0);
        up.push(2.0, 2.0);
        assert!(up.is_non_decreasing());
        assert!(!up.is_non_increasing());
        let mut down = Series::new("down");
        down.push(1.0, 2.0);
        down.push(2.0, 1.0);
        assert!(down.is_non_increasing());
        assert!(!down.is_non_decreasing());
    }

    #[test]
    fn table_alignment() {
        let out = render_table(
            &["n", "value"],
            &[
                vec!["5".into(), "1.5".into()],
                vec!["500".into(), "12.25".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row 0 has")]
    fn mismatched_row_rejected() {
        let _ = render_table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn pivot_prefixes_row_labels() {
        let out = render_pivot(
            "scenario",
            &["a", "b"],
            &["p1", "p2"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("scenario") && lines[0].contains("p2"));
        assert!(lines[2].contains('a') && lines[2].contains('2'));
    }

    #[test]
    #[should_panic(expected = "cell rows for")]
    fn pivot_row_count_mismatch_rejected() {
        let _ = render_pivot("x", &["a"], &["p"], &[]);
    }

    #[test]
    fn series_rendering() {
        let mut a = Series::new("Greedy");
        a.push(20.0, 0.7111);
        a.push(40.0, 0.75);
        let mut b = Series::new("Nearest");
        b.push(20.0, 0.55);
        b.push(40.0, 0.6);
        let out = render_series("drivers", &[a, b]);
        assert!(out.contains("Greedy"));
        assert!(out.contains("0.7111"));
        assert!(out.contains("20"));
        assert_eq!(out.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "different x grid")]
    fn series_grid_mismatch_rejected() {
        let mut a = Series::new("a");
        a.push(1.0, 1.0);
        let mut b = Series::new("b");
        b.push(2.0, 1.0);
        let _ = render_series("x", &[a, b]);
    }

    #[test]
    fn integer_formatting() {
        assert_eq!(format_num(20.0), "20");
        assert_eq!(format_num(0.5), "0.5000");
    }

    #[test]
    fn bars_scale_to_max() {
        let mut s = Series::new("t");
        s.push(1.0, 50.0);
        s.push(2.0, 100.0);
        s.push(3.0, 0.0);
        let chart = render_bars(&s, 10);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 4);
        let bars: Vec<usize> = lines[1..].iter().map(|l| l.matches('█').count()).collect();
        assert_eq!(bars, vec![5, 10, 0]);
    }

    #[test]
    fn bars_handle_negative_and_empty() {
        let mut s = Series::new("neg");
        s.push(1.0, -5.0);
        let chart = render_bars(&s, 8);
        assert!(!chart.contains('█'));
        let empty = Series::new("none");
        assert_eq!(render_bars(&empty, 8), "none");
    }
}
