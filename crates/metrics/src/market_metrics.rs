//! Per-run market metrics (Figs. 6–9).

use rideshare_core::{Assignment, Market, Objective};

/// The market-level quantities of §VI-C, computed from one assignment.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct MarketMetrics {
    /// Number of drivers in the market (`N`).
    pub drivers: usize,
    /// Number of tasks in the market (`M`).
    pub tasks: usize,
    /// Tasks actually served.
    pub served: usize,
    /// Total revenue paid to drivers, `Σ xₙ,ₘ pₘ` (Fig. 6).
    pub total_revenue: f64,
    /// Drivers' total profit, Eq. 4.
    pub total_profit: f64,
    /// Fraction of tasks served (Fig. 7).
    pub served_rate: f64,
    /// Average revenue per driver (Fig. 8).
    pub avg_revenue_per_worker: f64,
    /// Average tasks per driver (Fig. 9).
    pub avg_tasks_per_worker: f64,
}

impl MarketMetrics {
    /// Computes the metrics of `assignment` on `market`.
    #[must_use]
    pub fn of(market: &Market, assignment: &Assignment) -> Self {
        let drivers = market.num_drivers();
        let tasks = market.num_tasks();
        let served = assignment.served_count();
        let total_revenue = assignment.total_revenue(market).as_f64();
        let total_profit = assignment
            .objective_value(market, Objective::Profit)
            .as_f64();
        let served_rate = if tasks == 0 {
            0.0
        } else {
            served as f64 / tasks as f64
        };
        let per_worker = |x: f64| {
            if drivers == 0 {
                0.0
            } else {
                x / drivers as f64
            }
        };
        Self {
            drivers,
            tasks,
            served,
            total_revenue,
            total_profit,
            served_rate,
            avg_revenue_per_worker: per_worker(total_revenue),
            avg_tasks_per_worker: per_worker(served as f64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rideshare_core::{solve_greedy, MarketBuildOptions};
    use rideshare_trace::{DriverModel, TraceConfig};

    fn run(drivers: usize) -> (Market, Assignment) {
        let trace = TraceConfig::porto()
            .with_seed(51)
            .with_task_count(150)
            .with_driver_count(drivers, DriverModel::Hitchhiking)
            .generate();
        let market = Market::from_trace(&trace, &MarketBuildOptions::default());
        let a = solve_greedy(&market, Objective::Profit).assignment;
        (market, a)
    }

    #[test]
    fn consistency_identities() {
        let (market, a) = run(20);
        let m = MarketMetrics::of(&market, &a);
        assert_eq!(m.drivers, 20);
        assert_eq!(m.tasks, 150);
        assert!((m.served_rate - m.served as f64 / 150.0).abs() < 1e-12);
        assert!((m.avg_revenue_per_worker - m.total_revenue / 20.0).abs() < 1e-9);
        assert!((m.avg_tasks_per_worker - m.served as f64 / 20.0).abs() < 1e-9);
        assert!(m.total_revenue >= m.total_profit, "profit nets out costs");
    }

    #[test]
    fn empty_assignment_zeroes() {
        let (market, _) = run(5);
        let m = MarketMetrics::of(&market, &Assignment::empty(5));
        assert_eq!(m.served, 0);
        assert_eq!(m.total_revenue, 0.0);
        assert_eq!(m.served_rate, 0.0);
        assert_eq!(m.avg_tasks_per_worker, 0.0);
    }

    #[test]
    fn market_density_trends() {
        // The §VI-C insight: more drivers → more revenue and service, but
        // less revenue per driver.
        let (small_market, small_a) = run(10);
        let (big_market, big_a) = run(120);
        let small = MarketMetrics::of(&small_market, &small_a);
        let big = MarketMetrics::of(&big_market, &big_a);
        assert!(big.total_revenue > small.total_revenue);
        assert!(big.served_rate > small.served_rate);
        assert!(big.avg_revenue_per_worker < small.avg_revenue_per_worker);
        assert!(big.avg_tasks_per_worker < small.avg_tasks_per_worker);
    }
}
