//! **rideshare-audit** — the workspace determinism & invariant auditor.
//!
//! Every engine in this workspace is cross-pinned byte-identical to its
//! siblings (replay ≡ serve ≡ sharded replay, exact metrics included).
//! That correctness story rests on source-level *determinism
//! invariants*: no hash-order iteration feeding decisions, no wall-clock
//! reads in dispatch, exact fixed-point metric accumulation, lossless
//! codec casts, typed errors on hostile-input paths. The equivalence
//! batteries catch a violation after the fact; this crate rejects it at
//! the source level, making the batteries the *second* line of defense.
//!
//! The pass is fully self-contained (no new dependencies, per the
//! vendored-shim policy): a hand-rolled comment/string/raw-string-aware
//! [`lexer`], a token-pattern rule engine ([`rules`]) with per-crate-tier
//! [`policy`] selection, and canonical [`report`] rendering (rustc-style
//! human diagnostics + byte-stable `rideshare-audit/1` JSON).
//!
//! Findings are silenced only by an inline waiver with a mandatory
//! reason — `// audit:allow(<rule>): <reason>` — and unused or
//! malformed waivers are findings themselves, so the ledger cannot
//! drift. `rideshare audit --check` exits non-zero unless the tree is
//! clean; the `workspace_clean` integration test enforces the same
//! baseline inside `cargo test`.
//!
//! # Examples
//!
//! ```
//! use rideshare_audit::rules::analyze_source;
//!
//! // A wall-clock read on a dispatch path is a finding…
//! let bad = "pub fn f() { let t = std::time::Instant::now(); }";
//! let analysis = analyze_source("crates/online/src/stream.rs", bad);
//! assert_eq!(analysis.findings.len(), 1);
//! assert!(!analysis.findings[0].waived);
//!
//! // …unless an explicit waiver with a reason covers the line.
//! let waived = "pub fn f() {\n    // audit:allow(wall-clock): operator display only\n    let t = std::time::Instant::now(); }";
//! let analysis = analyze_source("crates/online/src/stream.rs", waived);
//! assert!(analysis.findings.iter().all(|f| f.waived));
//! ```

pub mod lexer;
pub mod policy;
pub mod report;
pub mod rules;

use std::path::Path;

pub use report::AuditReport;
pub use rules::{Finding, Waiver};

/// A failure to read the tree being audited.
#[derive(Debug)]
pub enum AuditError {
    /// An I/O failure with the path it happened on.
    Io(String),
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditError::Io(msg) => write!(f, "audit I/O failure: {msg}"),
        }
    }
}

impl std::error::Error for AuditError {}

/// Audits the workspace rooted at `root` (the directory holding the
/// workspace `Cargo.toml`) and returns the full report.
///
/// Files are visited in sorted path order, so the report is
/// deterministic for a given tree.
///
/// # Errors
///
/// Returns [`AuditError::Io`] if the tree cannot be walked or a scanned
/// file cannot be read.
pub fn run_audit(root: &Path) -> Result<AuditReport, AuditError> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();

    let mut report = AuditReport::default();
    for rel in files {
        if !policy::is_scanned(&rel) {
            continue;
        }
        let full = root.join(&rel);
        let src = std::fs::read_to_string(&full)
            .map_err(|e| AuditError::Io(format!("{}: {e}", full.display())))?;
        report.files_scanned += 1;
        let analysis = rules::analyze_source(&rel, &src);
        report.waivers += analysis.waivers.len();
        report.findings.extend(analysis.findings);
    }
    Ok(report)
}

/// Directories never descended into, wherever they appear.
const SKIP_DIRS: &[&str] = &["target", ".git", "vendor", ".github"];

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), AuditError> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| AuditError::Io(format!("{}: {e}", dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(|e| AuditError::Io(format!("{}: {e}", dir.display())))?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                // `/`-separated form regardless of host platform.
                let rel: Vec<String> = rel
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect();
                out.push(rel.join("/"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walker_is_deterministic_and_policy_filtered() {
        // Audit this crate's own source tree rooted two levels up (the
        // workspace); the walk must succeed and visit a stable file set.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let a = run_audit(root).expect("audit walks the workspace");
        let b = run_audit(root).expect("audit walks the workspace");
        assert_eq!(a.files_scanned, b.files_scanned);
        assert_eq!(a.to_canonical_json(), b.to_canonical_json());
        assert!(a.files_scanned > 20, "the workspace has dozens of sources");
    }
}
