//! A hand-rolled, comment/string/raw-string-aware Rust lexer.
//!
//! The auditor's rules are token-pattern rules; everything rests on the
//! lexer never confusing code with non-code. The cases that matter (and
//! that the property tests in `tests/lexer_props.rs` hammer):
//!
//! - **line comments** (`//`, `///`, `//!`) run to end of line,
//! - **block comments** (`/* … */`) nest, per the Rust grammar,
//! - **string literals** honor escapes (`"\""` does not end early),
//! - **raw strings** (`r"…"`, `r#"…"#`, any hash count, plus `br`/`cr`
//!   prefixes) ignore both escapes and quotes until the matching
//!   `"##…#` fence,
//! - **lifetimes vs. char literals**: `'a` is a lifetime, `'a'` is a
//!   char, `'\''` is a char, `b'x'` is a byte char,
//! - **raw identifiers**: `r#match` is an identifier, `r#"…"#` is not.
//!
//! A miss in any of these would either let a rule fire inside a string
//! (false positive) or let real code hide inside a phantom string
//! (false negative — the dangerous direction). The lexer is total: it
//! never panics, and unterminated constructs simply extend to end of
//! input as one token.

/// What a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers like `r#match`).
    Ident,
    /// A lifetime such as `'a` or `'static` (no closing quote).
    Lifetime,
    /// A character literal (`'x'`, `'\n'`, `b'x'`).
    CharLit,
    /// Any string literal: plain, byte, C, or raw with any hash count.
    StrLit,
    /// A numeric literal (integer or float, any base, with suffix).
    NumLit,
    /// Operator or delimiter. Compound assignment and path separators
    /// are emitted as one token (`::`, `+=`, `->`, …).
    Punct,
    /// A `// …` comment (through end of line, marker included).
    LineComment,
    /// A `/* … */` comment (nesting honored, markers included).
    BlockComment,
}

/// One lexed token with its 1-based source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Exact source text of the token.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Token {
    /// True for tokens the rule engine matches against (everything that
    /// is not a comment).
    #[must_use]
    pub fn is_code(&self) -> bool {
        !matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Two-character operators emitted as single tokens. Order matters only
/// in that every entry is checked before falling back to one character.
const COMPOUND_PUNCT: &[&str] = &[
    "::", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "->", "=>", "==", "!=", "<=",
    ">=", "&&", "||", "..",
];

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn new(src: &str) -> Self {
        Self {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens, comments included. Total: consumes every
/// character of any input without panicking; unterminated strings or
/// block comments extend to end of input.
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        let token = if c == '/' && cur.peek(1) == Some('/') {
            lex_line_comment(&mut cur)
        } else if c == '/' && cur.peek(1) == Some('*') {
            lex_block_comment(&mut cur)
        } else if let Some(tok) = try_lex_string_prefix(&mut cur) {
            tok
        } else if c == '"' {
            lex_plain_string(&mut cur)
        } else if c == '\'' {
            lex_quote(&mut cur)
        } else if is_ident_start(c) {
            lex_ident(&mut cur)
        } else if c.is_ascii_digit() {
            lex_number(&mut cur)
        } else {
            lex_punct(&mut cur)
        };
        out.push(Token { line, col, ..token });
    }
    out
}

fn lex_line_comment(cur: &mut Cursor) -> Token {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    Token {
        kind: TokenKind::LineComment,
        text,
        line: 0,
        col: 0,
    }
}

fn lex_block_comment(cur: &mut Cursor) -> Token {
    let mut text = String::new();
    let mut depth = 0usize;
    while let Some(c) = cur.peek(0) {
        if c == '/' && cur.peek(1) == Some('*') {
            depth += 1;
            text.push('/');
            text.push('*');
            cur.bump();
            cur.bump();
        } else if c == '*' && cur.peek(1) == Some('/') {
            depth -= 1;
            text.push('*');
            text.push('/');
            cur.bump();
            cur.bump();
            if depth == 0 {
                break;
            }
        } else {
            text.push(c);
            cur.bump();
        }
    }
    Token {
        kind: TokenKind::BlockComment,
        text,
        line: 0,
        col: 0,
    }
}

/// Handles every literal that *starts like an identifier*: `r"…"`,
/// `r#"…"#`, `b"…"`, `br##"…"##`, `c"…"`, `cr#"…"#`, `b'x'`, and the
/// raw-identifier form `r#name`. Returns `None` when the `r`/`b`/`c` is
/// just the start of an ordinary identifier.
fn try_lex_string_prefix(cur: &mut Cursor) -> Option<Token> {
    let c = cur.peek(0)?;
    if !matches!(c, 'r' | 'b' | 'c') {
        return None;
    }
    // How many prefix chars before the quote machinery starts?
    let (prefix_len, raw) = match (c, cur.peek(1)) {
        ('r', Some('"')) => (1, true),
        ('r', Some('#')) => {
            // r#"…"# raw string or r#ident raw identifier: decided by
            // what follows the hashes.
            let mut k = 1;
            while cur.peek(k) == Some('#') {
                k += 1;
            }
            if cur.peek(k) == Some('"') {
                (1, true)
            } else {
                // Raw identifier r#name: lex as an Ident.
                cur.bump(); // r
                cur.bump(); // #
                let mut text = String::from("r#");
                while let Some(c) = cur.peek(0) {
                    if !is_ident_continue(c) {
                        break;
                    }
                    text.push(c);
                    cur.bump();
                }
                return Some(Token {
                    kind: TokenKind::Ident,
                    text,
                    line: 0,
                    col: 0,
                });
            }
        }
        ('b', Some('"')) => (1, false),
        ('b', Some('\'')) => {
            // Byte char literal b'x'.
            cur.bump(); // b
            let mut tok = lex_quote(cur);
            tok.text.insert(0, 'b');
            tok.kind = TokenKind::CharLit;
            return Some(tok);
        }
        ('b', Some('r')) if matches!(cur.peek(2), Some('"' | '#')) => (2, true),
        ('c', Some('"')) => (1, false),
        ('c', Some('r')) if matches!(cur.peek(2), Some('"' | '#')) => (2, true),
        _ => return None,
    };
    // For the 2-char prefixes, `br#x` (not a quote after hashes) is not
    // actually a string start; but `br` followed by `#` must check too.
    if raw && prefix_len == 2 && cur.peek(2) == Some('#') {
        let mut k = 2;
        while cur.peek(k) == Some('#') {
            k += 1;
        }
        if cur.peek(k) != Some('"') {
            return None; // e.g. `br#ident` — not valid Rust, lex as idents
        }
    }
    let mut text = String::new();
    for _ in 0..prefix_len {
        text.push(cur.bump().unwrap_or_default());
    }
    if raw {
        // Count fence hashes, then the opening quote.
        let mut hashes = 0usize;
        while cur.peek(0) == Some('#') {
            hashes += 1;
            text.push('#');
            cur.bump();
        }
        if cur.peek(0) == Some('"') {
            text.push('"');
            cur.bump();
        }
        // Scan for `"` followed by `hashes` hashes. No escapes in raw
        // strings — that is the whole point.
        'scan: while let Some(c) = cur.peek(0) {
            if c == '"' {
                let mut ok = true;
                for k in 0..hashes {
                    if cur.peek(1 + k) != Some('#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    text.push('"');
                    cur.bump();
                    for _ in 0..hashes {
                        text.push('#');
                        cur.bump();
                    }
                    break 'scan;
                }
            }
            text.push(c);
            cur.bump();
        }
    } else {
        // b"…" / c"…": escape-aware like a plain string.
        let mut tok = lex_plain_string(cur);
        tok.text.insert_str(0, &text);
        return Some(tok);
    }
    Some(Token {
        kind: TokenKind::StrLit,
        text,
        line: 0,
        col: 0,
    })
}

fn lex_plain_string(cur: &mut Cursor) -> Token {
    let mut text = String::new();
    text.push(cur.bump().unwrap_or_default()); // opening "
    while let Some(c) = cur.peek(0) {
        if c == '\\' {
            text.push(c);
            cur.bump();
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
            continue;
        }
        text.push(c);
        cur.bump();
        if c == '"' {
            break;
        }
    }
    Token {
        kind: TokenKind::StrLit,
        text,
        line: 0,
        col: 0,
    }
}

/// Lexes a `'`: lifetime, loop label, or char literal.
fn lex_quote(cur: &mut Cursor) -> Token {
    let mut text = String::new();
    text.push(cur.bump().unwrap_or_default()); // '
    match cur.peek(0) {
        // `'a'` is a char, `'a` / `'abc` is a lifetime: decided by
        // whether a quote immediately follows the identifier run.
        Some(c) if is_ident_start(c) => {
            let mut k = 1;
            while cur.peek(k).is_some_and(is_ident_continue) {
                k += 1;
            }
            if cur.peek(k) == Some('\'') && k == 1 {
                // 'x' — a one-char literal.
                text.push(cur.bump().unwrap_or_default());
                text.push(cur.bump().unwrap_or_default());
                Token {
                    kind: TokenKind::CharLit,
                    text,
                    line: 0,
                    col: 0,
                }
            } else {
                // Lifetime or label: consume the identifier only.
                while cur.peek(0).is_some_and(is_ident_continue) {
                    text.push(cur.bump().unwrap_or_default());
                }
                Token {
                    kind: TokenKind::Lifetime,
                    text,
                    line: 0,
                    col: 0,
                }
            }
        }
        // Escape: definitely a char literal, e.g. '\n', '\'', '\u{1F600}'.
        Some('\\') => {
            text.push(cur.bump().unwrap_or_default());
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
            while let Some(c) = cur.peek(0) {
                text.push(c);
                cur.bump();
                if c == '\'' {
                    break;
                }
            }
            Token {
                kind: TokenKind::CharLit,
                text,
                line: 0,
                col: 0,
            }
        }
        // Any other single char: ' ', '$', '∞'… closed by the next quote.
        Some(_) => {
            text.push(cur.bump().unwrap_or_default());
            if cur.peek(0) == Some('\'') {
                text.push(cur.bump().unwrap_or_default());
            }
            Token {
                kind: TokenKind::CharLit,
                text,
                line: 0,
                col: 0,
            }
        }
        None => Token {
            kind: TokenKind::CharLit,
            text,
            line: 0,
            col: 0,
        },
    }
}

fn lex_ident(cur: &mut Cursor) -> Token {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if !is_ident_continue(c) {
            break;
        }
        text.push(c);
        cur.bump();
    }
    Token {
        kind: TokenKind::Ident,
        text,
        line: 0,
        col: 0,
    }
}

fn lex_number(cur: &mut Cursor) -> Token {
    let mut text = String::new();
    // Integer part (covers 0x/0b/0o bodies and suffixes like u32 too —
    // alphanumerics glue onto the literal, exactly as rustc lexes them).
    while let Some(c) = cur.peek(0) {
        if c.is_alphanumeric() || c == '_' {
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    // Fractional part only when a digit follows the dot — `1..n` must
    // leave the range operator alone, and `x.1.0` tuple chains stop at
    // the first non-digit continuation.
    if cur.peek(0) == Some('.') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
        text.push('.');
        cur.bump();
        while let Some(c) = cur.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
    }
    // Exponent sign: `1e-9` / `2.5E+10` keep the sign inside the number.
    if text.ends_with(['e', 'E'])
        && matches!(cur.peek(0), Some('+' | '-'))
        && cur.peek(1).is_some_and(|c| c.is_ascii_digit())
    {
        text.push(cur.bump().unwrap_or_default());
        while let Some(c) = cur.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
    }
    Token {
        kind: TokenKind::NumLit,
        text,
        line: 0,
        col: 0,
    }
}

fn lex_punct(cur: &mut Cursor) -> Token {
    let c0 = cur.peek(0).unwrap_or_default();
    if let Some(c1) = cur.peek(1) {
        let pair: String = [c0, c1].iter().collect();
        if COMPOUND_PUNCT.contains(&pair.as_str()) {
            cur.bump();
            cur.bump();
            return Token {
                kind: TokenKind::Punct,
                text: pair,
                line: 0,
                col: 0,
            };
        }
    }
    cur.bump();
    Token {
        kind: TokenKind::Punct,
        text: c0.to_string(),
        line: 0,
        col: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn code_inside_strings_is_not_code() {
        let toks = kinds(r#"let s = "HashMap::new() // not a comment";"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::StrLit && t.contains("HashMap")));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "HashMap"));
        assert!(!toks.iter().any(|(k, _)| *k == TokenKind::LineComment));
    }

    #[test]
    fn raw_strings_swallow_quotes_and_escapes() {
        let src = "let s = r#\"she said \"hi\\\" and left\"#; x.iter()";
        let toks = kinds(src);
        let s = toks
            .iter()
            .find(|(k, _)| *k == TokenKind::StrLit)
            .map(|(_, t)| t.clone())
            .unwrap_or_default();
        assert!(s.contains("she said"));
        // The iter() *after* the raw string is real code again.
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "iter"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still comment */ b");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Ident).count(),
            2
        );
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::BlockComment)
                .count(),
            1
        );
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::CharLit)
                .count(),
            2
        );
    }

    #[test]
    fn raw_identifier_is_ident_not_string() {
        let toks = kinds("let r#match = 1; let s = r#\"x\"#;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "r#match"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::StrLit && t.contains('x')));
    }

    #[test]
    fn positions_are_one_based_and_accurate() {
        let toks = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let toks = kinds("for i in 0..n {}");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Punct && t == ".."));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::NumLit && t == "0"));
    }

    #[test]
    fn unterminated_constructs_are_total() {
        // Must not panic, must consume everything.
        let _ = lex("\"unterminated");
        let _ = lex("/* unterminated");
        let _ = lex("r##\"unterminated");
        let _ = lex("'");
        let _ = lex("b'");
    }

    #[test]
    fn compound_punct_is_fused() {
        let toks = kinds("x += 1; y::z; a -> b");
        for want in ["+=", "::", "->"] {
            assert!(
                toks.iter()
                    .any(|(k, t)| *k == TokenKind::Punct && t == want),
                "missing {want}"
            );
        }
    }
}
