//! Audit report rendering: rustc-style human diagnostics and the
//! canonical `rideshare-audit/1` JSON schema.
//!
//! The JSON form follows the workspace's canonical-JSON conventions
//! (fixed key order, no timestamps, nothing machine-dependent), so a
//! report is byte-stable across runs on the same tree and diffable in
//! CI like the sweep and metrics snapshots.

use crate::rules::Finding;

/// The result of auditing a workspace tree.
#[derive(Debug, Default)]
pub struct AuditReport {
    /// Every finding, waived and unwaived, sorted by (path, line, col).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files the policy put in scope.
    pub files_scanned: usize,
    /// Number of well-formed waivers parsed across the tree.
    pub waivers: usize,
}

impl AuditReport {
    /// Findings not silenced by a waiver — the set that fails the build.
    pub fn unwaived(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.waived)
    }

    /// Findings silenced by a waiver.
    pub fn waived(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.waived)
    }

    /// True when the tree is clean: zero unwaived findings (unused and
    /// malformed waivers count as findings, so they fail too).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.unwaived().next().is_none()
    }

    /// Renders rustc-style human diagnostics plus a one-line summary.
    /// Waived findings are listed only with `verbose`.
    #[must_use]
    pub fn render_human(&self, verbose: bool) -> String {
        let mut out = String::new();
        for f in &self.findings {
            if f.waived && !verbose {
                continue;
            }
            let severity = if f.waived { "waived" } else { "error" };
            out.push_str(&format!("{severity}[{}]: {}\n", f.rule, f.message));
            out.push_str(&format!("  --> {}:{}:{}\n", f.path, f.line, f.col));
            let line_no = f.line.to_string();
            let pad = " ".repeat(line_no.len());
            out.push_str(&format!("{pad} |\n"));
            out.push_str(&format!("{line_no} | {}\n", f.excerpt));
            let caret_pad = " ".repeat(f.col.saturating_sub(1) as usize);
            out.push_str(&format!("{pad} | {caret_pad}^\n"));
            if let Some(reason) = &f.reason {
                out.push_str(&format!("{pad} = waived: {reason}\n"));
            } else {
                out.push_str(&format!(
                    "{pad} = help: fix it, or waive with `// audit:allow({}): <reason>`\n",
                    f.rule
                ));
            }
            out.push('\n');
        }
        let unwaived = self.unwaived().count();
        let waived = self.waived().count();
        out.push_str(&format!(
            "audit: {} file(s) scanned, {} finding(s) ({} unwaived, {} waived), {} waiver(s)\n",
            self.files_scanned,
            self.findings.len(),
            unwaived,
            waived,
            self.waivers,
        ));
        out
    }

    /// The canonical `rideshare-audit/1` JSON report: fixed key order,
    /// findings sorted by (path, line, col, rule), byte-stable for a
    /// given tree.
    #[must_use]
    pub fn to_canonical_json(&self) -> String {
        let mut s = String::from("{\"schema\":\"rideshare-audit/1\"");
        s.push_str(&format!(",\"files_scanned\":{}", self.files_scanned));
        s.push_str(&format!(",\"waivers\":{}", self.waivers));
        s.push_str(&format!(",\"unwaived\":{}", self.unwaived().count()));
        s.push_str(&format!(",\"waived\":{}", self.waived().count()));
        s.push_str(",\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"rule\":{},\"path\":{},\"line\":{},\"col\":{},\"waived\":{},\"message\":{},\"excerpt\":{}",
                json_str(f.rule),
                json_str(&f.path),
                f.line,
                f.col,
                f.waived,
                json_str(&f.message),
                json_str(f.excerpt.trim()),
            ));
            if let Some(reason) = &f.reason {
                s.push_str(&format!(",\"reason\":{}", json_str(reason)));
            }
            s.push('}');
        }
        s.push_str("]}");
        s
    }
}

/// Escapes `v` as a JSON string literal (quotes included).
#[must_use]
pub fn json_str(v: &str) -> String {
    let mut s = String::with_capacity(v.len() + 2);
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
            c => s.push(c),
        }
    }
    s.push('"');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(waived: bool) -> Finding {
        Finding {
            rule: crate::rules::WALL_CLOCK,
            path: "crates/x/src/lib.rs".to_string(),
            line: 3,
            col: 9,
            message: "`Instant::now()` reads the wall clock".to_string(),
            excerpt: "let t = Instant::now();".to_string(),
            waived,
            reason: waived.then(|| "timing display only".to_string()),
        }
    }

    #[test]
    fn human_report_is_rustc_shaped() {
        let report = AuditReport {
            findings: vec![finding(false)],
            files_scanned: 1,
            waivers: 0,
        };
        let text = report.render_human(false);
        assert!(text.contains("error[wall-clock]"));
        assert!(text.contains("--> crates/x/src/lib.rs:3:9"));
        assert!(text.contains("3 | let t = Instant::now();"));
        assert!(text.contains("audit:allow(wall-clock)"));
    }

    #[test]
    fn waived_findings_hidden_unless_verbose() {
        let report = AuditReport {
            findings: vec![finding(true)],
            files_scanned: 1,
            waivers: 1,
        };
        assert!(!report.render_human(false).contains("waived[wall-clock]"));
        assert!(report.render_human(true).contains("waived[wall-clock]"));
        assert!(report.is_clean());
    }

    #[test]
    fn json_schema_and_key_order_pinned() {
        let report = AuditReport {
            findings: vec![finding(true)],
            files_scanned: 2,
            waivers: 1,
        };
        let json = report.to_canonical_json();
        assert!(json.starts_with("{\"schema\":\"rideshare-audit/1\",\"files_scanned\":2,\"waivers\":1,\"unwaived\":0,\"waived\":1,\"findings\":["));
        assert!(json.contains("\"rule\":\"wall-clock\""));
        assert!(json.contains("\"reason\":\"timing display only\""));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn json_escaping_is_safe() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }
}
