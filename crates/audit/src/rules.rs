//! The determinism/invariant rules and the token-pattern engine that
//! fires them.
//!
//! Each rule protects one invariant the equivalence batteries otherwise
//! only catch after the fact (see `docs/INVARIANTS.md` at the workspace
//! root for the catalog):
//!
//! - [`ITER_ORDER`]: `HashMap`/`HashSet` iteration in dispatch/metrics
//!   crates — iteration order is seeded per-process, so any decision or
//!   serialized output derived from it breaks byte-identity.
//! - [`WALL_CLOCK`]: `Instant::now` / `SystemTime` / `thread::sleep`
//!   outside the bench harness — replay determinism forbids reading the
//!   host clock on any dispatch path.
//! - [`FLOAT_ACCUM`]: float compound-assignment or `sum::<f64>()` in
//!   the metrics crate — cross-shard exactness rests on the i128
//!   fixed-point accumulators (PR 5), not on float addition order.
//! - [`AS_CAST`]: numeric `as` casts in the wire/rtb codecs — a
//!   truncating cast corrupts frames silently; widen with `From` or
//!   waive with the proof it cannot truncate.
//! - [`UNWRAP_PANIC`]: `unwrap`/`expect`/`panic!` in the ingest/serve
//!   boundary — hostile feeds must surface typed `IngestError`s, never
//!   panics.
//!
//! Findings inside `#[cfg(test)]` / `#[test]` items are skipped: tests
//! may panic and read clocks at will. A finding is silenced only by an
//! inline waiver —
//!
//! ```text
//! // audit:allow(<rule>): <reason>
//! ```
//!
//! — on the offending line or on a comment line directly above it. The
//! reason is mandatory and unused waivers are findings themselves, so
//! the waiver ledger can never drift from the code.

use crate::lexer::{lex, Token, TokenKind};

/// Rule id: `HashMap`/`HashSet` iteration in the dispatch/metrics tier.
pub const ITER_ORDER: &str = "iter-order";
/// Rule id: wall-clock reads outside the bench harness.
pub const WALL_CLOCK: &str = "wall-clock";
/// Rule id: float accumulation in the metrics crate.
pub const FLOAT_ACCUM: &str = "float-accum";
/// Rule id: numeric `as` casts in the binary codecs.
pub const AS_CAST: &str = "as-cast";
/// Rule id: `unwrap`/`expect`/`panic!` on hostile-input paths.
pub const UNWRAP_PANIC: &str = "unwrap-panic";
/// Meta rule id: a waiver that silenced nothing.
pub const UNUSED_WAIVER: &str = "unused-waiver";
/// Meta rule id: a waiver the auditor could not parse (missing reason,
/// unknown rule name).
pub const BAD_WAIVER: &str = "bad-waiver";

/// Every real (waivable) rule id, in canonical report order.
pub const RULES: &[&str] = &[ITER_ORDER, WALL_CLOCK, FLOAT_ACCUM, AS_CAST, UNWRAP_PANIC];

/// One audit finding, waived or not.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired (one of the ids in this module).
    pub rule: &'static str,
    /// Workspace-relative `/`-separated path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong, specifically.
    pub message: String,
    /// The full source line the finding points into.
    pub excerpt: String,
    /// True when an `audit:allow` waiver covers this finding.
    pub waived: bool,
    /// The waiver's mandatory reason, when waived.
    pub reason: Option<String>,
}

/// An `// audit:allow(rule): reason` comment, located and parsed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Waiver {
    /// The rule id the waiver names.
    pub rule: String,
    /// The mandatory justification after the colon.
    pub reason: String,
    /// 1-based line of the comment itself.
    pub line: u32,
    /// The code line this waiver covers (the comment's own line for a
    /// trailing waiver, the next code line for a standalone one).
    pub target_line: u32,
}

/// Everything the engine extracted from one file.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// All findings, waived and unwaived, in source order.
    pub findings: Vec<Finding>,
    /// Parsed well-formed waivers (used or not).
    pub waivers: Vec<Waiver>,
}

/// Analyzes one source file under the rules `policy::rules_for(rel)`
/// selects. `rel` is the workspace-relative path used in reports.
#[must_use]
pub fn analyze_source(rel: &str, src: &str) -> FileAnalysis {
    let rules = crate::policy::rules_for(rel);
    let tokens = lex(src);
    let lines: Vec<&str> = src.lines().collect();
    let excerpt = |line: u32| -> String {
        lines
            .get(line as usize - 1)
            .map(|l| (*l).to_string())
            .unwrap_or_default()
    };

    let mut analysis = FileAnalysis::default();
    let (waivers, mut bad) = extract_waivers(rel, &tokens);
    for f in &mut bad {
        f.excerpt = excerpt(f.line);
    }
    analysis.waivers = waivers;

    let code: Vec<&Token> = tokens.iter().filter(|t| t.is_code()).collect();
    let skipped = test_line_ranges(&code);
    let in_test = |line: u32| skipped.iter().any(|&(lo, hi)| (lo..=hi).contains(&line));

    let mut raw: Vec<Finding> = Vec::new();
    if !rules.is_empty() {
        let hash_bindings = collect_bindings(&code, &["HashMap", "HashSet"]);
        let float_bindings = collect_bindings(&code, &["f32", "f64"]);
        for rule in &rules {
            let hits = match *rule {
                ITER_ORDER => match_iter_order(&code, &hash_bindings),
                WALL_CLOCK => match_wall_clock(&code),
                FLOAT_ACCUM => match_float_accum(&code, &float_bindings),
                AS_CAST => match_as_cast(&code),
                UNWRAP_PANIC => match_unwrap_panic(&code),
                _ => Vec::new(),
            };
            for (tok_line, tok_col, message) in hits {
                if in_test(tok_line) {
                    continue;
                }
                raw.push(Finding {
                    rule,
                    path: rel.to_string(),
                    line: tok_line,
                    col: tok_col,
                    message,
                    excerpt: excerpt(tok_line),
                    waived: false,
                    reason: None,
                });
            }
        }
    }
    raw.sort_by_key(|f| (f.line, f.col, f.rule));

    // Waiver application: a waiver covers findings of its rule on its
    // target line. Track per-waiver usage for the unused-waiver rule.
    let mut used = vec![false; analysis.waivers.len()];
    for f in &mut raw {
        for (w, used) in analysis.waivers.iter().zip(used.iter_mut()) {
            if w.rule == f.rule && w.target_line == f.line {
                f.waived = true;
                f.reason = Some(w.reason.clone());
                *used = true;
            }
        }
    }
    analysis.findings = raw;

    for (w, used) in analysis.waivers.iter().zip(&used) {
        if !used && !in_test(w.line) {
            analysis.findings.push(Finding {
                rule: UNUSED_WAIVER,
                path: rel.to_string(),
                line: w.line,
                col: 1,
                message: format!(
                    "waiver `audit:allow({})` silences nothing on line {}",
                    w.rule, w.target_line
                ),
                excerpt: excerpt(w.line),
                waived: false,
                reason: None,
            });
        }
    }
    analysis.findings.extend(bad);
    analysis.findings.sort_by_key(|f| (f.line, f.col, f.rule));
    analysis
}

/// Parses every `audit:allow` occurrence out of the comment tokens.
/// Returns well-formed waivers plus `bad-waiver` findings for the rest.
fn extract_waivers(rel: &str, tokens: &[Token]) -> (Vec<Waiver>, Vec<Finding>) {
    // Lines that contain at least one code token, for target resolution.
    let code_lines: Vec<u32> = {
        let mut v: Vec<u32> = tokens
            .iter()
            .filter(|t| t.is_code())
            .map(|t| t.line)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let mut waivers = Vec::new();
    let mut bad = Vec::new();
    for t in tokens {
        if t.is_code() {
            continue;
        }
        // Waivers live in plain comments only. Doc comments (`///`,
        // `//!`, `/**`, `/*!`) *describe* the waiver syntax — the
        // auditor's own documentation must not register as waivers.
        let is_doc = t.text.starts_with("///")
            || t.text.starts_with("//!")
            || t.text.starts_with("/**")
            || t.text.starts_with("/*!");
        if is_doc {
            continue;
        }
        let Some(at) = t.text.find("audit:allow") else {
            continue;
        };
        let rest = &t.text[at + "audit:allow".len()..];
        let mut push_bad = |message: String| {
            bad.push(Finding {
                rule: BAD_WAIVER,
                path: rel.to_string(),
                line: t.line,
                col: t.col,
                message,
                excerpt: String::new(),
                waived: false,
                reason: None,
            });
        };
        let Some(rest) = rest.strip_prefix('(') else {
            push_bad("malformed waiver: expected `audit:allow(<rule>): <reason>`".to_string());
            continue;
        };
        let Some(close) = rest.find(')') else {
            push_bad("malformed waiver: unclosed `(` in `audit:allow(<rule>)`".to_string());
            continue;
        };
        let rule = rest[..close].trim().to_string();
        if !RULES.contains(&rule.as_str()) {
            push_bad(format!(
                "unknown rule `{rule}` in waiver (known: {})",
                RULES.join(", ")
            ));
            continue;
        }
        let after = rest[close + 1..].trim_start();
        let Some(reason) = after.strip_prefix(':') else {
            push_bad(format!(
                "waiver for `{rule}` is missing its mandatory `: <reason>`"
            ));
            continue;
        };
        let reason = reason.trim().trim_end_matches("*/").trim().to_string();
        if reason.is_empty() {
            push_bad(format!("waiver for `{rule}` has an empty reason"));
            continue;
        }
        // Trailing waiver (code before the comment on the same line)
        // covers its own line; a standalone comment line covers the
        // next line that has code on it.
        let own_line_has_code = tokens
            .iter()
            .any(|o| o.is_code() && o.line == t.line && o.col < t.col);
        let target_line = if own_line_has_code {
            t.line
        } else {
            code_lines
                .iter()
                .copied()
                .find(|&l| l > t.line)
                .unwrap_or(0)
        };
        waivers.push(Waiver {
            rule,
            reason,
            line: t.line,
            target_line,
        });
    }
    (waivers, bad)
}

/// Line ranges covered by `#[cfg(test)]` / `#[test]` items (inclusive).
///
/// After the attribute (and any further stacked attributes), the item
/// body is the brace-balanced block starting at the next `{`; an item
/// that ends with `;` before any `{` (e.g. `#[cfg(test)] use …;`) spans
/// only to that semicolon.
fn test_line_ranges(code: &[&Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if !(code[i].kind == TokenKind::Punct && code[i].text == "#") {
            i += 1;
            continue;
        }
        let Some(end) = attr_end(code, i) else {
            i += 1;
            continue;
        };
        if !attr_is_test(code, i, end) {
            i = end + 1;
            continue;
        }
        let start_line = code[i].line;
        // Skip further stacked attributes.
        let mut j = end + 1;
        while j < code.len() && code[j].kind == TokenKind::Punct && code[j].text == "#" {
            match attr_end(code, j) {
                Some(e) => j = e + 1,
                None => break,
            }
        }
        // Find the item extent: first `{` (then match braces) or `;`.
        let mut depth = 0usize;
        let mut end_line = start_line;
        while j < code.len() {
            let t = code[j];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            end_line = t.line;
                            break;
                        }
                    }
                    ";" if depth == 0 => {
                        end_line = t.line;
                        break;
                    }
                    _ => {}
                }
            }
            end_line = t.line;
            j += 1;
        }
        ranges.push((start_line, end_line));
        i = j + 1;
    }
    ranges
}

/// The index of the `]` closing the attribute whose `#` is at `i`.
fn attr_end(code: &[&Token], i: usize) -> Option<usize> {
    let mut j = i + 1;
    // `#![…]` inner attributes too.
    if j < code.len() && code[j].kind == TokenKind::Punct && code[j].text == "!" {
        j += 1;
    }
    if !(j < code.len() && code[j].kind == TokenKind::Punct && code[j].text == "[") {
        return None;
    }
    let mut depth = 0usize;
    while j < code.len() {
        if code[j].kind == TokenKind::Punct {
            match code[j].text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(j);
                    }
                }
                _ => {}
            }
        }
        j += 1;
    }
    None
}

/// Whether the attribute spanning `i..=end` is `#[test]` or contains
/// `cfg(test)` (covers `#[cfg(test)]` and `#[cfg(all(test, …))]`).
fn attr_is_test(code: &[&Token], i: usize, end: usize) -> bool {
    let body: Vec<&str> = code[i..=end].iter().map(|t| t.text.as_str()).collect();
    if body.len() == 4 && body[2] == "test" {
        return true; // #[test]
    }
    body.windows(3)
        .any(|w| w[0] == "cfg" && w[1] == "(" && w[2] == "test")
        || body
            .windows(2)
            .any(|w| (w[0] == "test" && w[1] == ",") || (w[0] == "," && w[1] == "test"))
            && body.contains(&"cfg")
}

/// Flow-insensitive symbol pass: identifiers (bindings, struct fields,
/// parameters) whose declared or constructed type names one of `types`.
///
/// Catches `name: HashMap<…>` annotations (any path prefix) and
/// `let [mut] name = [path::]HashMap::new()/with_capacity/from/default()`.
fn collect_bindings(code: &[&Token], types: &[&str]) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for i in 0..code.len() {
        let t = code[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        // `name : [path ::]* Type` — annotation form.
        if matches!(code.get(i + 1), Some(c) if c.kind == TokenKind::Punct && c.text == ":") {
            let mut j = i + 2;
            // Skip reference/lifetime/mut noise and a bounded path prefix.
            let mut hops = 0;
            while j < code.len() && hops < 10 {
                let c = code[j];
                let is_path_sep = c.kind == TokenKind::Punct && (c.text == "::" || c.text == "&");
                let is_lifetime = c.kind == TokenKind::Lifetime;
                let is_mut = c.kind == TokenKind::Ident && c.text == "mut";
                let is_type = c.kind == TokenKind::Ident && types.contains(&c.text.as_str());
                let is_path_ident = c.kind == TokenKind::Ident
                    && matches!(code.get(j + 1), Some(n) if n.kind == TokenKind::Punct && n.text == "::");
                if is_type {
                    out.push(t.text.clone());
                    break;
                } else if is_path_sep || is_lifetime || is_mut || is_path_ident {
                    j += 1;
                    hops += 1;
                } else {
                    break;
                }
            }
        }
        // `let [mut] name = … Type :: new(…)` — constructor form.
        if t.text == "let" {
            let mut j = i + 1;
            if matches!(code.get(j), Some(c) if c.kind == TokenKind::Ident && c.text == "mut") {
                j += 1;
            }
            let Some(name) = code.get(j).filter(|c| c.kind == TokenKind::Ident) else {
                continue;
            };
            if !matches!(code.get(j + 1), Some(c) if c.kind == TokenKind::Punct && c.text == "=") {
                continue;
            }
            let ctor = &["new", "with_capacity", "from", "default", "from_iter"];
            for k in (j + 2)..code.len().min(j + 14) {
                let c = code[k];
                if c.kind == TokenKind::Punct && (c.text == ";" || c.text == "{") {
                    break;
                }
                if c.kind == TokenKind::Ident
                    && types.contains(&c.text.as_str())
                    && matches!(code.get(k + 1), Some(n) if n.kind == TokenKind::Punct && n.text == "::")
                    && matches!(code.get(k + 2), Some(n) if n.kind == TokenKind::Ident && ctor.contains(&n.text.as_str()))
                {
                    out.push(name.text.clone());
                    break;
                }
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

type Hit = (u32, u32, String);

/// Iteration methods whose order is the hash-seeded one.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

fn match_iter_order(code: &[&Token], hash_bindings: &[String]) -> Vec<Hit> {
    let is_hash = |name: &str| {
        hash_bindings
            .binary_search_by(|b| b.as_str().cmp(name))
            .is_ok()
    };
    let mut hits = Vec::new();
    for i in 0..code.len() {
        let t = code[i];
        // `binding.iter()` and friends.
        if t.kind == TokenKind::Ident
            && ITER_METHODS.contains(&t.text.as_str())
            && matches!(code.get(i.wrapping_sub(1)), Some(c) if c.kind == TokenKind::Punct && c.text == ".")
            && matches!(code.get(i + 1), Some(c) if c.kind == TokenKind::Punct && c.text == "(")
        {
            if let Some(recv) = code.get(i.wrapping_sub(2)) {
                if recv.kind == TokenKind::Ident && is_hash(&recv.text) {
                    hits.push((
                        recv.line,
                        recv.col,
                        format!(
                            "`{}.{}()` iterates a HashMap/HashSet in hash order",
                            recv.text, t.text
                        ),
                    ));
                }
            }
        }
        // `for pat in [&][mut] binding {` — direct IntoIterator loop.
        if t.kind == TokenKind::Ident && t.text == "for" {
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut found_in = None;
            while j < code.len() && j < i + 40 {
                let c = code[j];
                if c.kind == TokenKind::Punct {
                    match c.text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "{" | ";" => break,
                        _ => {}
                    }
                }
                if depth == 0 && c.kind == TokenKind::Ident && c.text == "in" {
                    found_in = Some(j);
                    break;
                }
                j += 1;
            }
            if let Some(at) = found_in {
                // Expression tokens until the loop body `{`.
                let mut expr: Vec<&Token> = Vec::new();
                let mut k = at + 1;
                while k < code.len() && k < at + 8 {
                    let c = code[k];
                    if c.kind == TokenKind::Punct && c.text == "{" {
                        break;
                    }
                    expr.push(c);
                    k += 1;
                }
                // Strip leading `&` / `&mut`.
                let mut e: &[&Token] = &expr;
                while let Some((first, rest)) = e.split_first() {
                    let noise = (first.kind == TokenKind::Punct && first.text == "&")
                        || (first.kind == TokenKind::Ident && first.text == "mut");
                    if noise {
                        e = rest;
                    } else {
                        break;
                    }
                }
                if let [only] = e {
                    if only.kind == TokenKind::Ident && is_hash(&only.text) {
                        hits.push((
                            only.line,
                            only.col,
                            format!(
                                "`for … in {}` iterates a HashMap/HashSet in hash order",
                                only.text
                            ),
                        ));
                    }
                }
            }
        }
    }
    hits
}

fn match_wall_clock(code: &[&Token]) -> Vec<Hit> {
    let mut hits = Vec::new();
    for i in 0..code.len() {
        let t = code[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let next_is = |k: usize, text: &str| matches!(code.get(i + k), Some(c) if c.text == text);
        if t.text == "Instant" && next_is(1, "::") && next_is(2, "now") {
            hits.push((
                t.line,
                t.col,
                "`Instant::now()` reads the wall clock".to_string(),
            ));
        } else if t.text == "SystemTime" {
            hits.push((
                t.line,
                t.col,
                "`SystemTime` reads the wall clock".to_string(),
            ));
        } else if t.text == "thread" && next_is(1, "::") && next_is(2, "sleep") {
            hits.push((
                t.line,
                t.col,
                "`thread::sleep` makes behavior timing-dependent".to_string(),
            ));
        }
    }
    hits
}

fn match_float_accum(code: &[&Token], float_bindings: &[String]) -> Vec<Hit> {
    let is_float = |name: &str| {
        float_bindings
            .binary_search_by(|b| b.as_str().cmp(name))
            .is_ok()
    };
    let mut hits = Vec::new();
    for i in 0..code.len() {
        let t = code[i];
        // `x += …` where x is a known f32/f64 binding or field.
        if t.kind == TokenKind::Punct && matches!(t.text.as_str(), "+=" | "-=" | "*=" | "/=") {
            if let Some(lhs) = code.get(i.wrapping_sub(1)) {
                if lhs.kind == TokenKind::Ident && is_float(&lhs.text) {
                    hits.push((
                        lhs.line,
                        lhs.col,
                        format!(
                            "float compound assignment `{} {}` accumulates in addition order",
                            lhs.text, t.text
                        ),
                    ));
                }
            }
        }
        // `.sum::<f64>()` / `.product::<f32>()`.
        if t.kind == TokenKind::Ident
            && matches!(t.text.as_str(), "sum" | "product")
            && matches!(code.get(i.wrapping_sub(1)), Some(c) if c.kind == TokenKind::Punct && c.text == ".")
            && matches!(code.get(i + 1), Some(c) if c.kind == TokenKind::Punct && c.text == "::")
            && matches!(code.get(i + 2), Some(c) if c.kind == TokenKind::Punct && c.text == "<")
            && matches!(code.get(i + 3), Some(c) if c.kind == TokenKind::Ident && (c.text == "f32" || c.text == "f64"))
        {
            hits.push((
                t.line,
                t.col,
                format!("`.{}::<float>()` folds in iterator order", t.text),
            ));
        }
        // `let x: f64 = ….sum();` — float-annotated sum via inference.
        if t.kind == TokenKind::Ident
            && matches!(t.text.as_str(), "sum" | "product")
            && matches!(code.get(i.wrapping_sub(1)), Some(c) if c.kind == TokenKind::Punct && c.text == ".")
            && matches!(code.get(i + 1), Some(c) if c.kind == TokenKind::Punct && c.text == "(")
            && matches!(code.get(i + 2), Some(c) if c.kind == TokenKind::Punct && c.text == ")")
        {
            // Look back a bounded distance for `: f64 =` / `: f32 =` on
            // the same statement.
            let lo = i.saturating_sub(30);
            let stmt_start = (lo..i)
                .rev()
                .find(|&k| code[k].kind == TokenKind::Punct && code[k].text == ";")
                .map_or(lo, |k| k + 1);
            let annotated = (stmt_start..i).any(|k| {
                code[k].kind == TokenKind::Ident
                    && (code[k].text == "f32" || code[k].text == "f64")
                    && matches!(code.get(k.wrapping_sub(1)), Some(c) if c.kind == TokenKind::Punct && c.text == ":")
            });
            if annotated {
                hits.push((
                    t.line,
                    t.col,
                    format!("float-annotated `.{}()` folds in iterator order", t.text),
                ));
            }
        }
    }
    hits
}

/// Numeric types an `as` cast can truncate or round into.
const NUMERIC_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

fn match_as_cast(code: &[&Token]) -> Vec<Hit> {
    let mut hits = Vec::new();
    for i in 0..code.len() {
        let t = code[i];
        if t.kind == TokenKind::Ident
            && t.text == "as"
            && matches!(code.get(i + 1), Some(c) if c.kind == TokenKind::Ident && NUMERIC_TYPES.contains(&c.text.as_str()))
        {
            let ty = &code[i + 1].text;
            hits.push((
                t.line,
                t.col,
                format!("`as {ty}` cast in a binary codec: prove it cannot truncate or use `From`/`try_from`"),
            ));
        }
    }
    hits
}

fn match_unwrap_panic(code: &[&Token]) -> Vec<Hit> {
    let mut hits = Vec::new();
    for i in 0..code.len() {
        let t = code[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let after_dot = matches!(code.get(i.wrapping_sub(1)), Some(c) if c.kind == TokenKind::Punct && c.text == ".");
        let before_paren =
            matches!(code.get(i + 1), Some(c) if c.kind == TokenKind::Punct && c.text == "(");
        let before_bang =
            matches!(code.get(i + 1), Some(c) if c.kind == TokenKind::Punct && c.text == "!");
        if after_dot && before_paren && matches!(t.text.as_str(), "unwrap" | "expect") {
            hits.push((
                t.line,
                t.col,
                format!(
                    "`.{}()` can panic on hostile input; return a typed `IngestError`",
                    t.text
                ),
            ));
        }
        if before_bang
            && matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
        {
            hits.push((
                t.line,
                t.col,
                format!(
                    "`{}!` can panic on hostile input; return a typed `IngestError`",
                    t.text
                ),
            ));
        }
    }
    hits
}
