//! Per-crate-tier rule policies: which rules apply to which source file.
//!
//! The workspace is not uniform — a wall-clock read is a bug in a
//! dispatch engine and the whole point of a bench harness — so every
//! rule carries a tier: the set of files it audits. Paths are matched
//! on the workspace-relative, `/`-separated form.
//!
//! | Rule | Tier |
//! |---|---|
//! | `iter-order` | dispatch/metrics crates (`core`, `online`, `pricing`, `metrics`, `tsdb`, `geo`, `graph`, `lp`) |
//! | `wall-clock` | everywhere except `crates/bench` (the measurement harness) |
//! | `float-accum` | `crates/metrics` and `crates/tsdb` (the i128 fixed-point contract) |
//! | `as-cast` | the wire/rtb/tsdb codecs (`crates/trace/src/wire.rs`, `rtb.rs`, `crates/tsdb/src/codec.rs`) |
//! | `unwrap-panic` | the hostile-input boundary (`crates/online/src/ingest.rs`, `serve.rs`) |
//!
//! Scanned at all: `src/` of the facade and of every `crates/*` member.
//! Vendored shims, integration `tests/`, `examples/`, and benches are
//! out of scope — they are either third-party API subsets or test-tier
//! code whose panics and clocks are legitimate.

/// The crates whose dispatch or serialized output must be
/// iteration-order deterministic (ISSUE 8's dispatch/metrics tier).
const ITER_ORDER_TIER: &[&str] = &[
    "crates/core/src/",
    "crates/online/src/",
    "crates/pricing/src/",
    "crates/metrics/src/",
    "crates/tsdb/src/",
    "crates/geo/src/",
    "crates/graph/src/",
    "crates/lp/src/",
];

/// Files holding the `.rtb`/wire binary codecs, where a truncating `as`
/// cast corrupts frames silently.
const AS_CAST_TIER: &[&str] = &[
    "crates/trace/src/wire.rs",
    "crates/trace/src/rtb.rs",
    "crates/tsdb/src/codec.rs",
];

/// The hostile-input boundary: feeds here are untrusted, so a panic is
/// a denial-of-service bug ([`IngestError`](../../rideshare_online/enum.IngestError.html)
/// is the contract).
const UNWRAP_TIER: &[&str] = &["crates/online/src/ingest.rs", "crates/online/src/serve.rs"];

/// True when `rel` (workspace-relative, `/`-separated) is a source file
/// the auditor scans at all.
#[must_use]
pub fn is_scanned(rel: &str) -> bool {
    if !rel.ends_with(".rs") {
        return false;
    }
    // The facade crate (CLI + lib) and every workspace member's `src/`.
    if rel.starts_with("src/") {
        return true;
    }
    if let Some(rest) = rel.strip_prefix("crates/") {
        if let Some((_, tail)) = rest.split_once('/') {
            return tail.starts_with("src/");
        }
    }
    false
}

/// The rules audited for `rel`, in canonical order. Empty for files the
/// auditor does not scan.
#[must_use]
pub fn rules_for(rel: &str) -> Vec<&'static str> {
    if !is_scanned(rel) {
        return Vec::new();
    }
    let mut rules = Vec::new();
    if ITER_ORDER_TIER.iter().any(|p| rel.starts_with(p)) {
        rules.push(crate::rules::ITER_ORDER);
    }
    if !rel.starts_with("crates/bench/") {
        rules.push(crate::rules::WALL_CLOCK);
    }
    // The fixed-point contract extends to the telemetry store: every
    // value it persists or aggregates must stay on the integer grid, so
    // a float accumulation there is the same bug as in `metrics`.
    if rel.starts_with("crates/metrics/src/") || rel.starts_with("crates/tsdb/src/") {
        rules.push(crate::rules::FLOAT_ACCUM);
    }
    if AS_CAST_TIER.contains(&rel) {
        rules.push(crate::rules::AS_CAST);
    }
    if UNWRAP_TIER.contains(&rel) {
        rules.push(crate::rules::UNWRAP_PANIC);
    }
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules;

    #[test]
    fn scanned_set_covers_sources_not_vendor_or_tests() {
        assert!(is_scanned("src/bin/rideshare.rs"));
        assert!(is_scanned("src/lib.rs"));
        assert!(is_scanned("crates/core/src/market.rs"));
        assert!(is_scanned("crates/online/src/stream.rs"));
        assert!(!is_scanned("vendor/rand/src/lib.rs"));
        assert!(!is_scanned("tests/cli.rs"));
        assert!(!is_scanned("examples/serve_daemon.rs"));
        assert!(!is_scanned("crates/bench/benches/stream_replay.rs"));
        assert!(!is_scanned("crates/core/tests/x.rs"));
        assert!(!is_scanned("README.md"));
    }

    #[test]
    fn tiers_select_the_documented_rules() {
        assert!(rules_for("crates/core/src/market.rs").contains(&rules::ITER_ORDER));
        assert!(rules_for("crates/types/src/time.rs").contains(&rules::WALL_CLOCK));
        assert!(!rules_for("crates/types/src/time.rs").contains(&rules::ITER_ORDER));
        assert!(!rules_for("crates/bench/src/sweep.rs").contains(&rules::WALL_CLOCK));
        assert!(rules_for("crates/metrics/src/timeseries.rs").contains(&rules::FLOAT_ACCUM));
        assert!(!rules_for("crates/core/src/market.rs").contains(&rules::FLOAT_ACCUM));
        assert!(rules_for("crates/tsdb/src/query.rs").contains(&rules::FLOAT_ACCUM));
        assert!(rules_for("crates/tsdb/src/store.rs").contains(&rules::ITER_ORDER));
        assert!(rules_for("crates/trace/src/rtb.rs").contains(&rules::AS_CAST));
        assert!(rules_for("crates/tsdb/src/codec.rs").contains(&rules::AS_CAST));
        assert!(!rules_for("crates/tsdb/src/store.rs").contains(&rules::AS_CAST));
        assert!(!rules_for("crates/trace/src/generator.rs").contains(&rules::AS_CAST));
        assert!(rules_for("crates/online/src/ingest.rs").contains(&rules::UNWRAP_PANIC));
        assert!(!rules_for("crates/online/src/stream.rs").contains(&rules::UNWRAP_PANIC));
    }

    #[test]
    fn unscanned_files_get_no_rules() {
        assert!(rules_for("vendor/rand/src/lib.rs").is_empty());
        assert!(rules_for("crates/core/src/market.txt").is_empty());
    }
}
