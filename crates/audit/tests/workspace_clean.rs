//! The workspace baseline: zero unwaived findings, zero unused
//! waivers, stable canonical JSON.
//!
//! This is the same gate CI runs as `rideshare audit --check`, pinned
//! as a test so `cargo test` alone catches a regression — a new
//! `HashMap` iteration in dispatch code, a stray `unwrap` in ingest,
//! or a waiver left behind by a refactor — without waiting for CI.

use rideshare_audit::run_audit;
use std::path::{Path, PathBuf};

/// The workspace root, two levels up from this crate's manifest.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/audit sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_has_zero_unwaived_findings() {
    let report = run_audit(&workspace_root()).expect("audit runs");
    let unwaived: Vec<_> = report.unwaived().collect();
    assert!(
        unwaived.is_empty(),
        "the workspace must stay audit-clean; fix or waive (with a reason):\n{}",
        unwaived
            .iter()
            .map(|f| format!(
                "  {}:{}:{} [{}] {}",
                f.path, f.line, f.col, f.rule, f.message
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn workspace_report_is_byte_stable() {
    let root = workspace_root();
    let a = run_audit(&root).expect("audit runs").to_canonical_json();
    let b = run_audit(&root).expect("audit runs").to_canonical_json();
    assert_eq!(a, b, "canonical JSON must be deterministic per tree");
    assert!(a.starts_with("{\"schema\":\"rideshare-audit/1\""));
}

#[test]
fn every_waiver_in_the_tree_is_load_bearing() {
    // `unused-waiver` findings are unwaived findings themselves, so the
    // zero-unwaived test already implies this — but when it fires, this
    // message says what actually went stale.
    let report = run_audit(&workspace_root()).expect("audit runs");
    let stale: Vec<_> = report
        .unwaived()
        .filter(|f| f.rule == "unused-waiver" || f.rule == "bad-waiver")
        .collect();
    assert!(
        stale.is_empty(),
        "stale or malformed waivers:\n{}",
        stale
            .iter()
            .map(|f| format!("  {}:{} {}", f.path, f.line, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
