//! Lexer hard cases, deterministic and property-tested.
//!
//! The auditor's verdicts are only as good as its lexer: a raw string
//! that swallows the rest of the file, or a lifetime read as an
//! unterminated char literal, silently turns real code into "string
//! contents" the rules never see. These tests pin the four classic
//! traps — raw strings, nested block comments, lifetime/char-literal
//! ambiguity, and `audit:allow` placement — then fuzz random pastings of
//! hard fragments with the vendored proptest shim.

use proptest::prelude::*;
use rideshare_audit::lexer::{lex, TokenKind};
use rideshare_audit::rules::analyze_source;

/// Source with all whitespace removed — the lexer is total, so the
/// concatenated token texts must preserve every non-whitespace byte.
fn squash(s: &str) -> String {
    s.chars().filter(|c| !c.is_whitespace()).collect()
}

fn lossless(src: &str) {
    let tokens = lex(src);
    let joined: String = tokens.iter().map(|t| t.text.as_str()).collect();
    assert_eq!(
        squash(&joined),
        squash(src),
        "lexer dropped or invented bytes for {src:?}"
    );
}

// ------------------------------------------------------------ raw strings

#[test]
fn raw_strings_any_hash_depth() {
    for hashes in 0..=4 {
        let h = "#".repeat(hashes);
        // The payload contains a quote followed by one hash fewer than
        // the delimiter, which must NOT terminate the string.
        let inner = if hashes > 0 {
            format!("quote \" then {}", "#".repeat(hashes - 1))
        } else {
            "plain payload".to_string()
        };
        let src = format!("let s = r{h}\"{inner}\"{h}; let after = 1;");
        let tokens = lex(&src);
        let strs: Vec<_> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::StrLit)
            .collect();
        assert_eq!(strs.len(), 1, "hashes={hashes}: {tokens:?}");
        assert!(strs[0].text.contains(&inner));
        // Code after the raw string is still seen as code.
        assert!(tokens
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "after"));
        lossless(&src);
    }
}

#[test]
fn byte_and_c_raw_string_prefixes() {
    for prefix in ["b", "br", "c", "cr", "br#\u{0}#"] {
        // The last entry is not a valid prefix — splice real ones only.
        if prefix.contains('\u{0}') {
            continue;
        }
        let src = format!("let s = {prefix}\"body // not a comment\"; let x = 1;");
        let tokens = lex(&src);
        assert!(
            !tokens.iter().any(|t| t.kind == TokenKind::LineComment),
            "{prefix}: `//` inside the string must not open a comment"
        );
        assert!(tokens
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "x"));
    }
}

#[test]
fn raw_identifier_is_not_a_raw_string() {
    let src = "let r#type = 3; let r#fn = r#type;";
    let tokens = lex(src);
    assert!(tokens.iter().all(|t| t.kind != TokenKind::StrLit));
    assert!(tokens
        .iter()
        .any(|t| t.kind == TokenKind::Ident && t.text == "r#type"));
}

#[test]
fn unterminated_raw_string_extends_to_eof_without_panic() {
    let src = "let s = r##\"never closed\"# still inside";
    let tokens = lex(src);
    let last = tokens.last().unwrap();
    assert_eq!(last.kind, TokenKind::StrLit);
    assert!(last.text.ends_with("still inside"));
}

// ------------------------------------------------------- nested comments

#[test]
fn block_comments_nest() {
    let src = "a /* one /* two /* three */ two */ one */ b";
    let tokens = lex(src);
    let idents: Vec<_> = tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(idents, ["a", "b"]);
    let comments: Vec<_> = tokens
        .iter()
        .filter(|t| t.kind == TokenKind::BlockComment)
        .collect();
    assert_eq!(comments.len(), 1);
    assert!(comments[0].text.contains("three"));
}

#[test]
fn comment_openers_inside_strings_do_not_comment() {
    let src = "let s = \"/* not a comment */\"; let t = 1; // real\n";
    let tokens = lex(src);
    assert_eq!(
        tokens
            .iter()
            .filter(|t| t.kind == TokenKind::BlockComment)
            .count(),
        0
    );
    assert_eq!(
        tokens
            .iter()
            .filter(|t| t.kind == TokenKind::LineComment)
            .count(),
        1
    );
}

// --------------------------------------------- lifetimes vs char literals

#[test]
fn lifetimes_and_char_literals_disambiguate() {
    let src = "fn f<'a>(x: &'a str) -> char { let c = 'a'; let q = '\\''; let nl = '\\n'; c }";
    let tokens = lex(src);
    let lifetimes: Vec<_> = tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Lifetime)
        .map(|t| t.text.as_str())
        .collect();
    let chars: Vec<_> = tokens
        .iter()
        .filter(|t| t.kind == TokenKind::CharLit)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(lifetimes, ["'a", "'a"]);
    assert_eq!(chars, ["'a'", "'\\''", "'\\n'"]);
    lossless(src);
}

#[test]
fn static_lifetime_and_label() {
    let src = "fn f(s: &'static str) { 'outer: loop { break 'outer; } }";
    let tokens = lex(src);
    let lifetimes: Vec<_> = tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Lifetime)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(lifetimes, ["'static", "'outer", "'outer"]);
}

// --------------------------------------------------- audit:allow placement

#[test]
fn waiver_placement_trailing_vs_standalone() {
    // Trailing covers its own line; standalone covers the next code
    // line, skipping blank and comment-only lines in between.
    let src = "\
fn f() {
    let a = std::time::Instant::now(); // audit:allow(wall-clock): trailing.

    // audit:allow(wall-clock): standalone, blank line above, comment below.
    // just prose
    let b = std::time::Instant::now();
}
";
    let analysis = analyze_source("crates/online/src/serve.rs", src);
    let unwaived: Vec<_> = analysis.findings.iter().filter(|f| !f.waived).collect();
    assert!(unwaived.is_empty(), "{unwaived:?}");
    assert_eq!(analysis.waivers.len(), 2);
    assert_eq!(analysis.waivers[0].target_line, 2);
    assert_eq!(analysis.waivers[1].target_line, 6);
}

#[test]
fn waiver_inside_string_is_inert() {
    let src =
        "fn f() { let s = \"audit:allow(wall-clock): fake\"; let t = std::time::Instant::now(); }";
    let analysis = analyze_source("crates/online/src/serve.rs", src);
    assert!(analysis.waivers.is_empty());
    assert_eq!(analysis.findings.iter().filter(|f| !f.waived).count(), 1);
}

#[test]
fn waiver_in_block_comment_form() {
    let src = "fn f() {\n    /* audit:allow(wall-clock): block form works too. */\n    let t = std::time::Instant::now();\n}\n";
    let analysis = analyze_source("crates/online/src/serve.rs", src);
    assert_eq!(analysis.waivers.len(), 1);
    assert!(analysis.findings.iter().all(|f| f.waived));
}

// ------------------------------------------------------------- properties

/// Hard fragments the generators splice together. Each is standalone
/// valid Rust-ish surface syntax the lexer must cross cleanly.
const FRAGMENTS: &[&str] = &[
    "let x = 1;",
    "r\"raw\"",
    "r#\"ra\"w\"#",
    "br##\"b\"#raw\"##",
    "/* nested /* deep */ out */",
    "// line comment\n",
    "'a'",
    "'\\''",
    "&'static str",
    "'label: loop { break 'label; }",
    "\"str with \\\" escape\"",
    "0..10",
    "1.5e-3",
    "0xff_u8",
    "m.iter()",
    "#[cfg(test)]",
    "r#struct",
    "b'\\n'",
    "x += 1;",
    "a::<f64>()",
];

fn paste(picks: &[usize], seps: &[usize]) -> String {
    let sep_pool = [" ", "\n", "\t", "\n\n", " \n "];
    let mut out = String::new();
    for (i, &p) in picks.iter().enumerate() {
        out.push_str(FRAGMENTS[p % FRAGMENTS.len()]);
        out.push_str(sep_pool[seps.get(i).copied().unwrap_or(0) % sep_pool.len()]);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Random pastings of hard fragments: the lexer never panics, never
    // loses a byte, and is deterministic.
    #[test]
    fn pasted_fragments_lex_losslessly(
        picks in collection::vec(0usize..FRAGMENTS.len(), 1..12),
        seps in collection::vec(0usize..5, 12),
    ) {
        let src = paste(&picks, &seps);
        let a = lex(&src);
        let b = lex(&src);
        prop_assert_eq!(&a, &b);
        let joined: String = a.iter().map(|t| t.text.as_str()).collect();
        prop_assert_eq!(squash(&joined), squash(&src));
    }

    // Arbitrary garbage bytes (valid UTF-8 via lossy conversion): the
    // lexer is total — no panics, no byte loss outside whitespace.
    #[test]
    fn garbage_never_panics(bytes in collection::vec(0u8..=255, 0..200)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let tokens = lex(&src);
        let joined: String = tokens.iter().map(|t| t.text.as_str()).collect();
        prop_assert_eq!(squash(&joined), squash(&src));
    }

    // Line/col coordinates always point inside the source.
    #[test]
    fn coordinates_stay_in_bounds(
        picks in collection::vec(0usize..FRAGMENTS.len(), 1..10),
        seps in collection::vec(0usize..5, 10),
    ) {
        let src = paste(&picks, &seps);
        let lines: Vec<&str> = src.lines().collect();
        for t in lex(&src) {
            let line = lines.get(t.line as usize - 1);
            prop_assert!(line.is_some(), "token {t:?} beyond last line");
            prop_assert!(t.col >= 1);
        }
    }
}
