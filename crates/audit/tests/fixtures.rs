//! Per-rule fixture tests: for every rule, a positive fixture (the rule
//! fires), a negative fixture (it stays silent), a waived fixture (the
//! finding is reported but silenced), and an unused-waiver fixture (a
//! waiver that silences nothing is itself a finding).
//!
//! Fixtures are inline source strings analyzed under the tier path that
//! enables the rule, so these tests pin both the matchers and the
//! per-crate policy table.

use rideshare_audit::rules::{
    self, analyze_source, AS_CAST, BAD_WAIVER, FLOAT_ACCUM, ITER_ORDER, UNUSED_WAIVER,
    UNWRAP_PANIC, WALL_CLOCK,
};

/// Paths that put each rule in scope (see `policy::rules_for`).
const ITER_PATH: &str = "crates/core/src/streaming.rs";
const CLOCK_PATH: &str = "crates/online/src/serve.rs";
const FLOAT_PATH: &str = "crates/metrics/src/stream_stats.rs";
const CAST_PATH: &str = "crates/trace/src/wire.rs";
const UNWRAP_PATH: &str = "crates/online/src/ingest.rs";

fn unwaived(rel: &str, src: &str, rule: &str) -> Vec<rules::Finding> {
    analyze_source(rel, src)
        .findings
        .into_iter()
        .filter(|f| f.rule == rule && !f.waived)
        .collect()
}

fn waived(rel: &str, src: &str, rule: &str) -> Vec<rules::Finding> {
    analyze_source(rel, src)
        .findings
        .into_iter()
        .filter(|f| f.rule == rule && f.waived)
        .collect()
}

// ---------------------------------------------------------------- iter-order

#[test]
fn iter_order_positive() {
    let src = r#"
use std::collections::HashMap;
fn f(m: HashMap<u32, u32>) -> u32 {
    let mut acc = 0;
    for (k, v) in m.iter() { acc += k + v; }
    for k in &m { acc += k.0; }
    acc + m.keys().count() as u32
}
"#;
    let hits = unwaived(ITER_PATH, src, ITER_ORDER);
    assert_eq!(hits.len(), 3, "iter(), for-in, keys(): {hits:?}");
    assert!(hits.iter().all(|f| f.path == ITER_PATH));
    assert!(hits[0].message.contains("hash order"));
}

#[test]
fn iter_order_negative_keyed_lookup() {
    // Keyed access and entry() are order-free; BTreeMap iteration is fine.
    let src = r#"
use std::collections::{BTreeMap, HashMap};
fn f(m: &mut HashMap<u32, u32>, b: &BTreeMap<u32, u32>) -> u32 {
    *m.entry(3).or_insert(0) += 1;
    let hit = m.get(&3).copied().unwrap_or(0);
    hit + b.iter().map(|(k, _)| k).sum::<u32>()
}
"#;
    assert!(unwaived(ITER_PATH, src, ITER_ORDER).is_empty());
}

#[test]
fn iter_order_negative_out_of_tier() {
    // Same hazard outside the dispatch tier: the rule is not in scope.
    let src = "fn f(m: std::collections::HashMap<u32, u32>) -> usize { m.keys().count() }";
    assert!(unwaived("crates/bench/src/lib.rs", src, ITER_ORDER).is_empty());
}

#[test]
fn iter_order_waived() {
    let src = r#"
use std::collections::HashMap;
fn f(m: HashMap<u32, u32>) -> u64 {
    // audit:allow(iter-order): the fold is commutative, so hash order cannot change the sum.
    m.values().map(|&v| u64::from(v)).sum()
}
"#;
    assert!(unwaived(ITER_PATH, src, ITER_ORDER).is_empty());
    let w = waived(ITER_PATH, src, ITER_ORDER);
    assert_eq!(w.len(), 1);
    assert!(w[0].reason.as_deref().unwrap().contains("commutative"));
    // The waiver is used, so no unused-waiver meta-finding.
    assert!(unwaived(ITER_PATH, src, UNUSED_WAIVER).is_empty());
}

#[test]
fn iter_order_waiver_unused() {
    let src = r#"
fn f() -> u32 {
    // audit:allow(iter-order): stale waiver left behind after a refactor.
    1 + 2
}
"#;
    let meta = unwaived(ITER_PATH, src, UNUSED_WAIVER);
    assert_eq!(meta.len(), 1, "{meta:?}");
    assert!(meta[0].message.contains("silences nothing"));
}

// ---------------------------------------------------------------- wall-clock

#[test]
fn wall_clock_positive() {
    let src = r#"
fn f() -> u128 {
    let t0 = std::time::Instant::now();
    let _ = std::time::SystemTime::now();
    std::thread::sleep(std::time::Duration::from_millis(1));
    t0.elapsed().as_nanos()
}
"#;
    let hits = unwaived(CLOCK_PATH, src, WALL_CLOCK);
    assert_eq!(hits.len(), 3, "{hits:?}");
}

#[test]
fn wall_clock_negative() {
    // Stream time from the events themselves is the sanctioned clock.
    let src = r#"
fn f(event_time_secs: u64, horizon: u64) -> bool {
    event_time_secs + 30 < horizon
}
"#;
    assert!(unwaived(CLOCK_PATH, src, WALL_CLOCK).is_empty());
}

#[test]
fn wall_clock_negative_bench_exempt() {
    let src = "fn f() -> std::time::Instant { std::time::Instant::now() }";
    assert!(unwaived("crates/bench/src/lib.rs", src, WALL_CLOCK).is_empty());
}

#[test]
fn wall_clock_waived_trailing() {
    // Trailing waiver on the same line as the finding.
    let src = "fn f() { std::thread::sleep(D); } // audit:allow(wall-clock): paces a live tail, never feeds dispatch.\nconst D: std::time::Duration = std::time::Duration::from_millis(1);\n";
    assert!(unwaived(CLOCK_PATH, src, WALL_CLOCK).is_empty());
    assert_eq!(waived(CLOCK_PATH, src, WALL_CLOCK).len(), 1);
}

#[test]
fn wall_clock_waiver_unused() {
    let src = r#"
// audit:allow(wall-clock): there is no clock read here at all.
fn f() -> u32 { 7 }
"#;
    assert_eq!(unwaived(CLOCK_PATH, src, UNUSED_WAIVER).len(), 1);
}

// ---------------------------------------------------------------- float-accum

#[test]
fn float_accum_positive() {
    let src = r#"
fn f(xs: &[f64]) -> f64 {
    let mut total: f64 = 0.0;
    for x in xs { total += x; }
    let direct = xs.iter().copied().sum::<f64>();
    let annotated: f64 = xs.iter().copied().sum();
    total + direct + annotated
}
"#;
    let hits = unwaived(FLOAT_PATH, src, FLOAT_ACCUM);
    assert_eq!(
        hits.len(),
        3,
        "compound-assign, turbofish, annotated: {hits:?}"
    );
}

#[test]
fn float_accum_negative_integer() {
    // Integer accumulation is exact; the fixed-point grid is the fix.
    let src = r#"
fn f(xs: &[u32]) -> u64 {
    let mut total: i128 = 0;
    for &x in xs { total += i128::from(x); }
    let n: u64 = xs.iter().map(|&x| u64::from(x)).sum();
    total as u64 + n
}
"#;
    assert!(unwaived(FLOAT_PATH, src, FLOAT_ACCUM).is_empty());
}

#[test]
fn float_accum_negative_out_of_tier() {
    let src = "fn f(xs: &[f64]) -> f64 { xs.iter().copied().sum::<f64>() }";
    assert!(unwaived(ITER_PATH, src, FLOAT_ACCUM).is_empty());
}

#[test]
fn float_accum_waived() {
    let src = r#"
fn f(xs: &[f64]) -> f64 {
    // audit:allow(float-accum): diagnostic display value only, never compared or pinned.
    xs.iter().copied().sum::<f64>()
}
"#;
    assert!(unwaived(FLOAT_PATH, src, FLOAT_ACCUM).is_empty());
    assert_eq!(waived(FLOAT_PATH, src, FLOAT_ACCUM).len(), 1);
}

#[test]
fn float_accum_waiver_unused() {
    let src = r#"
fn f(xs: &[u64]) -> u64 {
    // audit:allow(float-accum): nothing floats here.
    xs.iter().sum()
}
"#;
    assert_eq!(unwaived(FLOAT_PATH, src, UNUSED_WAIVER).len(), 1);
}

// ------------------------------------------------------------------- as-cast

#[test]
fn as_cast_positive() {
    let src = r#"
fn f(n: usize, x: u64) -> (u32, usize) {
    (n as u32, x as usize)
}
"#;
    let hits = unwaived(CAST_PATH, src, AS_CAST);
    assert_eq!(hits.len(), 2, "{hits:?}");
    assert!(hits[0].message.contains("truncate"));
}

#[test]
fn as_cast_negative_lossless_conversions() {
    // From/try_from conversions and non-numeric `as` are out of scope.
    let src = r#"
fn f(n: u8, x: u64) -> (u64, u32, &'static str) {
    let wide = u64::from(n);
    let narrow = u32::try_from(x).unwrap_or(0);
    (wide, narrow, "as" as &'static str)
}
"#;
    assert!(unwaived(CAST_PATH, src, AS_CAST).is_empty());
}

#[test]
fn as_cast_negative_out_of_tier() {
    // The cast tier is exactly the two codec files.
    let src = "fn f(n: usize) -> u32 { n as u32 }";
    assert!(unwaived("crates/trace/src/gen.rs", src, AS_CAST).is_empty());
}

#[test]
fn as_cast_waived() {
    let src = r#"
fn f(n: usize) -> u64 {
    // audit:allow(as-cast): usize -> u64 widens losslessly on every supported target.
    n as u64
}
"#;
    assert!(unwaived(CAST_PATH, src, AS_CAST).is_empty());
    assert_eq!(waived(CAST_PATH, src, AS_CAST).len(), 1);
}

#[test]
fn as_cast_waiver_unused() {
    let src = r#"
fn f(n: u64) -> u64 {
    // audit:allow(as-cast): no cast on this line any more.
    n + 1
}
"#;
    assert_eq!(unwaived(CAST_PATH, src, UNUSED_WAIVER).len(), 1);
}

// -------------------------------------------------------------- unwrap-panic

#[test]
fn unwrap_panic_positive() {
    let src = r#"
fn f(s: &str) -> u32 {
    let n: u32 = s.parse().unwrap();
    let m: u32 = s.parse().expect("digits");
    if n > m { panic!("inverted"); }
    n + m
}
"#;
    let hits = unwaived(UNWRAP_PATH, src, UNWRAP_PANIC);
    assert_eq!(hits.len(), 3, "{hits:?}");
}

#[test]
fn unwrap_panic_negative_typed_errors() {
    // `unwrap_or` / `?` / matching are the sanctioned shapes.
    let src = r#"
fn f(s: &str) -> Result<u32, std::num::ParseIntError> {
    let n: u32 = s.parse().unwrap_or(0);
    let m: u32 = s.parse()?;
    Ok(n + m)
}
"#;
    assert!(unwaived(UNWRAP_PATH, src, UNWRAP_PANIC).is_empty());
}

#[test]
fn unwrap_panic_negative_in_tests() {
    // Test modules may unwrap freely.
    let src = r#"
fn f() -> u32 { 1 }
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let n: u32 = "3".parse().unwrap();
        assert_eq!(n, 3);
    }
}
"#;
    assert!(unwaived(UNWRAP_PATH, src, UNWRAP_PANIC).is_empty());
}

#[test]
fn unwrap_panic_waived() {
    let src = r#"
fn f(v: &[u32]) -> u32 {
    // audit:allow(unwrap-panic): construction contract documented in the Panics section; hostile bytes cannot reach it.
    *v.first().expect("caller guarantees non-empty")
}
"#;
    assert!(unwaived(UNWRAP_PATH, src, UNWRAP_PANIC).is_empty());
    assert_eq!(waived(UNWRAP_PATH, src, UNWRAP_PANIC).len(), 1);
}

#[test]
fn unwrap_panic_waiver_unused() {
    let src = r#"
fn f(v: &[u32]) -> Option<u32> {
    // audit:allow(unwrap-panic): converted to Option, waiver now stale.
    v.first().copied()
}
"#;
    assert_eq!(unwaived(UNWRAP_PATH, src, UNUSED_WAIVER).len(), 1);
}

// ---------------------------------------------------------------- bad-waiver

#[test]
fn bad_waiver_unknown_rule() {
    let src = "// audit:allow(made-up-rule): whatever.\nfn f() {}\n";
    let hits = unwaived(CLOCK_PATH, src, BAD_WAIVER);
    assert_eq!(hits.len(), 1);
    assert!(hits[0].message.contains("unknown rule"));
}

#[test]
fn bad_waiver_missing_reason() {
    let src = "// audit:allow(wall-clock)\nfn f() {}\n";
    let hits = unwaived(CLOCK_PATH, src, BAD_WAIVER);
    assert_eq!(hits.len(), 1);
    assert!(hits[0].message.contains("mandatory"));
}

#[test]
fn bad_waiver_empty_reason() {
    let src = "// audit:allow(wall-clock):   \nfn f() {}\n";
    let hits = unwaived(CLOCK_PATH, src, BAD_WAIVER);
    assert_eq!(hits.len(), 1);
    assert!(hits[0].message.contains("empty reason"));
}

#[test]
fn doc_comments_never_register_waivers() {
    // Doc comments describe the syntax; they must not waive or be
    // reported as bad waivers.
    let src = r#"
//! Write `// audit:allow(wall-clock): why` above the clock read.
/// Uses `audit:allow(not-even-a-rule)` in prose.
fn f() { let _ = std::time::Instant::now(); }
"#;
    assert!(unwaived(CLOCK_PATH, src, BAD_WAIVER).is_empty());
    assert!(unwaived(CLOCK_PATH, src, UNUSED_WAIVER).is_empty());
    // The clock read itself is still found — nothing waived it.
    assert_eq!(unwaived(CLOCK_PATH, src, WALL_CLOCK).len(), 1);
}

// -------------------------------------------------------- report plumbing

#[test]
fn findings_carry_location_and_excerpt() {
    let src = "fn f() {\n    let t = std::time::Instant::now();\n}\n";
    let hits = unwaived(CLOCK_PATH, src, WALL_CLOCK);
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].line, 2);
    assert!(hits[0].col > 1);
    assert_eq!(hits[0].excerpt, "    let t = std::time::Instant::now();");
}
