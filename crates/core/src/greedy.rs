//! Algorithm 1 — the offline greedy GA with its tight 1/(D+1) guarantee.
//!
//! The paper's loop: while some driver still has a strictly-positive-profit
//! path, pick the globally maximum-profit path, commit it as that driver's
//! task list, and delete the path's task nodes and the driver's
//! source/destination pair from the graph.
//!
//! Implementation: node deletion is a shared `removed` bitmask over the
//! market's chain DAG, and the arg-max uses **lazy re-evaluation**: each
//! driver's best-path value can only *decrease* as task nodes disappear, so
//! a stale heap entry that still tops the heap after recomputation is the
//! true maximum. This keeps the per-iteration cost at a handful of
//! `O(M + |arcs|)` DP calls instead of `N` of them, without changing the
//! selected solution.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rideshare_types::{Money, TaskId};

use crate::assignment::{Assignment, DriverRoute};
use crate::market::{Market, Objective};
use crate::view::DriverView;

/// Result of running [`solve_greedy`].
#[derive(Clone, Debug)]
pub struct GreedyOutcome {
    /// The selected task lists.
    pub assignment: Assignment,
    /// Number of committed paths (Alg. 1 iterations that selected a driver).
    pub iterations: usize,
    /// Total best-path DP evaluations, including lazy re-evaluations —
    /// `N` at initialisation plus the re-checks; compare against `N ×
    /// iterations` for the naive variant.
    pub evaluations: usize,
}

/// Heap entry ordered by path profit (then driver index for determinism).
struct Entry {
    profit: f64,
    driver: usize,
    /// The iteration at which this value was computed; stale entries are
    /// re-evaluated before being trusted.
    round: usize,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Profits are finite by construction (margins and costs are finite).
        self.profit
            .partial_cmp(&other.profit)
            .expect("finite profit")
            .then_with(|| other.driver.cmp(&self.driver))
    }
}

/// Runs Algorithm 1 (GA) on the market under the given objective.
///
/// Returns a feasible assignment together with search statistics. By
/// Theorem 1 the profit is within `1/(D+1)` of the integral optimum, where
/// `D` is the task-map diameter ([`Market::chain_diameter`]).
///
/// # Examples
///
/// ```
/// use rideshare_core::{solve_greedy, Market, MarketBuildOptions, Objective};
/// use rideshare_trace::{DriverModel, TraceConfig};
///
/// let trace = TraceConfig::porto()
///     .with_seed(3)
///     .with_task_count(80)
///     .with_driver_count(10, DriverModel::Hitchhiking)
///     .generate();
/// let market = Market::from_trace(&trace, &MarketBuildOptions::default());
/// let outcome = solve_greedy(&market, Objective::Profit);
/// assert!(outcome.assignment.validate(&market).is_ok());
/// ```
#[must_use]
pub fn solve_greedy(market: &Market, objective: Objective) -> GreedyOutcome {
    let n = market.num_drivers();
    let m = market.num_tasks();
    let mut removed = vec![false; m];
    let mut assignment = Assignment::empty(n);
    let mut evaluations = 0usize;
    let mut iterations = 0usize;

    let views: Vec<DriverView> = (0..n).map(|i| DriverView::new(market, i)).collect();

    let mut heap: BinaryHeap<Entry> = BinaryHeap::with_capacity(n);
    let mut cached_paths: Vec<Option<Vec<u32>>> = vec![None; n];
    for (i, view) in views.iter().enumerate() {
        let best = view.best_path(market, objective, &removed);
        evaluations += 1;
        if Money::new(best.profit).is_strictly_positive() {
            heap.push(Entry {
                profit: best.profit,
                driver: i,
                round: 0,
            });
            cached_paths[i] = Some(best.tasks);
        }
    }

    let mut round = 0usize;
    while let Some(top) = heap.pop() {
        if top.round < round {
            // Stale: recompute under the current removals and reinsert.
            let best = views[top.driver].best_path(market, objective, &removed);
            evaluations += 1;
            if Money::new(best.profit).is_strictly_positive() {
                heap.push(Entry {
                    profit: best.profit,
                    driver: top.driver,
                    round,
                });
                cached_paths[top.driver] = Some(best.tasks);
            } else {
                cached_paths[top.driver] = None;
            }
            continue;
        }
        // Fresh maximum: commit it (Alg. 1 steps a–c).
        let path = cached_paths[top.driver]
            .take()
            .expect("fresh heap entry has a cached path");
        debug_assert!(!path.is_empty(), "positive-profit path is non-empty");
        for &t in &path {
            removed[t as usize] = true;
        }
        assignment.set_route(
            market.drivers()[top.driver].id,
            path.iter().map(|&t| TaskId::new(t)).collect(),
        );
        iterations += 1;
        round += 1;
    }

    GreedyOutcome {
        assignment,
        iterations,
        evaluations,
    }
}

/// The naive reference implementation of Alg. 1 that re-evaluates **every**
/// remaining driver each iteration. Exponentially clearer, linearly slower;
/// kept for differential testing of the lazy variant.
#[cfg_attr(not(test), allow(dead_code))]
#[must_use]
pub(crate) fn solve_greedy_naive(market: &Market, objective: Objective) -> Assignment {
    let n = market.num_drivers();
    let m = market.num_tasks();
    let mut removed = vec![false; m];
    let mut taken = vec![false; n];
    let views: Vec<DriverView> = (0..n).map(|i| DriverView::new(market, i)).collect();
    let mut routes = vec![DriverRoute::default(); n];
    loop {
        let mut best: Option<(f64, usize, Vec<u32>)> = None;
        for (i, view) in views.iter().enumerate() {
            if taken[i] {
                continue;
            }
            let path = view.best_path(market, objective, &removed);
            if !Money::new(path.profit).is_strictly_positive() {
                continue;
            }
            let better = match &best {
                None => true,
                Some((bp, bi, _)) => {
                    path.profit > *bp + 1e-12 || ((path.profit - *bp).abs() <= 1e-12 && i < *bi)
                }
            };
            if better {
                best = Some((path.profit, i, path.tasks));
            }
        }
        let Some((_, driver, path)) = best else {
            break;
        };
        for &t in &path {
            removed[t as usize] = true;
        }
        taken[driver] = true;
        routes[driver].tasks = path.iter().map(|&t| TaskId::new(t)).collect();
    }
    Assignment::from_routes(routes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::market::MarketBuildOptions;
    use rideshare_trace::{DriverModel, TraceConfig};

    fn market(seed: u64, tasks: usize, drivers: usize, model: DriverModel) -> Market {
        let trace = TraceConfig::porto()
            .with_seed(seed)
            .with_task_count(tasks)
            .with_driver_count(drivers, model)
            .generate();
        Market::from_trace(&trace, &MarketBuildOptions::default())
    }

    #[test]
    fn greedy_output_is_feasible_and_profitable() {
        let m = market(1, 150, 20, DriverModel::Hitchhiking);
        let out = solve_greedy(&m, Objective::Profit);
        out.assignment.validate(&m).unwrap();
        let profit = out.assignment.objective_value(&m, Objective::Profit);
        assert!(profit.is_strictly_positive());
        assert_eq!(out.iterations, out.assignment.active_driver_count());
        // Every committed route individually profits (Alg. 1 invariant).
        for d in m.drivers() {
            let p = out.assignment.route_profit(&m, Objective::Profit, d.id);
            assert!(!p.is_strictly_negative());
        }
    }

    #[test]
    fn lazy_matches_naive() {
        for (seed, model) in [
            (2, DriverModel::Hitchhiking),
            (3, DriverModel::HomeWorkHome),
            (4, DriverModel::Hitchhiking),
        ] {
            let m = market(seed, 80, 12, model);
            let lazy = solve_greedy(&m, Objective::Profit);
            let naive = solve_greedy_naive(&m, Objective::Profit);
            let lp = lazy.assignment.objective_value(&m, Objective::Profit);
            let np = naive.objective_value(&m, Objective::Profit);
            assert!(lp.approx_eq(np), "seed {seed}: lazy {lp} vs naive {np}");
        }
    }

    #[test]
    fn lazy_saves_evaluations() {
        let m = market(5, 200, 40, DriverModel::Hitchhiking);
        let out = solve_greedy(&m, Objective::Profit);
        let naive_evals = m.num_drivers() * (out.iterations + 1);
        assert!(
            out.evaluations < naive_evals,
            "lazy {} vs naive bound {naive_evals}",
            out.evaluations
        );
    }

    #[test]
    fn empty_market_yields_empty_assignment() {
        let m = market(6, 0, 10, DriverModel::Hitchhiking);
        let out = solve_greedy(&m, Objective::Profit);
        assert_eq!(out.assignment.served_count(), 0);
        assert_eq!(out.iterations, 0);
    }

    #[test]
    fn no_drivers_serves_nothing() {
        let m = market(7, 50, 0, DriverModel::Hitchhiking);
        let out = solve_greedy(&m, Objective::Profit);
        assert_eq!(out.assignment.served_count(), 0);
    }

    #[test]
    fn welfare_objective_steers_toward_welfare() {
        // Greedy is a heuristic, so strict dominance is not guaranteed —
        // but optimising welfare directly should land within a few percent
        // of (and typically above) the profit-greedy's welfare, and both
        // runs must stay feasible.
        let m = market(8, 120, 15, DriverModel::Hitchhiking);
        let profit_run = solve_greedy(&m, Objective::Profit);
        let welfare_run = solve_greedy(&m, Objective::Welfare);
        profit_run.assignment.validate(&m).unwrap();
        welfare_run.assignment.validate(&m).unwrap();
        let by_profit = profit_run
            .assignment
            .objective_value(&m, Objective::Welfare);
        let by_welfare = welfare_run
            .assignment
            .objective_value(&m, Objective::Welfare);
        assert!(
            by_welfare.as_f64() >= by_profit.as_f64() * 0.95,
            "welfare-greedy {by_welfare} far below profit-greedy {by_profit}"
        );
        assert!(by_welfare.is_strictly_positive());
    }

    #[test]
    fn more_drivers_never_hurt_much() {
        // Greedy is monotone-ish in supply: doubling drivers on the same
        // tasks should not reduce total profit (same trace seed keeps tasks
        // identical; extra drivers only add options).
        let small = market(9, 100, 10, DriverModel::Hitchhiking);
        let small_profit = solve_greedy(&small, Objective::Profit)
            .assignment
            .objective_value(&small, Objective::Profit);
        let trace = TraceConfig::porto()
            .with_seed(9)
            .with_task_count(100)
            .with_driver_count(40, DriverModel::Hitchhiking)
            .generate();
        let big = Market::from_trace(&trace, &MarketBuildOptions::default());
        let big_profit = solve_greedy(&big, Objective::Profit)
            .assignment
            .objective_value(&big, Objective::Profit);
        // Greedy is not strictly monotone, but the dense market should win
        // clearly on a 100-task day.
        assert!(
            big_profit.as_f64() > small_profit.as_f64() * 0.9,
            "big {big_profit} vs small {small_profit}"
        );
    }
}
