//! Export a driver's task map as a generic [`rideshare_graph::Dag`].
//!
//! The market solver uses a factored representation (shared chain graph +
//! per-driver masks) for memory reasons; this module materialises the
//! paper's *literal* per-driver DAG of §III-B — nodes `{0, −1} ∪ [M]`,
//! profit-weighted — on demand. Uses:
//!
//! - differential testing: `DriverView::best_path` against the generic
//!   `Dag::max_profit_path` on the same structure,
//! - interop with the generic MDP tooling
//!   ([`rideshare_graph::greedy_disjoint_paths`]),
//! - inspection/debugging of individual task maps.

use rideshare_graph::Dag;

use crate::market::{Market, Objective};
use crate::view::DriverView;

/// The materialised task map of one driver.
#[derive(Clone, Debug)]
pub struct TaskMapDag {
    /// The DAG: node `m ∈ 0..M` is task `m` (weight = objective margin),
    /// node `M` is the driver's source (weight = the commute refund
    /// `cₙ,₀,₋₁`), node `M+1` her destination; edge weights are negated
    /// travel costs, so path profit equals the market's `r_π`.
    pub dag: Dag,
    /// Index of the source node (`= M`).
    pub source: usize,
    /// Index of the sink node (`= M + 1`).
    pub sink: usize,
}

/// Materialises driver `driver`'s task map under `objective`.
///
/// Infeasible tasks (per Eqs. 1–2) are present but *disabled*, so node
/// indices always equal task indices.
///
/// # Panics
///
/// Panics if `driver` is out of range.
///
/// # Examples
///
/// ```
/// use rideshare_core::{export::task_map_dag, Market, MarketBuildOptions, Objective};
/// use rideshare_trace::{DriverModel, TraceConfig};
///
/// let trace = TraceConfig::porto()
///     .with_seed(9)
///     .with_task_count(40)
///     .with_driver_count(3, DriverModel::Hitchhiking)
///     .generate();
/// let market = Market::from_trace(&trace, &MarketBuildOptions::default());
/// let tm = task_map_dag(&market, 0, Objective::Profit);
/// assert_eq!(tm.source, 40);
/// assert!(tm.dag.max_profit_path(tm.source, tm.sink).is_some());
/// ```
#[must_use]
pub fn task_map_dag(market: &Market, driver: usize, objective: Objective) -> TaskMapDag {
    let m = market.num_tasks();
    let view = DriverView::new(market, driver);
    let d = &market.drivers()[driver];
    let speed = market.speed();

    let mut dag = Dag::new(m + 2);
    let source = m;
    let sink = m + 1;
    dag.set_node_weight(source, view.direct_cost().as_f64());

    for t in 0..m {
        if !view.is_allowed(t) {
            dag.disable_node(t);
            continue;
        }
        let task = &market.tasks()[t];
        dag.set_node_weight(t, task.margin(objective).as_f64());
        dag.add_edge(
            source,
            t,
            -speed.travel_cost(d.source, task.origin).as_f64(),
        );
        dag.add_edge(
            t,
            sink,
            -speed.travel_cost(task.destination, d.destination).as_f64(),
        );
    }
    for t in 0..m {
        if !view.is_allowed(t) {
            continue;
        }
        for e in market.chain_edges(t) {
            if view.is_allowed(e.to as usize) {
                dag.add_edge(t, e.to as usize, -e.cost);
            }
        }
    }
    // The empty route: drive straight home at the commute cost, netting 0.
    dag.add_edge(source, sink, -view.direct_cost().as_f64());
    TaskMapDag { dag, source, sink }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::market::MarketBuildOptions;
    use rideshare_trace::{DriverModel, TraceConfig};

    fn market(seed: u64, tasks: usize, drivers: usize) -> Market {
        let trace = TraceConfig::porto()
            .with_seed(seed)
            .with_task_count(tasks)
            .with_driver_count(drivers, DriverModel::Hitchhiking)
            .generate();
        Market::from_trace(&trace, &MarketBuildOptions::default())
    }

    #[test]
    fn generic_dag_agrees_with_factored_solver() {
        // The crown differential test: two completely independent path
        // solvers over the same task map must find the same optimum.
        for seed in [91u64, 92, 93, 94] {
            let m = market(seed, 80, 6);
            let removed = vec![false; m.num_tasks()];
            for driver in 0..m.num_drivers() {
                let view = DriverView::new(&m, driver);
                let fast = view.best_path(&m, Objective::Profit, &removed);
                let tm = task_map_dag(&m, driver, Objective::Profit);
                let generic = tm
                    .dag
                    .max_profit_path(tm.source, tm.sink)
                    .expect("empty route always exists");
                assert!(
                    (fast.profit - generic.profit.max(0.0)).abs() < 1e-6,
                    "seed {seed} driver {driver}: factored {} vs generic {}",
                    fast.profit,
                    generic.profit
                );
            }
        }
    }

    #[test]
    fn task_map_is_acyclic_and_indexed_by_task() {
        let m = market(95, 60, 2);
        let tm = task_map_dag(&m, 0, Objective::Profit);
        assert!(rideshare_graph::is_acyclic(&tm.dag));
        assert_eq!(tm.dag.node_count(), m.num_tasks() + 2);
        let view = DriverView::new(&m, 0);
        for t in 0..m.num_tasks() {
            assert_eq!(tm.dag.is_enabled(t), view.is_allowed(t));
        }
    }

    #[test]
    fn empty_route_edge_gives_zero_profit_floor() {
        // A market where no task is profitable: the best generic path is
        // the direct source→sink edge with profit exactly 0.
        let m = market(96, 0, 1);
        let tm = task_map_dag(&m, 0, Objective::Profit);
        let p = tm.dag.max_profit_path(tm.source, tm.sink).unwrap();
        assert_eq!(p.nodes, vec![tm.source, tm.sink]);
        assert!(p.profit.abs() < 1e-9);
    }

    #[test]
    fn welfare_map_dominates_profit_map() {
        let m = market(97, 50, 3);
        for driver in 0..m.num_drivers() {
            let p = task_map_dag(&m, driver, Objective::Profit);
            let w = task_map_dag(&m, driver, Objective::Welfare);
            let pp = p.dag.max_profit_path(p.source, p.sink).unwrap().profit;
            let ww = w.dag.max_profit_path(w.source, w.sink).unwrap().profit;
            assert!(ww + 1e-9 >= pp, "welfare {ww} < profit {pp}");
        }
    }
}
