//! Assignments (solutions) and their validation against the model
//! constraints (5a)–(5h).

use rideshare_types::{DriverId, MarketError, Money, Result, TaskId};

use crate::market::{Market, Objective};
use crate::view::DriverView;

/// One driver's task list: the tasks she serves, in service order — a
/// source→sink path in her task map.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct DriverRoute {
    /// Tasks in service order; empty means the driver serves no one.
    pub tasks: Vec<TaskId>,
}

/// A full market solution: one route per driver.
///
/// This realises the decision variables of §III-C: `xₙ,ₘ = 1` iff task `m`
/// appears in driver `n`'s route, and `yₙ,ₘ,ₘ'` is the consecutive-pair
/// relation within routes.
#[derive(Clone, PartialEq, Debug)]
pub struct Assignment {
    routes: Vec<DriverRoute>,
}

impl Assignment {
    /// An empty assignment (every driver drives straight home).
    #[must_use]
    pub fn empty(num_drivers: usize) -> Self {
        Self {
            routes: vec![DriverRoute::default(); num_drivers],
        }
    }

    /// Builds from per-driver task lists.
    #[must_use]
    pub fn from_routes(routes: Vec<DriverRoute>) -> Self {
        Self { routes }
    }

    /// The route of each driver, indexed by [`DriverId::index`].
    #[must_use]
    pub fn routes(&self) -> &[DriverRoute] {
        &self.routes
    }

    /// Replaces driver `n`'s route.
    ///
    /// # Panics
    ///
    /// Panics if the driver index is out of range.
    pub fn set_route(&mut self, driver: DriverId, tasks: Vec<TaskId>) {
        self.routes[driver.index()].tasks = tasks;
    }

    /// Appends a task to driver `n`'s route (online dispatch).
    ///
    /// # Panics
    ///
    /// Panics if the driver index is out of range.
    pub fn push_task(&mut self, driver: DriverId, task: TaskId) {
        self.routes[driver.index()].tasks.push(task);
    }

    /// Number of served tasks (`Σ xₙ,ₘ`).
    #[must_use]
    pub fn served_count(&self) -> usize {
        self.routes.iter().map(|r| r.tasks.len()).sum()
    }

    /// Number of drivers serving at least one task.
    #[must_use]
    pub fn active_driver_count(&self) -> usize {
        self.routes.iter().filter(|r| !r.tasks.is_empty()).count()
    }

    /// Which driver serves `task`, if any.
    #[must_use]
    pub fn server_of(&self, task: TaskId) -> Option<DriverId> {
        self.routes
            .iter()
            .enumerate()
            .find_map(|(n, r)| r.tasks.contains(&task).then(|| DriverId::new(n as u32)))
    }

    /// Total objective value: Eq. 4 (`Objective::Profit`) or Eq. 6
    /// (`Objective::Welfare`) — the sum over drivers of route profits
    /// (task margins minus excess travel cost).
    #[must_use]
    pub fn objective_value(&self, market: &Market, objective: Objective) -> Money {
        self.routes
            .iter()
            .enumerate()
            .map(|(n, r)| self.route_profit_inner(market, objective, n, &r.tasks))
            .sum()
    }

    /// The profit of a single driver's route.
    ///
    /// # Panics
    ///
    /// Panics if the driver index is out of range.
    #[must_use]
    pub fn route_profit(&self, market: &Market, objective: Objective, driver: DriverId) -> Money {
        let r = &self.routes[driver.index()];
        self.route_profit_inner(market, objective, driver.index(), &r.tasks)
    }

    fn route_profit_inner(
        &self,
        market: &Market,
        objective: Objective,
        driver: usize,
        tasks: &[TaskId],
    ) -> Money {
        if tasks.is_empty() {
            return Money::ZERO;
        }
        let view = DriverView::new(market, driver);
        let idx: Vec<u32> = tasks.iter().map(|t| t.raw()).collect();
        view.path_profit(market, objective, &idx)
    }

    /// Total revenue paid out to drivers (`Σ xₙ,ₘ pₘ`) — Fig. 6's metric.
    #[must_use]
    pub fn total_revenue(&self, market: &Market) -> Money {
        self.routes
            .iter()
            .flat_map(|r| &r.tasks)
            .map(|t| market.tasks()[t.index()].price)
            .sum()
    }

    /// Validates the constraint system of §III-C:
    ///
    /// - (5a) every task appears in at most one route,
    /// - (5c)–(5f) each route is a feasible source→sink path in its
    ///   driver's task map (every consecutive arc exists),
    /// - (5b) individual rationality: each route's profit is non-negative,
    /// - (7a) customer rationality: every served task has `bₘ ≥ pₘ`.
    ///
    /// # Errors
    ///
    /// Returns [`MarketError::InfeasibleAssignment`] naming the violated
    /// constraint, or [`MarketError::UnknownTask`]/
    /// [`MarketError::UnknownDriver`] for dangling references.
    pub fn validate(&self, market: &Market) -> Result<()> {
        if self.routes.len() != market.num_drivers() {
            return Err(MarketError::InfeasibleAssignment {
                reason: format!(
                    "{} routes for {} drivers",
                    self.routes.len(),
                    market.num_drivers()
                ),
            });
        }
        // (5a) node-disjointness.
        let mut seen = vec![false; market.num_tasks()];
        for (n, route) in self.routes.iter().enumerate() {
            let view = DriverView::new(market, n);
            let mut prev: Option<usize> = None;
            for t in &route.tasks {
                let m = t.index();
                if m >= market.num_tasks() {
                    return Err(MarketError::UnknownTask(*t));
                }
                if seen[m] {
                    return Err(MarketError::InfeasibleAssignment {
                        reason: format!("(5a) {t} served twice"),
                    });
                }
                seen[m] = true;
                if !view.is_allowed(m) {
                    return Err(MarketError::InfeasibleAssignment {
                        reason: format!("(5c/5d) driver#{n} cannot serve {t}"),
                    });
                }
                if let Some(p) = prev {
                    if !market.has_chain_edge(p, m) {
                        return Err(MarketError::InfeasibleAssignment {
                            reason: format!("(5e/5f) no arc task#{p} → {t} for driver#{n}"),
                        });
                    }
                }
                prev = Some(m);
                // (7a).
                let task = &market.tasks()[m];
                if task.valuation < task.price {
                    return Err(MarketError::InfeasibleAssignment {
                        reason: format!("(7a) {t} has bₘ < pₘ"),
                    });
                }
            }
            // (5b) individual rationality.
            let profit = self.route_profit_inner(market, Objective::Profit, n, &route.tasks);
            if profit.is_strictly_negative() {
                return Err(MarketError::InfeasibleAssignment {
                    reason: format!("(5b) driver#{n} route profit {profit} < 0"),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::market::{Driver, MarketBuildOptions, Task};
    use rideshare_geo::{GeoPoint, SpeedModel};
    use rideshare_trace::{DriverModel, TraceConfig};
    use rideshare_types::{TimeDelta, Timestamp};

    fn pt(km_east: f64) -> GeoPoint {
        GeoPoint::new(41.15, -8.61).offset_km(0.0, km_east)
    }

    fn task(id: u32, at: f64, start: i64, end: i64, price: f64) -> Task {
        Task {
            id: TaskId::new(id),
            publish_time: Timestamp::from_secs(start - 60),
            origin: pt(at),
            destination: pt(at),
            pickup_deadline: Timestamp::from_secs(start),
            completion_deadline: Timestamp::from_secs(end),
            duration: TimeDelta::from_secs(0),
            price: Money::new(price),
            valuation: Money::new(price + 0.5),
            service_cost: Money::ZERO,
        }
    }

    fn two_task_market() -> Market {
        let d0 = Driver {
            id: DriverId::new(0),
            source: pt(0.0),
            destination: pt(30.0),
            shift_start: Timestamp::from_secs(0),
            shift_end: Timestamp::from_secs(7200),
            model: DriverModel::Hitchhiking,
        };
        let d1 = Driver {
            id: DriverId::new(1),
            ..d0
        };
        Market::new(
            vec![d0, d1],
            vec![
                task(0, 10.0, 900, 1500, 3.0),
                task(1, 20.0, 2400, 3000, 3.0),
            ],
            SpeedModel::new(60.0, 1.0, 0.1),
            None,
        )
    }

    #[test]
    fn empty_assignment_is_valid_and_worthless() {
        let market = two_task_market();
        let a = Assignment::empty(2);
        a.validate(&market).unwrap();
        assert_eq!(a.objective_value(&market, Objective::Profit), Money::ZERO);
        assert_eq!(a.served_count(), 0);
        assert_eq!(a.active_driver_count(), 0);
    }

    #[test]
    fn valid_chain_route() {
        let market = two_task_market();
        let mut a = Assignment::empty(2);
        a.set_route(DriverId::new(0), vec![TaskId::new(0), TaskId::new(1)]);
        a.validate(&market).unwrap();
        assert_eq!(a.served_count(), 2);
        assert_eq!(a.active_driver_count(), 1);
        assert_eq!(a.server_of(TaskId::new(1)), Some(DriverId::new(0)));
        assert_eq!(a.server_of(TaskId::new(0)), Some(DriverId::new(0)));
        let profit = a.objective_value(&market, Objective::Profit);
        assert!(profit.approx_eq(Money::new(6.0)));
        assert!(a.total_revenue(&market).approx_eq(Money::new(6.0)));
        // Welfare counts valuations: +0.5 per task.
        let welfare = a.objective_value(&market, Objective::Welfare);
        assert!(welfare.approx_eq(Money::new(7.0)));
    }

    #[test]
    fn duplicate_task_rejected() {
        let market = two_task_market();
        let mut a = Assignment::empty(2);
        a.set_route(DriverId::new(0), vec![TaskId::new(0)]);
        a.set_route(DriverId::new(1), vec![TaskId::new(0)]);
        let err = a.validate(&market).unwrap_err();
        assert!(err.to_string().contains("(5a)"), "{err}");
    }

    #[test]
    fn backwards_chain_rejected() {
        let market = two_task_market();
        let mut a = Assignment::empty(2);
        a.set_route(DriverId::new(0), vec![TaskId::new(1), TaskId::new(0)]);
        let err = a.validate(&market).unwrap_err();
        assert!(err.to_string().contains("(5e/5f)"), "{err}");
    }

    #[test]
    fn unknown_task_rejected() {
        let market = two_task_market();
        let mut a = Assignment::empty(2);
        a.set_route(DriverId::new(0), vec![TaskId::new(9)]);
        assert!(matches!(
            a.validate(&market),
            Err(MarketError::UnknownTask(_))
        ));
    }

    #[test]
    fn route_count_mismatch_rejected() {
        let market = two_task_market();
        let a = Assignment::empty(1);
        assert!(a.validate(&market).is_err());
    }

    #[test]
    fn individual_rationality_enforced() {
        // A driver pulled 40 km off a zero-length commute for a 1-unit fare.
        let d = Driver {
            id: DriverId::new(0),
            source: pt(0.0),
            destination: pt(0.0),
            shift_start: Timestamp::from_secs(0),
            shift_end: Timestamp::from_secs(36_000),
            model: DriverModel::HomeWorkHome,
        };
        let market = Market::new(
            vec![d],
            vec![task(0, 40.0, 10_000, 20_000, 1.0)],
            SpeedModel::new(60.0, 1.0, 0.1),
            None,
        );
        let mut a = Assignment::empty(1);
        a.set_route(DriverId::new(0), vec![TaskId::new(0)]);
        let err = a.validate(&market).unwrap_err();
        assert!(err.to_string().contains("(5b)"), "{err}");
    }

    #[test]
    fn push_task_appends() {
        let market = two_task_market();
        let mut a = Assignment::empty(2);
        a.push_task(DriverId::new(1), TaskId::new(0));
        a.push_task(DriverId::new(1), TaskId::new(1));
        a.validate(&market).unwrap();
        assert_eq!(a.routes()[1].tasks.len(), 2);
    }

    #[test]
    fn trace_market_round_trip() {
        let trace = TraceConfig::porto()
            .with_seed(21)
            .with_task_count(60)
            .with_driver_count(8, DriverModel::Hitchhiking)
            .generate();
        let market = Market::from_trace(&trace, &MarketBuildOptions::default());
        let a = Assignment::empty(market.num_drivers());
        a.validate(&market).unwrap();
    }
}
