//! The paper's primary contribution: a generalized optimization framework
//! for two-sided ride-sharing / delivery markets.
//!
//! This crate implements §III–§IV of *"An Optimization Framework for Online
//! Ride-sharing Markets"* (ICDCS 2017):
//!
//! - [`Market`]: the two-sided market configuration of §III-A — `N` drivers
//!   with daily travel plans, `M` tasks with deadlines, prices `pₘ`, and
//!   valuations `bₘ` — plus the **task-map** arcs of §III-B (Eqs. 1–3),
//!   stored as one shared driver-independent chain graph and per-driver
//!   reachability views ([`DriverView`]),
//! - [`Assignment`]: a feasible solution (one node-disjoint task list per
//!   driver), with validation of the flow constraints (5a–5f) and
//!   individual rationality (5b), and evaluation of both objectives —
//!   drivers' profit `Z` (Eq. 4) and social welfare `Ẑ` (Eq. 6) via
//!   [`Objective`],
//! - [`solve_greedy`]: the offline greedy **GA** (Alg. 1) with its tight
//!   `1/(D+1)` approximation guarantee, implemented with lazy best-path
//!   re-evaluation,
//! - [`lp_upper_bound`]: the LP-relaxation bound `Z_f*` (§III-E) computed
//!   by column generation over the path formulation (Eq. 9–10), with an
//!   exact longest-path pricing oracle,
//! - [`solve_exact`]: the arc-form ILP solved by branch-and-bound — the
//!   CPLEX stand-in for small-scale exact optima `Z*` (§VI-B),
//! - [`tightness`]: a generator for the Fig. 2 adversarial family showing
//!   the `1/(D+1)` ratio is tight.
//!
//! # Examples
//!
//! ```
//! use rideshare_core::{Market, Objective, solve_greedy};
//! use rideshare_trace::{DriverModel, TraceConfig};
//!
//! let trace = TraceConfig::porto()
//!     .with_seed(1)
//!     .with_task_count(120)
//!     .with_driver_count(15, DriverModel::Hitchhiking)
//!     .generate();
//! let market = Market::from_trace(&trace, &Default::default());
//! let outcome = solve_greedy(&market, Objective::Profit);
//! let assignment = &outcome.assignment;
//! assert!(assignment.validate(&market).is_ok());
//! let profit = assignment.objective_value(&market, Objective::Profit);
//! assert!(profit.as_f64() >= 0.0);
//! ```

// Lint levels (unsafe_code, missing_docs) come from [workspace.lints].

mod assignment;
mod exact;
pub mod export;
mod greedy;
mod market;
pub mod partition;
mod streaming;
mod summary;
pub mod tightness;
mod upper_bound;
mod view;

pub use assignment::{Assignment, DriverRoute};
pub use exact::{solve_exact, ExactOptions, ExactOutcome};
pub use greedy::{solve_greedy, GreedyOutcome};
pub use market::{ChainEdge, Driver, Market, MarketBuildOptions, Objective, Task};
pub use partition::{
    components_upper_bound, disjoint_components, disjoint_components_sharded, sharded_upper_bound,
    solve_components, solve_sharded, SubMarket,
};
pub use streaming::StreamPricer;
pub use summary::MarketSummary;
pub use upper_bound::{lp_upper_bound, performance_ratio, UpperBoundOptions, UpperBoundResult};
pub use view::{BestPath, DriverView};
