//! Per-driver task-map views and the max-profit-path oracle.

use rideshare_types::{Money, TimeDelta};

use crate::market::{Market, Objective};

/// The per-driver part of the task map of §III-B: which tasks driver `n`
/// can serve at all (Eq. 2's reach and return conjuncts plus Eq. 1), the
/// source/sink arc costs, and the baseline commute refund.
///
/// Combined with the market's shared chain arcs this is exactly the
/// driver's task-map DAG; [`DriverView::best_path`] runs the longest-path
/// DP over it (the primitive both Alg. 1 and the pricing oracle use).
#[derive(Clone, Debug)]
pub struct DriverView {
    driver: usize,
    /// `allowed[m]`: task m is a node of this driver's task map.
    allowed: Vec<bool>,
    /// Cost of the source arc `0 → m` (`cₙ,₀,ₘ`), valid where `allowed`.
    source_cost: Vec<f64>,
    /// Cost of the sink arc `m → −1` (`cₙ,ₘ,₋₁`), valid where `allowed`.
    sink_cost: Vec<f64>,
    /// Baseline commute cost `cₙ,₀,₋₁`, refunded in the objective.
    direct_cost: f64,
    feasible_count: usize,
}

/// A maximum-profit source→sink path for one driver.
#[derive(Clone, PartialEq, Debug)]
pub struct BestPath {
    /// Task indices in service order (empty = the driver serves no one).
    pub tasks: Vec<u32>,
    /// The path profit `r_π` (0 for the empty path).
    pub profit: f64,
}

impl DriverView {
    /// Builds the view for `driver` (an index into [`Market::drivers`]).
    ///
    /// Cost: `O(M)` distance evaluations.
    ///
    /// # Panics
    ///
    /// Panics if `driver` is out of range.
    #[must_use]
    pub fn new(market: &Market, driver: usize) -> Self {
        let d = &market.drivers()[driver];
        let speed = market.speed();
        let m = market.num_tasks();
        let mut allowed = vec![false; m];
        let mut source_cost = vec![0.0; m];
        let mut sink_cost = vec![0.0; m];
        let mut feasible_count = 0;
        for (i, t) in market.tasks().iter().enumerate() {
            if !t.window_feasible() {
                continue;
            }
            // Eq. 2: reach the pickup before its deadline…
            let reach = speed.travel_time(d.source, t.origin);
            if reach > t.pickup_deadline - d.shift_start {
                continue;
            }
            // …and still make it home after the drop-off deadline.
            let back = speed.travel_time(t.destination, d.destination);
            if back > d.shift_end - t.completion_deadline {
                continue;
            }
            allowed[i] = true;
            feasible_count += 1;
            source_cost[i] = speed.travel_cost(d.source, t.origin).as_f64();
            sink_cost[i] = speed.travel_cost(t.destination, d.destination).as_f64();
        }
        Self {
            driver,
            allowed,
            source_cost,
            sink_cost,
            direct_cost: market.direct_cost(driver).as_f64(),
            feasible_count,
        }
    }

    /// The driver index this view belongs to.
    #[must_use]
    pub fn driver(&self) -> usize {
        self.driver
    }

    /// Whether task `m` is a node of this driver's task map (`ĥₙ,ₘ` and the
    /// reach/return conjuncts of Eq. 2).
    #[must_use]
    pub fn is_allowed(&self, m: usize) -> bool {
        self.allowed[m]
    }

    /// Number of tasks in this driver's task map.
    #[must_use]
    pub fn feasible_task_count(&self) -> usize {
        self.feasible_count
    }

    /// The baseline commute cost `cₙ,₀,₋₁`.
    #[must_use]
    pub fn direct_cost(&self) -> Money {
        Money::new(self.direct_cost)
    }

    /// Maximum-profit path under `objective`, skipping tasks where
    /// `removed[m]` is true.
    ///
    /// Returns the empty path (profit 0) when no task path beats doing
    /// nothing.
    #[must_use]
    pub fn best_path(&self, market: &Market, objective: Objective, removed: &[bool]) -> BestPath {
        self.best_path_priced(market, objective, removed, |_| 0.0, 0.0)
    }

    /// Maximum-profit path with per-task dual prices subtracted — the
    /// column-generation pricing oracle. The returned `profit` is the
    /// *reduced* value `r_π − Σ_{m∈π} task_dual(m) − driver_dual`; the true
    /// `r_π` can be recomputed with [`DriverView::path_profit`].
    ///
    /// The DP runs over the market's shared topological order in
    /// `O(M + |chain arcs|)`.
    #[must_use]
    pub fn best_path_priced(
        &self,
        market: &Market,
        objective: Objective,
        removed: &[bool],
        task_dual: impl Fn(usize) -> f64,
        driver_dual: f64,
    ) -> BestPath {
        let m = market.num_tasks();
        debug_assert_eq!(removed.len(), m);
        const NEG: f64 = f64::NEG_INFINITY;
        // dp[i] = best value of a path from the source ending at task i
        // (inclusive of i's margin and dual), before the sink arc.
        let mut dp = vec![NEG; m];
        let mut pred: Vec<u32> = vec![u32::MAX; m];
        let tasks = market.tasks();

        let value = |i: usize| tasks[i].margin(objective).as_f64() - task_dual(i);

        for &iu in market.topo_order() {
            let i = iu as usize;
            if !self.allowed[i] || removed[i] {
                continue;
            }
            // Source arc.
            let via_source = self.direct_cost - self.source_cost[i] + value(i);
            if via_source > dp[i] {
                dp[i] = via_source;
                pred[i] = u32::MAX;
            }
            if dp[i] == NEG {
                continue;
            }
            for e in market.chain_edges(i) {
                let j = e.to as usize;
                if !self.allowed[j] || removed[j] {
                    continue;
                }
                let cand = dp[i] - e.cost + value(j);
                if cand > dp[j] {
                    dp[j] = cand;
                    pred[j] = iu;
                }
            }
        }

        // Close with the sink arc; compare against the empty path.
        let mut best_end: Option<usize> = None;
        let mut best = 0.0 - driver_dual; // empty path: profit 0, pays λ
        for (i, &dpi) in dp.iter().enumerate() {
            if dpi == NEG {
                continue;
            }
            let total = dpi - self.sink_cost[i] - driver_dual;
            if total > best {
                best = total;
                best_end = Some(i);
            }
        }
        let mut tasks_out = Vec::new();
        if let Some(mut cur) = best_end {
            loop {
                tasks_out.push(cur as u32);
                let p = pred[cur];
                if p == u32::MAX {
                    break;
                }
                cur = p as usize;
            }
            tasks_out.reverse();
        }
        BestPath {
            tasks: tasks_out,
            profit: best,
        }
    }

    /// The true profit `r_π` of an explicit task sequence for this driver:
    /// task margins minus connection costs plus the commute refund.
    ///
    /// Does **not** check feasibility; pair with
    /// [`crate::Assignment::validate`].
    #[must_use]
    pub fn path_profit(&self, market: &Market, objective: Objective, tasks: &[u32]) -> Money {
        if tasks.is_empty() {
            return Money::ZERO;
        }
        let ts = market.tasks();
        let speed = market.speed();
        let mut total = self.direct_cost - self.source_cost[tasks[0] as usize];
        for (k, &i) in tasks.iter().enumerate() {
            total += ts[i as usize].margin(objective).as_f64();
            if k + 1 < tasks.len() {
                let j = tasks[k + 1] as usize;
                total -= speed
                    .travel_cost(ts[i as usize].destination, ts[j].origin)
                    .as_f64();
            }
        }
        total -= self.sink_cost[*tasks.last().expect("non-empty") as usize];
        Money::new(total)
    }

    /// The added feasibility check for appending `task` directly after the
    /// driver leaves `from` at `ready_at`: used by the online simulator.
    ///
    /// Returns the empty-drive travel time if the driver can reach the
    /// pickup before its deadline *and* still reach her own destination
    /// after the task's completion deadline, `None` otherwise.
    #[must_use]
    pub fn can_append(
        &self,
        market: &Market,
        from: rideshare_geo::GeoPoint,
        ready_at: rideshare_types::Timestamp,
        task: usize,
    ) -> Option<TimeDelta> {
        if !self.allowed[task] {
            return None;
        }
        let t = &market.tasks()[task];
        let travel = market.speed().travel_time(from, t.origin);
        if ready_at + travel <= t.pickup_deadline {
            Some(travel)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::market::{Driver, Task};
    use rideshare_geo::{GeoPoint, SpeedModel};
    use rideshare_trace::DriverModel;
    use rideshare_types::{DriverId, TaskId, Timestamp};

    fn pt(km_east: f64) -> GeoPoint {
        GeoPoint::new(41.15, -8.61).offset_km(0.0, km_east)
    }

    fn task(id: u32, at: f64, start: i64, end: i64, price: f64) -> Task {
        Task {
            id: TaskId::new(id),
            publish_time: Timestamp::from_secs(start - 60),
            origin: pt(at),
            destination: pt(at),
            pickup_deadline: Timestamp::from_secs(start),
            completion_deadline: Timestamp::from_secs(end),
            duration: TimeDelta::from_secs(0),
            price: Money::new(price),
            valuation: Money::new(price + 1.0),
            service_cost: Money::ZERO,
        }
    }

    fn driver(at: f64, dest: f64, start: i64, end: i64) -> Driver {
        Driver {
            id: DriverId::new(0),
            source: pt(at),
            destination: pt(dest),
            shift_start: Timestamp::from_secs(start),
            shift_end: Timestamp::from_secs(end),
            model: DriverModel::Hitchhiking,
        }
    }

    /// 60 km/h, no detour, 0.1/km → 1 km = 1 min = 0.1 cost.
    fn speed() -> SpeedModel {
        SpeedModel::new(60.0, 1.0, 0.1)
    }

    #[test]
    fn reach_and_return_feasibility() {
        // Driver at km 0, shift [0, 3600], destination km 0.
        // Task A at km 10 starting t=1200 (20 min to drive 10 km → ok).
        // Task B at km 10 starting t=300 (can't reach in 5 min).
        // Task C at km 10 ending t=3300 (10 min back → misses shift end).
        let d = driver(0.0, 0.0, 0, 3600);
        let a = task(0, 10.0, 1200, 1800, 5.0);
        let b = task(1, 10.0, 300, 900, 5.0);
        let c = task(2, 10.0, 2700, 3300, 5.0);
        let market = Market::new(vec![d], vec![a, b, c], speed(), None);
        let view = DriverView::new(&market, 0);
        assert!(view.is_allowed(0));
        assert!(!view.is_allowed(1), "cannot reach pickup in time");
        assert!(!view.is_allowed(2), "cannot return home in time");
        assert_eq!(view.feasible_task_count(), 1);
    }

    #[test]
    fn best_path_chains_profitable_tasks() {
        // Two tasks along the driver's 30 km commute, in sequence.
        let d = driver(0.0, 30.0, 0, 7200);
        let t1 = task(0, 10.0, 900, 1500, 3.0);
        let t2 = task(1, 20.0, 2400, 3000, 3.0);
        let market = Market::new(vec![d], vec![t1, t2], speed(), None);
        let view = DriverView::new(&market, 0);
        let best = view.best_path(&market, Objective::Profit, &[false, false]);
        assert_eq!(best.tasks, vec![0, 1]);
        // Costs: direct refund 3.0; path drives 0→10→20→30 = 30 km = 3.0.
        // Profit = 3+3 (margins) − 3.0 + 3.0 = 6.0.
        assert!((best.profit - 6.0).abs() < 1e-6, "profit {}", best.profit);
        let recomputed = view.path_profit(&market, Objective::Profit, &best.tasks);
        assert!(recomputed.approx_eq(Money::new(best.profit)));
    }

    #[test]
    fn removal_masks_tasks() {
        let d = driver(0.0, 30.0, 0, 7200);
        let t1 = task(0, 10.0, 900, 1500, 3.0);
        let t2 = task(1, 20.0, 2400, 3000, 3.0);
        let market = Market::new(vec![d], vec![t1, t2], speed(), None);
        let view = DriverView::new(&market, 0);
        let best = view.best_path(&market, Objective::Profit, &[true, false]);
        assert_eq!(best.tasks, vec![1]);
        let none = view.best_path(&market, Objective::Profit, &[true, true]);
        assert!(none.tasks.is_empty());
        assert_eq!(none.profit, 0.0);
    }

    #[test]
    fn unprofitable_detour_left_unserved() {
        // Task 40 km off the driver's doorstep-to-doorstep commute, paying
        // far less than the 80 km round trip costs.
        let d = driver(0.0, 0.0, 0, 36_000);
        let t = task(0, 40.0, 10_000, 20_000, 1.0);
        let market = Market::new(vec![d], vec![t], speed(), None);
        let view = DriverView::new(&market, 0);
        assert!(view.is_allowed(0));
        let best = view.best_path(&market, Objective::Profit, &[false]);
        assert!(best.tasks.is_empty(), "serving would lose money");
        assert_eq!(best.profit, 0.0);
    }

    #[test]
    fn welfare_objective_uses_valuation() {
        let d = driver(0.0, 0.0, 0, 36_000);
        // Price 1 (unprofitable to serve), valuation 20 (welfare-positive).
        let mut t = task(0, 20.0, 10_000, 20_000, 1.0);
        t.valuation = Money::new(20.0);
        let market = Market::new(vec![d], vec![t], speed(), None);
        let view = DriverView::new(&market, 0);
        assert!(view
            .best_path(&market, Objective::Profit, &[false])
            .tasks
            .is_empty());
        let welfare = view.best_path(&market, Objective::Welfare, &[false]);
        assert_eq!(welfare.tasks, vec![0]);
        // 20 − 4.0 (40 km round trip) + 0 refund = 16.
        assert!((welfare.profit - 16.0).abs() < 1e-6);
    }

    #[test]
    fn duals_steer_pricing_oracle() {
        let d = driver(0.0, 30.0, 0, 7200);
        let t1 = task(0, 10.0, 900, 1500, 3.0);
        let t2 = task(1, 20.0, 2400, 3000, 3.0);
        let market = Market::new(vec![d], vec![t1, t2], speed(), None);
        let view = DriverView::new(&market, 0);
        // A huge dual on task 0 prices it out of the path.
        let priced = view.best_path_priced(
            &market,
            Objective::Profit,
            &[false, false],
            |m| if m == 0 { 100.0 } else { 0.0 },
            0.0,
        );
        assert_eq!(priced.tasks, vec![1]);
        // Driver dual shifts the whole path value down.
        let paid = view.best_path_priced(&market, Objective::Profit, &[false, false], |_| 0.0, 2.0);
        assert!((paid.profit - 4.0).abs() < 1e-6, "6.0 − λ");
    }

    #[test]
    fn can_append_checks_pickup_deadline() {
        let d = driver(0.0, 30.0, 0, 7200);
        let t = task(0, 10.0, 1200, 1800, 3.0);
        let market = Market::new(vec![d], vec![t], speed(), None);
        let view = DriverView::new(&market, 0);
        // From km 0 at t=0: 10 min drive, deadline 20 min → fits.
        let tt = view
            .can_append(&market, pt(0.0), Timestamp::from_secs(0), 0)
            .expect("reachable");
        assert_eq!(tt.as_secs(), 600);
        // From km 0 at t=700: 600 s drive arrives 1300 > 1200 → no.
        assert!(view
            .can_append(&market, pt(0.0), Timestamp::from_secs(700), 0)
            .is_none());
    }
}
