//! The LP-relaxation upper bound `Z_f*` via column generation.
//!
//! §III-E relaxes the integrality constraints of the flow formulation; the
//! paper uses the fractional optimum `Z_f* ≥ Z* = OPT` as the evaluation
//! yardstick for every algorithm (§VI-B). We compute it on the equivalent
//! path formulation (Eq. 9–10): by flow decomposition on a DAG the two
//! relaxations have the same optimum, and the path LP is a *packing LP*
//! with one row per driver and one row per task — but exponentially many
//! columns.
//!
//! Column generation handles that: the restricted master problem
//! ([`rideshare_lp::PackingLp`]) holds the columns generated so far, and the
//! pricing subproblem for driver `i` asks for the path maximising the
//! reduced cost `r_π − Σ_{m∈π} μₘ − λᵢ` — exactly a longest-path query in
//! driver `i`'s task-map DAG with dual-adjusted node weights, solved by
//! [`crate::DriverView::best_path_priced`] in linear time. When no path
//! prices positive the master optimum *is* `Z_f*`; if the round budget is
//! hit first, the Lagrangian bound `master + Σᵢ max(0, best reduced cost)`
//! is still a valid upper bound and is reported with `converged = false`.

use rideshare_lp::PackingLp;
use rideshare_types::{Money, Result};

use crate::greedy::solve_greedy;
use crate::market::{Market, Objective};
use crate::view::DriverView;

/// Options for [`lp_upper_bound`].
#[derive(Clone, Copy, Debug)]
pub struct UpperBoundOptions {
    /// Maximum column-generation rounds (each round prices all drivers).
    pub max_rounds: usize,
    /// Reduced-cost tolerance for accepting a new column.
    pub pricing_tolerance: f64,
    /// Warm-start the master with the greedy solution's paths.
    pub warm_start_greedy: bool,
    /// Purge clearly-unattractive non-basic columns whenever the master
    /// holds more than `purge_factor × (N + M)` of them (0 purges every
    /// round). Purging only trims the tableau; the pricing oracle
    /// regenerates anything that becomes attractive again, so the bound is
    /// unaffected.
    pub purge_factor: usize,
}

impl Default for UpperBoundOptions {
    fn default() -> Self {
        Self {
            max_rounds: 60,
            pricing_tolerance: 1e-6,
            warm_start_greedy: true,
            purge_factor: 4,
        }
    }
}

/// Result of [`lp_upper_bound`].
#[derive(Clone, Copy, Debug)]
pub struct UpperBoundResult {
    /// A valid upper bound on the integral optimum `Z*`. Equal to `Z_f*`
    /// when `converged` is true.
    pub bound: f64,
    /// The restricted master LP's final objective (a lower bound on
    /// `Z_f*`).
    pub master_objective: f64,
    /// Column-generation rounds executed.
    pub rounds: usize,
    /// Path columns generated in total.
    pub columns: usize,
    /// Whether pricing proved optimality (no positive reduced cost left).
    pub converged: bool,
}

/// Computes the LP-relaxation upper bound `Z_f*` (§III-E) by column
/// generation.
///
/// # Errors
///
/// Propagates LP solver failures ([`rideshare_types::MarketError`]); these
/// indicate an iteration-budget exhaustion, not an invalid market.
///
/// # Examples
///
/// ```
/// use rideshare_core::{lp_upper_bound, solve_greedy, Market, MarketBuildOptions, Objective, UpperBoundOptions};
/// use rideshare_trace::{DriverModel, TraceConfig};
///
/// let trace = TraceConfig::porto()
///     .with_seed(5)
///     .with_task_count(60)
///     .with_driver_count(8, DriverModel::Hitchhiking)
///     .generate();
/// let market = Market::from_trace(&trace, &MarketBuildOptions::default());
/// let greedy = solve_greedy(&market, Objective::Profit);
/// let ub = lp_upper_bound(&market, Objective::Profit, UpperBoundOptions::default()).unwrap();
/// let achieved = greedy.assignment.objective_value(&market, Objective::Profit);
/// assert!(ub.bound + 1e-6 >= achieved.as_f64());
/// ```
pub fn lp_upper_bound(
    market: &Market,
    objective: Objective,
    opts: UpperBoundOptions,
) -> Result<UpperBoundResult> {
    let n = market.num_drivers();
    let m = market.num_tasks();
    if n == 0 || m == 0 {
        return Ok(UpperBoundResult {
            bound: 0.0,
            master_objective: 0.0,
            rounds: 0,
            columns: 0,
            converged: true,
        });
    }
    // Rows 0..n are driver convexity rows (10a as ≤ 1); rows n..n+m are the
    // task node-disjointness rows (10b).
    let mut master = PackingLp::new(n + m);
    let views: Vec<DriverView> = (0..n).map(|i| DriverView::new(market, i)).collect();

    let mut columns = 0usize;
    let mut add_path = |master: &mut PackingLp, driver: usize, tasks: &[u32], profit: f64| {
        let mut support = Vec::with_capacity(tasks.len() + 1);
        support.push(driver);
        let mut rows: Vec<usize> = tasks.iter().map(|&t| n + t as usize).collect();
        rows.sort_unstable();
        support.extend(rows);
        master.add_column(profit, &support);
        columns += 1;
    };

    if opts.warm_start_greedy {
        let greedy = solve_greedy(market, objective);
        for (i, route) in greedy.assignment.routes().iter().enumerate() {
            if route.tasks.is_empty() {
                continue;
            }
            let tasks: Vec<u32> = route.tasks.iter().map(|t| t.raw()).collect();
            let profit = views[i].path_profit(market, objective, &tasks);
            if profit.is_strictly_positive() {
                add_path(&mut master, i, &tasks, profit.as_f64());
            }
        }
    }

    let removed = vec![false; m];
    let mut rounds = 0usize;
    let mut converged = false;
    let mut master_objective = master.optimize()?;
    let mut slack_bound = 0.0f64;

    while rounds < opts.max_rounds {
        rounds += 1;
        let duals = master.duals();
        let mut any = false;
        slack_bound = 0.0;
        for (i, view) in views.iter().enumerate() {
            let lambda = duals[i];
            let priced =
                view.best_path_priced(market, objective, &removed, |t| duals[n + t], lambda);
            // `priced.profit` is the reduced cost of the best column for
            // driver i (the empty path contributes −λᵢ ≤ 0, so a positive
            // value certifies an improving path).
            if priced.profit > opts.pricing_tolerance && !priced.tasks.is_empty() {
                let true_profit = view.path_profit(market, objective, &priced.tasks);
                add_path(&mut master, i, &priced.tasks, true_profit.as_f64());
                any = true;
            }
            slack_bound += priced.profit.max(0.0);
        }
        if !any {
            converged = true;
            break;
        }
        master_objective = master.optimize()?;
        // Keep the tableau compact: drop non-basic columns that price
        // clearly unattractive. The oracle regenerates any column that
        // becomes attractive again, so this does not affect correctness —
        // only the per-pivot cost, which is linear in tableau width.
        if master.num_columns() > opts.purge_factor * (n + m) {
            master.purge(1e-6);
        }
    }

    // Lagrangian safety net: Z_f* ≤ master + Σᵢ (best reduced cost)⁺,
    // evaluated at the master's final duals. Zero at convergence.
    let bound = if converged {
        master_objective
    } else {
        // Recompute the pricing gap at the final duals.
        let duals = master.duals();
        let mut gap = 0.0;
        for (i, view) in views.iter().enumerate() {
            let priced =
                view.best_path_priced(market, objective, &removed, |t| duals[n + t], duals[i]);
            gap += priced.profit.max(0.0);
        }
        let _ = slack_bound;
        master_objective + gap
    };

    Ok(UpperBoundResult {
        bound,
        master_objective,
        rounds,
        columns,
        converged,
    })
}

/// Convenience: the paper's *performance ratio* — an algorithm's achieved
/// objective divided by the upper bound (so 1.0 is optimal; the paper plots
/// the inverse orientation in Fig. 5, bound over achieved ≥ 1, which some
/// readers prefer — we report achieved/bound ∈ [0, 1]).
#[must_use]
pub fn performance_ratio(achieved: Money, bound: f64) -> f64 {
    if bound <= f64::EPSILON {
        return 1.0;
    }
    (achieved.as_f64() / bound).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::market::MarketBuildOptions;
    use crate::solve_greedy;
    use rideshare_trace::{DriverModel, TraceConfig};

    fn market(seed: u64, tasks: usize, drivers: usize, model: DriverModel) -> Market {
        let trace = TraceConfig::porto()
            .with_seed(seed)
            .with_task_count(tasks)
            .with_driver_count(drivers, model)
            .generate();
        Market::from_trace(&trace, &MarketBuildOptions::default())
    }

    #[test]
    fn bound_dominates_greedy() {
        for model in [DriverModel::Hitchhiking, DriverModel::HomeWorkHome] {
            let m = market(11, 80, 10, model);
            let greedy = solve_greedy(&m, Objective::Profit);
            let achieved = greedy.assignment.objective_value(&m, Objective::Profit);
            let ub = lp_upper_bound(&m, Objective::Profit, UpperBoundOptions::default()).unwrap();
            assert!(ub.converged, "small instance should converge");
            assert!(
                ub.bound + 1e-6 >= achieved.as_f64(),
                "{model}: bound {} < achieved {achieved}",
                ub.bound
            );
            // The bound is not absurdly loose on a dense small market.
            assert!(ub.bound <= achieved.as_f64() * 5.0 + 50.0);
        }
    }

    #[test]
    fn warm_start_does_not_change_bound() {
        let m = market(12, 60, 8, DriverModel::Hitchhiking);
        let with = lp_upper_bound(&m, Objective::Profit, UpperBoundOptions::default()).unwrap();
        let without = lp_upper_bound(
            &m,
            Objective::Profit,
            UpperBoundOptions {
                warm_start_greedy: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(with.converged && without.converged);
        assert!(
            (with.bound - without.bound).abs() < 1e-4,
            "with {} vs without {}",
            with.bound,
            without.bound
        );
    }

    #[test]
    fn empty_market_bound_zero() {
        let m = market(13, 0, 5, DriverModel::Hitchhiking);
        let ub = lp_upper_bound(&m, Objective::Profit, UpperBoundOptions::default()).unwrap();
        assert_eq!(ub.bound, 0.0);
        assert!(ub.converged);
    }

    #[test]
    fn truncated_rounds_still_upper_bound() {
        let m = market(14, 100, 12, DriverModel::Hitchhiking);
        let full = lp_upper_bound(&m, Objective::Profit, UpperBoundOptions::default()).unwrap();
        assert!(full.converged);
        let truncated = lp_upper_bound(
            &m,
            Objective::Profit,
            UpperBoundOptions {
                max_rounds: 1,
                warm_start_greedy: false,
                ..Default::default()
            },
        )
        .unwrap();
        // The Lagrangian fallback must still dominate the true Z_f*.
        assert!(
            truncated.bound + 1e-6 >= full.bound,
            "truncated {} < converged {}",
            truncated.bound,
            full.bound
        );
    }

    #[test]
    fn aggressive_purging_does_not_change_bound() {
        let m = market(16, 90, 12, DriverModel::Hitchhiking);
        let normal = lp_upper_bound(&m, Objective::Profit, UpperBoundOptions::default()).unwrap();
        let purged = lp_upper_bound(
            &m,
            Objective::Profit,
            UpperBoundOptions {
                purge_factor: 0, // purge after every round
                ..Default::default()
            },
        )
        .unwrap();
        assert!(normal.converged && purged.converged);
        assert!(
            (normal.bound - purged.bound).abs() < 1e-4,
            "normal {} vs purged {}",
            normal.bound,
            purged.bound
        );
    }

    #[test]
    fn welfare_bound_dominates_profit_bound() {
        let m = market(15, 70, 9, DriverModel::Hitchhiking);
        let p = lp_upper_bound(&m, Objective::Profit, UpperBoundOptions::default()).unwrap();
        let w = lp_upper_bound(&m, Objective::Welfare, UpperBoundOptions::default()).unwrap();
        assert!(
            w.bound + 1e-6 >= p.bound,
            "welfare {} < profit {}",
            w.bound,
            p.bound
        );
    }

    #[test]
    fn performance_ratio_clamps() {
        assert_eq!(performance_ratio(Money::new(5.0), 10.0), 0.5);
        assert_eq!(performance_ratio(Money::new(15.0), 10.0), 1.0);
        assert_eq!(performance_ratio(Money::new(0.0), 0.0), 1.0);
    }
}
