//! Geographic partitioning and disjoint-component sharding — the paper's
//! distributed-deployment story.
//!
//! §I argues the market "can be partitioned … in city's scale" but warns
//! that *within* a big city further partitioning is lossy "because the
//! riders and drivers generally travel across the city". This module makes
//! both halves of that claim testable, and adds the **lossless**
//! decomposition the lossy grid only approximates:
//!
//! - [`partition_market`] splits a market into `k × k` grid-cell
//!   sub-markets (tasks by pickup cell, drivers by source cell) that can be
//!   solved independently — the embarrassingly parallel deployment mode,
//! - [`solve_partitioned`] runs the greedy on every sub-market and merges
//!   the per-cell assignments into one feasible global assignment,
//! - [`disjoint_components`] computes the *connected components* of the
//!   driver–task interaction graph (driver `n` touches task `m` iff `m` is
//!   a node of `n`'s task map). No feasible path crosses a component
//!   boundary, so solving each component independently is **exact**, not
//!   lossy: [`solve_sharded`] reproduces [`solve_greedy`]'s assignment and
//!   [`sharded_upper_bound`] reproduces `Z_f*`, while both can fan
//!   components out across OS threads (`std::thread::scope`, no external
//!   dependencies) with a deterministic index-ordered merge,
//!
//! so the *partitioning loss* (global greedy profit vs merged partitioned
//! profit) is a measurable quantity — the `ablations` experiment binary
//! reports it — while the component shards give a parallel hot path with
//! zero loss.

use rideshare_geo::GridIndex;
use rideshare_types::{DriverId, Result, TaskId};

use crate::assignment::Assignment;
use crate::greedy::solve_greedy;
use crate::market::{Market, Objective};
use crate::upper_bound::{lp_upper_bound, UpperBoundOptions, UpperBoundResult};
use crate::view::DriverView;

/// One grid cell's sub-market, with maps back to global indices.
#[derive(Clone, Debug)]
pub struct SubMarket {
    /// The standalone sub-market (locally re-indexed drivers and tasks).
    pub market: Market,
    /// Global driver index of each local driver.
    pub driver_map: Vec<usize>,
    /// Global task index of each local task.
    pub task_map: Vec<usize>,
}

/// Splits `market` into per-cell sub-markets over a `k × k` grid covering
/// all of its locations.
///
/// A task belongs to the cell of its pickup; a driver to the cell of her
/// source. Empty cells produce no sub-market. The union of all sub-markets
/// covers every driver and task exactly once, so merged solutions satisfy
/// the global node-disjointness constraint (5a) by construction.
///
/// # Panics
///
/// Panics if `k == 0`.
#[must_use]
pub fn partition_market(market: &Market, k: u16) -> Vec<SubMarket> {
    assert!(k > 0, "need at least one cell");
    // Cover all market locations.
    let mut pts = market
        .drivers()
        .iter()
        .map(|d| d.source)
        .chain(market.tasks().iter().map(|t| t.origin));
    let Some(first) = pts.next() else {
        return Vec::new();
    };
    let (mut lat_lo, mut lat_hi) = (first.lat(), first.lat());
    let (mut lon_lo, mut lon_hi) = (first.lon(), first.lon());
    for p in pts {
        lat_lo = lat_lo.min(p.lat());
        lat_hi = lat_hi.max(p.lat());
        lon_lo = lon_lo.min(p.lon());
        lon_hi = lon_hi.max(p.lon());
    }
    let bbox =
        rideshare_geo::BoundingBox::new(lat_lo - 1e-6, lat_hi + 1e-6, lon_lo - 1e-6, lon_hi + 1e-6);
    let grid: GridIndex<u32> = GridIndex::new(bbox, k, k);

    let cells = k as usize * k as usize;
    let mut cell_drivers: Vec<Vec<usize>> = vec![Vec::new(); cells];
    let mut cell_tasks: Vec<Vec<usize>> = vec![Vec::new(); cells];
    let flat = |c: rideshare_geo::CellId| c.row() as usize * k as usize + c.col() as usize;
    for (i, d) in market.drivers().iter().enumerate() {
        cell_drivers[flat(grid.cell_of(d.source))].push(i);
    }
    for (i, t) in market.tasks().iter().enumerate() {
        cell_tasks[flat(grid.cell_of(t.origin))].push(i);
    }

    let mut out = Vec::new();
    for cell in 0..cells {
        if cell_drivers[cell].is_empty() && cell_tasks[cell].is_empty() {
            continue;
        }
        let mut drivers = Vec::with_capacity(cell_drivers[cell].len());
        for (local, &g) in cell_drivers[cell].iter().enumerate() {
            let mut d = market.drivers()[g];
            d.id = DriverId::new(local as u32);
            drivers.push(d);
        }
        let mut tasks = Vec::with_capacity(cell_tasks[cell].len());
        for (local, &g) in cell_tasks[cell].iter().enumerate() {
            let mut t = market.tasks()[g];
            t.id = TaskId::new(local as u32);
            tasks.push(t);
        }
        out.push(SubMarket {
            market: Market::new(drivers, tasks, market.speed(), market.max_chain_wait()),
            driver_map: cell_drivers[cell].clone(),
            task_map: cell_tasks[cell].clone(),
        });
    }
    out
}

/// A disjoint-set forest over `n` elements with path halving.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic: smaller root wins, so component identity is
            // independent of union order.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// Splits `market` into the connected components of its driver–task
/// interaction graph: driver `n` and task `m` are joined iff `m` is a node
/// of `n`'s task map ([`DriverView::is_allowed`]).
///
/// Every feasible route lives entirely inside one component — a driver's
/// path may only visit tasks of her own task map — so, unlike the grid
/// partition, this decomposition loses nothing: solving components
/// independently and merging is equivalent to solving globally, for the
/// greedy *and* for the LP bound.
///
/// Components are returned in ascending order of their smallest member
/// (drivers before tasks), so the output order is deterministic. Drivers
/// with an empty task map and tasks no driver can serve form trivial
/// one-sided components; they cannot contribute to any assignment and are
/// omitted from the output (the merged solution leaves them unassigned,
/// exactly as the global solver would).
#[must_use]
pub fn disjoint_components(market: &Market) -> Vec<SubMarket> {
    disjoint_components_sharded(market, 1)
}

/// [`disjoint_components`] with the `O(N·M)` task-map construction pass
/// (the geometry-heavy part) fanned out across `threads` — the
/// decomposition itself is identical for every thread count.
#[must_use]
pub fn disjoint_components_sharded(market: &Market, threads: usize) -> Vec<SubMarket> {
    let n = market.num_drivers();
    let m = market.num_tasks();
    // Element layout: 0..n are drivers, n..n+m are tasks. The per-driver
    // reachability scans dominate; shard them, then union sequentially
    // (cheap, and union order does not affect the result).
    let allowed: Vec<Vec<usize>> = map_sharded((0..n).collect(), threads, |d| {
        let view = DriverView::new(market, d);
        (0..m).filter(|&t| view.is_allowed(t)).collect()
    });
    let mut uf = UnionFind::new(n + m);
    for (d, tasks) in allowed.iter().enumerate() {
        for &t in tasks {
            uf.union(d, n + t);
        }
    }

    // Group members by root, preserving the driver-then-task global order.
    let mut root_slot: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
    let mut drivers_of: Vec<Vec<usize>> = Vec::new();
    let mut tasks_of: Vec<Vec<usize>> = Vec::new();
    for d in 0..n {
        let r = uf.find(d);
        let slot = *root_slot.entry(r).or_insert_with(|| {
            drivers_of.push(Vec::new());
            tasks_of.push(Vec::new());
            drivers_of.len() - 1
        });
        drivers_of[slot].push(d);
    }
    for t in 0..m {
        let r = uf.find(n + t);
        let slot = *root_slot.entry(r).or_insert_with(|| {
            drivers_of.push(Vec::new());
            tasks_of.push(Vec::new());
            drivers_of.len() - 1
        });
        tasks_of[slot].push(t);
    }

    let mut out = Vec::new();
    for (driver_map, task_map) in drivers_of.into_iter().zip(tasks_of) {
        // One-sided components cannot produce assignments.
        if driver_map.is_empty() || task_map.is_empty() {
            continue;
        }
        let mut drivers = Vec::with_capacity(driver_map.len());
        for (local, &g) in driver_map.iter().enumerate() {
            let mut d = market.drivers()[g];
            d.id = DriverId::new(local as u32);
            drivers.push(d);
        }
        let mut tasks = Vec::with_capacity(task_map.len());
        for (local, &g) in task_map.iter().enumerate() {
            let mut t = market.tasks()[g];
            t.id = TaskId::new(local as u32);
            tasks.push(t);
        }
        out.push(SubMarket {
            market: Market::new(drivers, tasks, market.speed(), market.max_chain_wait()),
            driver_map,
            task_map,
        });
    }
    out
}

/// Runs `f` over `items`, fanning contiguous chunks out across up to
/// `threads` scoped OS threads and returning the results in input order.
///
/// With `threads <= 1` (or a single item) everything runs inline on the
/// caller's thread. The output is identical for every thread count: each
/// item is processed independently and results are merged by index. This
/// is the deterministic fan-out primitive behind [`solve_sharded`],
/// [`sharded_upper_bound`], and the scenario sweep engine.
pub fn map_sharded<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Contiguous chunks of near-equal size, one per thread.
    let len = items.len();
    let chunk = len.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut iter = items.into_iter();
    loop {
        let c: Vec<T> = iter.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        // Joining in spawn order keeps the merge deterministic.
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("shard thread panicked"))
            .collect()
    })
}

/// Solves the market exactly as [`solve_greedy`] would, but per disjoint
/// component, optionally in parallel, and merges the per-component routes
/// into one global assignment.
///
/// Within a component the greedy sees the same task maps, the same chain
/// arcs, and the same tie-breaking order as the global solver (component
/// extraction preserves relative driver/task order), and no path crosses a
/// component boundary — so the merged assignment **equals** the global
/// greedy's assignment, for every `threads` value. This is the lossless
/// parallel counterpart of the lossy [`solve_partitioned`].
///
/// # Examples
///
/// ```
/// use rideshare_core::{partition::solve_sharded, solve_greedy, Market, MarketBuildOptions, Objective};
/// use rideshare_trace::{DriverModel, TraceConfig};
///
/// let trace = TraceConfig::porto()
///     .with_seed(9)
///     .with_task_count(100)
///     .with_driver_count(12, DriverModel::Hitchhiking)
///     .generate();
/// let market = Market::from_trace(&trace, &MarketBuildOptions::default());
/// let sharded = solve_sharded(&market, Objective::Profit, 4);
/// let global = solve_greedy(&market, Objective::Profit);
/// assert_eq!(sharded, global.assignment);
/// ```
#[must_use]
pub fn solve_sharded(market: &Market, objective: Objective, threads: usize) -> Assignment {
    solve_components(
        market,
        &disjoint_components_sharded(market, threads),
        objective,
        threads,
    )
}

/// [`solve_sharded`] with precomputed components, for callers that reuse
/// one [`disjoint_components`] decomposition across several solves (e.g.
/// the sweep engine solves the greedy *and* the LP bound per scenario).
#[must_use]
pub fn solve_components(
    market: &Market,
    components: &[SubMarket],
    objective: Objective,
    threads: usize,
) -> Assignment {
    let solved = map_sharded(components.iter().collect(), threads, |sub: &SubMarket| {
        solve_greedy(&sub.market, objective).assignment
    });
    let mut merged = Assignment::empty(market.num_drivers());
    for (sub, local) in components.iter().zip(solved) {
        for (local_d, route) in local.routes().iter().enumerate() {
            if route.tasks.is_empty() {
                continue;
            }
            let global_driver = DriverId::new(sub.driver_map[local_d] as u32);
            let tasks: Vec<TaskId> = route
                .tasks
                .iter()
                .map(|t| TaskId::new(sub.task_map[t.index()] as u32))
                .collect();
            merged.set_route(global_driver, tasks);
        }
    }
    merged
}

/// Computes the LP upper bound `Z_f*` per disjoint component, optionally in
/// parallel, and aggregates: the path LP is separable across components
/// (no column spans two), so the sum of per-component bounds *is* the
/// global bound.
///
/// The aggregate reports the summed bound and master objective, the
/// maximum round count, the total column count, and convergence iff every
/// component converged.
///
/// # Errors
///
/// Propagates the first component's LP failure, exactly as the global
/// [`lp_upper_bound`] would surface it.
pub fn sharded_upper_bound(
    market: &Market,
    objective: Objective,
    opts: UpperBoundOptions,
    threads: usize,
) -> Result<UpperBoundResult> {
    components_upper_bound(
        &disjoint_components_sharded(market, threads),
        objective,
        opts,
        threads,
    )
}

/// [`sharded_upper_bound`] with precomputed components (see
/// [`solve_components`]).
///
/// # Errors
///
/// Propagates the first component's LP failure.
pub fn components_upper_bound(
    components: &[SubMarket],
    objective: Objective,
    opts: UpperBoundOptions,
    threads: usize,
) -> Result<UpperBoundResult> {
    let results = map_sharded(components.iter().collect(), threads, |sub: &SubMarket| {
        lp_upper_bound(&sub.market, objective, opts)
    });
    let mut agg = UpperBoundResult {
        bound: 0.0,
        master_objective: 0.0,
        rounds: 0,
        columns: 0,
        converged: true,
    };
    for r in results {
        let r = r?;
        agg.bound += r.bound;
        agg.master_objective += r.master_objective;
        agg.rounds = agg.rounds.max(r.rounds);
        agg.columns += r.columns;
        agg.converged &= r.converged;
    }
    Ok(agg)
}

/// Solves every sub-market with the greedy GA and merges the results into
/// one global assignment.
///
/// # Examples
///
/// ```
/// use rideshare_core::{partition::solve_partitioned, solve_greedy, Market, MarketBuildOptions, Objective};
/// use rideshare_trace::{DriverModel, TraceConfig};
///
/// let trace = TraceConfig::porto()
///     .with_seed(8)
///     .with_task_count(120)
///     .with_driver_count(20, DriverModel::Hitchhiking)
///     .generate();
/// let market = Market::from_trace(&trace, &MarketBuildOptions::default());
/// let merged = solve_partitioned(&market, 3, Objective::Profit);
/// merged.validate(&market).unwrap();
/// // Partitioning never beats the global solver's information.
/// let global = solve_greedy(&market, Objective::Profit);
/// let g = global.assignment.objective_value(&market, Objective::Profit);
/// let p = merged.objective_value(&market, Objective::Profit);
/// assert!(p.as_f64() <= g.as_f64() + 1e-6);
/// ```
#[must_use]
pub fn solve_partitioned(market: &Market, k: u16, objective: Objective) -> Assignment {
    let mut merged = Assignment::empty(market.num_drivers());
    for sub in partition_market(market, k) {
        let local = solve_greedy(&sub.market, objective);
        for (local_d, route) in local.assignment.routes().iter().enumerate() {
            if route.tasks.is_empty() {
                continue;
            }
            let global_driver = DriverId::new(sub.driver_map[local_d] as u32);
            let tasks: Vec<TaskId> = route
                .tasks
                .iter()
                .map(|t| TaskId::new(sub.task_map[t.index()] as u32))
                .collect();
            merged.set_route(global_driver, tasks);
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::market::MarketBuildOptions;
    use rideshare_trace::{DriverModel, TraceConfig};

    fn market(seed: u64, tasks: usize, drivers: usize) -> Market {
        let trace = TraceConfig::porto()
            .with_seed(seed)
            .with_task_count(tasks)
            .with_driver_count(drivers, DriverModel::Hitchhiking)
            .generate();
        Market::from_trace(&trace, &MarketBuildOptions::default())
    }

    #[test]
    fn partition_covers_everything_once() {
        let m = market(81, 150, 25);
        for k in [1u16, 2, 4] {
            let subs = partition_market(&m, k);
            let mut seen_d = vec![false; m.num_drivers()];
            let mut seen_t = vec![false; m.num_tasks()];
            for sub in &subs {
                for &d in &sub.driver_map {
                    assert!(!seen_d[d], "driver {d} in two cells");
                    seen_d[d] = true;
                }
                for &t in &sub.task_map {
                    assert!(!seen_t[t], "task {t} in two cells");
                    seen_t[t] = true;
                }
                assert_eq!(sub.market.num_drivers(), sub.driver_map.len());
                assert_eq!(sub.market.num_tasks(), sub.task_map.len());
            }
            assert!(seen_d.iter().all(|&x| x), "driver lost at k={k}");
            assert!(seen_t.iter().all(|&x| x), "task lost at k={k}");
        }
    }

    #[test]
    fn k1_partition_matches_global_greedy() {
        let m = market(82, 100, 15);
        let merged = solve_partitioned(&m, 1, Objective::Profit);
        let global = solve_greedy(&m, Objective::Profit);
        let a = merged.objective_value(&m, Objective::Profit);
        let b = global.assignment.objective_value(&m, Objective::Profit);
        assert!(a.approx_eq(b), "k=1 {a} vs global {b}");
    }

    #[test]
    fn merged_assignment_is_globally_feasible() {
        let m = market(83, 200, 30);
        for k in [2u16, 3, 6] {
            let merged = solve_partitioned(&m, k, Objective::Profit);
            merged.validate(&m).unwrap();
        }
    }

    #[test]
    fn partitioning_is_lossy_within_a_city() {
        // §I's point: fine partitions of one city lose cross-cell matches.
        let m = market(84, 250, 40);
        let global = solve_greedy(&m, Objective::Profit)
            .assignment
            .objective_value(&m, Objective::Profit)
            .as_f64();
        let fine = solve_partitioned(&m, 6, Objective::Profit)
            .objective_value(&m, Objective::Profit)
            .as_f64();
        assert!(fine <= global + 1e-6);
        assert!(
            fine < global * 0.95,
            "expected visible partitioning loss: fine {fine} vs global {global}"
        );
    }

    #[test]
    fn empty_market_partitions_to_nothing() {
        let m = Market::new(vec![], vec![], rideshare_geo::SpeedModel::urban(), None);
        assert!(partition_market(&m, 4).is_empty());
        let a = solve_partitioned(&m, 4, Objective::Profit);
        assert_eq!(a.routes().len(), 0);
    }

    #[test]
    fn components_cover_each_element_at_most_once() {
        let m = market(85, 180, 25);
        let comps = disjoint_components(&m);
        let mut seen_d = vec![false; m.num_drivers()];
        let mut seen_t = vec![false; m.num_tasks()];
        for sub in &comps {
            assert!(!sub.driver_map.is_empty() && !sub.task_map.is_empty());
            for &d in &sub.driver_map {
                assert!(!seen_d[d], "driver {d} in two components");
                seen_d[d] = true;
            }
            for &t in &sub.task_map {
                assert!(!seen_t[t], "task {t} in two components");
                seen_t[t] = true;
            }
            // Local order preserves global order (needed for exactness).
            assert!(sub.driver_map.windows(2).all(|w| w[0] < w[1]));
            assert!(sub.task_map.windows(2).all(|w| w[0] < w[1]));
        }
        // Omitted elements are exactly the one-sided ones: no driver/task
        // that could interact may be missing.
        for (d, seen) in seen_d.iter().enumerate() {
            let view = DriverView::new(&m, d);
            let has_task = (0..m.num_tasks()).any(|t| view.is_allowed(t));
            assert_eq!(*seen, has_task, "driver {d} coverage");
        }
    }

    #[test]
    fn sharded_greedy_equals_global_greedy() {
        for (seed, tasks, drivers) in [(86u64, 120usize, 18usize), (87, 200, 35), (88, 60, 6)] {
            let m = market(seed, tasks, drivers);
            let global = solve_greedy(&m, Objective::Profit).assignment;
            for threads in [1usize, 2, 4] {
                let sharded = solve_sharded(&m, Objective::Profit, threads);
                assert_eq!(sharded, global, "seed {seed} threads {threads}");
            }
            // Welfare objective too.
            let gw = solve_greedy(&m, Objective::Welfare).assignment;
            assert_eq!(solve_sharded(&m, Objective::Welfare, 3), gw);
        }
    }

    #[test]
    fn sharded_bound_matches_global_bound() {
        let m = market(89, 80, 10);
        let global = crate::lp_upper_bound(&m, Objective::Profit, Default::default()).unwrap();
        let sharded = sharded_upper_bound(&m, Objective::Profit, Default::default(), 2).unwrap();
        assert!(global.converged && sharded.converged);
        let rel = (global.bound - sharded.bound).abs() / global.bound.max(1.0);
        assert!(
            rel < 1e-6,
            "global {} vs sharded {}",
            global.bound,
            sharded.bound
        );
    }

    #[test]
    fn sharded_decomposition_is_thread_count_invariant() {
        let m = market(90, 140, 20);
        let seq = disjoint_components(&m);
        for threads in [2usize, 4, 7] {
            let par = disjoint_components_sharded(&m, threads);
            assert_eq!(par.len(), seq.len(), "threads {threads}");
            for (a, b) in par.iter().zip(&seq) {
                assert_eq!(a.driver_map, b.driver_map, "threads {threads}");
                assert_eq!(a.task_map, b.task_map, "threads {threads}");
            }
        }
    }

    #[test]
    fn sharded_solve_empty_market() {
        let m = Market::new(vec![], vec![], rideshare_geo::SpeedModel::urban(), None);
        assert!(disjoint_components(&m).is_empty());
        let a = solve_sharded(&m, Objective::Profit, 4);
        assert_eq!(a.routes().len(), 0);
        let ub = sharded_upper_bound(&m, Objective::Profit, Default::default(), 4).unwrap();
        assert_eq!(ub.bound, 0.0);
        assert!(ub.converged);
    }

    #[test]
    fn map_sharded_preserves_order_for_any_thread_count() {
        let items: Vec<usize> = (0..37).collect();
        let expect: Vec<usize> = items.iter().map(|x| x * 2).collect();
        for threads in [1usize, 2, 3, 8, 64] {
            let got = map_sharded(items.clone(), threads, |x| x * 2);
            assert_eq!(got, expect, "threads {threads}");
        }
        let empty: Vec<usize> = Vec::new();
        assert!(map_sharded(empty, 4, |x: usize| x).is_empty());
    }
}
