//! Geographic partitioning — the paper's distributed-deployment story.
//!
//! §I argues the market "can be partitioned … in city's scale" but warns
//! that *within* a big city further partitioning is lossy "because the
//! riders and drivers generally travel across the city". This module makes
//! both halves of that claim testable:
//!
//! - [`partition_market`] splits a market into `k × k` grid-cell
//!   sub-markets (tasks by pickup cell, drivers by source cell) that can be
//!   solved independently — the embarrassingly parallel deployment mode,
//! - [`solve_partitioned`] runs the greedy on every sub-market and merges
//!   the per-cell assignments into one feasible global assignment,
//!
//! so the *partitioning loss* (global greedy profit vs merged partitioned
//! profit) is a measurable quantity; the `ablations` experiment binary
//! reports it.

use rideshare_geo::GridIndex;
use rideshare_types::{DriverId, TaskId};

use crate::assignment::Assignment;
use crate::greedy::solve_greedy;
use crate::market::{Market, Objective};

/// One grid cell's sub-market, with maps back to global indices.
#[derive(Clone, Debug)]
pub struct SubMarket {
    /// The standalone sub-market (locally re-indexed drivers and tasks).
    pub market: Market,
    /// Global driver index of each local driver.
    pub driver_map: Vec<usize>,
    /// Global task index of each local task.
    pub task_map: Vec<usize>,
}

/// Splits `market` into per-cell sub-markets over a `k × k` grid covering
/// all of its locations.
///
/// A task belongs to the cell of its pickup; a driver to the cell of her
/// source. Empty cells produce no sub-market. The union of all sub-markets
/// covers every driver and task exactly once, so merged solutions satisfy
/// the global node-disjointness constraint (5a) by construction.
///
/// # Panics
///
/// Panics if `k == 0`.
#[must_use]
pub fn partition_market(market: &Market, k: u16) -> Vec<SubMarket> {
    assert!(k > 0, "need at least one cell");
    // Cover all market locations.
    let mut pts = market
        .drivers()
        .iter()
        .map(|d| d.source)
        .chain(market.tasks().iter().map(|t| t.origin));
    let Some(first) = pts.next() else {
        return Vec::new();
    };
    let (mut lat_lo, mut lat_hi) = (first.lat(), first.lat());
    let (mut lon_lo, mut lon_hi) = (first.lon(), first.lon());
    for p in pts {
        lat_lo = lat_lo.min(p.lat());
        lat_hi = lat_hi.max(p.lat());
        lon_lo = lon_lo.min(p.lon());
        lon_hi = lon_hi.max(p.lon());
    }
    let bbox =
        rideshare_geo::BoundingBox::new(lat_lo - 1e-6, lat_hi + 1e-6, lon_lo - 1e-6, lon_hi + 1e-6);
    let grid: GridIndex<u32> = GridIndex::new(bbox, k, k);

    let cells = k as usize * k as usize;
    let mut cell_drivers: Vec<Vec<usize>> = vec![Vec::new(); cells];
    let mut cell_tasks: Vec<Vec<usize>> = vec![Vec::new(); cells];
    let flat = |c: rideshare_geo::CellId| c.row() as usize * k as usize + c.col() as usize;
    for (i, d) in market.drivers().iter().enumerate() {
        cell_drivers[flat(grid.cell_of(d.source))].push(i);
    }
    for (i, t) in market.tasks().iter().enumerate() {
        cell_tasks[flat(grid.cell_of(t.origin))].push(i);
    }

    let mut out = Vec::new();
    for cell in 0..cells {
        if cell_drivers[cell].is_empty() && cell_tasks[cell].is_empty() {
            continue;
        }
        let mut drivers = Vec::with_capacity(cell_drivers[cell].len());
        for (local, &g) in cell_drivers[cell].iter().enumerate() {
            let mut d = market.drivers()[g];
            d.id = DriverId::new(local as u32);
            drivers.push(d);
        }
        let mut tasks = Vec::with_capacity(cell_tasks[cell].len());
        for (local, &g) in cell_tasks[cell].iter().enumerate() {
            let mut t = market.tasks()[g];
            t.id = TaskId::new(local as u32);
            tasks.push(t);
        }
        out.push(SubMarket {
            market: Market::new(drivers, tasks, market.speed(), None),
            driver_map: cell_drivers[cell].clone(),
            task_map: cell_tasks[cell].clone(),
        });
    }
    out
}

/// Solves every sub-market with the greedy GA and merges the results into
/// one global assignment.
///
/// # Examples
///
/// ```
/// use rideshare_core::{partition::solve_partitioned, solve_greedy, Market, MarketBuildOptions, Objective};
/// use rideshare_trace::{DriverModel, TraceConfig};
///
/// let trace = TraceConfig::porto()
///     .with_seed(8)
///     .with_task_count(120)
///     .with_driver_count(20, DriverModel::Hitchhiking)
///     .generate();
/// let market = Market::from_trace(&trace, &MarketBuildOptions::default());
/// let merged = solve_partitioned(&market, 3, Objective::Profit);
/// merged.validate(&market).unwrap();
/// // Partitioning never beats the global solver's information.
/// let global = solve_greedy(&market, Objective::Profit);
/// let g = global.assignment.objective_value(&market, Objective::Profit);
/// let p = merged.objective_value(&market, Objective::Profit);
/// assert!(p.as_f64() <= g.as_f64() + 1e-6);
/// ```
#[must_use]
pub fn solve_partitioned(market: &Market, k: u16, objective: Objective) -> Assignment {
    let mut merged = Assignment::empty(market.num_drivers());
    for sub in partition_market(market, k) {
        let local = solve_greedy(&sub.market, objective);
        for (local_d, route) in local.assignment.routes().iter().enumerate() {
            if route.tasks.is_empty() {
                continue;
            }
            let global_driver = DriverId::new(sub.driver_map[local_d] as u32);
            let tasks: Vec<TaskId> = route
                .tasks
                .iter()
                .map(|t| TaskId::new(sub.task_map[t.index()] as u32))
                .collect();
            merged.set_route(global_driver, tasks);
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::market::MarketBuildOptions;
    use rideshare_trace::{DriverModel, TraceConfig};

    fn market(seed: u64, tasks: usize, drivers: usize) -> Market {
        let trace = TraceConfig::porto()
            .with_seed(seed)
            .with_task_count(tasks)
            .with_driver_count(drivers, DriverModel::Hitchhiking)
            .generate();
        Market::from_trace(&trace, &MarketBuildOptions::default())
    }

    #[test]
    fn partition_covers_everything_once() {
        let m = market(81, 150, 25);
        for k in [1u16, 2, 4] {
            let subs = partition_market(&m, k);
            let mut seen_d = vec![false; m.num_drivers()];
            let mut seen_t = vec![false; m.num_tasks()];
            for sub in &subs {
                for &d in &sub.driver_map {
                    assert!(!seen_d[d], "driver {d} in two cells");
                    seen_d[d] = true;
                }
                for &t in &sub.task_map {
                    assert!(!seen_t[t], "task {t} in two cells");
                    seen_t[t] = true;
                }
                assert_eq!(sub.market.num_drivers(), sub.driver_map.len());
                assert_eq!(sub.market.num_tasks(), sub.task_map.len());
            }
            assert!(seen_d.iter().all(|&x| x), "driver lost at k={k}");
            assert!(seen_t.iter().all(|&x| x), "task lost at k={k}");
        }
    }

    #[test]
    fn k1_partition_matches_global_greedy() {
        let m = market(82, 100, 15);
        let merged = solve_partitioned(&m, 1, Objective::Profit);
        let global = solve_greedy(&m, Objective::Profit);
        let a = merged.objective_value(&m, Objective::Profit);
        let b = global.assignment.objective_value(&m, Objective::Profit);
        assert!(a.approx_eq(b), "k=1 {a} vs global {b}");
    }

    #[test]
    fn merged_assignment_is_globally_feasible() {
        let m = market(83, 200, 30);
        for k in [2u16, 3, 6] {
            let merged = solve_partitioned(&m, k, Objective::Profit);
            merged.validate(&m).unwrap();
        }
    }

    #[test]
    fn partitioning_is_lossy_within_a_city() {
        // §I's point: fine partitions of one city lose cross-cell matches.
        let m = market(84, 250, 40);
        let global = solve_greedy(&m, Objective::Profit)
            .assignment
            .objective_value(&m, Objective::Profit)
            .as_f64();
        let fine = solve_partitioned(&m, 6, Objective::Profit)
            .objective_value(&m, Objective::Profit)
            .as_f64();
        assert!(fine <= global + 1e-6);
        assert!(
            fine < global * 0.95,
            "expected visible partitioning loss: fine {fine} vs global {global}"
        );
    }

    #[test]
    fn empty_market_partitions_to_nothing() {
        let m = Market::new(vec![], vec![], rideshare_geo::SpeedModel::urban(), None);
        assert!(partition_market(&m, 4).is_empty());
        let a = solve_partitioned(&m, 4, Objective::Profit);
        assert_eq!(a.routes().len(), 0);
    }
}
