//! Streaming task pricing: [`Market::from_trace`]'s Eq. 15 pipeline, one
//! trip at a time.
//!
//! [`Market::from_trace`] prices a whole trace at once. A streaming replay
//! cannot afford that (the trace never materialises), so [`StreamPricer`]
//! applies the same fare + willingness-to-pay pipeline incrementally while
//! trips arrive in publish order, keeping only `O(grid cells + drivers)`
//! state.
//!
//! # Surge and what can stream
//!
//! The paper only requires `pₘ` to be fixed by publish time — which is
//! exactly what makes pricing streamable at all:
//!
//! - with [`MarketBuildOptions::surge_window`] set, the pricer runs the
//!   **rolling-window dynamic surge** — per-cell demand over the trailing
//!   window against drivers whose shift covers the instant — and produces
//!   **byte-identical** prices to `from_trace` with the same options (a
//!   regression test pins this);
//! - with `surge_window = None` the static whole-day multiplier snapshot
//!   `from_trace` would use needs the entire trace before the first order
//!   is priced, which no online platform (and no streaming pricer) can
//!   know. The pricer then charges the un-surged fare (multiplier 1) —
//!   equivalent to `from_trace` with [`SurgeConfig::disabled`].
//!
//! # Examples
//!
//! ```
//! use rideshare_core::{Market, MarketBuildOptions, StreamPricer};
//! use rideshare_trace::{DriverModel, TraceConfig};
//! use rideshare_types::TimeDelta;
//!
//! let config = TraceConfig::porto()
//!     .with_seed(2)
//!     .with_task_count(300)
//!     .with_driver_count(15, DriverModel::Hitchhiking);
//! let opts = MarketBuildOptions {
//!     surge_window: Some(TimeDelta::from_mins(30)),
//!     ..MarketBuildOptions::default()
//! };
//!
//! // Stream pipeline: price trips one at a time…
//! let stream = config.stream();
//! let mut pricer = StreamPricer::new(&opts, stream.bounding_box(), stream.speed(), stream.drivers());
//! let streamed: Vec<_> = stream.map(|trip| pricer.price(&trip)).collect();
//!
//! // …and it matches materialised pricing of the same trips exactly.
//! let market = Market::from_trace(&config.stream().collect_trace(), &opts);
//! assert_eq!(streamed, market.tasks());
//! ```

use std::collections::{BTreeMap, VecDeque};

use rand::rngs::StdRng;
use rand::SeedableRng;

use rideshare_geo::{BoundingBox, CellId, GridIndex, SpeedModel};
use rideshare_pricing::{FareModel, SurgeConfig, WtpModel};
use rideshare_trace::{DriverShift, TripRecord};
use rideshare_types::{TimeDelta, Timestamp};

use crate::market::{MarketBuildOptions, Task};

/// Prices trips into [`Task`]s one at a time, in publish order — the
/// bounded-memory counterpart of [`crate::Market::from_trace`]. See the
/// module docs for the exact equivalence guarantees.
#[derive(Clone, Debug)]
pub struct StreamPricer {
    fare: FareModel,
    wtp: WtpModel,
    surge: SurgeConfig,
    rng: StdRng,
    speed: SpeedModel,
    window: Option<TimeDelta>,
    grid: GridIndex<u32>,
    /// Per-cell FIFO of recent publish times (trips arrive publish-sorted).
    recent: BTreeMap<CellId, VecDeque<Timestamp>>,
    /// Per-cell driver shifts (supply is "shift covers the publish instant
    /// and home cell is here", as in the materialised dynamic pricer).
    shifts: BTreeMap<CellId, Vec<(Timestamp, Timestamp)>>,
    last_publish: Option<Timestamp>,
}

impl StreamPricer {
    /// Creates a pricer over the service area `bbox` with the day's driver
    /// shifts (needed for the dynamic surge's supply side; `O(drivers)`).
    #[must_use]
    pub fn new(
        opts: &MarketBuildOptions,
        bbox: BoundingBox,
        speed: SpeedModel,
        drivers: &[DriverShift],
    ) -> Self {
        let (rows, cols) = opts.surge_grid;
        let grid: GridIndex<u32> = GridIndex::new(bbox, rows, cols);
        let mut shifts: BTreeMap<CellId, Vec<(Timestamp, Timestamp)>> = BTreeMap::new();
        for d in drivers {
            shifts
                .entry(grid.cell_of(d.source))
                .or_default()
                .push((d.shift_start, d.shift_end));
        }
        Self {
            fare: opts.fare,
            wtp: opts.wtp,
            surge: opts.surge,
            rng: StdRng::seed_from_u64(opts.wtp_seed),
            speed,
            window: opts.surge_window,
            grid,
            recent: BTreeMap::new(),
            shifts,
            last_publish: None,
        }
    }

    /// Prices the next trip of the stream. Must be called in publish order
    /// (the WTP draw sequence and the rolling surge window both depend on
    /// it — this is the same order dependence `from_trace` has).
    ///
    /// # Panics
    ///
    /// Panics if `trip` publishes earlier than the previous one.
    pub fn price(&mut self, trip: &TripRecord) -> Task {
        if let Some(last) = self.last_publish {
            assert!(
                trip.publish_time >= last,
                "trips must be priced in publish order: {} after {last}",
                trip.publish_time
            );
        }
        self.last_publish = Some(trip.publish_time);

        let alpha = match self.window {
            None => 1.0,
            Some(window) => {
                let cell = self.grid.cell_of(trip.origin);
                let q = self.recent.entry(cell).or_default();
                while let Some(&front) = q.front() {
                    if front < trip.publish_time - window {
                        q.pop_front();
                    } else {
                        break;
                    }
                }
                q.push_back(trip.publish_time);
                let demand = q.len() as u32;
                let supply = self.shifts.get(&cell).map_or(0, |v| {
                    v.iter()
                        .filter(|(s, e)| *s <= trip.publish_time && trip.publish_time <= *e)
                        .count()
                }) as u32;
                self.surge.multiplier_for(demand, supply)
            }
        };

        let window = trip.completion_deadline - trip.pickup_deadline;
        let price = self.fare.price(trip.distance_km, window, alpha);
        let valuation = self.wtp.sample(&mut self.rng, price);
        Task {
            id: trip.id,
            publish_time: trip.publish_time,
            origin: trip.origin,
            destination: trip.destination,
            pickup_deadline: trip.pickup_deadline,
            completion_deadline: trip.completion_deadline,
            duration: trip.duration,
            price,
            valuation,
            service_cost: self.speed.cost_for_km(trip.distance_km),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::market::Market;
    use rideshare_trace::{DriverModel, TraceConfig};

    fn config(seed: u64) -> TraceConfig {
        TraceConfig::porto()
            .with_seed(seed)
            .with_task_count(400)
            .with_driver_count(10, DriverModel::Hitchhiking)
    }

    fn stream_tasks(cfg: &TraceConfig, opts: &MarketBuildOptions) -> Vec<Task> {
        let stream = cfg.stream();
        let mut pricer = StreamPricer::new(
            opts,
            stream.bounding_box(),
            stream.speed(),
            stream.drivers(),
        );
        stream.map(|t| pricer.price(&t)).collect()
    }

    #[test]
    fn dynamic_surge_matches_from_trace_exactly() {
        let cfg = config(31);
        let opts = MarketBuildOptions {
            surge_window: Some(TimeDelta::from_mins(30)),
            ..MarketBuildOptions::default()
        };
        let streamed = stream_tasks(&cfg, &opts);
        let market = Market::from_trace(&cfg.stream().collect_trace(), &opts);
        assert_eq!(streamed.as_slice(), market.tasks());
    }

    #[test]
    fn disabled_surge_matches_from_trace_exactly() {
        let cfg = config(32);
        let opts = MarketBuildOptions {
            surge: SurgeConfig::disabled(),
            ..MarketBuildOptions::default()
        };
        let streamed = stream_tasks(&cfg, &opts);
        let market = Market::from_trace(&cfg.stream().collect_trace(), &opts);
        assert_eq!(streamed.as_slice(), market.tasks());
    }

    #[test]
    fn no_window_means_unsurged_fares() {
        // With surge enabled but no rolling window, the stream cannot know
        // the whole-day snapshot; it charges the flat fare instead.
        let cfg = config(33);
        let surged = stream_tasks(&cfg, &MarketBuildOptions::default());
        let flat = stream_tasks(
            &cfg,
            &MarketBuildOptions {
                surge: SurgeConfig::disabled(),
                ..MarketBuildOptions::default()
            },
        );
        for (a, b) in surged.iter().zip(&flat) {
            assert!(a.price.approx_eq(b.price));
        }
    }

    #[test]
    fn ir_and_margins_hold_streamed() {
        let cfg = config(34);
        let opts = MarketBuildOptions {
            surge_window: Some(TimeDelta::from_mins(20)),
            ..MarketBuildOptions::default()
        };
        for task in stream_tasks(&cfg, &opts) {
            assert!(task.valuation >= task.price, "IR: bₘ ≥ pₘ");
            assert!(task
                .margin(crate::market::Objective::Profit)
                .is_strictly_positive());
        }
    }

    #[test]
    #[should_panic(expected = "publish order")]
    fn out_of_order_pricing_rejected() {
        let cfg = config(35);
        let trips: Vec<_> = cfg.stream().collect();
        let stream = cfg.stream();
        let mut pricer = StreamPricer::new(
            &MarketBuildOptions::default(),
            stream.bounding_box(),
            stream.speed(),
            stream.drivers(),
        );
        let _ = pricer.price(trips.last().unwrap());
        let _ = pricer.price(&trips[0]);
    }
}
