//! The two-sided market configuration and task-map construction.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rideshare_geo::{GeoPoint, GridIndex, SpeedModel};
use rideshare_pricing::{FareModel, SurgeConfig, SurgeEngine, WtpModel};
use rideshare_trace::{DriverModel, Trace};
use rideshare_types::{DriverId, Money, TaskId, TimeDelta, Timestamp};

/// Which objective a solver optimises.
///
/// The paper formulates both (§III-C/D); the only difference is whether a
/// served task contributes its price `pₘ` (producer surplus) or the
/// customer's valuation `bₘ` (social welfare).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Objective {
    /// Drivers' total profit `Z` (Eq. 4): revenue is `pₘ`.
    #[default]
    Profit,
    /// Social welfare `Ẑ` (Eq. 6): revenue is `bₘ`.
    Welfare,
}

/// A task (customer order) in the market, the paper's `m ∈ [M]`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Task {
    /// Dense identifier.
    pub id: TaskId,
    /// When the order was submitted (`t̄ₘ`).
    pub publish_time: Timestamp,
    /// Pickup location (`s̄ₘ`).
    pub origin: GeoPoint,
    /// Drop-off location (`d̄ₘ`).
    pub destination: GeoPoint,
    /// Pickup deadline (`t̄⁻ₘ`).
    pub pickup_deadline: Timestamp,
    /// Completion deadline (`t̄⁺ₘ`).
    pub completion_deadline: Timestamp,
    /// In-service travel time (`l̂ₙ,ₘ`, driver-independent here).
    pub duration: TimeDelta,
    /// Payoff to the serving driver (`pₘ`), surge included.
    pub price: Money,
    /// Customer's willingness to pay (`bₘ ≥ pₘ`).
    pub valuation: Money,
    /// Driver's cost to serve origin→destination (`ĉₙ,ₘ`).
    pub service_cost: Money,
}

impl Task {
    /// Net contribution of serving this task under `objective`, before
    /// connection costs: `pₘ − ĉₙ,ₘ` or `bₘ − ĉₙ,ₘ`.
    #[must_use]
    pub fn margin(&self, objective: Objective) -> Money {
        match objective {
            Objective::Profit => self.price - self.service_cost,
            Objective::Welfare => self.valuation - self.service_cost,
        }
    }

    /// Whether the task's own window can fit its service time — the paper's
    /// `ĥₙ,ₘ` precondition (Eq. 1).
    #[must_use]
    pub fn window_feasible(&self) -> bool {
        self.duration <= self.completion_deadline - self.pickup_deadline
    }
}

/// A driver in the market, the paper's `n ∈ [N]`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Driver {
    /// Dense identifier.
    pub id: DriverId,
    /// Start location (`sₙ`).
    pub source: GeoPoint,
    /// End-of-day location (`dₙ`).
    pub destination: GeoPoint,
    /// Start of availability (`t⁻ₙ`).
    pub shift_start: Timestamp,
    /// End of availability (`t⁺ₙ`).
    pub shift_end: Timestamp,
    /// Which working model the driver follows.
    pub model: DriverModel,
}

impl From<&rideshare_trace::DriverShift> for Driver {
    /// A market driver is a trace shift verbatim — one conversion shared
    /// by [`Market::from_trace`] and the streaming replay pipeline.
    fn from(d: &rideshare_trace::DriverShift) -> Self {
        Driver {
            id: d.id,
            source: d.source,
            destination: d.destination,
            shift_start: d.shift_start,
            shift_end: d.shift_end,
            model: d.model,
        }
    }
}

/// A driver-independent feasible chain arc `m → m'` of the task map: the
/// driver can drive empty from `m`'s destination to `m'`'s origin within
/// the gap between their windows (Eq. 3's shared condition).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ChainEdge {
    /// Successor task index.
    pub to: u32,
    /// Empty-driving cost `cₙ,ₘ,ₘ'` (currency).
    pub cost: f64,
    /// Empty-driving time `lₙ,ₘ,ₘ'`.
    pub travel: TimeDelta,
}

/// Options controlling market construction from a trace.
#[derive(Clone, Debug)]
pub struct MarketBuildOptions {
    /// Fare model for Eq. 15 prices.
    pub fare: FareModel,
    /// Surge curve; multipliers are computed from a static supply/demand
    /// snapshot over the trace's grid cells.
    pub surge: SurgeConfig,
    /// WTP model for customer valuations.
    pub wtp: WtpModel,
    /// Seed for the WTP draws (independent of the trace seed).
    pub wtp_seed: u64,
    /// Grid resolution for the surge engine's geographic cells.
    pub surge_grid: (u16, u16),
    /// Optional cap on the waiting gap a chain arc may bridge; `None`
    /// (the paper's model) allows arbitrarily long waits between tasks.
    pub max_chain_wait: Option<TimeDelta>,
    /// When set, surge multipliers are computed **dynamically** at each
    /// task's publish instant from a rolling demand window of this length
    /// (recent orders in the cell vs drivers on shift there), instead of
    /// from one static whole-day snapshot. This matches the measured
    /// Uber mechanism more closely (Chen & Sheldon observe minute-scale
    /// surge updates); the paper's model is agnostic — it only requires
    /// `pₘ` to be fixed by publish time, which both variants satisfy.
    pub surge_window: Option<TimeDelta>,
}

impl Default for MarketBuildOptions {
    fn default() -> Self {
        Self {
            fare: FareModel::porto_taxi(),
            surge: SurgeConfig::uber_like(),
            wtp: WtpModel::default(),
            wtp_seed: 0x5eed,
            surge_grid: (12, 12),
            max_chain_wait: None,
            surge_window: None,
        }
    }
}

/// The market: drivers, tasks, the travel model, and the shared part of the
/// task map (§III-B).
///
/// The task map of driver `n` is the DAG over `{0, −1} ∪ [M]` defined by
/// Eqs. 1–3. With a shared speed model, the arc predicate between two tasks
/// factors into a driver-independent part (stored here once as
/// [`ChainEdge`] lists, `O(M²)` construction exactly as the paper counts)
/// and per-driver source/sink reachability (computed by
/// [`crate::DriverView`] in `O(M)`).
#[derive(Clone, Debug)]
pub struct Market {
    drivers: Vec<Driver>,
    tasks: Vec<Task>,
    speed: SpeedModel,
    /// `chain[m]` = feasible successor arcs of task `m`.
    chain: Vec<Vec<ChainEdge>>,
    /// Task indices sorted by completion deadline — a topological order of
    /// every chain arc (an arc implies `t̄⁺ₘ ≤ t̄⁻ₘ' < t̄⁺ₘ'`).
    topo: Vec<u32>,
    /// The arc-pruning cap the chain was built with, kept so derived
    /// sub-markets (partitions, disjoint components) rebuild identical arcs.
    max_chain_wait: Option<TimeDelta>,
}

impl Market {
    /// Builds a market from explicit drivers and tasks.
    ///
    /// `max_chain_wait` optionally prunes chain arcs whose idle gap exceeds
    /// the cap (see [`MarketBuildOptions::max_chain_wait`]).
    #[must_use]
    pub fn new(
        drivers: Vec<Driver>,
        tasks: Vec<Task>,
        speed: SpeedModel,
        max_chain_wait: Option<TimeDelta>,
    ) -> Self {
        let chain = build_chain_arcs(&tasks, speed, max_chain_wait);
        let mut topo: Vec<u32> = (0..tasks.len() as u32).collect();
        topo.sort_by_key(|&m| tasks[m as usize].completion_deadline);
        Self {
            drivers,
            tasks,
            speed,
            chain,
            topo,
            max_chain_wait,
        }
    }

    /// Builds a market from a generated trace: prices every trip with the
    /// surge fare of Eq. 15 and draws customer valuations.
    ///
    /// Multipliers come from a static whole-day demand/supply snapshot by
    /// default, or from a rolling publish-time window when
    /// [`MarketBuildOptions::surge_window`] is set.
    #[must_use]
    pub fn from_trace(trace: &Trace, opts: &MarketBuildOptions) -> Self {
        let multipliers = match opts.surge_window {
            Some(window) => dynamic_multipliers(trace, opts, window),
            None => static_multipliers(trace, opts),
        };

        let mut rng = StdRng::seed_from_u64(opts.wtp_seed);
        let tasks: Vec<Task> = trace
            .trips
            .iter()
            .zip(&multipliers)
            .map(|(t, &alpha)| {
                let window = t.completion_deadline - t.pickup_deadline;
                let price = opts.fare.price(t.distance_km, window, alpha);
                let valuation = opts.wtp.sample(&mut rng, price);
                Task {
                    id: t.id,
                    publish_time: t.publish_time,
                    origin: t.origin,
                    destination: t.destination,
                    pickup_deadline: t.pickup_deadline,
                    completion_deadline: t.completion_deadline,
                    duration: t.duration,
                    price,
                    valuation,
                    service_cost: trace.speed.cost_for_km(t.distance_km),
                }
            })
            .collect();
        let drivers: Vec<Driver> = trace.drivers.iter().map(Driver::from).collect();
        Self::new(drivers, tasks, trace.speed, opts.max_chain_wait)
    }

    /// The drivers, indexed by [`DriverId::index`].
    #[must_use]
    pub fn drivers(&self) -> &[Driver] {
        &self.drivers
    }

    /// The tasks, indexed by [`TaskId::index`].
    #[must_use]
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Number of drivers `N`.
    #[must_use]
    pub fn num_drivers(&self) -> usize {
        self.drivers.len()
    }

    /// Number of tasks `M`.
    #[must_use]
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// The shared travel model.
    #[must_use]
    pub fn speed(&self) -> SpeedModel {
        self.speed
    }

    /// The chain-arc idle cap this market was built with (see
    /// [`MarketBuildOptions::max_chain_wait`]).
    #[must_use]
    pub fn max_chain_wait(&self) -> Option<TimeDelta> {
        self.max_chain_wait
    }

    /// Feasible chain successors of task `m` (driver-independent part of
    /// Eq. 3).
    #[must_use]
    pub fn chain_edges(&self, m: usize) -> &[ChainEdge] {
        &self.chain[m]
    }

    /// Total number of chain arcs in the shared task map.
    #[must_use]
    pub fn chain_arc_count(&self) -> usize {
        self.chain.iter().map(Vec::len).sum()
    }

    /// Task indices in a topological order of the chain DAG (sorted by
    /// completion deadline).
    #[must_use]
    pub fn topo_order(&self) -> &[u32] {
        &self.topo
    }

    /// Whether the chain arc `m → m'` exists.
    #[must_use]
    pub fn has_chain_edge(&self, m: usize, m_next: usize) -> bool {
        self.chain[m].iter().any(|e| e.to as usize == m_next)
    }

    /// The driver's baseline commute cost `cₙ,₀,₋₁` (source to destination
    /// without serving anyone), refunded in the excess-cost objective.
    #[must_use]
    pub fn direct_cost(&self, driver: usize) -> Money {
        let d = &self.drivers[driver];
        self.speed.travel_cost(d.source, d.destination)
    }

    /// The diameter bound `D` used by Theorem 1: the maximum number of task
    /// nodes on any source→sink path, computed on the shared chain DAG
    /// (an upper bound on every driver's own diameter).
    #[must_use]
    pub fn chain_diameter(&self) -> usize {
        // Longest path in DAG by node count, DP over topo order.
        let m = self.tasks.len();
        let mut depth = vec![1usize; m];
        let mut best = 0usize;
        for &u in &self.topo {
            let du = depth[u as usize];
            best = best.max(du);
            for e in &self.chain[u as usize] {
                let v = e.to as usize;
                if du + 1 > depth[v] {
                    depth[v] = du + 1;
                }
            }
        }
        best
    }
}

/// Static surge: one whole-day demand/supply snapshot per cell (the
/// evaluation-friendly default — every task in a cell sees one multiplier).
fn static_multipliers(trace: &Trace, opts: &MarketBuildOptions) -> Vec<f64> {
    let mut surge = SurgeEngine::new(opts.surge);
    let (rows, cols) = opts.surge_grid;
    let grid: GridIndex<u32> = GridIndex::new(trace.bbox, rows, cols);
    for trip in &trace.trips {
        surge.add_demand(grid.cell_of(trip.origin));
    }
    for d in &trace.drivers {
        surge.add_supply(grid.cell_of(d.source));
    }
    trace
        .trips
        .iter()
        .map(|t| surge.multiplier(grid.cell_of(t.origin)))
        .collect()
}

/// Dynamic surge: at each task's publish instant, demand is the number of
/// orders published in its cell within the trailing `window`, and supply is
/// the number of drivers whose shift covers that instant and whose source
/// lies in the cell (position-at-publish is unknowable offline; the home
/// cell is the standard approximation).
fn dynamic_multipliers(trace: &Trace, opts: &MarketBuildOptions, window: TimeDelta) -> Vec<f64> {
    assert!(
        window.is_non_negative(),
        "surge window must be non-negative"
    );
    let (rows, cols) = opts.surge_grid;
    let grid: GridIndex<u32> = GridIndex::new(trace.bbox, rows, cols);

    // Per-cell FIFO of recent publish times (trips arrive publish-sorted).
    let mut recent: std::collections::BTreeMap<
        rideshare_geo::CellId,
        std::collections::VecDeque<Timestamp>,
    > = std::collections::BTreeMap::new();
    // Per-cell driver shifts.
    let mut shifts: std::collections::BTreeMap<rideshare_geo::CellId, Vec<(Timestamp, Timestamp)>> =
        std::collections::BTreeMap::new();
    for d in &trace.drivers {
        shifts
            .entry(grid.cell_of(d.source))
            .or_default()
            .push((d.shift_start, d.shift_end));
    }

    let mut out = Vec::with_capacity(trace.trips.len());
    for t in &trace.trips {
        let cell = grid.cell_of(t.origin);
        let q = recent.entry(cell).or_default();
        while let Some(&front) = q.front() {
            if front < t.publish_time - window {
                q.pop_front();
            } else {
                break;
            }
        }
        q.push_back(t.publish_time);
        let demand = q.len() as u32;
        let supply = shifts.get(&cell).map_or(0, |v| {
            v.iter()
                .filter(|(s, e)| *s <= t.publish_time && t.publish_time <= *e)
                .count()
        }) as u32;
        out.push(opts.surge.multiplier_for(demand, supply));
    }
    out
}

/// Builds the driver-independent chain arcs: `m → m'` exists iff both task
/// windows are internally feasible and the empty drive fits the gap,
/// `lₘ,ₘ' ≤ t̄⁻ₘ' − t̄⁺ₘ` (Eq. 3's shared conjuncts).
fn build_chain_arcs(
    tasks: &[Task],
    speed: SpeedModel,
    max_chain_wait: Option<TimeDelta>,
) -> Vec<Vec<ChainEdge>> {
    let m = tasks.len();
    let mut order: Vec<u32> = (0..m as u32).collect();
    order.sort_by_key(|&i| tasks[i as usize].pickup_deadline);

    let mut chain: Vec<Vec<ChainEdge>> = vec![Vec::new(); m];
    for (mi, from) in tasks.iter().enumerate() {
        if !from.window_feasible() {
            continue;
        }
        // Candidate successors must have pickup deadline after `from`'s
        // completion deadline; scan the pickup-sorted order from that point.
        let start = order
            .partition_point(|&j| tasks[j as usize].pickup_deadline < from.completion_deadline);
        for &j in &order[start..] {
            let to = &tasks[j as usize];
            if !to.window_feasible() {
                continue;
            }
            let gap = to.pickup_deadline - from.completion_deadline;
            debug_assert!(gap.is_non_negative());
            if let Some(cap) = max_chain_wait {
                if gap > cap {
                    continue;
                }
            }
            let travel = speed.travel_time(from.destination, to.origin);
            if travel <= gap {
                chain[mi].push(ChainEdge {
                    to: j,
                    cost: speed.travel_cost(from.destination, to.origin).as_f64(),
                    travel,
                });
            }
        }
        chain[mi].sort_by_key(|e| e.to);
    }
    chain
}

#[cfg(test)]
mod tests {
    use super::*;
    use rideshare_trace::TraceConfig;

    fn pt(km_east: f64) -> GeoPoint {
        GeoPoint::new(41.15, -8.61).offset_km(0.0, km_east)
    }

    /// A hand-built task at `origin`, zero length, window `[start, end]`.
    fn stationary_task(id: u32, at: GeoPoint, start: i64, end: i64, price: f64) -> Task {
        Task {
            id: TaskId::new(id),
            publish_time: Timestamp::from_secs(start - 60),
            origin: at,
            destination: at,
            pickup_deadline: Timestamp::from_secs(start),
            completion_deadline: Timestamp::from_secs(end),
            duration: TimeDelta::from_secs(0),
            price: Money::new(price),
            valuation: Money::new(price * 1.2),
            service_cost: Money::ZERO,
        }
    }

    fn fast_speed() -> SpeedModel {
        SpeedModel::new(60.0, 1.0, 0.1)
    }

    #[test]
    fn chain_arc_requires_time_for_empty_drive() {
        // Task 0 at km 0 ends t=0; task 1 at km 10 starts at t=300 (5 min).
        // At 60 km/h the 10 km drive takes 10 min → no arc. At t=1200 → arc.
        let t0 = stationary_task(0, pt(0.0), -600, 0, 5.0);
        let near = stationary_task(1, pt(10.0), 300, 900, 5.0);
        let far = stationary_task(2, pt(10.0), 1200, 1800, 5.0);
        let market = Market::new(vec![], vec![t0, near, far], fast_speed(), None);
        assert!(!market.has_chain_edge(0, 1));
        assert!(market.has_chain_edge(0, 2));
        // Arcs never go backwards in time.
        assert!(!market.has_chain_edge(2, 0));
        let e = market.chain_edges(0)[0];
        assert_eq!(e.to, 2);
        assert!((e.cost - 1.0).abs() < 1e-6, "10 km at 0.1/km");
    }

    #[test]
    fn max_chain_wait_prunes_long_idles() {
        let t0 = stationary_task(0, pt(0.0), -600, 0, 5.0);
        let later = stationary_task(1, pt(1.0), 7200, 7800, 5.0);
        let unpruned = Market::new(vec![], vec![t0, later], fast_speed(), None);
        assert!(unpruned.has_chain_edge(0, 1));
        let pruned = Market::new(
            vec![],
            vec![t0, later],
            fast_speed(),
            Some(TimeDelta::from_mins(30)),
        );
        assert!(!pruned.has_chain_edge(0, 1));
    }

    #[test]
    fn window_infeasible_task_has_no_arcs() {
        let mut bad = stationary_task(0, pt(0.0), 0, 600, 5.0);
        bad.duration = TimeDelta::from_secs(900); // longer than its window
        let ok = stationary_task(1, pt(0.0), 1200, 1800, 5.0);
        let market = Market::new(vec![], vec![bad, ok], fast_speed(), None);
        assert!(!market.has_chain_edge(0, 1));
        assert!(!market.tasks()[0].window_feasible());
    }

    #[test]
    fn topo_order_respects_chain_arcs() {
        let trace = TraceConfig::porto()
            .with_seed(8)
            .with_task_count(150)
            .with_driver_count(5, DriverModel::Hitchhiking)
            .generate();
        let market = Market::from_trace(&trace, &MarketBuildOptions::default());
        let mut pos = vec![0usize; market.num_tasks()];
        for (i, &t) in market.topo_order().iter().enumerate() {
            pos[t as usize] = i;
        }
        for m in 0..market.num_tasks() {
            for e in market.chain_edges(m) {
                assert!(pos[m] < pos[e.to as usize], "arc {m}→{} backwards", e.to);
            }
        }
    }

    #[test]
    fn from_trace_prices_cover_costs() {
        let trace = TraceConfig::porto()
            .with_seed(2)
            .with_task_count(200)
            .with_driver_count(20, DriverModel::Hitchhiking)
            .generate();
        let market = Market::from_trace(&trace, &MarketBuildOptions::default());
        assert_eq!(market.num_tasks(), 200);
        assert_eq!(market.num_drivers(), 20);
        for t in market.tasks() {
            assert!(t.valuation >= t.price, "IR: bₘ ≥ pₘ");
            assert!(
                t.margin(Objective::Profit).is_strictly_positive(),
                "porto fares exceed fuel cost"
            );
            assert!(t.margin(Objective::Welfare) >= t.margin(Objective::Profit));
        }
    }

    #[test]
    fn surge_raises_hotspot_prices() {
        let trace = TraceConfig::porto()
            .with_seed(3)
            .with_task_count(400)
            .with_driver_count(5, DriverModel::Hitchhiking) // scarce supply
            .generate();
        let surged = Market::from_trace(&trace, &MarketBuildOptions::default());
        let flat = Market::from_trace(
            &trace,
            &MarketBuildOptions {
                surge: SurgeConfig::disabled(),
                ..Default::default()
            },
        );
        let total_surged: f64 = surged.tasks().iter().map(|t| t.price.as_f64()).sum();
        let total_flat: f64 = flat.tasks().iter().map(|t| t.price.as_f64()).sum();
        assert!(
            total_surged > total_flat * 1.02,
            "surged {total_surged} vs flat {total_flat}"
        );
    }

    #[test]
    fn dynamic_surge_reprices_at_publish_time() {
        let trace = TraceConfig::porto()
            .with_seed(4)
            .with_task_count(300)
            .with_driver_count(4, DriverModel::Hitchhiking)
            .generate();
        let static_m = Market::from_trace(&trace, &MarketBuildOptions::default());
        let dynamic_m = Market::from_trace(
            &trace,
            &MarketBuildOptions {
                surge_window: Some(TimeDelta::from_mins(30)),
                ..Default::default()
            },
        );
        // Same tasks, same geometry, different multipliers somewhere.
        assert_eq!(static_m.num_tasks(), dynamic_m.num_tasks());
        let diff = static_m
            .tasks()
            .iter()
            .zip(dynamic_m.tasks())
            .filter(|(a, b)| !a.price.approx_eq(b.price))
            .count();
        assert!(diff > 0, "dynamic window must change some prices");
        // Surge never discounts: every price at least the flat fare.
        let flat = Market::from_trace(
            &trace,
            &MarketBuildOptions {
                surge: SurgeConfig::disabled(),
                ..Default::default()
            },
        );
        for (d, f) in dynamic_m.tasks().iter().zip(flat.tasks()) {
            assert!(d.price + Money::new(1e-9) >= f.price);
        }
        // IR still holds after repricing.
        for t in dynamic_m.tasks() {
            assert!(t.valuation >= t.price);
        }
    }

    #[test]
    fn diameter_of_sequential_chain() {
        // Three tasks in strict sequence → diameter 3.
        let a = stationary_task(0, pt(0.0), 0, 600, 1.0);
        let b = stationary_task(1, pt(0.0), 1200, 1800, 1.0);
        let c = stationary_task(2, pt(0.0), 2400, 3000, 1.0);
        let market = Market::new(vec![], vec![a, b, c], fast_speed(), None);
        assert_eq!(market.chain_diameter(), 3);
        assert_eq!(market.chain_arc_count(), 3); // a→b, a→c, b→c
    }

    #[test]
    fn direct_cost_matches_speed_model() {
        let d = Driver {
            id: DriverId::new(0),
            source: pt(0.0),
            destination: pt(30.0),
            shift_start: Timestamp::EPOCH,
            shift_end: Timestamp::from_hours(8),
            model: DriverModel::Hitchhiking,
        };
        let market = Market::new(vec![d], vec![], fast_speed(), None);
        assert!((market.direct_cost(0).as_f64() - 3.0).abs() < 1e-6);
    }
}
