//! Exact small-scale optima `Z*` via the arc-form ILP.
//!
//! The paper computes exact integral optima with CPLEX/MOSEK "for the
//! evaluation of small-scale problems" (§VI-B). This module builds the flow
//! formulation of §III-C — decision variables `xₙ,ₘ` and `yₙ,ₘ,ₘ'`,
//! constraints (5a)–(5f) with individual rationality (5b) optional — over
//! the *feasible* arcs only (the task map prunes the variable set), and
//! solves it with the workspace's branch-and-bound solver.
//!
//! Intended for validation at small `N × M`; the LP-relaxation bound of
//! [`crate::lp_upper_bound`] covers large instances, exactly as in the
//! paper.

use rideshare_lp::{BranchAndBound, Cmp, LinearProgram};
use rideshare_types::{MarketError, Result, TaskId};

use crate::assignment::Assignment;
use crate::market::{Market, Objective};
use crate::view::DriverView;

/// Result of [`solve_exact`].
#[derive(Clone, Debug)]
pub struct ExactOutcome {
    /// The optimal assignment.
    pub assignment: Assignment,
    /// The optimal objective value (Eq. 4 / Eq. 6, constants included).
    pub objective_value: f64,
    /// Branch-and-bound nodes explored.
    pub nodes_explored: usize,
    /// Whether optimality was proven within the node budget.
    pub proven_optimal: bool,
}

/// Options for [`solve_exact`].
#[derive(Clone, Copy, Debug)]
pub struct ExactOptions {
    /// Enforce the individual-rationality rows (5b). The optimum never
    /// needs them (dropping a loss-making driver's whole route is always
    /// feasible and better), so they default to off to shrink the LP.
    pub enforce_ir: bool,
    /// Branch-and-bound node budget.
    pub node_limit: usize,
}

impl Default for ExactOptions {
    fn default() -> Self {
        Self {
            enforce_ir: false,
            node_limit: 50_000,
        }
    }
}

/// Solves the market exactly by branch-and-bound on the arc formulation.
///
/// # Errors
///
/// Returns [`MarketError::IterationLimit`] if the node budget is exhausted
/// before any incumbent exists, and propagates LP failures. Use small
/// instances (`N·M ≲ 200`) — the paper itself resorts to `Z_f*` beyond
/// that.
///
/// # Examples
///
/// ```
/// use rideshare_core::{solve_exact, solve_greedy, Market, MarketBuildOptions, Objective};
/// use rideshare_trace::{DriverModel, TraceConfig};
///
/// let trace = TraceConfig::porto()
///     .with_seed(2)
///     .with_task_count(12)
///     .with_driver_count(3, DriverModel::Hitchhiking)
///     .generate();
/// let market = Market::from_trace(&trace, &MarketBuildOptions::default());
/// let exact = solve_exact(&market, Objective::Profit, Default::default()).unwrap();
/// let greedy = solve_greedy(&market, Objective::Profit);
/// let g = greedy.assignment.objective_value(&market, Objective::Profit);
/// assert!(exact.objective_value + 1e-6 >= g.as_f64());
/// ```
pub fn solve_exact(
    market: &Market,
    objective: Objective,
    opts: ExactOptions,
) -> Result<ExactOutcome> {
    let n = market.num_drivers();
    let m = market.num_tasks();
    if n == 0 || m == 0 {
        return Ok(ExactOutcome {
            assignment: Assignment::empty(n),
            objective_value: 0.0,
            nodes_explored: 0,
            proven_optimal: true,
        });
    }

    let views: Vec<DriverView> = (0..n).map(|i| DriverView::new(market, i)).collect();
    let mut lp = LinearProgram::maximize();

    // Variable bookkeeping per driver.
    // x[d][k]: task `allowed[d][k]` assigned to driver d.
    let mut allowed: Vec<Vec<usize>> = Vec::with_capacity(n);
    let mut x_var: Vec<Vec<usize>> = Vec::with_capacity(n);
    // Arc variables per driver: (from, to, var, cost) with `usize::MAX`
    // encoding the source (from) / sink (to).
    const TERM: usize = usize::MAX;
    let mut arcs: Vec<Vec<(usize, usize, usize, f64)>> = Vec::with_capacity(n);

    for (d, view) in views.iter().enumerate() {
        let mine: Vec<usize> = (0..m).filter(|&t| view.is_allowed(t)).collect();
        let mut xs = Vec::with_capacity(mine.len());
        for &t in &mine {
            let margin = market.tasks()[t].margin(objective).as_f64();
            xs.push(lp.add_var(format!("x_{d}_{t}"), margin));
        }
        let mut my_arcs = Vec::new();
        // Direct source→sink arc, cost c₀,₋₁ (the refund makes it net 0).
        let direct = market.direct_cost(d).as_f64();
        let v = lp.add_var(format!("y_{d}_src_snk"), -direct);
        my_arcs.push((TERM, TERM, v, direct));
        for &t in &mine {
            let task = &market.tasks()[t];
            let src_cost = market
                .speed()
                .travel_cost(market.drivers()[d].source, task.origin)
                .as_f64();
            let v = lp.add_var(format!("y_{d}_src_{t}"), -src_cost);
            my_arcs.push((TERM, t, v, src_cost));
            let snk_cost = market
                .speed()
                .travel_cost(task.destination, market.drivers()[d].destination)
                .as_f64();
            let v = lp.add_var(format!("y_{d}_{t}_snk"), -snk_cost);
            my_arcs.push((t, TERM, v, snk_cost));
        }
        for &t in &mine {
            for e in market.chain_edges(t) {
                let to = e.to as usize;
                if view.is_allowed(to) {
                    let v = lp.add_var(format!("y_{d}_{t}_{to}"), -e.cost);
                    my_arcs.push((t, to, v, e.cost));
                }
            }
        }
        allowed.push(mine);
        x_var.push(xs);
        arcs.push(my_arcs);
    }

    // (5a): each task served at most once.
    for t in 0..m {
        let coeffs: Vec<(usize, f64)> = (0..n)
            .filter_map(|d| {
                allowed[d]
                    .iter()
                    .position(|&tt| tt == t)
                    .map(|k| (x_var[d][k], 1.0))
            })
            .collect();
        if !coeffs.is_empty() {
            lp.add_constraint(coeffs, Cmp::Le, 1.0);
        }
    }

    for d in 0..n {
        // (5c): out-degree of the source is 1.
        let from_src: Vec<(usize, f64)> = arcs[d]
            .iter()
            .filter(|(f, _, _, _)| *f == TERM)
            .map(|(_, _, v, _)| (*v, 1.0))
            .collect();
        lp.add_constraint(from_src, Cmp::Eq, 1.0);
        // (5d): in-degree of the sink is 1.
        let to_snk: Vec<(usize, f64)> = arcs[d]
            .iter()
            .filter(|(_, t, _, _)| *t == TERM)
            .map(|(_, _, v, _)| (*v, 1.0))
            .collect();
        lp.add_constraint(to_snk, Cmp::Eq, 1.0);
        // (5e)/(5f): task in/out degree equals xₙ,ₘ.
        for (k, &t) in allowed[d].iter().enumerate() {
            let inbound: Vec<(usize, f64)> = arcs[d]
                .iter()
                .filter(|(_, to, _, _)| *to == t)
                .map(|(_, _, v, _)| (*v, 1.0))
                .chain([(x_var[d][k], -1.0)])
                .collect();
            lp.add_constraint(inbound, Cmp::Eq, 0.0);
            let outbound: Vec<(usize, f64)> = arcs[d]
                .iter()
                .filter(|(from, _, _, _)| *from == t)
                .map(|(_, _, v, _)| (*v, 1.0))
                .chain([(x_var[d][k], -1.0)])
                .collect();
            lp.add_constraint(outbound, Cmp::Eq, 0.0);
        }
        // (5b) optional: route profit ≥ 0 ⇔ Σ x·margin − Σ y·cost ≥ −c₀,₋₁.
        if opts.enforce_ir {
            let mut coeffs: Vec<(usize, f64)> = allowed[d]
                .iter()
                .enumerate()
                .map(|(k, &t)| (x_var[d][k], market.tasks()[t].margin(objective).as_f64()))
                .collect();
            coeffs.extend(arcs[d].iter().map(|(_, _, v, c)| (*v, -*c)));
            lp.add_constraint(coeffs, Cmp::Ge, -market.direct_cost(d).as_f64());
        }
    }

    let binaries: Vec<usize> = (0..lp.num_vars()).collect();
    let milp = BranchAndBound::new(lp, binaries)
        .with_node_limit(opts.node_limit)
        .solve()?;

    // Reconstruct routes by walking successor arcs.
    let mut assignment = Assignment::empty(n);
    for (d, driver_arcs) in arcs.iter().enumerate() {
        let succ_of = |from: usize| -> Option<usize> {
            driver_arcs
                .iter()
                .find(|(f, to, v, _)| *f == from && *to != TERM && milp.values[*v] > 0.5)
                .map(|(_, to, _, _)| *to)
        };
        let mut route = Vec::new();
        let mut cur = succ_of(TERM);
        let mut hops = 0usize;
        while let Some(t) = cur {
            route.push(TaskId::new(t as u32));
            hops += 1;
            if hops > m {
                return Err(MarketError::InfeasibleAssignment {
                    reason: format!("driver#{d}: cyclic arc solution"),
                });
            }
            cur = succ_of(t);
        }
        assignment.set_route(market.drivers()[d].id, route);
    }

    // Add back the constant Σₙ cₙ,₀,₋₁ from Eq. 4.
    let constant: f64 = (0..n).map(|d| market.direct_cost(d).as_f64()).sum();
    Ok(ExactOutcome {
        assignment,
        objective_value: milp.objective + constant,
        nodes_explored: milp.nodes_explored,
        proven_optimal: milp.proven_optimal,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::market::MarketBuildOptions;
    use crate::upper_bound::{lp_upper_bound, UpperBoundOptions};
    use crate::{solve_greedy, Objective};
    use rideshare_trace::{DriverModel, TraceConfig};

    fn market(seed: u64, tasks: usize, drivers: usize) -> Market {
        let trace = TraceConfig::porto()
            .with_seed(seed)
            .with_task_count(tasks)
            .with_driver_count(drivers, DriverModel::Hitchhiking)
            .generate();
        Market::from_trace(&trace, &MarketBuildOptions::default())
    }

    #[test]
    fn exact_dominates_greedy_and_respects_bound() {
        let m = market(31, 14, 4);
        let exact = solve_exact(&m, Objective::Profit, ExactOptions::default()).unwrap();
        assert!(exact.proven_optimal);
        exact.assignment.validate(&m).unwrap();
        let exact_value = exact
            .assignment
            .objective_value(&m, Objective::Profit)
            .as_f64();
        assert!(
            (exact_value - exact.objective_value).abs() < 1e-6,
            "reported {} vs recomputed {exact_value}",
            exact.objective_value
        );
        let greedy = solve_greedy(&m, Objective::Profit)
            .assignment
            .objective_value(&m, Objective::Profit);
        assert!(exact.objective_value + 1e-6 >= greedy.as_f64());
        let ub = lp_upper_bound(&m, Objective::Profit, UpperBoundOptions::default()).unwrap();
        assert!(
            ub.bound + 1e-6 >= exact.objective_value,
            "Z_f* {} < Z* {}",
            ub.bound,
            exact.objective_value
        );
    }

    #[test]
    fn ir_constraint_does_not_change_optimum() {
        let m = market(32, 10, 3);
        let without = solve_exact(&m, Objective::Profit, ExactOptions::default()).unwrap();
        let with = solve_exact(
            &m,
            Objective::Profit,
            ExactOptions {
                enforce_ir: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            (without.objective_value - with.objective_value).abs() < 1e-6,
            "IR changed optimum: {} vs {}",
            without.objective_value,
            with.objective_value
        );
    }

    #[test]
    fn empty_market_trivial() {
        let m = market(33, 0, 3);
        let e = solve_exact(&m, Objective::Profit, ExactOptions::default()).unwrap();
        assert_eq!(e.objective_value, 0.0);
        assert!(e.proven_optimal);
    }

    #[test]
    fn welfare_exact_dominates_profit_exact() {
        let m = market(34, 10, 3);
        let p = solve_exact(&m, Objective::Profit, ExactOptions::default()).unwrap();
        let w = solve_exact(&m, Objective::Welfare, ExactOptions::default()).unwrap();
        assert!(w.objective_value + 1e-6 >= p.objective_value);
    }
}
