//! Instance introspection: one-glance summaries of market structure.

use core::fmt;

use crate::market::{Market, Objective};
use crate::view::DriverView;

/// Structural statistics of a market instance.
///
/// # Examples
///
/// ```
/// use rideshare_core::{Market, MarketBuildOptions, MarketSummary};
/// use rideshare_trace::{DriverModel, TraceConfig};
///
/// let trace = TraceConfig::porto()
///     .with_seed(2)
///     .with_task_count(100)
///     .with_driver_count(10, DriverModel::Hitchhiking)
///     .generate();
/// let market = Market::from_trace(&trace, &MarketBuildOptions::default());
/// let s = MarketSummary::of(&market);
/// assert_eq!(s.drivers, 10);
/// assert_eq!(s.tasks, 100);
/// println!("{s}");
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct MarketSummary {
    /// Number of drivers `N`.
    pub drivers: usize,
    /// Number of tasks `M`.
    pub tasks: usize,
    /// Chain arcs in the shared task map.
    pub chain_arcs: usize,
    /// Task-map diameter `D` (Theorem 1's constant).
    pub diameter: usize,
    /// Average number of tasks feasible per driver (task-map node count).
    pub avg_feasible_tasks: f64,
    /// Fraction of (driver, task) pairs that are feasible.
    pub feasible_density: f64,
    /// Mean profit margin `pₘ − ĉₘ` over tasks.
    pub mean_margin: f64,
    /// Total posted price volume `Σ pₘ`.
    pub total_price_volume: f64,
    /// The worst-case approximation guarantee `1/(D+1)` of Alg. 1.
    pub greedy_guarantee: f64,
}

impl MarketSummary {
    /// Computes the summary (`O(N·M)` feasibility evaluations).
    #[must_use]
    pub fn of(market: &Market) -> Self {
        let n = market.num_drivers();
        let m = market.num_tasks();
        let mut feasible_total = 0usize;
        for d in 0..n {
            feasible_total += DriverView::new(market, d).feasible_task_count();
        }
        let diameter = market.chain_diameter();
        let mean_margin = if m == 0 {
            0.0
        } else {
            market
                .tasks()
                .iter()
                .map(|t| t.margin(Objective::Profit).as_f64())
                .sum::<f64>()
                / m as f64
        };
        Self {
            drivers: n,
            tasks: m,
            chain_arcs: market.chain_arc_count(),
            diameter,
            avg_feasible_tasks: if n == 0 {
                0.0
            } else {
                feasible_total as f64 / n as f64
            },
            feasible_density: if n * m == 0 {
                0.0
            } else {
                feasible_total as f64 / (n * m) as f64
            },
            mean_margin,
            total_price_volume: market.tasks().iter().map(|t| t.price.as_f64()).sum(),
            greedy_guarantee: 1.0 / (diameter as f64 + 1.0),
        }
    }
}

impl fmt::Display for MarketSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "market: {} drivers × {} tasks, {} chain arcs, diameter D = {}",
            self.drivers, self.tasks, self.chain_arcs, self.diameter
        )?;
        writeln!(
            f,
            "feasibility: {:.1} tasks/driver ({:.1}% of pairs)",
            self.avg_feasible_tasks,
            self.feasible_density * 100.0
        )?;
        write!(
            f,
            "economics: mean margin {:.2}, price volume {:.2}; GA guarantee 1/(D+1) = {:.4}",
            self.mean_margin, self.total_price_volume, self.greedy_guarantee
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::market::MarketBuildOptions;
    use rideshare_trace::{DriverModel, TraceConfig};

    fn market(tasks: usize, drivers: usize) -> Market {
        let trace = TraceConfig::porto()
            .with_seed(55)
            .with_task_count(tasks)
            .with_driver_count(drivers, DriverModel::Hitchhiking)
            .generate();
        Market::from_trace(&trace, &MarketBuildOptions::default())
    }

    #[test]
    fn summary_fields_consistent() {
        let m = market(120, 15);
        let s = MarketSummary::of(&m);
        assert_eq!(s.drivers, 15);
        assert_eq!(s.tasks, 120);
        assert_eq!(s.chain_arcs, m.chain_arc_count());
        assert_eq!(s.diameter, m.chain_diameter());
        assert!((s.greedy_guarantee - 1.0 / (s.diameter as f64 + 1.0)).abs() < 1e-12);
        assert!(s.feasible_density <= 1.0);
        assert!(
            (s.avg_feasible_tasks - s.feasible_density * 120.0).abs() < 1e-9,
            "density/average identity"
        );
        assert!(s.mean_margin > 0.0, "porto fares beat fuel costs");
        assert!(s.total_price_volume > 0.0);
    }

    #[test]
    fn empty_market_summary() {
        let m = Market::new(vec![], vec![], rideshare_geo::SpeedModel::urban(), None);
        let s = MarketSummary::of(&m);
        assert_eq!(s.drivers, 0);
        assert_eq!(s.tasks, 0);
        assert_eq!(s.avg_feasible_tasks, 0.0);
        assert_eq!(s.feasible_density, 0.0);
        assert_eq!(s.diameter, 0);
        assert_eq!(s.greedy_guarantee, 1.0);
    }

    #[test]
    fn display_is_three_lines() {
        let s = MarketSummary::of(&market(30, 5));
        let text = s.to_string();
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("diameter"));
        assert!(text.contains("GA guarantee"));
    }
}
