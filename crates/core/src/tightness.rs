//! The Fig. 2 adversarial family: GA's `1/(D+1)` ratio is *tight*.
//!
//! Lemma 3 of the paper constructs, for any diameter `D` and any `ε > 0`,
//! an instance where the greedy algorithm earns `1` while the optimum earns
//! `(D+1)(1−ε)`. This module realises that construction **geometrically**
//! (actual coordinates, time windows, and travel costs — not abstract path
//! values), so the very same `Market` runs through GA, the exact ILP, and
//! the LP bound:
//!
//! - `D` chain tasks at a single point `P`, with consecutive disjoint time
//!   windows, each priced `1`;
//! - driver 1 lives at `H`, `(D−1)/2` km from `P` (at 1 cost unit per km):
//!   serving the whole chain costs `D−1` in excess travel, netting exactly
//!   `1` — her per-task marginal is the paper's `1/D`;
//! - one decoy task at `Q`, `ε/2` km from `H`, whose window overlaps the
//!   whole day (it can never be chained): driver 1 would net `1 − ε` on it;
//! - drivers `2..D+1` each live `ε/2` km from `P` with a shift exactly
//!   bracketing one chain task: each nets `1 − ε` on it and can serve
//!   nothing else.
//!
//! Greedy commits driver 1 to the chain (profit `1 > 1 − ε`), destroying
//! every other driver's only option; the optimum instead spreads the work:
//! `(D+1)(1−ε)`.

use rideshare_geo::{GeoPoint, SpeedModel};
use rideshare_trace::DriverModel;
use rideshare_types::{DriverId, Money, TaskId, TimeDelta, Timestamp};

use crate::market::{Driver, Market, Task};

/// A generated tightness instance with its analytically known optima.
#[derive(Clone, Debug)]
pub struct TightnessInstance {
    /// The geometric market realising Fig. 2.
    pub market: Market,
    /// The diameter parameter `D ≥ 1` (chain length).
    pub d: usize,
    /// The profit wedge `ε ∈ (0, 1)`.
    pub epsilon: f64,
}

impl TightnessInstance {
    /// The profit GA is guaranteed to achieve on this instance: exactly 1
    /// (driver 1's chain).
    #[must_use]
    pub fn expected_greedy(&self) -> f64 {
        1.0
    }

    /// The integral optimum: `(D+1)(1−ε)`.
    #[must_use]
    pub fn expected_opt(&self) -> f64 {
        (self.d as f64 + 1.0) * (1.0 - self.epsilon)
    }

    /// The achieved approximation ratio `1 / ((D+1)(1−ε)) → 1/(D+1)`.
    #[must_use]
    pub fn expected_ratio(&self) -> f64 {
        self.expected_greedy() / self.expected_opt()
    }
}

/// Builds the Fig. 2 instance for diameter `d` and wedge `epsilon`.
///
/// # Panics
///
/// Panics unless `d ≥ 1` and `0 < epsilon < 1`.
///
/// # Examples
///
/// ```
/// use rideshare_core::tightness::fig2_instance;
/// use rideshare_core::{solve_greedy, Objective};
///
/// let inst = fig2_instance(3, 0.05);
/// let ga = solve_greedy(&inst.market, Objective::Profit);
/// let profit = ga.assignment.objective_value(&inst.market, Objective::Profit);
/// assert!((profit.as_f64() - 1.0).abs() < 1e-3);
/// ```
#[must_use]
pub fn fig2_instance(d: usize, epsilon: f64) -> TightnessInstance {
    assert!(d >= 1, "diameter must be at least 1");
    assert!(
        (0.0..1.0).contains(&epsilon) && epsilon > 0.0,
        "epsilon in (0,1)"
    );

    // 60 km/h, no detour, 1 cost unit per km → 1 km = 1 minute = 1 cost.
    let speed = SpeedModel::new(60.0, 1.0, 1.0);
    let p = GeoPoint::new(41.15, -8.61); // the chain point P
    let h = p.offset_km(0.0, (d as f64 - 1.0) / 2.0); // driver 1's home H
    let q = h.offset_km(epsilon / 2.0, 0.0); // the decoy point Q

    // Chain task i (0-based) has window [W·(i+1), W·(i+1) + 600].
    const W: i64 = 3600;
    let day_end: i64 = W * (d as i64 + 2);

    let mut tasks: Vec<Task> = Vec::with_capacity(d + 1);
    for i in 0..d {
        let start = W * (i as i64 + 1);
        tasks.push(Task {
            id: TaskId::new(i as u32),
            publish_time: Timestamp::from_secs(start - 300),
            origin: p,
            destination: p,
            pickup_deadline: Timestamp::from_secs(start),
            completion_deadline: Timestamp::from_secs(start + 600),
            duration: TimeDelta::from_secs(0),
            price: Money::new(1.0),
            valuation: Money::new(1.0),
            service_cost: Money::ZERO,
        });
    }
    // The decoy: window spans the entire horizon so it chains with nothing.
    tasks.push(Task {
        id: TaskId::new(d as u32),
        publish_time: Timestamp::from_secs(-600),
        origin: q,
        destination: q,
        pickup_deadline: Timestamp::from_secs(0),
        completion_deadline: Timestamp::from_secs(day_end),
        duration: TimeDelta::from_secs(0),
        price: Money::new(1.0),
        valuation: Money::new(1.0),
        service_cost: Money::ZERO,
    });

    let mut drivers: Vec<Driver> = Vec::with_capacity(d + 1);
    // Driver 1: home-work-home at H, shift covering everything.
    drivers.push(Driver {
        id: DriverId::new(0),
        source: h,
        destination: h,
        shift_start: Timestamp::from_secs(-2 * W),
        shift_end: Timestamp::from_secs(day_end + 2 * W),
        model: DriverModel::HomeWorkHome,
    });
    // Drivers 2..D+1: each brackets exactly one chain task.
    for i in 0..d {
        let g = p.offset_km(0.0, -(epsilon / 2.0)); // ε/2 km west of P
        let travel = speed.travel_time(g, p);
        let start = Timestamp::from_secs(W * (i as i64 + 1));
        let end = Timestamp::from_secs(W * (i as i64 + 1) + 600);
        drivers.push(Driver {
            id: DriverId::new(i as u32 + 1),
            source: g,
            destination: g,
            shift_start: start - travel,
            shift_end: end + travel,
            model: DriverModel::HomeWorkHome,
        });
    }

    TightnessInstance {
        market: Market::new(drivers, tasks, speed, None),
        d,
        epsilon,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{solve_exact, ExactOptions};
    use crate::upper_bound::{lp_upper_bound, UpperBoundOptions};
    use crate::{solve_greedy, Objective};

    #[test]
    fn greedy_earns_exactly_one() {
        for d in 1..=5 {
            let inst = fig2_instance(d, 0.05);
            let ga = solve_greedy(&inst.market, Objective::Profit);
            ga.assignment.validate(&inst.market).unwrap();
            let profit = ga
                .assignment
                .objective_value(&inst.market, Objective::Profit)
                .as_f64();
            assert!((profit - 1.0).abs() < 1e-3, "D={d}: greedy profit {profit}");
            // Driver 1 took the whole chain.
            assert_eq!(ga.assignment.routes()[0].tasks.len(), d);
        }
    }

    #[test]
    fn optimum_is_d_plus_one_times_wedge() {
        for d in 1..=3 {
            let inst = fig2_instance(d, 0.05);
            let exact =
                solve_exact(&inst.market, Objective::Profit, ExactOptions::default()).unwrap();
            assert!(exact.proven_optimal);
            assert!(
                (exact.objective_value - inst.expected_opt()).abs() < 1e-3,
                "D={d}: OPT {} expected {}",
                exact.objective_value,
                inst.expected_opt()
            );
        }
    }

    #[test]
    fn ratio_approaches_one_over_d_plus_one() {
        let inst = fig2_instance(4, 0.01);
        let ga = solve_greedy(&inst.market, Objective::Profit);
        let achieved = ga
            .assignment
            .objective_value(&inst.market, Objective::Profit)
            .as_f64();
        let ratio = achieved / inst.expected_opt();
        let bound = 1.0 / (inst.d as f64 + 1.0);
        assert!(
            (ratio - bound).abs() < 0.01,
            "ratio {ratio} vs 1/(D+1) = {bound}"
        );
    }

    #[test]
    fn lp_bound_dominates_opt() {
        let inst = fig2_instance(3, 0.05);
        let ub = lp_upper_bound(
            &inst.market,
            Objective::Profit,
            UpperBoundOptions::default(),
        )
        .unwrap();
        assert!(ub.bound + 1e-6 >= inst.expected_opt());
    }

    #[test]
    fn chain_diameter_matches_d() {
        for d in 1..=5 {
            let inst = fig2_instance(d, 0.05);
            assert_eq!(inst.market.chain_diameter(), d.max(1));
        }
    }

    #[test]
    #[should_panic(expected = "diameter")]
    fn rejects_zero_diameter() {
        let _ = fig2_instance(0, 0.1);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_bad_epsilon() {
        let _ = fig2_instance(2, 1.5);
    }
}
