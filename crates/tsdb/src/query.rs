//! Range queries and window aggregation over the store.
//!
//! A query is a label filter (exact match per label, absent = wildcard),
//! a half-open time range `[from, to)` on the stream clock, and a window
//! `step`. Matched series are **merged** — samples at the same timestamp
//! sum, the valkey-timeseries multi-series semantics — and the merged
//! series is folded into step-aligned windows, each carrying the exact
//! integer sufficient statistics `{count, sum, min, max}`. Windows align
//! to the absolute clock (window `k` covers `[k·step, (k+1)·step)`),
//! matching `StreamMetrics` bucketing, so a query over a recorded run
//! reproduces the accumulator's buckets bit-for-bit.
//!
//! Everything stays in the i128 integer domain: `sum/min/max` are exact,
//! and the derived projections (`avg`, `rate`) are computed only at
//! *render* time. Canonical JSON ([`to_canonical_json`], schema
//! [`QUERY_SCHEMA`]) therefore never contains a float — it is
//! byte-stable and CI diffs it against a committed snapshot.

use crate::recorder::{metric_unit, MetricUnit};
use crate::store::{SeriesKey, TsdbError, TsdbStore};
use rideshare_metrics::fixed_to_f64;
use std::collections::BTreeMap;
use std::fmt;

/// Schema tag of canonical query output.
pub const QUERY_SCHEMA: &str = "rideshare-tsdb/1";

/// An exact-match-per-label filter; `None` is a wildcard.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LabelFilter {
    /// Scenario label to require, if any.
    pub scenario: Option<String>,
    /// Policy label to require, if any.
    pub policy: Option<String>,
    /// Region label to require, if any.
    pub region: Option<String>,
    /// Shard label to require, if any.
    pub shard: Option<String>,
    /// Metric name to require, if any.
    pub metric: Option<String>,
}

impl LabelFilter {
    /// The match-anything filter.
    #[must_use]
    pub fn any() -> Self {
        Self::default()
    }

    /// Parses `k=v,k=v` (empty string = match anything).
    ///
    /// # Errors
    ///
    /// [`TsdbError::UnknownLabelKey`] for a key outside
    /// [`SeriesKey::LABEL_NAMES`]; [`TsdbError::BadLabelValue`] for a
    /// malformed pair or value.
    pub fn parse(s: &str) -> Result<Self, TsdbError> {
        let mut filter = Self::any();
        for pair in s.split(',').filter(|p| !p.is_empty()) {
            let Some((k, v)) = pair.split_once('=') else {
                return Err(TsdbError::BadLabelValue {
                    label: "filter".to_string(),
                    value: pair.to_string(),
                });
            };
            filter = filter.with(k.trim(), v.trim())?;
        }
        Ok(filter)
    }

    /// Returns the filter with `key` required to equal `value`.
    ///
    /// # Errors
    ///
    /// [`TsdbError::UnknownLabelKey`] / [`TsdbError::BadLabelValue`] as
    /// in [`LabelFilter::parse`].
    pub fn with(mut self, key: &str, value: &str) -> Result<Self, TsdbError> {
        crate::store::validate_label(key, value)?;
        let slot = match key {
            "scenario" => &mut self.scenario,
            "policy" => &mut self.policy,
            "region" => &mut self.region,
            "shard" => &mut self.shard,
            "metric" => &mut self.metric,
            other => return Err(TsdbError::UnknownLabelKey(other.to_string())),
        };
        *slot = Some(value.to_string());
        Ok(self)
    }

    /// True when `key` satisfies every present constraint.
    #[must_use]
    pub fn matches(&self, key: &SeriesKey) -> bool {
        fn ok(want: &Option<String>, have: &str) -> bool {
            want.as_deref().is_none_or(|w| w == have)
        }
        ok(&self.scenario, &key.scenario)
            && ok(&self.policy, &key.policy)
            && ok(&self.region, &key.region)
            && ok(&self.shard, &key.shard)
            && ok(&self.metric, &key.metric)
    }

    /// Canonical `k=v,k=v` rendering in label order (empty when the
    /// filter matches anything) — stable across parse order.
    #[must_use]
    pub fn canonical(&self) -> String {
        let mut parts = Vec::new();
        for (name, value) in SeriesKey::LABEL_NAMES.iter().zip([
            &self.scenario,
            &self.policy,
            &self.region,
            &self.shard,
            &self.metric,
        ]) {
            if let Some(v) = value {
                parts.push(format!("{name}={v}"));
            }
        }
        parts.join(",")
    }
}

/// How a window's sufficient statistics project to one reported value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Agg {
    /// Σ values (exact integer).
    Sum,
    /// Σ values / sample count.
    Avg,
    /// Σ values / window seconds (per-second rate).
    Rate,
    /// Minimum value (exact integer).
    Min,
    /// Maximum value (exact integer).
    Max,
}

impl Agg {
    /// Parses the CLI spelling.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "sum" => Some(Agg::Sum),
            "avg" => Some(Agg::Avg),
            "rate" => Some(Agg::Rate),
            "min" => Some(Agg::Min),
            "max" => Some(Agg::Max),
            _ => None,
        }
    }

    /// The canonical spelling.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Agg::Sum => "sum",
            Agg::Avg => "avg",
            Agg::Rate => "rate",
            Agg::Min => "min",
            Agg::Max => "max",
        }
    }
}

impl fmt::Display for Agg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A range query: filter, half-open `[from, to)`, window width.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RangeQuery {
    /// Which series to merge.
    pub filter: LabelFilter,
    /// Inclusive window start on the stream clock, seconds.
    pub from: i64,
    /// Exclusive range end, seconds.
    pub to: i64,
    /// Window width, seconds (strictly positive).
    pub step: i64,
}

/// Exact sufficient statistics of one window (or of the whole range).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WindowAgg {
    /// Window start (`k·step` for window `k`; `from` for the total row).
    pub start: i64,
    /// Merged samples in the window.
    pub count: u64,
    /// Σ values.
    pub sum: i128,
    /// Minimum merged value.
    pub min: i128,
    /// Maximum merged value.
    pub max: i128,
}

impl WindowAgg {
    fn seed(start: i64, v: i128) -> Self {
        WindowAgg {
            start,
            count: 1,
            sum: v,
            min: v,
            max: v,
        }
    }

    fn fold(&mut self, v: i128) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }
}

/// A query's result: which series merged, the non-empty windows, and the
/// whole-range total (`None` when no sample landed in range).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct QueryResult {
    /// Matched series keys, in key order.
    pub matched: Vec<SeriesKey>,
    /// Non-empty step windows, ascending by start.
    pub windows: Vec<WindowAgg>,
    /// Whole-range statistics.
    pub total: Option<WindowAgg>,
}

/// Evaluates `q` against `store`: merge matched series (same-timestamp
/// samples sum), keep `[from, to)`, fold into step windows.
///
/// Window starts are `t.div_euclid(step) * step` — aligned to the
/// **absolute clock**, not to `from`. Two edges follow deliberately:
/// a sample at a negative timestamp floors *down* (`-1` with step 60
/// lands in window `-60`, not window `0`), and when `step` exceeds the
/// queried range the single window's start may precede `from`. Both
/// keep query windows bit-identical to `StreamMetrics` bucketing, which
/// uses the same alignment. The range itself stays half-open: a sample
/// exactly at `to` is excluded, a sample exactly at `from` is included.
///
/// # Errors
///
/// [`TsdbError::BadIndex`] for a non-positive `step` or inverted range;
/// storage/codec errors surface typed from the read path.
pub fn run_query(store: &TsdbStore, q: &RangeQuery) -> Result<QueryResult, TsdbError> {
    if q.step <= 0 {
        return Err(TsdbError::BadIndex(format!(
            "query step must be positive, got {}",
            q.step
        )));
    }
    if q.to < q.from {
        return Err(TsdbError::BadIndex(format!(
            "query range is inverted: from {} to {}",
            q.from, q.to
        )));
    }
    let matched: Vec<SeriesKey> = store
        .series()
        .map(|(key, _)| key.clone())
        .filter(|key| q.filter.matches(key))
        .collect();

    // Merge: same-timestamp samples across series sum; BTreeMap keeps
    // the merged series in clock order deterministically.
    let mut merged: BTreeMap<i64, i128> = BTreeMap::new();
    for key in &matched {
        for s in store.read_series(key)? {
            if s.t >= q.from && s.t < q.to {
                *merged.entry(s.t).or_insert(0) += s.v;
            }
        }
    }

    let mut windows: Vec<WindowAgg> = Vec::new();
    let mut total: Option<WindowAgg> = None;
    for (&t, &v) in &merged {
        let start = t.div_euclid(q.step).saturating_mul(q.step);
        match windows.last_mut() {
            Some(w) if w.start == start => w.fold(v),
            _ => windows.push(WindowAgg::seed(start, v)),
        }
        match &mut total {
            Some(tot) => tot.fold(v),
            None => total = Some(WindowAgg::seed(q.from, v)),
        }
    }
    Ok(QueryResult {
        matched,
        windows,
        total,
    })
}

/// Renders one aggregate row as canonical JSON cells: count as a bare
/// number, the i128 statistics as decimal strings (JSON numbers cannot
/// carry i128 exactly).
fn json_row(w: &WindowAgg) -> String {
    format!(
        "[{},{},\"{}\",\"{}\",\"{}\"]",
        w.start, w.count, w.sum, w.min, w.max
    )
}

/// Canonical query output, schema [`QUERY_SCHEMA`]: fixed key order,
/// exact integers only (i128 as decimal strings), newline-terminated.
/// Byte-stable for a given store + query — CI pins it.
#[must_use]
pub fn to_canonical_json(q: &RangeQuery, agg: Agg, result: &QueryResult) -> String {
    let mut out = format!(
        "{{\"schema\":\"{QUERY_SCHEMA}\",\"filter\":\"{}\",\"agg\":\"{}\",\"from\":{},\"to\":{},\"step\":{},\"series\":{},\"windows\":[",
        q.filter.canonical(),
        agg.label(),
        q.from,
        q.to,
        q.step,
        result.matched.len(),
    );
    for (i, w) in result.windows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_row(w));
    }
    out.push_str("],\"total\":");
    match &result.total {
        Some(t) => out.push_str(&json_row(t)),
        None => out.push_str("null"),
    }
    out.push_str("}\n");
    out
}

/// Projects a window through `agg` and the metric's unit to a human
/// number (the only place floats appear; equality tests use the exact
/// JSON instead).
fn project(w: &WindowAgg, agg: Agg, step: i64, unit: MetricUnit) -> f64 {
    let scale = |raw: i128| match unit {
        MetricUnit::Fixed => fixed_to_f64(raw),
        MetricUnit::Count | MetricUnit::Seconds => raw as f64,
    };
    match agg {
        Agg::Sum => scale(w.sum),
        Agg::Avg => {
            if w.count == 0 {
                0.0
            } else {
                scale(w.sum) / w.count as f64
            }
        }
        Agg::Rate => scale(w.sum) / step as f64,
        Agg::Min => scale(w.min),
        Agg::Max => scale(w.max),
    }
}

/// Renders the result as an aligned text table: one row per window plus
/// a total row. Values are unit-scaled (fixed-point metrics divide by
/// 2⁴⁰) when the filter names a single metric; otherwise raw integers.
#[must_use]
pub fn render_table(q: &RangeQuery, agg: Agg, result: &QueryResult) -> String {
    let unit = q
        .filter
        .metric
        .as_deref()
        .map_or(MetricUnit::Count, metric_unit);
    let mut rows: Vec<(String, String, String)> = Vec::new();
    for w in &result.windows {
        rows.push((
            format!("{}", w.start),
            format!("{}", w.count),
            format!("{:.4}", project(w, agg, q.step, unit)),
        ));
    }
    let range = (q.to.saturating_sub(q.from)).max(1);
    if let Some(t) = &result.total {
        rows.push((
            "total".to_string(),
            format!("{}", t.count),
            format!("{:.4}", project(t, agg, range, unit)),
        ));
    }
    let mut widths = ["window".len(), "samples".len(), agg.label().len()];
    for (a, b, c) in &rows {
        widths[0] = widths[0].max(a.len());
        widths[1] = widths[1].max(b.len());
        widths[2] = widths[2].max(c.len());
    }
    let mut out = format!(
        "{:>w0$} | {:>w1$} | {:>w2$}\n",
        "window",
        "samples",
        agg.label(),
        w0 = widths[0],
        w1 = widths[1],
        w2 = widths[2]
    );
    for (a, b, c) in &rows {
        out.push_str(&format!(
            "{a:>w0$} | {b:>w1$} | {c:>w2$}\n",
            w0 = widths[0],
            w1 = widths[1],
            w2 = widths[2]
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::TsdbStore;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tsdb-query-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn key(policy: &str, metric: &str) -> SeriesKey {
        SeriesKey {
            scenario: "t".to_string(),
            policy: policy.to_string(),
            region: "1".to_string(),
            shard: "1".to_string(),
            metric: metric.to_string(),
        }
    }

    #[test]
    fn windows_align_and_merge_sums() {
        let dir = tmp_dir("win");
        let mut store = TsdbStore::open(&dir).expect("open");
        for t in [10i64, 70, 130, 190] {
            store.append(&key("a", "served"), t, 2).expect("append");
            store.append(&key("b", "served"), t, 3).expect("append");
        }
        let q = RangeQuery {
            filter: LabelFilter::parse("metric=served").expect("filter"),
            from: 0,
            to: 200,
            step: 60,
        };
        let r = run_query(&store, &q).expect("query");
        assert_eq!(r.matched.len(), 2);
        // Same-timestamp merge: each window holds one merged sample of 5.
        assert_eq!(r.windows.len(), 4);
        assert_eq!(
            r.windows[0],
            WindowAgg {
                start: 0,
                count: 1,
                sum: 5,
                min: 5,
                max: 5
            }
        );
        assert_eq!(r.windows[2].start, 120);
        let total = r.total.expect("total");
        assert_eq!((total.count, total.sum), (4, 20));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn negative_timestamps_floor_into_negative_windows() {
        let dir = tmp_dir("neg");
        let mut store = TsdbStore::open(&dir).expect("open");
        // div_euclid floors toward -inf: -1 belongs to window -60, not 0.
        store.append(&key("a", "served"), -61, 1).expect("append");
        store.append(&key("a", "served"), -1, 2).expect("append");
        store.append(&key("a", "served"), 0, 4).expect("append");
        let q = RangeQuery {
            filter: LabelFilter::parse("metric=served").expect("filter"),
            from: -120,
            to: 60,
            step: 60,
        };
        let r = run_query(&store, &q).expect("query");
        let starts: Vec<i64> = r.windows.iter().map(|w| w.start).collect();
        assert_eq!(starts, vec![-120, -60, 0]);
        assert_eq!(r.windows[1].sum, 2);
        assert_eq!(r.total.expect("total").sum, 7);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn step_wider_than_range_yields_one_clock_aligned_window() {
        let dir = tmp_dir("wide");
        let mut store = TsdbStore::open(&dir).expect("open");
        store.append(&key("a", "served"), 130, 3).expect("append");
        store.append(&key("a", "served"), 150, 4).expect("append");
        // Range [120, 160) is 40s wide but step is 3600: the one window
        // starts at 0 (absolute-clock alignment), before `from`.
        let q = RangeQuery {
            filter: LabelFilter::parse("metric=served").expect("filter"),
            from: 120,
            to: 160,
            step: 3600,
        };
        let r = run_query(&store, &q).expect("query");
        assert_eq!(r.windows.len(), 1);
        assert_eq!(r.windows[0].start, 0);
        assert_eq!((r.windows[0].count, r.windows[0].sum), (2, 7));
        // The total row reports `from` as its start, not the window start.
        assert_eq!(r.total.expect("total").start, 120);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn range_is_half_open_at_both_edges() {
        let dir = tmp_dir("edges");
        let mut store = TsdbStore::open(&dir).expect("open");
        store.append(&key("a", "served"), 60, 1).expect("append");
        store.append(&key("a", "served"), 119, 2).expect("append");
        store.append(&key("a", "served"), 120, 8).expect("append");
        let q = RangeQuery {
            filter: LabelFilter::parse("metric=served").expect("filter"),
            from: 60,
            to: 120,
            step: 60,
        };
        let r = run_query(&store, &q).expect("query");
        // `from` is inclusive, `to` exclusive: the sample exactly at 120
        // stays out, the one exactly at 60 stays in.
        let total = r.total.expect("total");
        assert_eq!((total.count, total.sum), (2, 3));
        // Empty-but-valid degenerate range: from == to matches nothing.
        let empty = run_query(
            &store,
            &RangeQuery {
                from: 120,
                to: 120,
                ..q.clone()
            },
        )
        .expect("empty range");
        assert!(empty.windows.is_empty() && empty.total.is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_step_and_inverted_range_are_typed_errors() {
        let dir = tmp_dir("bad");
        let store = TsdbStore::open(&dir).expect("open");
        let q = RangeQuery {
            filter: LabelFilter::any(),
            from: 0,
            to: 10,
            step: 0,
        };
        assert!(matches!(
            run_query(&store, &q).expect_err("zero step"),
            TsdbError::BadIndex(m) if m.contains("step")
        ));
        let inverted = RangeQuery {
            from: 10,
            to: 0,
            step: 60,
            ..q
        };
        assert!(matches!(
            run_query(&store, &inverted).expect_err("inverted"),
            TsdbError::BadIndex(m) if m.contains("inverted")
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_label_key_is_typed() {
        assert!(matches!(
            LabelFilter::parse("flavor=spicy").expect_err("unknown"),
            TsdbError::UnknownLabelKey(k) if k == "flavor"
        ));
    }

    #[test]
    fn canonical_json_shape() {
        let dir = tmp_dir("json");
        let mut store = TsdbStore::open(&dir).expect("open");
        store.append(&key("a", "profit"), 30, -7).expect("append");
        let q = RangeQuery {
            filter: LabelFilter::parse("policy=a,metric=profit").expect("filter"),
            from: 0,
            to: 60,
            step: 60,
        };
        let r = run_query(&store, &q).expect("query");
        let json = to_canonical_json(&q, Agg::Sum, &r);
        assert_eq!(
            json,
            "{\"schema\":\"rideshare-tsdb/1\",\"filter\":\"policy=a,metric=profit\",\"agg\":\"sum\",\"from\":0,\"to\":60,\"step\":60,\"series\":1,\"windows\":[[0,1,\"-7\",\"-7\",\"-7\"]],\"total\":[0,1,\"-7\",\"-7\",\"-7\"]}\n"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
