//! The chunk codec: lossless delta-of-delta compression on the integer
//! grid.
//!
//! Every value the store persists is already an exact integer — window
//! counts, whole seconds, or i128 fixed-point accumulators on the 2⁻⁴⁰
//! grid (see `rideshare_metrics::StreamMetrics`). That makes Gorilla-style
//! delta compression (Pelkonen et al., VLDB 2015) *lossless* here, where
//! the original applies it to floats: a chunk stores its first sample
//! absolutely, then per sample the **delta-of-delta** of the timestamp and
//! the **delta** of the value, each zigzag-mapped to an unsigned integer
//! and written as an LEB128 varint. Dispatch telemetry is near-periodic
//! (window boundaries) and near-constant or smoothly drifting (cumulative
//! deltas), so both streams are mostly one-byte varints.
//!
//! Deltas are computed with wrapping arithmetic: subtraction mod 2¹²⁸ (or
//! 2⁶⁴ for timestamps) is a bijection, so decode reverses encode exactly
//! for *every* `(i64, i128)` sequence including the extremes — the
//! property the round-trip proptests in `tests/tsdb_roundtrip.rs` pin.
//!
//! # On-disk layout
//!
//! A series file is the 8-byte file header (magic `RTSC` + u32 LE format
//! version) followed by chunks back to back. Each chunk is a 12-byte
//! header — u32 LE sample count, u32 LE payload length, u32 LE FNV-1a
//! checksum of the payload — then the payload. Hostile bytes (truncation,
//! corrupt headers, overlong varints, trailing garbage, checksum
//! mismatches) surface as typed [`CodecError`]s, never panics; bounds are
//! checked on the *header* before any payload is awaited or decoded, so a
//! forged length cannot force a large allocation.

use std::error::Error;
use std::fmt;

/// Magic bytes opening every series file: **R**ideshare **TS**db
/// **C**hunks.
pub const FILE_MAGIC: [u8; 4] = *b"RTSC";

/// On-disk format version written after the magic.
pub const FORMAT_VERSION: u32 = 1;

/// Byte length of the file header (magic + version).
pub const FILE_HEADER_LEN: usize = 8;

/// Byte length of a chunk header (count + payload length + checksum).
pub const CHUNK_HEADER_LEN: usize = 12;

/// Hard cap on samples per chunk, checked before decoding allocates.
/// The store seals far smaller chunks; this bounds hostile headers.
pub const MAX_CHUNK_SAMPLES: u32 = 1 << 20;

/// Hard cap on a chunk payload in bytes. A sample encodes to at most 29
/// bytes (10-byte timestamp varint + 19-byte value varint), so this
/// comfortably covers [`MAX_CHUNK_SAMPLES`] while bounding what a forged
/// header can make the incremental decoder buffer.
pub const MAX_CHUNK_PAYLOAD: u32 = 32 << 20;

/// One telemetry sample: a position on the stream clock and an exact
/// integer value (count, whole seconds, or 2⁻⁴⁰ fixed-point).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Sample {
    /// Stream-clock timestamp, seconds.
    pub t: i64,
    /// Exact integer value on the metric's grid.
    pub v: i128,
}

/// A typed decode/encode failure. The codec never panics on hostile
/// bytes: every malformation maps to one of these.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CodecError {
    /// The file does not start with [`FILE_MAGIC`].
    BadMagic,
    /// The file header carries an unsupported format version.
    BadVersion(u32),
    /// Fewer bytes than a complete file or chunk header.
    TruncatedHeader {
        /// Bytes a complete header needs.
        needed: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The header promises more payload bytes than are present.
    TruncatedChunk {
        /// Payload bytes the chunk header promised.
        needed: usize,
        /// Payload bytes actually present.
        got: usize,
    },
    /// A chunk header declares zero samples.
    EmptyChunk,
    /// A chunk header exceeds [`MAX_CHUNK_SAMPLES`] or
    /// [`MAX_CHUNK_PAYLOAD`].
    OversizedChunk {
        /// Declared sample count.
        samples: u32,
        /// Declared payload length in bytes.
        bytes: u32,
    },
    /// The payload hashes to a different FNV-1a checksum than the header
    /// recorded.
    ChecksumMismatch {
        /// Checksum the header recorded.
        expected: u32,
        /// Checksum of the payload as read.
        got: u32,
    },
    /// A varint ran past the end of the payload.
    TruncatedVarint,
    /// A varint used more bytes (or high bits) than its domain allows —
    /// garbage, since the encoder always emits minimal-width varints.
    OverlongVarint,
    /// Decoding consumed the declared sample count but payload bytes
    /// remain.
    TrailingBytes {
        /// Leftover payload bytes after the last sample.
        extra: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not a tsdb chunk file (bad magic)"),
            CodecError::BadVersion(v) => write!(f, "unsupported tsdb format version {v}"),
            CodecError::TruncatedHeader { needed, got } => {
                write!(f, "truncated header: need {needed} bytes, have {got}")
            }
            CodecError::TruncatedChunk { needed, got } => {
                write!(
                    f,
                    "truncated chunk: header promises {needed} payload bytes, have {got}"
                )
            }
            CodecError::EmptyChunk => write!(f, "chunk header declares zero samples"),
            CodecError::OversizedChunk { samples, bytes } => {
                write!(
                    f,
                    "chunk header out of bounds: {samples} samples, {bytes} payload bytes"
                )
            }
            CodecError::ChecksumMismatch { expected, got } => {
                write!(
                    f,
                    "chunk checksum mismatch: header {expected:#010x}, payload {got:#010x}"
                )
            }
            CodecError::TruncatedVarint => write!(f, "varint truncated mid-value"),
            CodecError::OverlongVarint => {
                write!(f, "varint wider than its domain (non-minimal or garbage)")
            }
            CodecError::TrailingBytes { extra } => {
                write!(
                    f,
                    "{extra} payload bytes left after the declared sample count"
                )
            }
        }
    }
}

impl Error for CodecError {}

/// FNV-1a over `bytes`, 32-bit: tiny, dependency-free corruption check
/// for chunk payloads (not a cryptographic integrity guarantee).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Zigzag-maps a signed 64-bit value to unsigned so small magnitudes of
/// either sign get short varints: `0, -1, 1, -2, … ↦ 0, 1, 2, 3, …`.
fn zigzag64(n: i64) -> u64 {
    (n.cast_unsigned() << 1) ^ (n >> 63).cast_unsigned()
}

/// Inverse of [`zigzag64`].
fn unzigzag64(u: u64) -> i64 {
    ((u >> 1) ^ 0u64.wrapping_sub(u & 1)).cast_signed()
}

/// Zigzag-maps a signed 128-bit value to unsigned (see [`zigzag64`]).
fn zigzag128(n: i128) -> u128 {
    (n.cast_unsigned() << 1) ^ (n >> 127).cast_unsigned()
}

/// Inverse of [`zigzag128`].
fn unzigzag128(u: u128) -> i128 {
    ((u >> 1) ^ 0u128.wrapping_sub(u & 1)).cast_signed()
}

/// Appends `v` as an LEB128 varint (7 value bits per byte, high bit =
/// continuation).
fn push_uvarint128(out: &mut Vec<u8>, mut v: u128) {
    loop {
        // Low 7 bits; `to_le_bytes()[0]` extracts the low byte without a
        // narrowing `as` cast.
        let low = (v & 0x7f).to_le_bytes()[0];
        v >>= 7;
        if v == 0 {
            out.push(low);
            return;
        }
        out.push(low | 0x80);
    }
}

/// Appends `v` as an LEB128 varint.
fn push_uvarint64(out: &mut Vec<u8>, v: u64) {
    push_uvarint128(out, u128::from(v));
}

/// Reads one LEB128 varint with at most `max_bytes` bytes and at most
/// `top_bits` meaningful bits in the final byte, advancing `*pos`.
/// Rejects truncation and non-minimal/overflowing encodings with typed
/// errors.
fn read_uvarint(
    buf: &[u8],
    pos: &mut usize,
    max_bytes: u32,
    top_bits: u32,
) -> Result<u128, CodecError> {
    let mut v: u128 = 0;
    for i in 0..max_bytes {
        let Some(&b) = buf.get(*pos) else {
            return Err(CodecError::TruncatedVarint);
        };
        *pos += 1;
        let payload = u128::from(b & 0x7f);
        if i + 1 == max_bytes {
            // Final permitted byte: it must terminate and fit the domain.
            if b & 0x80 != 0 || payload >= (1 << top_bits) {
                return Err(CodecError::OverlongVarint);
            }
        }
        v |= payload << (7 * i);
        if b & 0x80 == 0 {
            return Ok(v);
        }
    }
    // Unreachable: the `i + 1 == max_bytes` arm returned either way.
    Err(CodecError::OverlongVarint)
}

/// Reads a varint in the u64 domain (≤ 10 bytes, 1 top bit).
fn read_uvarint64(buf: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let v = read_uvarint(buf, pos, 10, 1)?;
    u64::try_from(v).map_err(|_| CodecError::OverlongVarint)
}

/// Reads a varint in the u128 domain (≤ 19 bytes, 2 top bits).
fn read_uvarint128(buf: &[u8], pos: &mut usize) -> Result<u128, CodecError> {
    read_uvarint(buf, pos, 19, 2)
}

/// Returns the 8-byte file header every series file starts with.
#[must_use]
pub fn file_header() -> [u8; FILE_HEADER_LEN] {
    let mut h = [0u8; FILE_HEADER_LEN];
    h[..4].copy_from_slice(&FILE_MAGIC);
    h[4..].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    h
}

/// Validates the file header at the start of `bytes` and returns how many
/// bytes it consumed.
pub fn check_file_header(bytes: &[u8]) -> Result<usize, CodecError> {
    if bytes.len() < FILE_HEADER_LEN {
        return Err(CodecError::TruncatedHeader {
            needed: FILE_HEADER_LEN,
            got: bytes.len(),
        });
    }
    if bytes[..4] != FILE_MAGIC {
        return Err(CodecError::BadMagic);
    }
    let mut v = [0u8; 4];
    v.copy_from_slice(&bytes[4..8]);
    let version = u32::from_le_bytes(v);
    if version != FORMAT_VERSION {
        return Err(CodecError::BadVersion(version));
    }
    Ok(FILE_HEADER_LEN)
}

/// Encodes `samples` as one chunk (header + payload) appended to `out`.
///
/// Any `(t, v)` sequence is accepted — monotonicity is the *store's*
/// contract, not the codec's — and decodes back exactly.
///
/// # Errors
///
/// [`CodecError::EmptyChunk`] for an empty slice;
/// [`CodecError::OversizedChunk`] past [`MAX_CHUNK_SAMPLES`] /
/// [`MAX_CHUNK_PAYLOAD`].
pub fn encode_chunk(samples: &[Sample], out: &mut Vec<u8>) -> Result<(), CodecError> {
    let first = samples.first().ok_or(CodecError::EmptyChunk)?;
    let count = u32::try_from(samples.len())
        .ok()
        .filter(|&n| n <= MAX_CHUNK_SAMPLES)
        .ok_or(CodecError::OversizedChunk {
            samples: u32::MAX,
            bytes: 0,
        })?;

    let mut payload = Vec::with_capacity(samples.len() * 4);
    push_uvarint64(&mut payload, zigzag64(first.t));
    push_uvarint128(&mut payload, zigzag128(first.v));
    let mut prev = *first;
    let mut prev_dt: i64 = 0;
    for s in &samples[1..] {
        let dt = s.t.wrapping_sub(prev.t);
        let dod = dt.wrapping_sub(prev_dt);
        push_uvarint64(&mut payload, zigzag64(dod));
        push_uvarint128(&mut payload, zigzag128(s.v.wrapping_sub(prev.v)));
        prev_dt = dt;
        prev = *s;
    }

    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&n| n <= MAX_CHUNK_PAYLOAD)
        .ok_or(CodecError::OversizedChunk {
            samples: count,
            bytes: u32::MAX,
        })?;
    out.extend_from_slice(&count.to_le_bytes());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    Ok(())
}

/// A parsed chunk header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ChunkHeader {
    /// Samples in the chunk (≥ 1).
    pub count: u32,
    /// Payload length in bytes.
    pub payload_len: u32,
    /// FNV-1a checksum of the payload.
    pub checksum: u32,
}

/// Parses and bounds-checks the chunk header at the start of `bytes`.
/// Validation happens *here*, before any payload is read, so forged
/// counts/lengths fail fast.
pub fn read_chunk_header(bytes: &[u8]) -> Result<ChunkHeader, CodecError> {
    if bytes.len() < CHUNK_HEADER_LEN {
        return Err(CodecError::TruncatedHeader {
            needed: CHUNK_HEADER_LEN,
            got: bytes.len(),
        });
    }
    let mut w = [0u8; 4];
    w.copy_from_slice(&bytes[0..4]);
    let count = u32::from_le_bytes(w);
    w.copy_from_slice(&bytes[4..8]);
    let payload_len = u32::from_le_bytes(w);
    w.copy_from_slice(&bytes[8..12]);
    let checksum = u32::from_le_bytes(w);
    if count == 0 {
        return Err(CodecError::EmptyChunk);
    }
    if count > MAX_CHUNK_SAMPLES || payload_len > MAX_CHUNK_PAYLOAD {
        return Err(CodecError::OversizedChunk {
            samples: count,
            bytes: payload_len,
        });
    }
    Ok(ChunkHeader {
        count,
        payload_len,
        checksum,
    })
}

/// Decodes a chunk *payload* (no header) declared to hold `count`
/// samples, appending to `out`.
fn decode_payload(payload: &[u8], count: u32, out: &mut Vec<Sample>) -> Result<(), CodecError> {
    let mut pos = 0usize;
    let t0 = unzigzag64(read_uvarint64(payload, &mut pos)?);
    let v0 = unzigzag128(read_uvarint128(payload, &mut pos)?);
    out.push(Sample { t: t0, v: v0 });
    let mut prev = Sample { t: t0, v: v0 };
    let mut prev_dt: i64 = 0;
    for _ in 1..count {
        let dod = unzigzag64(read_uvarint64(payload, &mut pos)?);
        let dv = unzigzag128(read_uvarint128(payload, &mut pos)?);
        let dt = prev_dt.wrapping_add(dod);
        let s = Sample {
            t: prev.t.wrapping_add(dt),
            v: prev.v.wrapping_add(dv),
        };
        out.push(s);
        prev_dt = dt;
        prev = s;
    }
    if pos != payload.len() {
        return Err(CodecError::TrailingBytes {
            extra: payload.len() - pos,
        });
    }
    Ok(())
}

/// Decodes the single chunk at the start of `bytes`, appending its
/// samples to `out` and returning the bytes consumed.
///
/// # Errors
///
/// Typed [`CodecError`]s for every malformation — truncation, bounds,
/// checksum, varint garbage, trailing payload bytes.
pub fn decode_chunk(bytes: &[u8], out: &mut Vec<Sample>) -> Result<usize, CodecError> {
    let header = read_chunk_header(bytes)?;
    let need = widen(header.payload_len);
    let body = &bytes[CHUNK_HEADER_LEN..];
    if body.len() < need {
        return Err(CodecError::TruncatedChunk {
            needed: need,
            got: body.len(),
        });
    }
    let payload = &body[..need];
    let got = fnv1a(payload);
    if got != header.checksum {
        return Err(CodecError::ChecksumMismatch {
            expected: header.checksum,
            got,
        });
    }
    let before = out.len();
    match decode_payload(payload, header.count, out) {
        Ok(()) => Ok(CHUNK_HEADER_LEN + need),
        Err(e) => {
            out.truncate(before);
            Err(e)
        }
    }
}

/// Decodes a complete series file (header + chunks back to back) from one
/// in-memory buffer.
///
/// # Errors
///
/// Typed [`CodecError`]s; a clean file never errors, and
/// `decode_file(encode…)` is the identity the round-trip proptests pin.
pub fn decode_file(bytes: &[u8]) -> Result<Vec<Sample>, CodecError> {
    let mut pos = check_file_header(bytes)?;
    let mut out = Vec::new();
    while pos < bytes.len() {
        pos += decode_chunk(&bytes[pos..], &mut out)?;
    }
    Ok(out)
}

/// Incremental chunk-file decoder, mirroring the wire module's
/// `FrameDecoder`: feed bytes in arbitrary slices (partial reads, one
/// byte at a time, whole file at once — all equivalent), pull decoded
/// chunks as they complete. The drained-partial-read contract: a failed
/// [`ChunkFileDecoder::next`] leaves the buffer untouched, so the same
/// typed error reproduces on every subsequent call and
/// [`ChunkFileDecoder::pending_bytes`] reports exactly the undecodable
/// tail.
#[derive(Debug, Default)]
pub struct ChunkFileDecoder {
    buf: Vec<u8>,
    header_done: bool,
}

impl ChunkFileDecoder {
    /// A decoder expecting a fresh series file (magic first).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes from any read granularity.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded into a returned chunk.
    #[must_use]
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }

    /// True once the file header has been consumed and no partial chunk
    /// is buffered — i.e. the stream may cleanly end here.
    #[must_use]
    pub fn at_clean_boundary(&self) -> bool {
        self.header_done && self.buf.is_empty()
    }

    /// Decodes the next complete chunk, `Ok(None)` when more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// Typed [`CodecError`]s once enough bytes are buffered to prove the
    /// stream malformed (header bounds are checked as soon as the 12
    /// header bytes arrive, before the payload is awaited).
    // Fallible-iterator pull, same idiom as `FrameDecoder::next`.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Vec<Sample>>, CodecError> {
        if !self.header_done {
            if self.buf.len() < FILE_HEADER_LEN {
                return Ok(None);
            }
            check_file_header(&self.buf)?;
            self.buf.drain(..FILE_HEADER_LEN);
            self.header_done = true;
        }
        if self.buf.is_empty() {
            return Ok(None);
        }
        if self.buf.len() < CHUNK_HEADER_LEN {
            return Ok(None);
        }
        // Bounds-check the header immediately; only then wait for payload.
        let header = read_chunk_header(&self.buf)?;
        let need = CHUNK_HEADER_LEN + widen(header.payload_len);
        if self.buf.len() < need {
            return Ok(None);
        }
        let mut out = Vec::with_capacity(widen(header.count));
        let consumed = decode_chunk(&self.buf, &mut out)?;
        self.buf.drain(..consumed);
        Ok(Some(out))
    }
}

/// u32 → usize widening for lengths/counts.
fn widen(n: u32) -> usize {
    // audit:allow(as-cast): u32 -> usize widens losslessly on every supported target (usize is at least 32 bits); used for byte lengths and sample counts.
    n as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(samples: &[Sample]) {
        let mut bytes = file_header().to_vec();
        encode_chunk(samples, &mut bytes).expect("encode");
        assert_eq!(decode_file(&bytes).expect("decode"), samples);
    }

    #[test]
    fn round_trips_extremes() {
        rt(&[Sample { t: 0, v: 0 }]);
        rt(&[
            Sample {
                t: i64::MIN,
                v: i128::MIN,
            },
            Sample {
                t: i64::MAX,
                v: i128::MAX,
            },
            Sample { t: 0, v: -1 },
        ]);
    }

    #[test]
    fn constant_series_is_two_bytes_per_sample() {
        let samples: Vec<Sample> = (0..100)
            .map(|k| Sample {
                t: 3600 * k,
                v: 42 << 40,
            })
            .collect();
        let mut bytes = Vec::new();
        encode_chunk(&samples, &mut bytes).expect("encode");
        // First sample pays full freight; the other 99 are 1+1 bytes.
        assert!(bytes.len() < CHUNK_HEADER_LEN + 16 + 99 * 2 + 1);
    }

    #[test]
    fn zigzag_inverts() {
        for n in [0i64, 1, -1, i64::MIN, i64::MAX, 977] {
            assert_eq!(unzigzag64(zigzag64(n)), n);
        }
        for n in [0i128, 1, -1, i128::MIN, i128::MAX, -(1 << 90)] {
            assert_eq!(unzigzag128(zigzag128(n)), n);
        }
    }

    #[test]
    fn incremental_equals_whole_buffer() {
        let samples: Vec<Sample> = (0..500)
            .map(|k| Sample {
                t: 60 * k + (k % 7),
                v: i128::from(k) * (1 << 30) - 5,
            })
            .collect();
        let mut bytes = file_header().to_vec();
        for chunk in samples.chunks(128) {
            encode_chunk(chunk, &mut bytes).expect("encode");
        }
        let whole = decode_file(&bytes).expect("whole");

        let mut dec = ChunkFileDecoder::new();
        let mut streamed = Vec::new();
        for b in &bytes {
            dec.feed(std::slice::from_ref(b));
            while let Some(chunk) = dec.next().expect("incremental") {
                streamed.extend(chunk);
            }
        }
        assert!(dec.at_clean_boundary());
        assert_eq!(streamed, whole);
        assert_eq!(streamed, samples);
    }
}
