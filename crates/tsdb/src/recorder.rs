//! The [`StreamSink`] adapter that persists windows as they close.
//!
//! [`TsdbRecorder`] interposes on any inner sink (the serve daemon's
//! `MetricsJournal`, replay's `StreamMetrics`): every callback forwards
//! unchanged, and on each [`StreamSink::window_closed`] boundary the
//! recorder appends that window's **deltas** — change in served /
//! rejected / revenue / profit / wait-seconds / deadhead since the
//! previous boundary, straight off the i128 fixed-point grid — to the
//! store, one series per metric under the run's labels. Because window
//! boundaries land on the *stream* clock, a recorded store is identical
//! across shard counts and ingestion backends, exactly like the
//! snapshots it complements; and because deltas are exact integers, the
//! sum of any recorded series over the whole run equals the final
//! accumulator value with `==`, which is the equivalence the test
//! battery pins.
//!
//! Recording failures never disturb dispatch: [`StreamSink`] callbacks
//! cannot return errors, so the first [`TsdbError`] latches, recording
//! stops, and [`TsdbRecorder::finish`] surfaces it — same first-error
//! contract as the serve CLI's snapshot writer.

use crate::store::{SeriesKey, TsdbError, TsdbStore};
use rideshare_core::{Driver, Task};
use rideshare_metrics::StreamMetrics;
use rideshare_online::{DispatchEvent, StreamSink};
use rideshare_types::Timestamp;

/// Metric name: orders dispatched in the window (count delta).
pub const METRIC_SERVED: &str = "served";
/// Metric name: orders rejected in the window (count delta).
pub const METRIC_REJECTED: &str = "rejected";
/// Metric name: revenue in the window (2⁻⁴⁰ fixed-point delta).
pub const METRIC_REVENUE: &str = "revenue";
/// Metric name: Eq. 14 profit in the window (2⁻⁴⁰ fixed-point delta).
pub const METRIC_PROFIT: &str = "profit";
/// Metric name: rider wait accumulated in the window, whole seconds.
pub const METRIC_WAIT_SECS: &str = "wait_secs";
/// Metric name: deadhead distance in the window (2⁻⁴⁰ fixed-point km).
pub const METRIC_DEADHEAD: &str = "deadhead";
/// Metric name: drivers with ≥ 1 served order so far (gauge, emitted on
/// change).
pub const METRIC_ACTIVE_DRIVERS: &str = "active_drivers";

/// Every metric the recorder writes, in emission order.
pub const METRICS: [&str; 7] = [
    METRIC_SERVED,
    METRIC_REJECTED,
    METRIC_REVENUE,
    METRIC_PROFIT,
    METRIC_WAIT_SECS,
    METRIC_DEADHEAD,
    METRIC_ACTIVE_DRIVERS,
];

/// How a metric's raw integers project to human units.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MetricUnit {
    /// 2⁻⁴⁰ fixed-point (money, kilometres): divide by 2⁴⁰ to render.
    Fixed,
    /// Plain count.
    Count,
    /// Whole seconds.
    Seconds,
}

/// The unit of a recorded metric (unknown names render as counts).
#[must_use]
pub fn metric_unit(metric: &str) -> MetricUnit {
    match metric {
        METRIC_REVENUE | METRIC_PROFIT | METRIC_DEADHEAD => MetricUnit::Fixed,
        METRIC_WAIT_SECS => MetricUnit::Seconds,
        _ => MetricUnit::Count,
    }
}

/// The four run labels a recording attaches to every series (the fifth
/// label, `metric`, is per series).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RunLabels {
    /// Scenario / data-source label.
    pub scenario: String,
    /// Dispatch policy label.
    pub policy: String,
    /// Region-count label.
    pub region: String,
    /// Shard-count label.
    pub shard: String,
}

impl RunLabels {
    /// Labels for a run, stringifying the region/shard counts.
    #[must_use]
    pub fn new(scenario: &str, policy: &str, regions: usize, shards: usize) -> Self {
        RunLabels {
            scenario: scenario.to_string(),
            policy: policy.to_string(),
            region: regions.to_string(),
            shard: shards.to_string(),
        }
    }

    fn series(&self, metric: &str) -> SeriesKey {
        SeriesKey {
            scenario: self.scenario.clone(),
            policy: self.policy.clone(),
            region: self.region.clone(),
            shard: self.shard.clone(),
            metric: metric.to_string(),
        }
    }
}

/// Raw totals snapshot used to form per-window deltas.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
struct RawTotals {
    served: u64,
    rejected: u64,
    revenue: i128,
    profit: i128,
    wait_secs: i64,
    deadhead: i128,
    active: u64,
}

impl RawTotals {
    fn of(m: &StreamMetrics) -> Self {
        RawTotals {
            served: m.served() as u64,
            rejected: m.rejected() as u64,
            revenue: m.revenue_raw(),
            profit: m.profit_raw(),
            wait_secs: m.wait_secs_total(),
            deadhead: m.deadhead_raw(),
            active: m.active_drivers() as u64,
        }
    }
}

/// Recording state, present only when a store is attached.
struct RecState {
    store: TsdbStore,
    labels: RunLabels,
    /// Shadow accumulator fed the same decisions as the inner sink —
    /// the recorder's own exact view of the run, independent of what
    /// the inner sink does with its callbacks.
    shadow: StreamMetrics,
    last: RawTotals,
    last_t: Option<i64>,
    error: Option<TsdbError>,
}

impl RecState {
    /// Appends `v` at `t` unless zero-delta, latching the first error.
    fn emit(&mut self, metric: &str, t: i64, v: i128) {
        if self.error.is_some() {
            return;
        }
        let key = self.labels.series(metric);
        if let Err(e) = self.store.append(&key, t, v) {
            self.error = Some(e);
        }
    }

    fn window_closed(&mut self, end: Timestamp) {
        let t = end.as_secs();
        // Boundaries are strictly increasing on the stream clock; if an
        // ingestion backend ever repeated one, fold the repeat into the
        // next boundary instead of corrupting the series.
        if self.last_t.is_some_and(|prev| t <= prev) {
            return;
        }
        let cur = RawTotals::of(&self.shadow);
        let last = self.last;
        // Deltas on the exact grid; zero deltas are skipped (series sums
        // are unchanged, files stay dense with activity).
        let deltas: [(&str, i128); 6] = [
            (
                METRIC_SERVED,
                i128::from(cur.served) - i128::from(last.served),
            ),
            (
                METRIC_REJECTED,
                i128::from(cur.rejected) - i128::from(last.rejected),
            ),
            (METRIC_REVENUE, cur.revenue - last.revenue),
            (METRIC_PROFIT, cur.profit - last.profit),
            (
                METRIC_WAIT_SECS,
                i128::from(cur.wait_secs) - i128::from(last.wait_secs),
            ),
            (METRIC_DEADHEAD, cur.deadhead - last.deadhead),
        ];
        for (metric, delta) in deltas {
            if delta != 0 {
                self.emit(metric, t, delta);
            }
        }
        // Gauge: absolute value, emitted on change.
        if cur.active != last.active {
            self.emit(METRIC_ACTIVE_DRIVERS, t, i128::from(cur.active));
        }
        self.last = cur;
        self.last_t = Some(t);
    }
}

/// The recording interposer; see the module docs.
pub struct TsdbRecorder<S> {
    inner: S,
    rec: Option<RecState>,
}

impl<S: StreamSink> TsdbRecorder<S> {
    /// A recorder persisting into `store` under `labels`, forwarding
    /// every callback to `inner`.
    #[must_use]
    pub fn new(store: TsdbStore, labels: RunLabels, inner: S) -> Self {
        TsdbRecorder {
            inner,
            rec: Some(RecState {
                store,
                labels,
                shadow: StreamMetrics::hourly(),
                last: RawTotals::default(),
                last_t: None,
                error: None,
            }),
        }
    }

    /// A recorder with no store attached: pure pass-through, so callers
    /// can keep one code path whether or not `--tsdb-dir` was given.
    #[must_use]
    pub fn passthrough(inner: S) -> Self {
        TsdbRecorder { inner, rec: None }
    }

    /// True when a store is attached and no error has latched.
    #[must_use]
    pub fn is_recording(&self) -> bool {
        self.rec.as_ref().is_some_and(|r| r.error.is_none())
    }

    /// The wrapped sink.
    #[must_use]
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The wrapped sink, mutably (the serve CLI rolls its journal and
    /// writes snapshots through this).
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Seals buffered chunks and rewrites the index — the day-rollover
    /// durability hook. A latched recording error surfaces here.
    ///
    /// # Errors
    ///
    /// The first [`TsdbError`] the recorder hit, or a flush failure.
    pub fn flush_store(&mut self) -> Result<(), TsdbError> {
        match &mut self.rec {
            None => Ok(()),
            Some(rec) => {
                if let Some(e) = &rec.error {
                    return Err(e.clone());
                }
                rec.store.flush()
            }
        }
    }

    /// Flushes and dismantles the recorder, returning the store (if one
    /// was attached) and the inner sink.
    ///
    /// # Errors
    ///
    /// The first latched [`TsdbError`], or a final flush failure.
    pub fn finish(self) -> Result<(Option<TsdbStore>, S), TsdbError> {
        match self.rec {
            None => Ok((None, self.inner)),
            Some(mut rec) => {
                if let Some(e) = rec.error {
                    return Err(e);
                }
                rec.store.flush()?;
                Ok((Some(rec.store), self.inner))
            }
        }
    }
}

impl<S: StreamSink> StreamSink for TsdbRecorder<S> {
    // The shadow's sink methods are called fully qualified: inherent
    // accessors (`StreamMetrics::rejected()`) share names with the trait.
    fn driver_online(&mut self, driver: &Driver) {
        self.inner.driver_online(driver);
        if let Some(rec) = &mut self.rec {
            StreamSink::driver_online(&mut rec.shadow, driver);
        }
    }

    fn dispatched(&mut self, task: &Task, event: &DispatchEvent) {
        self.inner.dispatched(task, event);
        if let Some(rec) = &mut self.rec {
            StreamSink::dispatched(&mut rec.shadow, task, event);
        }
    }

    fn rejected(&mut self, task: &Task, decision_time: Timestamp) {
        self.inner.rejected(task, decision_time);
        if let Some(rec) = &mut self.rec {
            StreamSink::rejected(&mut rec.shadow, task, decision_time);
        }
    }

    fn window_closed(&mut self, end: Timestamp) {
        self.inner.window_closed(end);
        if let Some(rec) = &mut self.rec {
            StreamSink::window_closed(&mut rec.shadow, end);
            rec.window_closed(end);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{run_query, LabelFilter, RangeQuery};
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tsdb-rec-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn recorded_sums_equal_final_metrics() {
        use rideshare_core::{Market, MarketBuildOptions};
        use rideshare_online::{
            market_events, replay_stream, MaxMargin, StreamOptions, StreamPolicy,
        };
        use rideshare_trace::{DriverModel, TraceConfig};

        let trace = TraceConfig::porto()
            .with_seed(11)
            .with_task_count(400)
            .with_driver_count(25, DriverModel::Hitchhiking)
            .generate();
        let market = Market::from_trace(&trace, &MarketBuildOptions::default());

        let dir = tmp_dir("sum");
        let store = TsdbStore::open(&dir).expect("open");
        let labels = RunLabels::new("unit", "margin", 1, 1);
        let mut rec = TsdbRecorder::new(store, labels, StreamMetrics::hourly());
        replay_stream(
            market.speed(),
            market_events(&market),
            &mut StreamPolicy::Instant(&mut MaxMargin::new()),
            StreamOptions::default(),
            &mut rec,
        );
        let (store, metrics) = rec.finish().expect("finish");
        let store = store.expect("recording store");

        for (metric, want) in [
            (
                METRIC_SERVED,
                i128::try_from(metrics.served()).expect("fits"),
            ),
            (METRIC_PROFIT, metrics.profit_raw()),
            (METRIC_REVENUE, metrics.revenue_raw()),
            (METRIC_WAIT_SECS, i128::from(metrics.wait_secs_total())),
        ] {
            let q = RangeQuery {
                filter: LabelFilter::any().with("metric", metric).expect("filter"),
                from: i64::MIN / 4,
                to: i64::MAX / 4,
                step: 3600,
            };
            let r = run_query(&store, &q).expect("query");
            let got = r.total.map_or(0, |t| t.sum);
            assert_eq!(got, want, "metric {metric}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn passthrough_records_nothing() {
        let mut rec = TsdbRecorder::passthrough(StreamMetrics::hourly());
        rec.window_closed(Timestamp::from_secs(60));
        assert!(!rec.is_recording());
        let (store, _) = rec.finish().expect("finish");
        assert!(store.is_none());
    }
}
