//! Embedded telemetry time-series store for the rideshare workspace.
//!
//! A long-running dispatch market (the paper's online setting, §IV–V)
//! needs its per-window telemetry to outlive the process: "profit per
//! hour for policy X at shard count N over the last three days" is a
//! question about a *finished* run. This crate is the persistence and
//! query layer for exactly that, built on one observation: everything
//! [`rideshare_metrics::StreamMetrics`] accumulates is already an exact
//! integer on a deterministic grid (counts, whole seconds, 2⁻⁴⁰
//! fixed-point money/distance), so a time-series store over those
//! integers can be **lossless** and therefore **equivalence-checkable**
//! — a replayed run, its recorded store, and a range query over that
//! store agree with `==`, not a tolerance.
//!
//! The design follows the Gorilla compression paper (Pelkonen et al.,
//! VLDB 2015) and the valkey-timeseries chunk/label-index architecture:
//!
//! - [`codec`] — chunks of timestamp delta-of-delta + zigzag-varint
//!   value deltas; wrapping arithmetic makes round-trip identity hold
//!   over the full `i64`/`i128` domain, pinned by proptests.
//! - [`store`] — an append-only directory store: `index.json` mapping
//!   `{scenario, policy, region, shard, metric}` label sets to numbered
//!   chunk files; strictly-monotonic appends; typed [`TsdbError`]s on
//!   every hostile input.
//! - [`query`] — label-filtered series merge + windowed aggregation
//!   (`sum/avg/rate/min/max`) with canonical byte-stable JSON output.
//! - [`recorder`] — the [`rideshare_online::StreamSink`] interposer the
//!   serve daemon and `rideshare replay` use to persist windows as they
//!   close (`--tsdb-dir`), queried back by `rideshare query`.

pub mod codec;
pub mod query;
pub mod recorder;
pub mod store;

pub use codec::{ChunkFileDecoder, CodecError, Sample};
pub use query::{
    run_query, to_canonical_json, Agg, LabelFilter, QueryResult, RangeQuery, WindowAgg,
    QUERY_SCHEMA,
};
pub use recorder::{metric_unit, MetricUnit, RunLabels, TsdbRecorder, METRICS};
pub use store::{SeriesInfo, SeriesKey, TsdbError, TsdbStore, INDEX_SCHEMA};
