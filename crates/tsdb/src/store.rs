//! The label-indexed, append-only store over a directory.
//!
//! One directory holds one store: `index.json` (canonical JSON, schema
//! [`INDEX_SCHEMA`]) maps label sets to series ids, and each series id
//! `k` owns an append-only chunk file `series-000k.tsc` in the
//! [`crate::codec`] format. Series are keyed by the five run labels
//! `{scenario, policy, region, shard, metric}` — the valkey-timeseries
//! key/label shape, narrowed to what a dispatch run actually varies.
//!
//! Appends must be strictly increasing on the stream clock per series;
//! an overlapping or duplicate window append is a typed
//! [`TsdbError::OutOfOrder`], never silent reordering, because stored
//! series double as equivalence-oracle inputs and must stay replayable
//! bit-for-bit. Samples buffer in memory and seal into a chunk every
//! [`CHUNK_LEN`] appends; [`TsdbStore::flush`] seals the remainder and
//! rewrites the index, which is the durability boundary (the serve
//! daemon flushes at day rollovers and at exit).

use crate::codec::{self, CodecError, Sample};
use rideshare_trace::wire::{parse_json, JsonValue};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Schema tag of `index.json`.
pub const INDEX_SCHEMA: &str = "rideshare-tsdb-index/1";

/// Samples per sealed chunk. Small enough that a day of hourly windows
/// spans a handful of chunks (cheap range pruning), large enough that
/// the per-chunk header amortises to under a bit per sample.
pub const CHUNK_LEN: usize = 128;

/// Upper bound on distinct series per store, checked when the index is
/// loaded so a hostile `index.json` cannot force unbounded allocation.
pub const MAX_SERIES: usize = 1 << 16;

/// The five run labels identifying one series. Ordering is derived
/// lexicographically field-by-field in declaration order, which fixes
/// index layout, query output order, and golden-fixture bytes.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SeriesKey {
    /// Scenario or data-source label (e.g. `porto-regions`).
    pub scenario: String,
    /// Dispatch policy label (e.g. `margin`, `nearest`, `batch-3m`).
    pub policy: String,
    /// Region-count label of the run (stringified; `1` when unsharded).
    pub region: String,
    /// Shard-count label of the run (stringified).
    pub shard: String,
    /// Metric name (see `crate::recorder` for the vocabulary).
    pub metric: String,
}

impl SeriesKey {
    /// The label names, in key order — the query filter vocabulary.
    pub const LABEL_NAMES: [&'static str; 5] = ["scenario", "policy", "region", "shard", "metric"];

    /// Canonical `k=v,k=v` rendering in label order.
    #[must_use]
    pub fn canonical(&self) -> String {
        format!(
            "scenario={},policy={},region={},shard={},metric={}",
            self.scenario, self.policy, self.region, self.shard, self.metric
        )
    }

    /// Validates every label value (see [`validate_label`]).
    fn validate(&self) -> Result<(), TsdbError> {
        for (name, value) in Self::LABEL_NAMES.iter().zip([
            &self.scenario,
            &self.policy,
            &self.region,
            &self.shard,
            &self.metric,
        ]) {
            validate_label(name, value)?;
        }
        Ok(())
    }
}

/// Checks one label value: non-empty, ≤ 64 bytes, ASCII alphanumerics
/// plus `-`, `_`, `.`, `:` only. The charset keeps canonical filter
/// strings (`k=v,k=v`) and the index JSON unambiguous without any
/// escaping machinery.
pub fn validate_label(name: &str, value: &str) -> Result<(), TsdbError> {
    let ok = !value.is_empty()
        && value.len() <= 64
        && value
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b':'));
    if ok {
        Ok(())
    } else {
        Err(TsdbError::BadLabelValue {
            label: name.to_string(),
            value: value.to_string(),
        })
    }
}

/// A typed store failure. Everything hostile — corrupt files, bad
/// labels, out-of-order appends — lands here; the store never panics on
/// input.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TsdbError {
    /// Filesystem failure, with the path and OS error text.
    Io {
        /// Path the operation touched.
        path: String,
        /// OS error rendering.
        error: String,
    },
    /// A chunk file failed to decode (see [`CodecError`]).
    Codec {
        /// Path of the offending file.
        path: String,
        /// The underlying codec error.
        error: CodecError,
    },
    /// `index.json` is malformed, with a reason.
    BadIndex(String),
    /// A label value violates the charset/length contract.
    BadLabelValue {
        /// Label name.
        label: String,
        /// Offending value.
        value: String,
    },
    /// A filter used a label name outside [`SeriesKey::LABEL_NAMES`].
    UnknownLabelKey(String),
    /// An append moved backwards (or repeated) on a series' clock —
    /// overlapping or duplicate window appends are refused, not merged.
    OutOfOrder {
        /// The series violated.
        series: String,
        /// Timestamp of the series' newest sample.
        prev: i64,
        /// Timestamp of the refused append.
        at: i64,
    },
    /// The index names more series than [`MAX_SERIES`].
    TooManySeries(usize),
}

impl fmt::Display for TsdbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TsdbError::Io { path, error } => write!(f, "tsdb io error at {path}: {error}"),
            TsdbError::Codec { path, error } => write!(f, "tsdb chunk file {path}: {error}"),
            TsdbError::BadIndex(reason) => write!(f, "tsdb index.json: {reason}"),
            TsdbError::BadLabelValue { label, value } => write!(
                f,
                "bad {label} label {value:?}: need 1-64 ASCII [A-Za-z0-9._:-] bytes"
            ),
            TsdbError::UnknownLabelKey(key) => write!(
                f,
                "unknown label key {key:?} (labels: scenario, policy, region, shard, metric)"
            ),
            TsdbError::OutOfOrder { series, prev, at } => write!(
                f,
                "out-of-order append on {series}: have t={prev}, refused t={at} (appends must strictly increase)"
            ),
            TsdbError::TooManySeries(n) => {
                write!(f, "index names {n} series (cap {MAX_SERIES})")
            }
        }
    }
}

impl Error for TsdbError {}

impl TsdbError {
    fn io(path: &Path, e: &std::io::Error) -> Self {
        TsdbError::Io {
            path: path.display().to_string(),
            error: e.to_string(),
        }
    }

    fn codec(path: &Path, error: CodecError) -> Self {
        TsdbError::Codec {
            path: path.display().to_string(),
            error,
        }
    }
}

/// Per-series summary for listings.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SeriesInfo {
    /// Stable series id (also the chunk-file number).
    pub id: u32,
    /// Total samples, sealed and buffered.
    pub samples: u64,
    /// Timestamp of the oldest sample, `None` for a series with no
    /// sealed or buffered samples.
    pub first_t: Option<i64>,
    /// Timestamp of the newest sample.
    pub last_t: Option<i64>,
}

/// In-memory state for one series.
#[derive(Debug)]
struct SeriesState {
    id: u32,
    first_t: Option<i64>,
    last_t: Option<i64>,
    sealed_samples: u64,
    /// Samples appended but not yet sealed into an on-disk chunk.
    open: Vec<Sample>,
}

/// The embedded store: a directory of chunk files behind a label index.
/// See the module docs for layout and contracts.
#[derive(Debug)]
pub struct TsdbStore {
    dir: PathBuf,
    series: BTreeMap<SeriesKey, SeriesState>,
    next_id: u32,
}

impl TsdbStore {
    /// Opens (or initialises) the store in `dir`, creating the directory
    /// if needed. An existing `index.json` is loaded and every listed
    /// chunk file structurally validated — truncated files and corrupt
    /// headers are typed errors at open, not surprises at query time.
    ///
    /// # Errors
    ///
    /// [`TsdbError`] on filesystem failures, malformed index, or
    /// malformed chunk files.
    pub fn open(dir: &Path) -> Result<Self, TsdbError> {
        fs::create_dir_all(dir).map_err(|e| TsdbError::io(dir, &e))?;
        let index_path = dir.join("index.json");
        let mut store = TsdbStore {
            dir: dir.to_path_buf(),
            series: BTreeMap::new(),
            next_id: 0,
        };
        if index_path.exists() {
            let text =
                fs::read_to_string(&index_path).map_err(|e| TsdbError::io(&index_path, &e))?;
            store.load_index(&text)?;
        }
        Ok(store)
    }

    /// The directory this store lives in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Parses `index.json` text and rebuilds per-series state from the
    /// chunk files it names.
    fn load_index(&mut self, text: &str) -> Result<(), TsdbError> {
        let v = parse_json(text).map_err(TsdbError::BadIndex)?;
        let schema = v
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| TsdbError::BadIndex("missing schema".to_string()))?;
        if schema != INDEX_SCHEMA {
            return Err(TsdbError::BadIndex(format!(
                "schema {schema:?}, expected {INDEX_SCHEMA:?}"
            )));
        }
        let rows = v
            .get("series")
            .and_then(JsonValue::arr)
            .ok_or_else(|| TsdbError::BadIndex("missing series array".to_string()))?;
        if rows.len() > MAX_SERIES {
            return Err(TsdbError::TooManySeries(rows.len()));
        }
        for row in rows {
            let cells = row
                .arr()
                .filter(|c| c.len() == 6)
                .ok_or_else(|| TsdbError::BadIndex("series row is not a 6-tuple".to_string()))?;
            let id: u32 = cells[0]
                .num()
                .and_then(|n| n.parse().ok())
                .ok_or_else(|| TsdbError::BadIndex("series id is not a u32".to_string()))?;
            let mut labels = [const { String::new() }; 5];
            for (slot, cell) in labels.iter_mut().zip(&cells[1..]) {
                *slot = cell
                    .as_str()
                    .ok_or_else(|| TsdbError::BadIndex("label is not a string".to_string()))?
                    .to_string();
            }
            let [scenario, policy, region, shard, metric] = labels;
            let key = SeriesKey {
                scenario,
                policy,
                region,
                shard,
                metric,
            };
            key.validate()?;
            let state = self.scan_series_file(id)?;
            if self.series.insert(key, state).is_some() {
                return Err(TsdbError::BadIndex("duplicate series key".to_string()));
            }
            self.next_id = self.next_id.max(id.saturating_add(1));
        }
        Ok(())
    }

    /// Path of series `id`'s chunk file.
    fn series_path(&self, id: u32) -> PathBuf {
        self.dir.join(format!("series-{id:05}.tsc"))
    }

    /// Structurally validates series `id`'s chunk file and summarises it
    /// (sample count, first/last timestamps). A missing file is an empty
    /// series (flush writes files lazily).
    fn scan_series_file(&self, id: u32) -> Result<SeriesState, TsdbError> {
        let path = self.series_path(id);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(SeriesState {
                    id,
                    first_t: None,
                    last_t: None,
                    sealed_samples: 0,
                    open: Vec::new(),
                });
            }
            Err(e) => return Err(TsdbError::io(&path, &e)),
        };
        let samples = codec::decode_file(&bytes).map_err(|e| TsdbError::codec(&path, e))?;
        Ok(SeriesState {
            id,
            first_t: samples.first().map(|s| s.t),
            last_t: samples.last().map(|s| s.t),
            sealed_samples: samples.len() as u64,
            open: Vec::new(),
        })
    }

    /// Appends one sample to the series for `key`, creating the series
    /// (and assigning the next id) on first use.
    ///
    /// # Errors
    ///
    /// [`TsdbError::OutOfOrder`] unless `t` strictly exceeds the series'
    /// newest timestamp; label validation and filesystem/codec errors as
    /// typed variants.
    pub fn append(&mut self, key: &SeriesKey, t: i64, v: i128) -> Result<(), TsdbError> {
        if !self.series.contains_key(key) {
            key.validate()?;
            if self.series.len() >= MAX_SERIES {
                return Err(TsdbError::TooManySeries(self.series.len() + 1));
            }
            let id = self.next_id;
            self.next_id += 1;
            self.series.insert(
                key.clone(),
                SeriesState {
                    id,
                    first_t: None,
                    last_t: None,
                    sealed_samples: 0,
                    open: Vec::new(),
                },
            );
        }
        let state = self
            .series
            .get_mut(key)
            .expect("series inserted just above");
        if let Some(prev) = state.last_t {
            if t <= prev {
                return Err(TsdbError::OutOfOrder {
                    series: key.canonical(),
                    prev,
                    at: t,
                });
            }
        }
        state.open.push(Sample { t, v });
        state.first_t.get_or_insert(t);
        state.last_t = Some(t);
        if state.open.len() >= CHUNK_LEN {
            Self::seal(&self.dir, state)?;
        }
        Ok(())
    }

    /// Seals `state.open` into one chunk appended to the series file,
    /// writing the file header first if the file is new.
    fn seal(dir: &Path, state: &mut SeriesState) -> Result<(), TsdbError> {
        if state.open.is_empty() {
            return Ok(());
        }
        let path = dir.join(format!("series-{:05}.tsc", state.id));
        let mut bytes = Vec::new();
        if state.sealed_samples == 0 && !path.exists() {
            bytes.extend_from_slice(&codec::file_header());
        }
        codec::encode_chunk(&state.open, &mut bytes).map_err(|e| TsdbError::codec(&path, e))?;
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| TsdbError::io(&path, &e))?;
        f.write_all(&bytes).map_err(|e| TsdbError::io(&path, &e))?;
        state.sealed_samples += state.open.len() as u64;
        state.open.clear();
        Ok(())
    }

    /// Seals every buffered sample and rewrites `index.json` — the
    /// durability boundary. Idempotent; cheap when nothing is buffered.
    ///
    /// # Errors
    ///
    /// Typed [`TsdbError`]s on filesystem failures.
    pub fn flush(&mut self) -> Result<(), TsdbError> {
        for state in self.series.values_mut() {
            Self::seal(&self.dir, state)?;
        }
        let index_path = self.dir.join("index.json");
        let tmp_path = self.dir.join("index.json.tmp");
        let text = self.index_json();
        fs::write(&tmp_path, text).map_err(|e| TsdbError::io(&tmp_path, &e))?;
        fs::rename(&tmp_path, &index_path).map_err(|e| TsdbError::io(&index_path, &e))?;
        Ok(())
    }

    /// Canonical `index.json` text: schema tag, then one
    /// `[id, scenario, policy, region, shard, metric]` row per series in
    /// key order. Byte-stable for a given series set — the golden store
    /// fixture pins these bytes.
    #[must_use]
    pub fn index_json(&self) -> String {
        let mut out = format!("{{\"schema\":\"{INDEX_SCHEMA}\",\"series\":[");
        for (i, (key, state)) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "[{},\"{}\",\"{}\",\"{}\",\"{}\",\"{}\"]",
                state.id, key.scenario, key.policy, key.region, key.shard, key.metric
            ));
        }
        out.push_str("]}\n");
        out
    }

    /// All series keys in key order, with summaries.
    pub fn series(&self) -> impl Iterator<Item = (&SeriesKey, SeriesInfo)> {
        self.series.iter().map(|(key, state)| {
            (
                key,
                SeriesInfo {
                    id: state.id,
                    samples: state.sealed_samples + state.open.len() as u64,
                    first_t: state.first_t,
                    last_t: state.last_t,
                },
            )
        })
    }

    /// Reads every sample of `key`'s series — sealed chunks off disk
    /// (checksum-verified) plus the still-buffered tail — in timestamp
    /// order. Unknown keys yield an empty vector, mirroring "no data" in
    /// query semantics.
    ///
    /// # Errors
    ///
    /// Typed [`TsdbError`]s on filesystem or codec failures.
    pub fn read_series(&self, key: &SeriesKey) -> Result<Vec<Sample>, TsdbError> {
        let Some(state) = self.series.get(key) else {
            return Ok(Vec::new());
        };
        let mut samples = if state.sealed_samples > 0 {
            let path = self.series_path(state.id);
            let bytes = fs::read(&path).map_err(|e| TsdbError::io(&path, &e))?;
            codec::decode_file(&bytes).map_err(|e| TsdbError::codec(&path, e))?
        } else {
            Vec::new()
        };
        samples.extend_from_slice(&state.open);
        Ok(samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tsdb-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn key(metric: &str) -> SeriesKey {
        SeriesKey {
            scenario: "t".to_string(),
            policy: "margin".to_string(),
            region: "1".to_string(),
            shard: "1".to_string(),
            metric: metric.to_string(),
        }
    }

    #[test]
    fn append_flush_reopen_round_trips() {
        let dir = tmp_dir("rt");
        let mut store = TsdbStore::open(&dir).expect("open");
        for k in 0..300i64 {
            store
                .append(&key("served"), k * 60, i128::from(k) * 7)
                .expect("append");
        }
        store.flush().expect("flush");
        let reopened = TsdbStore::open(&dir).expect("reopen");
        let samples = reopened.read_series(&key("served")).expect("read");
        assert_eq!(samples.len(), 300);
        assert_eq!(
            samples[299],
            Sample {
                t: 299 * 60,
                v: 299 * 7
            }
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_append_is_typed_error() {
        let dir = tmp_dir("dup");
        let mut store = TsdbStore::open(&dir).expect("open");
        store.append(&key("served"), 60, 1).expect("append");
        let err = store.append(&key("served"), 60, 2).expect_err("dup");
        assert!(matches!(
            err,
            TsdbError::OutOfOrder {
                prev: 60,
                at: 60,
                ..
            }
        ));
        let err = store.append(&key("served"), 3, 2).expect_err("backwards");
        assert!(matches!(
            err,
            TsdbError::OutOfOrder {
                prev: 60,
                at: 3,
                ..
            }
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_label_is_typed_error() {
        let dir = tmp_dir("lbl");
        let mut store = TsdbStore::open(&dir).expect("open");
        let mut k = key("served");
        k.policy = "has space".to_string();
        assert!(matches!(
            store.append(&k, 0, 0).expect_err("bad label"),
            TsdbError::BadLabelValue { .. }
        ));
        let _ = fs::remove_dir_all(&dir);
    }
}
