//! Foundational newtypes for the ride-sharing market framework.
//!
//! This crate defines the identifier, time, and money primitives shared by
//! every other crate in the workspace. It mirrors the notation of the paper
//! *"An Optimization Framework for Online Ride-sharing Markets"* (ICDCS 2017):
//!
//! | Paper | Type here |
//! |---|---|
//! | driver `n ∈ [N]` | [`DriverId`] |
//! | task `m ∈ [M]` | [`TaskId`] |
//! | task-map node in `[M̂] = {−1, 0} ∪ [M]` | [`NodeId`] |
//! | times `t⁻ₙ, t⁺ₙ, t̄ₘ, t̄⁻ₘ, t̄⁺ₘ` | [`Timestamp`] |
//! | durations / travel times `l` | [`TimeDelta`] |
//! | prices, costs, WTP `pₘ, c, bₘ` | [`Money`] |
//!
//! # Examples
//!
//! ```
//! use rideshare_types::{DriverId, Timestamp, TimeDelta, Money};
//!
//! let shift_start = Timestamp::from_secs(8 * 3600);
//! let shift_end = shift_start + TimeDelta::from_mins(4 * 60);
//! assert_eq!(shift_end.as_secs(), 12 * 3600);
//!
//! let fare = Money::from_cents(1250);
//! let cost = Money::from_cents(430);
//! assert!(fare - cost > Money::ZERO);
//! let driver = DriverId::new(7);
//! assert_eq!(driver.index(), 7);
//! ```

// Lint levels (unsafe_code, missing_docs) come from [workspace.lints].

mod error;
mod ids;
mod money;
mod time;

pub use error::{ConfigError, MarketError, OrchestrateError, Result};
pub use ids::{DriverId, NodeId, TaskId};
pub use money::Money;
pub use time::{TimeDelta, Timestamp};
