//! Simulation time: absolute timestamps and signed durations.
//!
//! The framework uses integer seconds since the start of the simulated day
//! (or trace epoch). Integer time keeps event ordering total and hashable,
//! which the online simulator's event queue relies on.

use core::fmt;
use core::ops::{Add, AddAssign, Sub, SubAssign};

/// An absolute point in simulated time, in whole seconds since the epoch.
///
/// # Examples
///
/// ```
/// use rideshare_types::{Timestamp, TimeDelta};
/// let t = Timestamp::from_secs(100);
/// assert_eq!(t + TimeDelta::from_secs(20), Timestamp::from_secs(120));
/// assert_eq!(Timestamp::from_secs(120) - t, TimeDelta::from_secs(20));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Timestamp(i64);

impl Timestamp {
    /// The epoch (time zero).
    pub const EPOCH: Timestamp = Timestamp(0);

    /// Creates a timestamp from whole seconds since the epoch.
    #[must_use]
    pub const fn from_secs(secs: i64) -> Self {
        Self(secs)
    }

    /// Creates a timestamp from whole minutes since the epoch.
    #[must_use]
    pub const fn from_mins(mins: i64) -> Self {
        Self(mins * 60)
    }

    /// Creates a timestamp from whole hours since the epoch.
    #[must_use]
    pub const fn from_hours(hours: i64) -> Self {
        Self(hours * 3600)
    }

    /// Returns the number of seconds since the epoch.
    #[must_use]
    pub const fn as_secs(self) -> i64 {
        self.0
    }

    /// Returns the time as fractional hours since the epoch.
    #[must_use]
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3600.0
    }

    /// Returns the later of two timestamps.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two timestamps.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Saturating addition of a delta; never wraps.
    #[must_use]
    pub fn saturating_add(self, delta: TimeDelta) -> Self {
        Self(self.0.saturating_add(delta.0))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.0;
        let sign = if total < 0 { "-" } else { "" };
        let abs = total.unsigned_abs();
        let (h, rem) = (abs / 3600, abs % 3600);
        let (m, s) = (rem / 60, rem % 60);
        write!(f, "{sign}{h:02}:{m:02}:{s:02}")
    }
}

impl Add<TimeDelta> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: TimeDelta) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl AddAssign<TimeDelta> for Timestamp {
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

impl Sub<TimeDelta> for Timestamp {
    type Output = Timestamp;
    fn sub(self, rhs: TimeDelta) -> Timestamp {
        Timestamp(self.0 - rhs.0)
    }
}

impl SubAssign<TimeDelta> for Timestamp {
    fn sub_assign(&mut self, rhs: TimeDelta) {
        self.0 -= rhs.0;
    }
}

impl Sub for Timestamp {
    type Output = TimeDelta;
    fn sub(self, rhs: Timestamp) -> TimeDelta {
        TimeDelta(self.0 - rhs.0)
    }
}

/// A signed span of simulated time, in whole seconds.
///
/// Durations may be negative (e.g. slack computations such as
/// `t̄⁺ₘ − t⁻ₙ` in the feasibility predicates of the paper's Eqs. 1–3 can go
/// negative, which simply means "infeasible").
///
/// # Examples
///
/// ```
/// use rideshare_types::TimeDelta;
/// let slack = TimeDelta::from_mins(5) - TimeDelta::from_secs(400);
/// assert!(slack.is_negative());
/// assert_eq!(slack.as_secs(), -100);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct TimeDelta(i64);

impl TimeDelta {
    /// The zero duration.
    pub const ZERO: TimeDelta = TimeDelta(0);

    /// Creates a duration from whole seconds.
    #[must_use]
    pub const fn from_secs(secs: i64) -> Self {
        Self(secs)
    }

    /// Creates a duration from whole minutes.
    #[must_use]
    pub const fn from_mins(mins: i64) -> Self {
        Self(mins * 60)
    }

    /// Creates a duration from whole hours.
    #[must_use]
    pub const fn from_hours(hours: i64) -> Self {
        Self(hours * 3600)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// whole second (ties away from zero).
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        Self(secs.round() as i64)
    }

    /// Returns the duration in whole seconds.
    #[must_use]
    pub const fn as_secs(self) -> i64 {
        self.0
    }

    /// Returns the duration as fractional minutes.
    #[must_use]
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / 60.0
    }

    /// Returns the duration as fractional hours.
    #[must_use]
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3600.0
    }

    /// Returns `true` if the duration is strictly negative.
    #[must_use]
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Returns `true` if the duration is zero or positive.
    #[must_use]
    pub const fn is_non_negative(self) -> bool {
        self.0 >= 0
    }

    /// Returns the larger of two durations.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s", self.0)
    }
}

impl Add for TimeDelta {
    type Output = TimeDelta;
    fn add(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 + rhs.0)
    }
}

impl AddAssign for TimeDelta {
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

impl Sub for TimeDelta {
    type Output = TimeDelta;
    fn sub(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 - rhs.0)
    }
}

impl SubAssign for TimeDelta {
    fn sub_assign(&mut self, rhs: TimeDelta) {
        self.0 -= rhs.0;
    }
}

impl core::ops::Neg for TimeDelta {
    type Output = TimeDelta;
    fn neg(self) -> TimeDelta {
        TimeDelta(-self.0)
    }
}

impl core::ops::Mul<i64> for TimeDelta {
    type Output = TimeDelta;
    fn mul(self, rhs: i64) -> TimeDelta {
        TimeDelta(self.0 * rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp::from_mins(10);
        assert_eq!(t.as_secs(), 600);
        assert_eq!((t + TimeDelta::from_secs(30)).as_secs(), 630);
        assert_eq!((t - TimeDelta::from_secs(30)).as_secs(), 570);
        assert_eq!(Timestamp::from_hours(1).as_secs(), 3600);
        assert_eq!(
            Timestamp::from_secs(500) - Timestamp::from_secs(200),
            TimeDelta::from_secs(300)
        );
    }

    #[test]
    fn timestamp_display_hms() {
        assert_eq!(Timestamp::from_secs(3661).to_string(), "01:01:01");
        assert_eq!(Timestamp::from_secs(-60).to_string(), "-00:01:00");
    }

    #[test]
    fn delta_sign_and_conversions() {
        let d = TimeDelta::from_secs(-30);
        assert!(d.is_negative());
        assert!(!d.is_non_negative());
        assert_eq!((-d).as_secs(), 30);
        assert_eq!(TimeDelta::from_hours(2).as_hours_f64(), 2.0);
        assert_eq!(TimeDelta::from_mins(3).as_mins_f64(), 3.0);
        assert_eq!(TimeDelta::from_secs_f64(1.6).as_secs(), 2);
    }

    #[test]
    fn min_max_helpers() {
        let a = Timestamp::from_secs(5);
        let b = Timestamp::from_secs(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(
            TimeDelta::from_secs(2).max(TimeDelta::from_secs(7)),
            TimeDelta::from_secs(7)
        );
    }

    #[test]
    fn compound_assignment() {
        let mut t = Timestamp::EPOCH;
        t += TimeDelta::from_secs(10);
        t -= TimeDelta::from_secs(4);
        assert_eq!(t.as_secs(), 6);
        let mut d = TimeDelta::ZERO;
        d += TimeDelta::from_secs(3);
        d -= TimeDelta::from_secs(1);
        assert_eq!(d.as_secs(), 2);
        assert_eq!((d * 5).as_secs(), 10);
    }

    #[test]
    fn saturating_add_never_wraps() {
        let t = Timestamp::from_secs(i64::MAX - 1);
        assert_eq!(
            t.saturating_add(TimeDelta::from_secs(100)).as_secs(),
            i64::MAX
        );
    }
}
