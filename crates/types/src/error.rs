//! Error types shared across the framework.

use core::fmt;

use crate::{DriverId, TaskId};

/// A convenient alias for results in the rideshare framework.
pub type Result<T, E = MarketError> = core::result::Result<T, E>;

/// Errors raised when constructing or solving market instances.
///
/// # Examples
///
/// ```
/// use rideshare_types::{MarketError, TaskId};
/// let err = MarketError::UnknownTask(TaskId::new(9));
/// assert_eq!(err.to_string(), "unknown task: task#9");
/// ```
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum MarketError {
    /// A driver id referenced an index outside `0..N`.
    UnknownDriver(DriverId),
    /// A task id referenced an index outside `0..M`.
    UnknownTask(TaskId),
    /// A driver or task has an inverted time window (`end ≤ start`).
    InvalidTimeWindow {
        /// Human-readable description of the offending entity.
        entity: String,
    },
    /// A task's publish time is not strictly before its pickup deadline
    /// (the paper requires `t̄ₘ < t̄⁻ₘ < t̄⁺ₘ`).
    PublishAfterStart(TaskId),
    /// An assignment violated a model constraint (5a–5f); describes which.
    InfeasibleAssignment {
        /// Description of the violated constraint.
        reason: String,
    },
    /// An optimization model was malformed (e.g. mismatched dimensions).
    InvalidModel {
        /// Description of the problem.
        reason: String,
    },
    /// The LP solver detected an unbounded problem.
    Unbounded,
    /// The LP/ILP solver proved the problem infeasible.
    Infeasible,
    /// An iterative solver exceeded its iteration budget.
    IterationLimit {
        /// The budget that was exhausted.
        limit: usize,
    },
    /// Numerical breakdown (NaN/Inf encountered) in a solver.
    Numerical {
        /// Description of where the breakdown happened.
        context: String,
    },
}

impl fmt::Display for MarketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarketError::UnknownDriver(d) => write!(f, "unknown driver: {d}"),
            MarketError::UnknownTask(t) => write!(f, "unknown task: {t}"),
            MarketError::InvalidTimeWindow { entity } => {
                write!(f, "invalid time window for {entity}")
            }
            MarketError::PublishAfterStart(t) => {
                write!(f, "{t} published at or after its pickup deadline")
            }
            MarketError::InfeasibleAssignment { reason } => {
                write!(f, "infeasible assignment: {reason}")
            }
            MarketError::InvalidModel { reason } => write!(f, "invalid model: {reason}"),
            MarketError::Unbounded => write!(f, "problem is unbounded"),
            MarketError::Infeasible => write!(f, "problem is infeasible"),
            MarketError::IterationLimit { limit } => {
                write!(f, "iteration limit of {limit} exceeded")
            }
            MarketError::Numerical { context } => {
                write!(f, "numerical breakdown in {context}")
            }
        }
    }
}

impl std::error::Error for MarketError {}

/// Errors raised when validating user-supplied configuration before a run
/// starts (CLI flags, option builders), as opposed to failures during a run.
///
/// # Examples
///
/// ```
/// use rideshare_types::ConfigError;
/// let err = ConfigError::ZeroShards;
/// assert_eq!(err.to_string(), "shard count must be at least 1");
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum ConfigError {
    /// A sharded engine was configured with `shards == 0`; the partitioner
    /// would divide by zero before dispatching a single event.
    ZeroShards,
    /// An orchestrated sweep was configured with `workers == 0`; no process
    /// would ever claim a unit and the run could not finish.
    ZeroWorkers,
    /// A retry budget of zero attempts can never execute a unit.
    ZeroAttempts,
    /// A free-form invalid value for a named option.
    InvalidValue {
        /// The option that was rejected (e.g. `--timeout`).
        option: String,
        /// Why the value is unusable.
        reason: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroShards => write!(f, "shard count must be at least 1"),
            ConfigError::ZeroWorkers => write!(f, "worker count must be at least 1"),
            ConfigError::ZeroAttempts => write!(f, "retry budget must allow at least 1 attempt"),
            ConfigError::InvalidValue { option, reason } => {
                write!(f, "invalid value for {option}: {reason}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Errors raised by the multi-process sweep orchestrator and its workers.
///
/// Every failure mode of the spool protocol is typed so callers (and the
/// `rideshare orchestrate` CLI) can distinguish a corrupt spool from a
/// poisoned unit from a plain I/O failure.
///
/// # Examples
///
/// ```
/// use rideshare_types::OrchestrateError;
/// let err = OrchestrateError::Poisoned {
///     units: vec!["porto-day:greedy".into()],
/// };
/// assert_eq!(
///     err.to_string(),
///     "1 unit(s) poisoned after exhausting retries: porto-day:greedy"
/// );
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum OrchestrateError {
    /// Configuration was rejected before the spool was touched.
    Config(ConfigError),
    /// An I/O operation on the spool failed.
    Io {
        /// What the orchestrator was doing (e.g. `create spool dir`).
        op: String,
        /// The path involved.
        path: String,
        /// The underlying error rendered as text.
        detail: String,
    },
    /// The spool directory already contains a catalog and `--resume` was not
    /// requested; refusing to clobber a previous (possibly partial) run.
    SpoolExists {
        /// The spool directory.
        path: String,
    },
    /// `--resume` found a spool whose catalog disagrees with the requested
    /// scenarios/policies; resuming would silently merge unrelated runs.
    ManifestMismatch {
        /// Why the manifests differ.
        detail: String,
    },
    /// A unit spec file in the spool could not be parsed.
    CorruptUnit {
        /// The unit file path.
        path: String,
        /// What was wrong with it.
        detail: String,
    },
    /// A result file in the spool could not be parsed back into sweep cells.
    CorruptResult {
        /// The result file path.
        path: String,
        /// What was wrong with it.
        detail: String,
    },
    /// A unit referenced a scenario name absent from the catalog.
    UnknownScenario(String),
    /// A unit referenced a policy label that does not parse.
    UnknownPolicy(String),
    /// Spawning a worker child process failed.
    Spawn {
        /// The underlying error rendered as text.
        detail: String,
    },
    /// Workers kept dying and the respawn budget ran out before the spool
    /// drained; the spool is left intact for `--resume`.
    SpawnBudgetExhausted {
        /// How many respawns were attempted.
        attempts: usize,
    },
    /// One or more units exhausted their retry budget and were poisoned.
    /// The merged report for the surviving units is intentionally withheld:
    /// a partial sweep is not byte-comparable to the canonical one.
    Poisoned {
        /// Unit ids (`scenario:policy`) that were poisoned.
        units: Vec<String>,
    },
}

impl fmt::Display for OrchestrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrchestrateError::Config(c) => write!(f, "{c}"),
            OrchestrateError::Io { op, path, detail } => {
                write!(f, "i/o failure during {op} at {path}: {detail}")
            }
            OrchestrateError::SpoolExists { path } => write!(
                f,
                "spool {path} already holds a run; pass --resume to continue it"
            ),
            OrchestrateError::ManifestMismatch { detail } => {
                write!(f, "spool catalog does not match this invocation: {detail}")
            }
            OrchestrateError::CorruptUnit { path, detail } => {
                write!(f, "corrupt unit spec {path}: {detail}")
            }
            OrchestrateError::CorruptResult { path, detail } => {
                write!(f, "corrupt unit result {path}: {detail}")
            }
            OrchestrateError::UnknownScenario(name) => write!(f, "unknown scenario: {name}"),
            OrchestrateError::UnknownPolicy(label) => write!(f, "unknown policy: {label}"),
            OrchestrateError::Spawn { detail } => write!(f, "failed to spawn worker: {detail}"),
            OrchestrateError::SpawnBudgetExhausted { attempts } => {
                write!(f, "worker respawn budget exhausted after {attempts} spawns")
            }
            OrchestrateError::Poisoned { units } => write!(
                f,
                "{} unit(s) poisoned after exhausting retries: {}",
                units.len(),
                units.join(", ")
            ),
        }
    }
}

impl std::error::Error for OrchestrateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OrchestrateError::Config(c) => Some(c),
            _ => None,
        }
    }
}

impl From<ConfigError> for OrchestrateError {
    fn from(c: ConfigError) -> Self {
        OrchestrateError::Config(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            MarketError::UnknownDriver(DriverId::new(1)).to_string(),
            "unknown driver: driver#1"
        );
        assert_eq!(
            MarketError::PublishAfterStart(TaskId::new(2)).to_string(),
            "task#2 published at or after its pickup deadline"
        );
        assert_eq!(MarketError::Unbounded.to_string(), "problem is unbounded");
        assert_eq!(
            MarketError::IterationLimit { limit: 10 }.to_string(),
            "iteration limit of 10 exceeded"
        );
        assert_eq!(
            MarketError::Numerical {
                context: "simplex pivot".into()
            }
            .to_string(),
            "numerical breakdown in simplex pivot"
        );
    }

    #[test]
    fn error_trait_object() {
        let err: Box<dyn std::error::Error> = Box::new(MarketError::Infeasible);
        assert_eq!(err.to_string(), "problem is infeasible");
    }

    #[test]
    fn config_error_display() {
        assert_eq!(
            ConfigError::ZeroShards.to_string(),
            "shard count must be at least 1"
        );
        assert_eq!(
            ConfigError::ZeroWorkers.to_string(),
            "worker count must be at least 1"
        );
        assert_eq!(
            ConfigError::InvalidValue {
                option: "--timeout".into(),
                reason: "must be positive".into()
            }
            .to_string(),
            "invalid value for --timeout: must be positive"
        );
    }

    #[test]
    fn orchestrate_error_display_and_source() {
        let err = OrchestrateError::from(ConfigError::ZeroWorkers);
        assert_eq!(err.to_string(), "worker count must be at least 1");
        assert!(std::error::Error::source(&err).is_some());
        assert_eq!(
            OrchestrateError::SpoolExists {
                path: "/tmp/spool".into()
            }
            .to_string(),
            "spool /tmp/spool already holds a run; pass --resume to continue it"
        );
        assert_eq!(
            OrchestrateError::Poisoned {
                units: vec!["a:greedy".into(), "b:random".into()]
            }
            .to_string(),
            "2 unit(s) poisoned after exhausting retries: a:greedy, b:random"
        );
    }
}
