//! Error types shared across the framework.

use core::fmt;

use crate::{DriverId, TaskId};

/// A convenient alias for results in the rideshare framework.
pub type Result<T, E = MarketError> = core::result::Result<T, E>;

/// Errors raised when constructing or solving market instances.
///
/// # Examples
///
/// ```
/// use rideshare_types::{MarketError, TaskId};
/// let err = MarketError::UnknownTask(TaskId::new(9));
/// assert_eq!(err.to_string(), "unknown task: task#9");
/// ```
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum MarketError {
    /// A driver id referenced an index outside `0..N`.
    UnknownDriver(DriverId),
    /// A task id referenced an index outside `0..M`.
    UnknownTask(TaskId),
    /// A driver or task has an inverted time window (`end ≤ start`).
    InvalidTimeWindow {
        /// Human-readable description of the offending entity.
        entity: String,
    },
    /// A task's publish time is not strictly before its pickup deadline
    /// (the paper requires `t̄ₘ < t̄⁻ₘ < t̄⁺ₘ`).
    PublishAfterStart(TaskId),
    /// An assignment violated a model constraint (5a–5f); describes which.
    InfeasibleAssignment {
        /// Description of the violated constraint.
        reason: String,
    },
    /// An optimization model was malformed (e.g. mismatched dimensions).
    InvalidModel {
        /// Description of the problem.
        reason: String,
    },
    /// The LP solver detected an unbounded problem.
    Unbounded,
    /// The LP/ILP solver proved the problem infeasible.
    Infeasible,
    /// An iterative solver exceeded its iteration budget.
    IterationLimit {
        /// The budget that was exhausted.
        limit: usize,
    },
    /// Numerical breakdown (NaN/Inf encountered) in a solver.
    Numerical {
        /// Description of where the breakdown happened.
        context: String,
    },
}

impl fmt::Display for MarketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarketError::UnknownDriver(d) => write!(f, "unknown driver: {d}"),
            MarketError::UnknownTask(t) => write!(f, "unknown task: {t}"),
            MarketError::InvalidTimeWindow { entity } => {
                write!(f, "invalid time window for {entity}")
            }
            MarketError::PublishAfterStart(t) => {
                write!(f, "{t} published at or after its pickup deadline")
            }
            MarketError::InfeasibleAssignment { reason } => {
                write!(f, "infeasible assignment: {reason}")
            }
            MarketError::InvalidModel { reason } => write!(f, "invalid model: {reason}"),
            MarketError::Unbounded => write!(f, "problem is unbounded"),
            MarketError::Infeasible => write!(f, "problem is infeasible"),
            MarketError::IterationLimit { limit } => {
                write!(f, "iteration limit of {limit} exceeded")
            }
            MarketError::Numerical { context } => {
                write!(f, "numerical breakdown in {context}")
            }
        }
    }
}

impl std::error::Error for MarketError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            MarketError::UnknownDriver(DriverId::new(1)).to_string(),
            "unknown driver: driver#1"
        );
        assert_eq!(
            MarketError::PublishAfterStart(TaskId::new(2)).to_string(),
            "task#2 published at or after its pickup deadline"
        );
        assert_eq!(MarketError::Unbounded.to_string(), "problem is unbounded");
        assert_eq!(
            MarketError::IterationLimit { limit: 10 }.to_string(),
            "iteration limit of 10 exceeded"
        );
        assert_eq!(
            MarketError::Numerical {
                context: "simplex pivot".into()
            }
            .to_string(),
            "numerical breakdown in simplex pivot"
        );
    }

    #[test]
    fn error_trait_object() {
        let err: Box<dyn std::error::Error> = Box::new(MarketError::Infeasible);
        assert_eq!(err.to_string(), "problem is infeasible");
    }
}
