//! Identifier newtypes for drivers, tasks, and task-map nodes.

use core::fmt;

/// Identifier of a driver, `n ∈ [N]` in the paper's notation.
///
/// Driver ids are dense indices (`0..N`) so they can index into `Vec`-backed
/// per-driver tables.
///
/// # Examples
///
/// ```
/// use rideshare_types::DriverId;
/// let d = DriverId::new(3);
/// assert_eq!(d.index(), 3);
/// assert_eq!(d.to_string(), "driver#3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct DriverId(u32);

impl DriverId {
    /// Creates a driver id from its dense index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        Self(index)
    }

    /// Returns the dense index as a `usize`, suitable for table lookups.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    #[must_use]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for DriverId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "driver#{}", self.0)
    }
}

impl From<u32> for DriverId {
    fn from(value: u32) -> Self {
        Self(value)
    }
}

/// Identifier of a task (an order placed by a customer), `m ∈ [M]`.
///
/// Task ids are dense indices (`0..M`).
///
/// # Examples
///
/// ```
/// use rideshare_types::TaskId;
/// let t = TaskId::new(12);
/// assert_eq!(t.index(), 12);
/// assert_eq!(t.to_string(), "task#12");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct TaskId(u32);

impl TaskId {
    /// Creates a task id from its dense index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        Self(index)
    }

    /// Returns the dense index as a `usize`, suitable for table lookups.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    #[must_use]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task#{}", self.0)
    }
}

impl From<u32> for TaskId {
    fn from(value: u32) -> Self {
        Self(value)
    }
}

/// A node in a driver's task map, the set `[M̂] = {−1, 0} ∪ [M]`.
///
/// The paper labels a driver's own origin `0` and her final destination `−1`;
/// every task is an interior node. We encode this as an enum rather than a
/// sentinel integer so the compiler rules out arithmetic on sentinels.
///
/// The ordering places [`NodeId::Source`] first, task nodes in task order
/// next, and [`NodeId::Sink`] last, which matches a valid topological order
/// position for sources and sinks in any task map.
///
/// # Examples
///
/// ```
/// use rideshare_types::{NodeId, TaskId};
/// let n = NodeId::Task(TaskId::new(4));
/// assert!(NodeId::Source < n && n < NodeId::Sink);
/// assert_eq!(n.task(), Some(TaskId::new(4)));
/// assert_eq!(NodeId::Source.task(), None);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum NodeId {
    /// The driver's origin, labelled `0` in the paper.
    Source,
    /// A task node, labelled `m ∈ [M]` in the paper.
    Task(TaskId),
    /// The driver's final destination, labelled `−1` in the paper.
    Sink,
}

impl NodeId {
    /// Returns the contained task id, or `None` for the source/sink nodes.
    #[must_use]
    pub const fn task(self) -> Option<TaskId> {
        match self {
            NodeId::Task(t) => Some(t),
            NodeId::Source | NodeId::Sink => None,
        }
    }

    /// Returns `true` if this node is a task node.
    #[must_use]
    pub const fn is_task(self) -> bool {
        matches!(self, NodeId::Task(_))
    }

    fn rank(self) -> (u8, u32) {
        match self {
            NodeId::Source => (0, 0),
            NodeId::Task(t) => (1, t.raw()),
            NodeId::Sink => (2, 0),
        }
    }
}

impl PartialOrd for NodeId {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for NodeId {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.rank().cmp(&other.rank())
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Source => write!(f, "source(0)"),
            NodeId::Task(t) => write!(f, "{t}"),
            NodeId::Sink => write!(f, "sink(-1)"),
        }
    }
}

impl From<TaskId> for NodeId {
    fn from(value: TaskId) -> Self {
        NodeId::Task(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn driver_id_round_trip() {
        let d = DriverId::new(42);
        assert_eq!(d.index(), 42);
        assert_eq!(d.raw(), 42);
        assert_eq!(DriverId::from(42u32), d);
    }

    #[test]
    fn task_id_round_trip() {
        let t = TaskId::new(7);
        assert_eq!(t.index(), 7);
        assert_eq!(TaskId::from(7u32), t);
    }

    #[test]
    fn node_ordering_source_tasks_sink() {
        let mut nodes = vec![
            NodeId::Sink,
            NodeId::Task(TaskId::new(5)),
            NodeId::Source,
            NodeId::Task(TaskId::new(1)),
        ];
        nodes.sort();
        assert_eq!(
            nodes,
            vec![
                NodeId::Source,
                NodeId::Task(TaskId::new(1)),
                NodeId::Task(TaskId::new(5)),
                NodeId::Sink,
            ]
        );
    }

    #[test]
    fn node_task_extraction() {
        assert_eq!(NodeId::Source.task(), None);
        assert_eq!(NodeId::Sink.task(), None);
        assert_eq!(NodeId::Task(TaskId::new(3)).task(), Some(TaskId::new(3)));
        assert!(NodeId::Task(TaskId::new(3)).is_task());
        assert!(!NodeId::Source.is_task());
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId::Source.to_string(), "source(0)");
        assert_eq!(NodeId::Sink.to_string(), "sink(-1)");
        assert_eq!(NodeId::Task(TaskId::new(2)).to_string(), "task#2");
    }
}
