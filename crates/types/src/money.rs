//! Monetary amounts: prices `pₘ`, willingness-to-pay `bₘ`, and travel costs.
//!
//! Amounts are stored as `f64` (the optimization layer works over the reals;
//! the LP relaxation bound `Z_f*` is inherently fractional) wrapped in a
//! newtype so money is never confused with distances or durations. A small
//! tolerance-based comparison is provided for test assertions.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A monetary amount in currency units (e.g. euros).
///
/// Supports the arithmetic the market formulations need: sums of revenues,
/// cost subtraction, and scaling by dimensionless factors (surge
/// multipliers).
///
/// # Examples
///
/// ```
/// use rideshare_types::Money;
/// let fare = Money::new(12.5);
/// let surge = fare * 1.8;
/// assert!(surge.approx_eq(Money::new(22.5)));
/// assert_eq!(Money::from_cents(150), Money::new(1.5));
/// ```
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Default)]
pub struct Money(f64);

impl Money {
    /// Zero currency units.
    pub const ZERO: Money = Money(0.0);

    /// Tolerance used by [`Money::approx_eq`]: one hundredth of a cent.
    pub const EPSILON: f64 = 1e-4;

    /// Creates an amount from currency units.
    #[must_use]
    pub const fn new(units: f64) -> Self {
        Self(units)
    }

    /// Creates an amount from integer cents.
    #[must_use]
    pub fn from_cents(cents: i64) -> Self {
        Self(cents as f64 / 100.0)
    }

    /// Returns the amount in currency units.
    #[must_use]
    pub const fn as_f64(self) -> f64 {
        self.0
    }

    /// Returns `true` if the two amounts differ by at most [`Money::EPSILON`].
    #[must_use]
    pub fn approx_eq(self, other: Money) -> bool {
        (self.0 - other.0).abs() <= Self::EPSILON
    }

    /// Returns `true` if the amount is strictly greater than
    /// [`Money::EPSILON`] — the "strictly positive profit" test used by the
    /// greedy algorithm (paper Alg. 1 only selects paths with `r_π > 0`).
    #[must_use]
    pub fn is_strictly_positive(self) -> bool {
        self.0 > Self::EPSILON
    }

    /// Returns `true` if the amount is negative beyond tolerance.
    #[must_use]
    pub fn is_strictly_negative(self) -> bool {
        self.0 < -Self::EPSILON
    }

    /// Returns the larger of two amounts.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two amounts.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns `true` if the amount is finite (not NaN or infinite).
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl fmt::Display for Money {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}", self.0)
    }
}

impl Add for Money {
    type Output = Money;
    fn add(self, rhs: Money) -> Money {
        Money(self.0 + rhs.0)
    }
}

impl AddAssign for Money {
    fn add_assign(&mut self, rhs: Money) {
        self.0 += rhs.0;
    }
}

impl Sub for Money {
    type Output = Money;
    fn sub(self, rhs: Money) -> Money {
        Money(self.0 - rhs.0)
    }
}

impl SubAssign for Money {
    fn sub_assign(&mut self, rhs: Money) {
        self.0 -= rhs.0;
    }
}

impl Neg for Money {
    type Output = Money;
    fn neg(self) -> Money {
        Money(-self.0)
    }
}

impl Mul<f64> for Money {
    type Output = Money;
    fn mul(self, rhs: f64) -> Money {
        Money(self.0 * rhs)
    }
}

impl Div<f64> for Money {
    type Output = Money;
    fn div(self, rhs: f64) -> Money {
        Money(self.0 / rhs)
    }
}

impl core::iter::Sum for Money {
    fn sum<I: Iterator<Item = Money>>(iter: I) -> Money {
        iter.fold(Money::ZERO, |acc, x| acc + x)
    }
}

impl<'a> core::iter::Sum<&'a Money> for Money {
    fn sum<I: Iterator<Item = &'a Money>>(iter: I) -> Money {
        iter.fold(Money::ZERO, |acc, x| acc + *x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(Money::new(1.5).as_f64(), 1.5);
        assert_eq!(Money::from_cents(150), Money::new(1.5));
        assert_eq!(Money::ZERO.as_f64(), 0.0);
    }

    #[test]
    fn arithmetic() {
        let a = Money::new(10.0);
        let b = Money::new(4.0);
        assert_eq!(a + b, Money::new(14.0));
        assert_eq!(a - b, Money::new(6.0));
        assert_eq!(-b, Money::new(-4.0));
        assert_eq!(a * 0.5, Money::new(5.0));
        assert_eq!(a / 2.0, Money::new(5.0));
        let mut c = a;
        c += b;
        c -= Money::new(1.0);
        assert_eq!(c, Money::new(13.0));
    }

    #[test]
    fn sum_iterators() {
        let v = [Money::new(1.0), Money::new(2.0), Money::new(3.5)];
        let by_val: Money = v.iter().copied().sum();
        let by_ref: Money = v.iter().sum();
        assert_eq!(by_val, Money::new(6.5));
        assert_eq!(by_ref, Money::new(6.5));
    }

    #[test]
    fn tolerance_comparisons() {
        assert!(Money::new(1.0).approx_eq(Money::new(1.0 + 5e-5)));
        assert!(!Money::new(1.0).approx_eq(Money::new(1.001)));
        assert!(Money::new(0.01).is_strictly_positive());
        assert!(!Money::new(5e-5).is_strictly_positive());
        assert!(Money::new(-0.01).is_strictly_negative());
        assert!(!Money::new(-5e-5).is_strictly_negative());
    }

    #[test]
    fn min_max_and_finite() {
        assert_eq!(Money::new(2.0).max(Money::new(3.0)), Money::new(3.0));
        assert_eq!(Money::new(2.0).min(Money::new(3.0)), Money::new(2.0));
        assert!(Money::new(1.0).is_finite());
        assert!(!Money::new(f64::NAN).is_finite());
    }

    #[test]
    fn display_two_decimals() {
        assert_eq!(Money::new(5.6789).to_string(), "5.68");
        assert_eq!(Money::new(-2.0).to_string(), "-2.00");
    }
}
