//! Lazy, bounded-memory trace streaming.
//!
//! [`TraceConfig::generate`] materialises the whole day — sampling every
//! trip, sorting by publish time, renumbering — which is `O(trace)` memory
//! before a single order is replayed. [`TraceConfig::stream`] produces the
//! same *kind* of day lazily: an iterator that yields [`TripRecord`]s in
//! publish order with densely renumbered ids, holding only a small
//! look-ahead buffer.
//!
//! # How the order is produced without a global sort
//!
//! `generate` samples each trip's pickup **hour** from the daily demand
//! profile and then the trip itself; sorting afterwards is what forces
//! materialisation. The stream inverts that: it first draws the whole
//! histogram of hours (the same categorical distribution, `O(24)` state),
//! then generates hour by hour in ascending order. Within the look-ahead
//! buffer trips are heap-ordered by publish time. Because a trip's publish
//! time precedes its pickup deadline by at most the configured maximum
//! lead time `L`, every future trip (deadline in hour `h` or later)
//! publishes at or after `h·3600 − L` — so once hour `h − 1` is generated,
//! everything publishing before that watermark can be emitted. The buffer
//! therefore never holds more than ~one hour plus one lead window of
//! demand, independent of the trace length.
//!
//! # Relation to `generate`
//!
//! A streamed day is **statistically identical** to a generated one —
//! same hour histogram distribution, same per-trip sampling given the
//! hour, same driver model — and fully deterministic in the seed, but it
//! is *not* trip-for-trip identical to `generate` with the same seed (the
//! RNG is consumed in a different order). Treat `seed` + `stream` as its
//! own reproducible workload, exactly like `seed` + `generate`. Drivers
//! come from an independently salted RNG so they are available up front —
//! a streaming consumer must know shifts before the orders they can serve
//! (see `rideshare-online`'s streaming replay contract).
//!
//! # Examples
//!
//! ```
//! use rideshare_trace::{DriverModel, TraceConfig};
//!
//! let config = TraceConfig::porto()
//!     .with_seed(3)
//!     .with_task_count(500)
//!     .with_driver_count(20, DriverModel::Hitchhiking);
//! let stream = config.stream();
//! assert_eq!(stream.drivers().len(), 20);
//!
//! let mut last = None;
//! let mut n = 0usize;
//! for (i, trip) in stream.enumerate() {
//!     assert_eq!(trip.id.index(), i); // dense ids in publish order
//!     assert!(last.map_or(true, |t| t <= trip.publish_time));
//!     last = Some(trip.publish_time);
//!     n += 1;
//! }
//! assert_eq!(n, 500);
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use rideshare_geo::{BoundingBox, SpeedModel};
use rideshare_types::{DriverId, TaskId, TimeDelta, Timestamp};

use crate::sampler::sample_categorical;
use crate::{DriverShift, Trace, TraceConfig, TripRecord};

/// Salt separating the trip stream's RNG from the seed itself.
const TRIP_STREAM_SALT: u64 = 0x9E37_79B9_7F4A_7C15;
/// Salt for the driver RNG (drivers are generated up front).
const DRIVER_STREAM_SALT: u64 = 0xD1B5_4A32_D192_ED03;

/// A buffered trip ordered by `(publish time, generation sequence)`.
struct Pending {
    key: (i64, u64),
    trip: TripRecord,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// The lazy publish-ordered trip stream created by [`TraceConfig::stream`].
///
/// Yields exactly `task_count` [`TripRecord`]s in non-decreasing publish
/// order with ids renumbered densely in emission order; driver shifts are
/// generated eagerly (they are `O(drivers)` and consumers need them before
/// the first order). See the module docs for the memory bound.
pub struct TraceStream {
    config: TraceConfig,
    rng: StdRng,
    drivers: Vec<DriverShift>,
    /// How many trips fall in each pickup-deadline hour.
    counts: [usize; 24],
    /// Next hour to generate (24 = all generated).
    hour: usize,
    buffer: BinaryHeap<Reverse<Pending>>,
    seq: u64,
    emitted: usize,
    peak_buffered: usize,
    max_lead: TimeDelta,
}

impl TraceConfig {
    /// Streams the configured day lazily: trips arrive in publish order
    /// with dense ids, using only a bounded look-ahead buffer — the
    /// million-task path that [`TraceConfig::generate`] (which
    /// materialises and sorts everything) cannot take. Deterministic in
    /// the seed; statistically identical to `generate` but not
    /// trip-for-trip identical (see the `stream` module docs).
    #[must_use]
    pub fn stream(&self) -> TraceStream {
        let mut driver_rng = StdRng::seed_from_u64(self.seed ^ DRIVER_STREAM_SALT);
        let drivers: Vec<DriverShift> = (0..self.driver_count)
            .map(|i| self.gen_driver(&mut driver_rng, DriverId::new(i as u32)))
            .collect();
        let mut rng = StdRng::seed_from_u64(self.seed ^ TRIP_STREAM_SALT);
        // The hour histogram: same marginal distribution `generate` uses,
        // drawn up front in O(24) space.
        let mut counts = [0usize; 24];
        for _ in 0..self.task_count {
            counts[sample_categorical(&mut rng, &self.hourly_demand)] += 1;
        }
        TraceStream {
            max_lead: TimeDelta::from_mins(self.lead_time_mins.1),
            config: self.clone(),
            rng,
            drivers,
            counts,
            hour: 0,
            buffer: BinaryHeap::new(),
            seq: 0,
            emitted: 0,
            peak_buffered: 0,
        }
    }
}

impl TraceStream {
    /// The driver shifts of this day (generated up front; `O(drivers)`).
    #[must_use]
    pub fn drivers(&self) -> &[DriverShift] {
        &self.drivers
    }

    /// The speed/cost model trips are generated with.
    #[must_use]
    pub fn speed(&self) -> SpeedModel {
        self.config.speed
    }

    /// The service-area bounding box (all regions included).
    #[must_use]
    pub fn bounding_box(&self) -> BoundingBox {
        self.config.bounding_box()
    }

    /// The bounding box of each disjoint service region (see
    /// [`TraceConfig::with_regions`]) — the region tags a sharded consumer
    /// feeds to its partitioner.
    #[must_use]
    pub fn region_boxes(&self) -> Vec<BoundingBox> {
        self.config.region_boxes()
    }

    /// Total trips this stream will yield.
    #[must_use]
    pub fn task_count(&self) -> usize {
        self.config.task_count
    }

    /// High-water mark of the internal look-ahead buffer so far — the
    /// stream's whole resident trip state, bounded by ~one hour plus one
    /// lead window of demand regardless of trace length.
    #[must_use]
    pub fn peak_buffered(&self) -> usize {
        self.peak_buffered
    }

    /// Drains the stream into a materialised [`Trace`] (for oracle tests
    /// and small runs — this is `O(trace)` by definition).
    #[must_use]
    pub fn collect_trace(mut self) -> Trace {
        let drivers = std::mem::take(&mut self.drivers);
        let speed = self.config.speed;
        let bbox = self.config.bounding_box();
        Trace {
            trips: self.by_ref().collect(),
            drivers,
            speed,
            bbox,
        }
    }

    /// Everything published before this instant has been emitted.
    fn watermark(&self) -> Option<Timestamp> {
        if self.hour > 23 {
            None // all hours generated: the buffer holds the whole tail
        } else {
            Some(Timestamp::from_hours(self.hour as i64) - self.max_lead)
        }
    }
}

impl Iterator for TraceStream {
    type Item = TripRecord;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let ready = match (self.buffer.peek(), self.watermark()) {
                (Some(_), None) => true,
                (Some(Reverse(top)), Some(w)) => Timestamp::from_secs(top.key.0) < w,
                (None, _) => false,
            };
            if ready {
                let Reverse(mut pending) = self.buffer.pop().expect("peeked");
                pending.trip.id = TaskId::new(self.emitted as u32);
                self.emitted += 1;
                return Some(pending.trip);
            }
            if self.hour > 23 {
                return None;
            }
            // Generate the next hour into the buffer.
            let h = self.hour;
            self.hour += 1;
            for _ in 0..self.counts[h] {
                let trip = self
                    .config
                    .gen_trip_in_hour(&mut self.rng, TaskId::new(0), h);
                self.buffer.push(Reverse(Pending {
                    key: (trip.publish_time.as_secs(), self.seq),
                    trip,
                }));
                self.seq += 1;
            }
            self.peak_buffered = self.peak_buffered.max(self.buffer.len());
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.config.task_count - self.emitted;
        (left, Some(left))
    }
}

impl ExactSizeIterator for TraceStream {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DriverModel;

    fn config(tasks: usize) -> TraceConfig {
        TraceConfig::porto()
            .with_seed(42)
            .with_task_count(tasks)
            .with_driver_count(12, DriverModel::Hitchhiking)
    }

    #[test]
    fn publish_sorted_dense_and_valid() {
        let mut last = Timestamp::from_secs(i64::MIN);
        let cfg = config(800);
        let bbox = cfg.bounding_box();
        for (i, trip) in cfg.stream().enumerate() {
            assert_eq!(trip.id.index(), i);
            assert!(trip.publish_time >= last, "stream out of order at {i}");
            last = trip.publish_time;
            trip.validate().unwrap();
            assert!(bbox.contains(trip.origin));
            assert!(bbox.contains(trip.destination));
        }
    }

    #[test]
    fn deterministic_in_seed_and_seed_sensitive() {
        let a: Vec<_> = config(300).stream().collect();
        let b: Vec<_> = config(300).stream().collect();
        assert_eq!(a, b);
        let c: Vec<_> = config(300).with_seed(43).stream().collect();
        assert_ne!(a, c);
        assert_eq!(
            config(300).stream().drivers(),
            config(300).stream().drivers()
        );
    }

    #[test]
    fn exact_count_and_size_hint() {
        let mut s = config(250).stream();
        assert_eq!(s.len(), 250);
        let mut n = 0;
        while let Some(_t) = s.next() {
            n += 1;
            assert_eq!(s.len(), 250 - n);
        }
        assert_eq!(n, 250);
        assert!(s.next().is_none());
    }

    #[test]
    fn buffer_stays_bounded() {
        // The whole point: the look-ahead buffer holds ~an hour plus a
        // lead window of demand, not the trace. With the default profile
        // the peak hour carries 7/91.5 ≈ 7.7% of daily demand.
        let mut s = config(5000).stream();
        let total: usize = s.by_ref().count();
        assert_eq!(total, 5000);
        assert!(
            s.peak_buffered() < 5000 / 4,
            "peak buffer {} for 5000 trips",
            s.peak_buffered()
        );
        assert!(s.peak_buffered() > 0);
    }

    #[test]
    fn hour_histogram_matches_demand_profile() {
        // All demand at hour 12 → every deadline in [12:00, 13:00), as in
        // the materialised generator.
        let mut demand = [0.0; 24];
        demand[12] = 1.0;
        let cfg = TraceConfig::porto()
            .with_seed(5)
            .with_task_count(200)
            .with_hourly_demand(demand);
        for trip in cfg.stream() {
            assert_eq!(trip.pickup_deadline.as_secs() / 3600, 12);
        }
    }

    #[test]
    fn collect_trace_round_trips() {
        let cfg = config(120);
        let trace = cfg.stream().collect_trace();
        assert_eq!(trace.trips.len(), 120);
        assert_eq!(trace.drivers.len(), 12);
        assert_eq!(trace.speed, cfg.speed_model());
        assert!(trace
            .trips
            .windows(2)
            .all(|w| w[0].publish_time <= w[1].publish_time));
    }

    #[test]
    fn statistically_similar_to_generate() {
        // Same seed, both pipelines: distance medians within 25% of each
        // other (the streamed day is a fresh draw, not a permutation).
        let cfg = TraceConfig::porto().with_seed(11).with_task_count(3000);
        let median = |mut kms: Vec<f64>| {
            kms.sort_by(|a, b| a.partial_cmp(b).unwrap());
            kms[kms.len() / 2]
        };
        let gen_med = median(cfg.generate().trips.iter().map(|t| t.distance_km).collect());
        let stream_med = median(cfg.stream().map(|t| t.distance_km).collect());
        assert!(
            (gen_med - stream_med).abs() / gen_med < 0.25,
            "generate median {gen_med} vs stream median {stream_med}"
        );
    }

    #[test]
    fn empty_stream() {
        let mut s = config(0).stream();
        assert!(s.next().is_none());
        assert_eq!(s.drivers().len(), 12);
    }
}
