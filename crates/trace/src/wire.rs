//! Event wire formats for the serve daemon's ingestion boundary.
//!
//! The streaming engines consume a source-agnostic event sequence (drivers
//! coming online, priced tasks publishing, epoch ticks). This module pins
//! the *external* representation of that sequence — what crosses a file or
//! a socket between a producer (`rideshare export`, a simulator, a real
//! feed adapter) and the long-running `rideshare serve` daemon — in three
//! interchangeable encodings:
//!
//! - **binary frames**: a `u32` little-endian length prefix followed by a
//!   one-byte tag and a fixed-layout payload. Floats travel as IEEE-754
//!   bits ([`f64::to_bits`]), so the round trip is *bit*-exact. This is
//!   the TCP socket format; [`FrameDecoder`] decodes incrementally from
//!   arbitrary chunk boundaries (including one byte at a time).
//! - **JSONL**: one canonical JSON object per line. Floats are printed
//!   with Rust's shortest-round-trip `Display`, which parses back to the
//!   identical bit pattern, so this encoding is also exact (unlike the
//!   human-facing trace CSVs in [`crate::trips_to_csv`], which truncate).
//! - **CSV events**: one tagged row per event, same exactness guarantee,
//!   for spreadsheet-friendly pipelines.
//!
//! All three encodings carry the same [`WireEvent`] and include an
//! explicit [`WireEvent::Eos`] end-of-stream marker so a tailing consumer
//! can distinguish "feed finished cleanly" from "producer died mid-write".
//!
//! The wire types deliberately mirror the *priced* task (price, valuation,
//! service cost already attached) rather than the raw trip: the daemon
//! must not re-run the pricer, or live decisions could diverge from a
//! replay of the same trace.

use std::collections::VecDeque;
use std::fmt;

use rideshare_geo::GeoPoint;
use rideshare_types::{TimeDelta, Timestamp};

use crate::{DriverModel, DriverShift};

/// Largest legal frame body (tag + payload) in bytes.
///
/// Real bodies are under 100 bytes; the cap exists so a garbage length
/// prefix (line noise, a non-frame client) fails immediately with
/// [`WireError::FrameTooLarge`] instead of waiting forever for gigabytes
/// that will never arrive.
pub const MAX_FRAME_BODY: usize = 1024;

/// Schema identifier embedded in documentation and snapshot files; bump on
/// any layout change to the frame, JSONL or CSV encodings.
pub const WIRE_SCHEMA: &str = "rideshare-events/1";

const TAG_DRIVER: u8 = 0;
const TAG_TASK: u8 = 1;
const TAG_OFFLINE: u8 = 2;
const TAG_TICK: u8 = 3;
const TAG_EOS: u8 = 4;

/// A driver shift as it crosses the wire (identical fields to
/// [`DriverShift`], flattened to primitives).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireDriver {
    /// Dense driver index (the engines require arrival order 0, 1, 2, …).
    pub id: u32,
    /// Shift start location.
    pub source: GeoPoint,
    /// Shift end location (equals `source` for home-work-home drivers).
    pub destination: GeoPoint,
    /// When the driver comes online.
    pub shift_start: Timestamp,
    /// When the driver goes offline.
    pub shift_end: Timestamp,
    /// Working model (§II of the paper).
    pub model: DriverModel,
}

impl From<&DriverShift> for WireDriver {
    fn from(d: &DriverShift) -> Self {
        WireDriver {
            id: d.id.raw(),
            source: d.source,
            destination: d.destination,
            shift_start: d.shift_start,
            shift_end: d.shift_end,
            model: d.model,
        }
    }
}

impl From<&WireDriver> for DriverShift {
    fn from(w: &WireDriver) -> Self {
        DriverShift {
            id: rideshare_types::DriverId::new(w.id),
            source: w.source,
            destination: w.destination,
            shift_start: w.shift_start,
            shift_end: w.shift_end,
            model: w.model,
        }
    }
}

/// A priced task as it crosses the wire.
///
/// Money fields are plain `f64` units here; the ingest layer converts to
/// the typed `Money` wrapper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireTask {
    /// Task id (monotone in publish order).
    pub id: u32,
    /// Publish (arrival) time.
    pub publish_time: Timestamp,
    /// Pickup location.
    pub origin: GeoPoint,
    /// Drop-off location.
    pub destination: GeoPoint,
    /// Latest acceptable pickup time.
    pub pickup_deadline: Timestamp,
    /// Latest acceptable completion time.
    pub completion_deadline: Timestamp,
    /// On-trip travel time.
    pub duration: TimeDelta,
    /// Rider-facing price, currency units.
    pub price: f64,
    /// Rider willingness-to-pay, currency units.
    pub valuation: f64,
    /// Platform-side service cost, currency units.
    pub service_cost: f64,
}

/// One event of the serve daemon's external feed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WireEvent {
    /// A driver comes online.
    DriverOnline(WireDriver),
    /// A priced task publishes.
    TaskPublished(WireTask),
    /// A driver leaves (early shift end); payload is the dense driver id.
    DriverOffline(u32),
    /// A clock tick (closes batch windows); payload is epoch seconds.
    EpochTick(i64),
    /// Explicit end-of-stream marker: the producer finished cleanly.
    Eos,
}

/// Decode/parse failure of a single frame or line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The frame tag byte is not a known event kind.
    UnknownTag(u8),
    /// The frame body length does not match its tag's fixed layout.
    BadLength {
        /// Tag byte of the offending frame.
        tag: u8,
        /// Actual body length in bytes (including the tag byte).
        got: usize,
    },
    /// The length prefix exceeds [`MAX_FRAME_BODY`] — almost certainly a
    /// non-frame byte stream or corruption, so fail fast.
    FrameTooLarge {
        /// The advertised body length.
        len: usize,
    },
    /// A frame advertised a zero-byte body (no room for the tag).
    EmptyFrame,
    /// A JSONL or CSV line failed to parse; the message says why.
    Malformed(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnknownTag(t) => write!(f, "unknown frame tag {t}"),
            WireError::BadLength { tag, got } => {
                write!(f, "frame tag {tag} has malformed body length {got}")
            }
            WireError::FrameTooLarge { len } => write!(
                f,
                "frame length prefix {len} exceeds the {MAX_FRAME_BODY}-byte cap"
            ),
            WireError::EmptyFrame => write!(f, "frame with empty body"),
            WireError::Malformed(msg) => write!(f, "malformed event line: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// Binary frames
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_point(out: &mut Vec<u8>, p: GeoPoint) {
    put_f64(out, p.lat());
    put_f64(out, p.lon());
}

/// Byte cursor over a frame body; every read is bounds-checked so a short
/// body surfaces as [`WireError::BadLength`], never a panic.
struct Take<'a> {
    body: &'a [u8],
    pos: usize,
    tag: u8,
}

impl<'a> Take<'a> {
    fn bytes<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let end = self.pos + N;
        if end > self.body.len() {
            return Err(WireError::BadLength {
                tag: self.tag,
                got: self.body.len() + 1,
            });
        }
        let mut a = [0u8; N];
        a.copy_from_slice(&self.body[self.pos..end]);
        self.pos = end;
        Ok(a)
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.bytes::<4>()?))
    }

    fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.bytes::<8>()?))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(u64::from_le_bytes(self.bytes::<8>()?)))
    }

    fn point(&mut self) -> Result<GeoPoint, WireError> {
        let lat = self.f64()?;
        let lon = self.f64()?;
        Ok(GeoPoint::new(lat, lon))
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.body.len() {
            Ok(())
        } else {
            Err(WireError::BadLength {
                tag: self.tag,
                got: self.body.len() + 1,
            })
        }
    }
}

/// Exact body length in bytes (tag byte included) of a frame tag's fixed
/// layout, or `None` for an unknown tag.
///
/// Every tag's payload is fixed-width, which is what makes the frame
/// bodies reusable as the records of the [`crate::rtb`] binary trace
/// format: a reader that knows the tag knows the record boundary without
/// a length prefix.
#[must_use]
pub const fn body_len(tag: u8) -> Option<usize> {
    match tag {
        // tag + id + 2 points + 2 timestamps + model byte
        TAG_DRIVER => Some(1 + 4 + 32 + 16 + 1),
        // tag + id + publish + 2 points + 3 timestamps + 3 money f64s
        TAG_TASK => Some(1 + 4 + 8 + 32 + 24 + 24),
        TAG_OFFLINE => Some(1 + 4),
        TAG_TICK => Some(1 + 8),
        TAG_EOS => Some(1),
        _ => None,
    }
}

/// Appends one event's frame *body* (tag byte + fixed-width payload, no
/// length prefix) to `out`.
///
/// This is the shared encoder behind both [`encode_frame`] (which adds
/// the `u32` length prefix for the socket format) and the [`crate::rtb`]
/// record writer (which relies on the fixed widths instead). The number
/// of bytes appended always equals [`body_len`] for the event's tag.
pub fn encode_frame_body(event: &WireEvent, out: &mut Vec<u8>) {
    let body = out;
    match event {
        WireEvent::DriverOnline(d) => {
            body.push(TAG_DRIVER);
            put_u32(body, d.id);
            put_point(body, d.source);
            put_point(body, d.destination);
            put_i64(body, d.shift_start.as_secs());
            put_i64(body, d.shift_end.as_secs());
            body.push(match d.model {
                DriverModel::HomeWorkHome => 0,
                DriverModel::Hitchhiking => 1,
            });
        }
        WireEvent::TaskPublished(t) => {
            body.push(TAG_TASK);
            put_u32(body, t.id);
            put_i64(body, t.publish_time.as_secs());
            put_point(body, t.origin);
            put_point(body, t.destination);
            put_i64(body, t.pickup_deadline.as_secs());
            put_i64(body, t.completion_deadline.as_secs());
            put_i64(body, t.duration.as_secs());
            put_f64(body, t.price);
            put_f64(body, t.valuation);
            put_f64(body, t.service_cost);
        }
        WireEvent::DriverOffline(id) => {
            body.push(TAG_OFFLINE);
            put_u32(body, *id);
        }
        WireEvent::EpochTick(at) => {
            body.push(TAG_TICK);
            put_i64(body, *at);
        }
        WireEvent::Eos => body.push(TAG_EOS),
    }
}

/// Encodes one event as a length-prefixed binary frame.
///
/// Layout: `u32` little-endian body length, then the body — one tag byte
/// followed by the tag's fixed-width little-endian payload (floats as
/// IEEE-754 bits). The encoding is bit-exact and self-delimiting.
#[must_use]
pub fn encode_frame(event: &WireEvent) -> Vec<u8> {
    let mut frame = Vec::with_capacity(100);
    frame.extend_from_slice(&[0; 4]);
    encode_frame_body(event, &mut frame);
    let body_len = u32::try_from(frame.len() - 4).expect("frame body fits u32");
    frame[..4].copy_from_slice(&body_len.to_le_bytes());
    frame
}

/// Decodes one frame *body* (the bytes after the length prefix).
///
/// # Errors
///
/// Returns the typed [`WireError`] describing the first structural
/// problem; never panics on hostile input.
pub fn decode_frame_body(body: &[u8]) -> Result<WireEvent, WireError> {
    let (&tag, payload) = body.split_first().ok_or(WireError::EmptyFrame)?;
    let mut take = Take {
        body: payload,
        pos: 0,
        tag,
    };
    let event = match tag {
        TAG_DRIVER => {
            let id = take.u32()?;
            let source = take.point()?;
            let destination = take.point()?;
            let shift_start = Timestamp::from_secs(take.i64()?);
            let shift_end = Timestamp::from_secs(take.i64()?);
            let model = match take.bytes::<1>()?[0] {
                0 => DriverModel::HomeWorkHome,
                1 => DriverModel::Hitchhiking,
                other => {
                    return Err(WireError::Malformed(format!(
                        "unknown driver model {other}"
                    )))
                }
            };
            WireEvent::DriverOnline(WireDriver {
                id,
                source,
                destination,
                shift_start,
                shift_end,
                model,
            })
        }
        TAG_TASK => {
            let id = take.u32()?;
            let publish_time = Timestamp::from_secs(take.i64()?);
            let origin = take.point()?;
            let destination = take.point()?;
            let pickup_deadline = Timestamp::from_secs(take.i64()?);
            let completion_deadline = Timestamp::from_secs(take.i64()?);
            let duration = TimeDelta::from_secs(take.i64()?);
            let price = take.f64()?;
            let valuation = take.f64()?;
            let service_cost = take.f64()?;
            WireEvent::TaskPublished(WireTask {
                id,
                publish_time,
                origin,
                destination,
                pickup_deadline,
                completion_deadline,
                duration,
                price,
                valuation,
                service_cost,
            })
        }
        TAG_OFFLINE => WireEvent::DriverOffline(take.u32()?),
        TAG_TICK => WireEvent::EpochTick(take.i64()?),
        TAG_EOS => WireEvent::Eos,
        other => return Err(WireError::UnknownTag(other)),
    };
    take.finish()?;
    Ok(event)
}

/// Incremental frame decoder: feed byte chunks of any size (network reads
/// split frames arbitrarily), pop complete events.
///
/// # Examples
///
/// ```
/// use rideshare_trace::wire::{encode_frame, FrameDecoder, WireEvent};
///
/// let frame = encode_frame(&WireEvent::EpochTick(3600));
/// let mut dec = FrameDecoder::new();
/// for b in frame {
///     dec.feed(&[b]); // one byte at a time
/// }
/// assert_eq!(dec.next().unwrap(), Some(WireEvent::EpochTick(3600)));
/// assert_eq!(dec.next().unwrap(), None);
/// assert_eq!(dec.pending_bytes(), 0);
/// ```
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: VecDeque<u8>,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes received from the transport.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend(bytes.iter().copied());
    }

    /// Number of buffered bytes not yet forming a complete frame.
    ///
    /// Non-zero at end-of-stream means the producer died mid-frame — the
    /// ingest layer turns that into a typed truncation error.
    #[must_use]
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next complete event, or `Ok(None)` if more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// Returns the typed [`WireError`] on a structurally invalid frame
    /// (oversized length prefix, unknown tag, short body). The decoder is
    /// not usable after an error — framing is lost.
    // Deliberately named like the fallible-iterator idiom: `Iterator` can't
    // express the `Result<Option<_>>` pull this decoder needs.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<WireEvent>, WireError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let mut len_bytes = [0u8; 4];
        for (i, b) in len_bytes.iter_mut().enumerate() {
            *b = self.buf[i];
        }
        let prefix = u32::from_le_bytes(len_bytes);
        if prefix == 0 {
            return Err(WireError::EmptyFrame);
        }
        // Compare in u64 so the bound check cannot be weakened by a
        // u32→usize truncation on a narrow target; a prefix of exactly
        // MAX_FRAME_BODY is legal, MAX_FRAME_BODY + 1 is not.
        // audit:allow(as-cast): const usize -> u64 widens losslessly on every supported target (usize is at most 64 bits); this is the very bound check that makes the cast below safe.
        if u64::from(prefix) > MAX_FRAME_BODY as u64 {
            return Err(WireError::FrameTooLarge {
                len: usize::try_from(prefix).unwrap_or(usize::MAX),
            });
        }
        // audit:allow(as-cast): cannot truncate — the guard above rejects any prefix exceeding MAX_FRAME_BODY, and MAX_FRAME_BODY is a usize constant, so the surviving value fits usize by construction.
        let len = prefix as usize;
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        self.buf.drain(..4);
        let body: Vec<u8> = self.buf.drain(..len).collect();
        decode_frame_body(&body).map(Some)
    }
}

// ---------------------------------------------------------------------------
// Minimal strict JSON (subset) parser — shared by the JSONL wire format and
// the metrics snapshot files, so the workspace needs no serde dependency.
// ---------------------------------------------------------------------------

/// A parsed JSON value from [`parse_json`].
///
/// Numbers are kept as their raw text so 64-bit integers survive exactly
/// (an `f64` intermediate would corrupt timestamps and the metrics
/// crate's i128 fixed-point accumulators above 2^53); the caller parses
/// the text with the precision it needs.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A number, as raw unparsed text.
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, JsonValue)>),
    /// The `null` literal (the sweep schema emits it for undefined ratios).
    Null,
    /// A `true`/`false` literal.
    Bool(bool),
}

impl JsonValue {
    /// Looks up a key of an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as raw number text, if it is a number.
    #[must_use]
    pub fn num(&self) -> Option<&str> {
        match self {
            JsonValue::Num(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    #[must_use]
    pub fn arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether the value is the `null` literal.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    /// The value as a boolean, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn skip_ws(&mut self) {
        while self
            .b
            .get(self.pos)
            .is_some_and(|c| matches!(c, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                c as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    out.push(match esc {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        other => return Err(format!("unsupported escape '\\{}'", other as char)),
                    });
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let s = std::str::from_utf8(&self.b[self.pos..]).map_err(|e| e.to_string())?;
                    let ch = s.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("empty number at byte {start}"));
        }
        let text = std::str::from_utf8(&self.b[start..self.pos]).map_err(|e| e.to_string())?;
        Ok(JsonValue::Num(text.to_string()))
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.b[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("unexpected literal at byte {}", self.pos))
        }
    }
}

/// Parses a strict subset of JSON (objects, arrays, strings, numbers, and
/// the `null`/`true`/`false` literals) — exactly what the wire, snapshot,
/// and sweep formats emit.
///
/// # Errors
///
/// Returns a description of the first syntax error, with byte offsets.
pub fn parse_json(s: &str) -> Result<JsonValue, String> {
    let mut p = JsonParser {
        b: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.b.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// JSONL encoding
// ---------------------------------------------------------------------------

fn model_name(m: DriverModel) -> &'static str {
    match m {
        DriverModel::HomeWorkHome => "hwh",
        DriverModel::Hitchhiking => "hitch",
    }
}

fn model_from_name(s: &str) -> Result<DriverModel, WireError> {
    match s {
        "hwh" => Ok(DriverModel::HomeWorkHome),
        "hitch" => Ok(DriverModel::Hitchhiking),
        other => Err(WireError::Malformed(format!(
            "unknown driver model {other:?}"
        ))),
    }
}

/// Encodes one event as its canonical JSONL line (no trailing newline).
///
/// Floats use shortest-round-trip formatting, so
/// [`from_json_line`]`(`[`to_json_line`]`(e)) == e` bit-for-bit.
#[must_use]
pub fn to_json_line(event: &WireEvent) -> String {
    match event {
        WireEvent::DriverOnline(d) => format!(
            "{{\"event\":\"driver\",\"id\":{},\"source\":[{},{}],\"destination\":[{},{}],\"shift\":[{},{}],\"model\":\"{}\"}}",
            d.id,
            d.source.lat(),
            d.source.lon(),
            d.destination.lat(),
            d.destination.lon(),
            d.shift_start.as_secs(),
            d.shift_end.as_secs(),
            model_name(d.model),
        ),
        WireEvent::TaskPublished(t) => format!(
            "{{\"event\":\"task\",\"id\":{},\"publish\":{},\"origin\":[{},{}],\"destination\":[{},{}],\"pickup_by\":{},\"complete_by\":{},\"duration\":{},\"price\":{},\"valuation\":{},\"cost\":{}}}",
            t.id,
            t.publish_time.as_secs(),
            t.origin.lat(),
            t.origin.lon(),
            t.destination.lat(),
            t.destination.lon(),
            t.pickup_deadline.as_secs(),
            t.completion_deadline.as_secs(),
            t.duration.as_secs(),
            t.price,
            t.valuation,
            t.service_cost,
        ),
        WireEvent::DriverOffline(id) => format!("{{\"event\":\"offline\",\"id\":{id}}}"),
        WireEvent::EpochTick(at) => format!("{{\"event\":\"tick\",\"at\":{at}}}"),
        WireEvent::Eos => "{\"event\":\"eos\"}".to_string(),
    }
}

fn field<'v>(obj: &'v JsonValue, key: &str) -> Result<&'v JsonValue, WireError> {
    obj.get(key)
        .ok_or_else(|| WireError::Malformed(format!("missing field {key:?}")))
}

fn num_field<T: std::str::FromStr>(obj: &JsonValue, key: &str) -> Result<T, WireError> {
    field(obj, key)?
        .num()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| WireError::Malformed(format!("bad numeric field {key:?}")))
}

fn point_field(obj: &JsonValue, key: &str) -> Result<GeoPoint, WireError> {
    let arr = field(obj, key)?
        .arr()
        .ok_or_else(|| WireError::Malformed(format!("field {key:?} is not an array")))?;
    if arr.len() != 2 {
        return Err(WireError::Malformed(format!(
            "field {key:?} must be [lat,lon]"
        )));
    }
    let coord = |v: &JsonValue| v.num().and_then(|s| s.parse::<f64>().ok());
    match (coord(&arr[0]), coord(&arr[1])) {
        (Some(lat), Some(lon)) => Ok(GeoPoint::new(lat, lon)),
        _ => Err(WireError::Malformed(format!("bad coordinates in {key:?}"))),
    }
}

/// Parses one canonical JSONL event line.
///
/// # Errors
///
/// Returns [`WireError::Malformed`] describing the first problem; never
/// panics on hostile input.
pub fn from_json_line(line: &str) -> Result<WireEvent, WireError> {
    let obj = parse_json(line).map_err(WireError::Malformed)?;
    let kind = field(&obj, "event")?
        .as_str()
        .ok_or_else(|| WireError::Malformed("field \"event\" is not a string".into()))?
        .to_string();
    match kind.as_str() {
        "driver" => {
            let shift = field(&obj, "shift")?
                .arr()
                .ok_or_else(|| WireError::Malformed("field \"shift\" is not an array".into()))?;
            if shift.len() != 2 {
                return Err(WireError::Malformed(
                    "field \"shift\" must be [start,end]".into(),
                ));
            }
            let secs = |v: &JsonValue| v.num().and_then(|s| s.parse::<i64>().ok());
            let (start, end) = match (secs(&shift[0]), secs(&shift[1])) {
                (Some(a), Some(b)) => (a, b),
                _ => return Err(WireError::Malformed("bad shift bounds".into())),
            };
            Ok(WireEvent::DriverOnline(WireDriver {
                id: num_field(&obj, "id")?,
                source: point_field(&obj, "source")?,
                destination: point_field(&obj, "destination")?,
                shift_start: Timestamp::from_secs(start),
                shift_end: Timestamp::from_secs(end),
                model: model_from_name(field(&obj, "model")?.as_str().ok_or_else(|| {
                    WireError::Malformed("field \"model\" is not a string".into())
                })?)?,
            }))
        }
        "task" => Ok(WireEvent::TaskPublished(WireTask {
            id: num_field(&obj, "id")?,
            publish_time: Timestamp::from_secs(num_field(&obj, "publish")?),
            origin: point_field(&obj, "origin")?,
            destination: point_field(&obj, "destination")?,
            pickup_deadline: Timestamp::from_secs(num_field(&obj, "pickup_by")?),
            completion_deadline: Timestamp::from_secs(num_field(&obj, "complete_by")?),
            duration: TimeDelta::from_secs(num_field(&obj, "duration")?),
            price: num_field(&obj, "price")?,
            valuation: num_field(&obj, "valuation")?,
            service_cost: num_field(&obj, "cost")?,
        })),
        "offline" => Ok(WireEvent::DriverOffline(num_field(&obj, "id")?)),
        "tick" => Ok(WireEvent::EpochTick(num_field(&obj, "at")?)),
        "eos" => Ok(WireEvent::Eos),
        other => Err(WireError::Malformed(format!(
            "unknown event kind {other:?}"
        ))),
    }
}

// ---------------------------------------------------------------------------
// CSV event encoding
// ---------------------------------------------------------------------------

/// Encodes one event as its CSV event row (no trailing newline).
///
/// Rows are tagged by kind: `D` driver, `T` task, `F` offline, `K` tick,
/// `E` end-of-stream. Same exact float round-trip as the JSONL form.
#[must_use]
pub fn to_csv_line(event: &WireEvent) -> String {
    match event {
        WireEvent::DriverOnline(d) => format!(
            "D,{},{},{},{},{},{},{},{}",
            d.id,
            d.source.lat(),
            d.source.lon(),
            d.destination.lat(),
            d.destination.lon(),
            d.shift_start.as_secs(),
            d.shift_end.as_secs(),
            model_name(d.model),
        ),
        WireEvent::TaskPublished(t) => format!(
            "T,{},{},{},{},{},{},{},{},{},{},{},{}",
            t.id,
            t.publish_time.as_secs(),
            t.origin.lat(),
            t.origin.lon(),
            t.destination.lat(),
            t.destination.lon(),
            t.pickup_deadline.as_secs(),
            t.completion_deadline.as_secs(),
            t.duration.as_secs(),
            t.price,
            t.valuation,
            t.service_cost,
        ),
        WireEvent::DriverOffline(id) => format!("F,{id}"),
        WireEvent::EpochTick(at) => format!("K,{at}"),
        WireEvent::Eos => "E".to_string(),
    }
}

fn csv_num<T: std::str::FromStr>(fields: &[&str], idx: usize) -> Result<T, WireError> {
    fields
        .get(idx)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| WireError::Malformed(format!("bad field {idx}")))
}

/// Parses one CSV event row.
///
/// # Errors
///
/// Returns [`WireError::Malformed`] on wrong tag, arity or field syntax.
pub fn from_csv_line(line: &str) -> Result<WireEvent, WireError> {
    let fields: Vec<&str> = line.split(',').collect();
    let arity = |n: usize| -> Result<(), WireError> {
        if fields.len() == n {
            Ok(())
        } else {
            Err(WireError::Malformed(format!(
                "row {:?} expects {} fields, got {}",
                fields[0],
                n,
                fields.len()
            )))
        }
    };
    match fields[0] {
        "D" => {
            arity(9)?;
            Ok(WireEvent::DriverOnline(WireDriver {
                id: csv_num(&fields, 1)?,
                source: GeoPoint::new(csv_num(&fields, 2)?, csv_num(&fields, 3)?),
                destination: GeoPoint::new(csv_num(&fields, 4)?, csv_num(&fields, 5)?),
                shift_start: Timestamp::from_secs(csv_num(&fields, 6)?),
                shift_end: Timestamp::from_secs(csv_num(&fields, 7)?),
                model: model_from_name(fields[8])?,
            }))
        }
        "T" => {
            arity(13)?;
            Ok(WireEvent::TaskPublished(WireTask {
                id: csv_num(&fields, 1)?,
                publish_time: Timestamp::from_secs(csv_num(&fields, 2)?),
                origin: GeoPoint::new(csv_num(&fields, 3)?, csv_num(&fields, 4)?),
                destination: GeoPoint::new(csv_num(&fields, 5)?, csv_num(&fields, 6)?),
                pickup_deadline: Timestamp::from_secs(csv_num(&fields, 7)?),
                completion_deadline: Timestamp::from_secs(csv_num(&fields, 8)?),
                duration: TimeDelta::from_secs(csv_num(&fields, 9)?),
                price: csv_num(&fields, 10)?,
                valuation: csv_num(&fields, 11)?,
                service_cost: csv_num(&fields, 12)?,
            }))
        }
        "F" => {
            arity(2)?;
            Ok(WireEvent::DriverOffline(csv_num(&fields, 1)?))
        }
        "K" => {
            arity(2)?;
            Ok(WireEvent::EpochTick(csv_num(&fields, 1)?))
        }
        "E" => {
            arity(1)?;
            Ok(WireEvent::Eos)
        }
        other => Err(WireError::Malformed(format!("unknown row tag {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<WireEvent> {
        vec![
            WireEvent::DriverOnline(WireDriver {
                id: 0,
                source: GeoPoint::new(41.1579, -8.6291),
                destination: GeoPoint::new(41.2, -8.5),
                shift_start: Timestamp::from_secs(0),
                shift_end: Timestamp::from_secs(36_000),
                model: DriverModel::Hitchhiking,
            }),
            WireEvent::DriverOnline(WireDriver {
                id: 1,
                source: GeoPoint::new(41.0, -8.0),
                destination: GeoPoint::new(41.0, -8.0),
                shift_start: Timestamp::from_secs(-120),
                shift_end: Timestamp::from_secs(i64::MAX),
                model: DriverModel::HomeWorkHome,
            }),
            WireEvent::TaskPublished(WireTask {
                id: 7,
                publish_time: Timestamp::from_secs(3600),
                origin: GeoPoint::new(41.15, -8.61),
                destination: GeoPoint::new(41.16, -8.58),
                pickup_deadline: Timestamp::from_secs(3900),
                completion_deadline: Timestamp::from_secs(5400),
                duration: TimeDelta::from_secs(740),
                price: 6.25,
                valuation: 0.1 + 0.2, // deliberately non-representable
                service_cost: 1.0 / 3.0,
            }),
            WireEvent::DriverOffline(1),
            WireEvent::EpochTick(i64::MIN),
            WireEvent::EpochTick(i64::MAX),
            WireEvent::Eos,
        ]
    }

    #[test]
    fn frame_round_trip_is_identity() {
        for e in sample_events() {
            let frame = encode_frame(&e);
            let mut dec = FrameDecoder::new();
            dec.feed(&frame);
            assert_eq!(dec.next().unwrap(), Some(e));
            assert_eq!(dec.next().unwrap(), None);
            assert_eq!(dec.pending_bytes(), 0);
        }
    }

    #[test]
    fn one_byte_feeds_decode_identically() {
        let mut whole = FrameDecoder::new();
        let mut dribble = FrameDecoder::new();
        let mut bytes = Vec::new();
        for e in sample_events() {
            bytes.extend_from_slice(&encode_frame(&e));
        }
        whole.feed(&bytes);
        let mut from_whole = Vec::new();
        while let Some(e) = whole.next().unwrap() {
            from_whole.push(e);
        }
        let mut from_dribble = Vec::new();
        for b in bytes {
            dribble.feed(&[b]);
            while let Some(e) = dribble.next().unwrap() {
                from_dribble.push(e);
            }
        }
        assert_eq!(from_whole, from_dribble);
        assert_eq!(from_whole.len(), sample_events().len());
    }

    #[test]
    fn json_and_csv_round_trips_are_identity() {
        for e in sample_events() {
            let json = to_json_line(&e);
            assert_eq!(from_json_line(&json).unwrap(), e, "{json}");
            let csv = to_csv_line(&e);
            assert_eq!(from_csv_line(&csv).unwrap(), e, "{csv}");
        }
    }

    #[test]
    fn hostile_frames_fail_with_typed_errors() {
        // Garbage length prefix.
        let mut dec = FrameDecoder::new();
        dec.feed(&[0xFF, 0xFF, 0xFF, 0xFF, 0, 0]);
        assert!(matches!(dec.next(), Err(WireError::FrameTooLarge { .. })));

        // Zero-length frame.
        let mut dec = FrameDecoder::new();
        dec.feed(&[0, 0, 0, 0]);
        assert!(matches!(dec.next(), Err(WireError::EmptyFrame)));

        // Unknown tag.
        let mut dec = FrameDecoder::new();
        dec.feed(&[1, 0, 0, 0, 99]);
        assert!(matches!(dec.next(), Err(WireError::UnknownTag(99))));

        // Truncated body: length says 9, tag is tick, only 4 payload bytes.
        let mut dec = FrameDecoder::new();
        dec.feed(&[5, 0, 0, 0, TAG_TICK, 1, 2, 3, 4]);
        assert!(matches!(dec.next(), Err(WireError::BadLength { .. })));

        // Oversized body for its tag (extra trailing byte).
        let mut dec = FrameDecoder::new();
        let mut frame = encode_frame(&WireEvent::DriverOffline(3));
        frame[0] += 1; // lengthen the prefix
        frame.push(0xAB);
        dec.feed(&frame);
        assert!(matches!(dec.next(), Err(WireError::BadLength { .. })));
    }

    #[test]
    fn frame_length_prefix_boundary_is_exact() {
        // A body of exactly MAX_FRAME_BODY bytes passes the size check:
        // the decoder consumes it and reports the (unknown) tag, proving
        // the bound is not off by one at the top.
        let mut dec = FrameDecoder::new();
        let len = u32::try_from(MAX_FRAME_BODY).unwrap();
        dec.feed(&len.to_le_bytes());
        dec.feed(&vec![0xEEu8; MAX_FRAME_BODY]);
        assert_eq!(dec.next(), Err(WireError::UnknownTag(0xEE)));

        // One byte over the cap is rejected as a typed error before any
        // body bytes arrive — never a panic, never a wait for data.
        let mut dec = FrameDecoder::new();
        let len = u32::try_from(MAX_FRAME_BODY + 1).unwrap();
        dec.feed(&len.to_le_bytes());
        assert_eq!(
            dec.next(),
            Err(WireError::FrameTooLarge {
                len: MAX_FRAME_BODY + 1
            })
        );

        // The full u32 range stays typed too (no truncation to a small
        // in-bounds value on any target width).
        let mut dec = FrameDecoder::new();
        dec.feed(&u32::MAX.to_le_bytes());
        assert!(matches!(dec.next(), Err(WireError::FrameTooLarge { .. })));
    }

    #[test]
    fn body_len_matches_encoder_output() {
        for e in sample_events() {
            let mut body = Vec::new();
            encode_frame_body(&e, &mut body);
            assert_eq!(body_len(body[0]), Some(body.len()), "{e:?}");
        }
        assert_eq!(body_len(250), None);
    }

    #[test]
    fn hostile_lines_fail_with_typed_errors() {
        for bad in [
            "",
            "{",
            "{\"event\":\"task\"}",
            "{\"event\":\"warp\"}",
            "{\"event\":\"tick\",\"at\":\"noon\"}",
            "{\"event\":\"tick\",\"at\":12,\"x\":}",
            "not json at all",
        ] {
            assert!(from_json_line(bad).is_err(), "{bad:?} should fail");
        }
        for bad in [
            "",
            "X,1",
            "T,1,2",
            "K,notanumber",
            "D,0,1,2,3,4,5,6,teleport",
        ] {
            assert!(from_csv_line(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn json_parser_keeps_integer_precision() {
        let v = parse_json("{\"at\":9223372036854775807}").unwrap();
        assert_eq!(v.get("at").unwrap().num(), Some("9223372036854775807"));
    }

    #[test]
    fn json_parser_accepts_literals() {
        let v = parse_json("{\"ratio\": null, \"bound\": true, \"off\": false}").unwrap();
        assert!(v.get("ratio").unwrap().is_null());
        assert_eq!(v.get("bound").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("off").unwrap().as_bool(), Some(false));
        assert!(!v.get("bound").unwrap().is_null());
        assert!(parse_json("nul").is_err());
        assert!(parse_json("truthy").is_err());
    }

    #[test]
    fn driver_shift_conversion_round_trips() {
        let shift = DriverShift {
            id: rideshare_types::DriverId::new(4),
            source: GeoPoint::new(41.1, -8.6),
            destination: GeoPoint::new(41.2, -8.4),
            shift_start: Timestamp::from_secs(100),
            shift_end: Timestamp::from_secs(9000),
            model: DriverModel::Hitchhiking,
        };
        let wire = WireDriver::from(&shift);
        let back = DriverShift::from(&wire);
        assert_eq!(back.id, shift.id);
        assert_eq!(back.model, shift.model);
        assert_eq!(back.shift_start, shift.shift_start);
        assert_eq!(back.shift_end, shift.shift_end);
        assert_eq!(back.source.lat().to_bits(), shift.source.lat().to_bits());
    }
}
