//! Random samplers used by the trace generator.
//!
//! Hand-rolled (inverse-CDF and Box–Muller) rather than pulled from
//! `rand_distr` to keep the dependency surface to `rand` itself.

use rand::Rng;

/// A power-law (Pareto) distribution truncated to `[xmin, xmax]`.
///
/// Density `p(x) ∝ x^(−alpha)` on the support. The paper's Figs. 3–4 report
/// that Porto trip travel times and distances "exhibit the shape following
/// the power law distribution"; this sampler reproduces those marginals.
///
/// Sampling uses the inverse CDF of the truncated distribution:
/// for `alpha ≠ 1`, `X = (xmin^(1−α) + U·(xmax^(1−α) − xmin^(1−α)))^(1/(1−α))`.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use rideshare_trace::TruncatedPareto;
///
/// let dist = TruncatedPareto::new(0.5, 30.0, 2.2);
/// let mut rng = StdRng::seed_from_u64(1);
/// let x = dist.sample(&mut rng);
/// assert!((0.5..=30.0).contains(&x));
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TruncatedPareto {
    xmin: f64,
    xmax: f64,
    alpha: f64,
}

impl TruncatedPareto {
    /// Creates the distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < xmin < xmax` and `alpha > 1` (heavier tails than
    /// `alpha = 1` have no normalisable density on an unbounded support and
    /// are not what trip-length data shows).
    #[must_use]
    pub fn new(xmin: f64, xmax: f64, alpha: f64) -> Self {
        assert!(xmin > 0.0, "xmin must be positive, got {xmin}");
        assert!(xmax > xmin, "xmax must exceed xmin");
        assert!(alpha > 1.0, "alpha must exceed 1, got {alpha}");
        Self { xmin, xmax, alpha }
    }

    /// Lower bound of the support.
    #[must_use]
    pub const fn xmin(&self) -> f64 {
        self.xmin
    }

    /// Upper bound of the support.
    #[must_use]
    pub const fn xmax(&self) -> f64 {
        self.xmax
    }

    /// Tail exponent.
    #[must_use]
    pub const fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        let one_minus_a = 1.0 - self.alpha;
        let lo = self.xmin.powf(one_minus_a);
        let hi = self.xmax.powf(one_minus_a);
        (lo + u * (hi - lo)).powf(1.0 / one_minus_a)
    }

    /// Analytic mean of the truncated distribution.
    #[must_use]
    pub fn mean(&self) -> f64 {
        let a = self.alpha;
        // E[X] = ∫ x·x^(−a) / Z dx over [xmin, xmax], Z = ∫ x^(−a) dx.
        let z = (self.xmax.powf(1.0 - a) - self.xmin.powf(1.0 - a)) / (1.0 - a);
        let num = (self.xmax.powf(2.0 - a) - self.xmin.powf(2.0 - a)) / (2.0 - a);
        num / z
    }
}

/// A log-normal distribution parameterised by the mean and standard
/// deviation of the *underlying normal*.
///
/// Used for multiplicative noise (e.g. realised trip duration around the
/// distance-implied duration) and for willingness-to-pay markups.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use rideshare_trace::LogNormal;
///
/// let noise = LogNormal::new(0.0, 0.25);
/// let mut rng = StdRng::seed_from_u64(3);
/// let x = noise.sample(&mut rng);
/// assert!(x > 0.0);
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates the distribution from the underlying normal's `mu`, `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or either parameter is non-finite.
    #[must_use]
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite() && sigma.is_finite(), "non-finite parameter");
        assert!(sigma >= 0.0, "sigma must be non-negative, got {sigma}");
        Self { mu, sigma }
    }

    /// Draws one sample via Box–Muller.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }

    /// The distribution's median, `exp(mu)`.
    #[must_use]
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }
}

/// One standard-normal draw (Box–Muller, using both uniforms for one draw to
/// stay allocation- and state-free).
pub(crate) fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard against ln(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos()
}

/// Samples an index from a slice of non-negative weights.
///
/// # Panics
///
/// Panics if `weights` is empty or sums to a non-positive value.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use rideshare_trace::sample_categorical;
///
/// let mut rng = StdRng::seed_from_u64(5);
/// let idx = sample_categorical(&mut rng, &[0.5, 0.3, 0.2]);
/// assert!(idx < 3);
/// ```
pub fn sample_categorical<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "empty weight vector");
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must sum to a positive value");
    let mut target = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        target -= w;
        if target <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pareto_stays_in_support() {
        let d = TruncatedPareto::new(0.5, 25.0, 2.2);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((0.5..=25.0).contains(&x), "sample {x} out of support");
        }
    }

    #[test]
    fn pareto_empirical_mean_matches_analytic() {
        let d = TruncatedPareto::new(1.0, 50.0, 2.5);
        let mut rng = StdRng::seed_from_u64(13);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let emp = sum / f64::from(n);
        let ana = d.mean();
        assert!(
            (emp - ana).abs() / ana < 0.02,
            "empirical {emp} vs analytic {ana}"
        );
    }

    #[test]
    fn pareto_is_heavy_tailed() {
        // Median far below mean is the power-law signature.
        let d = TruncatedPareto::new(0.5, 30.0, 2.2);
        let mut rng = StdRng::seed_from_u64(17);
        let mut xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(mean > 1.4 * median, "mean {mean} vs median {median}");
    }

    #[test]
    #[should_panic(expected = "alpha must exceed 1")]
    fn pareto_rejects_shallow_tail() {
        let _ = TruncatedPareto::new(1.0, 2.0, 0.9);
    }

    #[test]
    #[should_panic(expected = "xmax must exceed xmin")]
    fn pareto_rejects_empty_support() {
        let _ = TruncatedPareto::new(2.0, 2.0, 2.0);
    }

    #[test]
    fn lognormal_median_and_positivity() {
        let d = LogNormal::new(1.0, 0.5);
        let mut rng = StdRng::seed_from_u64(19);
        let mut xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        assert!(xs.iter().all(|&x| x > 0.0));
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        assert!(
            (median - d.median()).abs() / d.median() < 0.03,
            "median {median} vs {}",
            d.median()
        );
    }

    #[test]
    fn lognormal_zero_sigma_is_constant() {
        let d = LogNormal::new(0.7, 0.0);
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..10 {
            assert!((d.sample(&mut rng) - 0.7f64.exp()).abs() < 1e-12);
        }
    }

    #[test]
    fn categorical_respects_weights() {
        let mut rng = StdRng::seed_from_u64(29);
        let w = [0.7, 0.2, 0.1];
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[sample_categorical(&mut rng, &w)] += 1;
        }
        let f0 = counts[0] as f64 / 30_000.0;
        let f1 = counts[1] as f64 / 30_000.0;
        assert!((f0 - 0.7).abs() < 0.02, "{f0}");
        assert!((f1 - 0.2).abs() < 0.02, "{f1}");
    }

    #[test]
    fn categorical_zero_weight_never_chosen() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..1000 {
            assert_ne!(sample_categorical(&mut rng, &[1.0, 0.0, 1.0]), 1);
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(37);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }
}
