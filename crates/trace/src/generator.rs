//! The synthetic trace generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rideshare_geo::{porto, BoundingBox, GeoPoint, SpeedModel};
use rideshare_types::{DriverId, TaskId, TimeDelta, Timestamp};

use crate::sampler::{sample_categorical, standard_normal, LogNormal, TruncatedPareto};
use crate::{DriverModel, DriverShift, TripRecord};

/// Double-peaked urban demand profile (share of daily demand per hour),
/// with a morning rush around 8–9 and an evening rush around 18–20.
const DEFAULT_HOURLY_DEMAND: [f64; 24] = [
    1.2, 0.8, 0.6, 0.4, 0.4, 0.7, 1.5, 3.0, 5.5, 5.0, 4.0, 4.2, 4.8, 4.6, 4.2, 4.4, 5.0, 6.0, 7.0,
    6.5, 5.5, 4.5, 3.0, 2.2,
];

/// Configuration for synthesising one day of a Porto-like taxi market.
///
/// Construct with [`TraceConfig::porto`] and customise with the `with_*`
/// builders; every run is deterministic in the seed.
///
/// # Examples
///
/// ```
/// use rideshare_trace::{DriverModel, TraceConfig};
/// let a = TraceConfig::porto().with_seed(1).with_task_count(50).generate();
/// let b = TraceConfig::porto().with_seed(1).with_task_count(50).generate();
/// assert_eq!(a.trips, b.trips); // fully reproducible
/// ```
#[derive(Clone, Debug)]
pub struct TraceConfig {
    pub(crate) seed: u64,
    pub(crate) bbox: BoundingBox,
    pub(crate) hotspots: Vec<(GeoPoint, f64)>,
    pub(crate) hotspot_sigma_km: f64,
    /// Probability that a pickup comes from the hotspot mixture rather than
    /// the uniform background.
    pub(crate) hotspot_share: f64,
    pub(crate) task_count: usize,
    pub(crate) driver_count: usize,
    pub(crate) driver_model: DriverModel,
    pub(crate) speed: SpeedModel,
    pub(crate) distance_km: TruncatedPareto,
    pub(crate) duration_noise: LogNormal,
    pub(crate) hourly_demand: [f64; 24],
    /// Publish lead time range in minutes (`t̄⁻ₘ − t̄ₘ`).
    pub(crate) lead_time_mins: (i64, i64),
    /// Relative slack added to each trip's completion window.
    pub(crate) window_slack_factor: f64,
    /// Home-work-home shift length range in hours.
    pub(crate) shift_hours: (f64, f64),
    /// Hitchhiking: shift length as a multiple of the direct commute time.
    pub(crate) hitchhike_slack: (f64, f64),
    /// Number of disjoint service regions (1 = the classic single-city
    /// trace). See [`TraceConfig::with_regions`].
    pub(crate) region_count: usize,
}

impl TraceConfig {
    /// A configuration calibrated to the Porto ECML/PKDD-15 trace:
    /// power-law trip distances (`α ≈ 2.0`, 1–28 km), urban speeds, and
    /// the city's demand hotspots.
    #[must_use]
    pub fn porto() -> Self {
        Self {
            seed: 0,
            bbox: porto::bounding_box(),
            hotspots: porto::demand_hotspots(),
            hotspot_sigma_km: porto::HOTSPOT_SIGMA_KM,
            hotspot_share: 0.8,
            task_count: 1000,
            driver_count: 100,
            driver_model: DriverModel::Hitchhiking,
            speed: SpeedModel::urban(),
            distance_km: TruncatedPareto::new(1.0, 28.0, 2.0),
            duration_noise: LogNormal::new(0.0, 0.18),
            hourly_demand: DEFAULT_HOURLY_DEMAND,
            lead_time_mins: (4, 15),
            window_slack_factor: 0.25,
            shift_hours: (3.0, 8.0),
            hitchhike_slack: (2.0, 6.0),
            region_count: 1,
        }
    }

    /// A same-day **product-delivery** configuration (the paper's second
    /// motivating domain — Google Express / Amazon Prime Now, §I).
    ///
    /// Deliveries differ from rides in their time structure: orders are
    /// placed well ahead (half an hour to four hours of lead time), the
    /// promised completion window is generous (several times the drive
    /// time), and pickups concentrate at two depot locations. The slack is
    /// what makes long task chains — and therefore a large task-map
    /// diameter `D` — possible.
    #[must_use]
    pub fn porto_delivery() -> Self {
        let depot_west = GeoPoint::new(41.2050, -8.6900); // Matosinhos logistics park
        let depot_east = GeoPoint::new(41.1700, -8.5500); // Campanhã freight yard
        Self {
            hotspots: vec![(depot_west, 0.55), (depot_east, 0.45)],
            hotspot_sigma_km: 0.4,
            hotspot_share: 0.95,
            lead_time_mins: (30, 240),
            window_slack_factor: 3.0,
            // Business-hours demand, no evening leisure peak.
            hourly_demand: [
                0.1, 0.1, 0.1, 0.1, 0.2, 0.5, 1.5, 3.0, 5.0, 6.0, 6.5, 6.0, 5.5, 6.0, 6.0, 5.5,
                5.0, 4.0, 2.5, 1.5, 0.8, 0.4, 0.2, 0.1,
            ],
            ..Self::porto()
        }
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the publish lead-time range in minutes (`t̄⁻ₘ − t̄ₘ`).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < lo ≤ hi`.
    #[must_use]
    pub fn with_lead_time_mins(mut self, lo: i64, hi: i64) -> Self {
        assert!(0 < lo && lo <= hi, "need 0 < lo <= hi");
        self.lead_time_mins = (lo, hi);
        self
    }

    /// Sets the relative slack added to each task's completion window
    /// (`0.0` = the window is exactly the drive time plus a small fixed
    /// buffer).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative.
    #[must_use]
    pub fn with_window_slack(mut self, factor: f64) -> Self {
        assert!(factor >= 0.0, "slack factor must be non-negative");
        self.window_slack_factor = factor;
        self
    }

    /// Sets the number of tasks (customer orders) in the day.
    #[must_use]
    pub fn with_task_count(mut self, count: usize) -> Self {
        self.task_count = count;
        self
    }

    /// Sets the number of drivers and their working model.
    #[must_use]
    pub fn with_driver_count(mut self, count: usize, model: DriverModel) -> Self {
        self.driver_count = count;
        self.driver_model = model;
        self
    }

    /// Overrides the trip-distance distribution.
    #[must_use]
    pub fn with_distance_distribution(mut self, dist: TruncatedPareto) -> Self {
        self.distance_km = dist;
        self
    }

    /// Overrides the speed/cost model.
    #[must_use]
    pub fn with_speed_model(mut self, speed: SpeedModel) -> Self {
        self.speed = speed;
        self
    }

    /// Overrides the hourly demand profile (24 non-negative weights).
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero.
    #[must_use]
    pub fn with_hourly_demand(mut self, demand: [f64; 24]) -> Self {
        assert!(demand.iter().sum::<f64>() > 0.0, "all-zero demand profile");
        self.hourly_demand = demand;
        self
    }

    /// Splits the market into `count` **disjoint service regions**:
    /// identical translated copies of the base service area, laid out
    /// west→east with a dead-space gap wide enough that *no driver in one
    /// region can ever interact with a task in another* — she cannot reach
    /// a foreign pickup within any order's publish→deadline lead, which is
    /// simultaneously the feasibility radius and the early-flush-epoch
    /// influence radius of the online engines. The gap is derived from the
    /// configured maximum lead time and speed model, so every trace built
    /// this way is a *legal region partition* by construction — the online
    /// analogue of the offline `disjoint_components` decomposition, and
    /// the workload the region-sharded streaming engine parallelises
    /// losslessly.
    ///
    /// Each trip and driver is assigned a uniformly random region
    /// (deterministic in the seed) and generated wholly inside it — region
    /// membership is recoverable from any of its points via
    /// [`TraceConfig::region_boxes`] (the "region tags" consumed by
    /// `rideshare-online`'s `BoxPartitioner`). `count = 1` is the classic
    /// single-city trace, bit-identical to not calling this at all.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    #[must_use]
    pub fn with_regions(mut self, count: usize) -> Self {
        assert!(count > 0, "need at least one region");
        self.region_count = count;
        self
    }

    /// Number of disjoint service regions (1 unless
    /// [`TraceConfig::with_regions`] was used).
    #[must_use]
    pub fn region_count(&self) -> usize {
        self.region_count
    }

    /// The bounding box of each service region, in region order. With one
    /// region this is just the base service area.
    #[must_use]
    pub fn region_boxes(&self) -> Vec<BoundingBox> {
        let step = self.region_lon_step_deg();
        (0..self.region_count)
            .map(|r| {
                let shift = r as f64 * step;
                BoundingBox::new(
                    self.bbox.min_lat(),
                    self.bbox.max_lat(),
                    self.bbox.min_lon() + shift,
                    self.bbox.max_lon() + shift,
                )
            })
            .collect()
    }

    /// Longitude offset between consecutive regions: the base box width
    /// plus a gap exceeding the farthest any driver could travel within
    /// the maximum publish→deadline lead (straight-line, with the same
    /// 1-second rounding slack the candidate engines use, plus a 1 km
    /// safety margin). All points of one region shift by the *same*
    /// degrees, so within-region geometry — distances, durations, prices —
    /// is untouched.
    fn region_lon_step_deg(&self) -> f64 {
        let c = self.bbox.center();
        let km_per_deg_lon = GeoPoint::new(c.lat(), c.lon())
            .equirectangular_km(GeoPoint::new(c.lat(), c.lon() + 1.0));
        let max_lead = TimeDelta::from_mins(self.lead_time_mins.1) + TimeDelta::from_secs(2);
        let gap_km = self.speed.reachable_km(max_lead) + 1.0;
        (self.bbox.max_lon() - self.bbox.min_lon()) + gap_km / km_per_deg_lon
    }

    /// Translates `p` from the base service area into region `r`.
    fn translate_to_region(&self, p: GeoPoint, r: usize) -> GeoPoint {
        if r == 0 {
            return p;
        }
        GeoPoint::new(p.lat(), p.lon() + r as f64 * self.region_lon_step_deg())
    }

    /// The speed model trips were generated with.
    #[must_use]
    pub fn speed_model(&self) -> SpeedModel {
        self.speed
    }

    /// The service-area bounding box (all regions included).
    #[must_use]
    pub fn bounding_box(&self) -> BoundingBox {
        if self.region_count <= 1 {
            return self.bbox;
        }
        let shift = (self.region_count - 1) as f64 * self.region_lon_step_deg();
        BoundingBox::new(
            self.bbox.min_lat(),
            self.bbox.max_lat(),
            self.bbox.min_lon(),
            self.bbox.max_lon() + shift,
        )
    }

    /// The configured RNG seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured task count.
    #[must_use]
    pub fn task_count(&self) -> usize {
        self.task_count
    }

    /// Generates the trace.
    #[must_use]
    pub fn generate(&self) -> Trace {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut trips: Vec<TripRecord> = (0..self.task_count)
            .map(|i| self.gen_trip(&mut rng, TaskId::new(i as u32)))
            .collect();
        trips.sort_by_key(|t| t.publish_time);
        // Re-number so ids follow publish order (stable replay identity).
        for (i, t) in trips.iter_mut().enumerate() {
            t.id = TaskId::new(i as u32);
        }
        let drivers: Vec<DriverShift> = (0..self.driver_count)
            .map(|i| self.gen_driver(&mut rng, DriverId::new(i as u32)))
            .collect();
        Trace {
            trips,
            drivers,
            speed: self.speed,
            bbox: self.bounding_box(),
        }
    }

    fn sample_pickup_point<R: Rng + ?Sized>(&self, rng: &mut R) -> GeoPoint {
        if rng.gen::<f64>() < self.hotspot_share && !self.hotspots.is_empty() {
            let weights: Vec<f64> = self.hotspots.iter().map(|(_, w)| *w).collect();
            let (center, _) = self.hotspots[sample_categorical(rng, &weights)];
            // Gaussian cloud around the hotspot, clamped into the box.
            for _ in 0..16 {
                let p = center.offset_km(
                    self.hotspot_sigma_km * standard_normal(rng),
                    self.hotspot_sigma_km * standard_normal(rng),
                );
                if self.bbox.contains(p) {
                    return p;
                }
            }
            center
        } else {
            self.bbox.lerp(rng.gen(), rng.gen())
        }
    }

    /// Picks a destination `driven_km` away from `origin`, trying random
    /// bearings until the endpoint falls inside the service area.
    fn sample_destination<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        origin: GeoPoint,
        driven_km: f64,
    ) -> GeoPoint {
        let straight_km = driven_km / self.speed.detour_factor();
        for _ in 0..24 {
            let theta = rng.gen::<f64>() * core::f64::consts::TAU;
            let p = origin.offset_km(straight_km * theta.sin(), straight_km * theta.cos());
            if self.bbox.contains(p) {
                return p;
            }
        }
        // Long trip near the border: head toward the centre instead.
        let c = self.bbox.center();
        let toward = origin.equirectangular_km(c).max(1e-6);
        let f = (straight_km / toward).min(1.0);
        GeoPoint::new(
            origin.lat() + (c.lat() - origin.lat()) * f,
            origin.lon() + (c.lon() - origin.lon()) * f,
        )
    }

    fn gen_trip<R: Rng + ?Sized>(&self, rng: &mut R, id: TaskId) -> TripRecord {
        let hour = sample_categorical(rng, &self.hourly_demand);
        self.gen_trip_in_hour(rng, id, hour)
    }

    /// Generates one trip whose pickup deadline falls in `hour` — the body
    /// of [`TraceConfig::generate`]'s per-trip sampling with the hour fixed
    /// externally, so the streaming generator (`TraceConfig::stream`) can
    /// emit hours in order. Draw-for-draw identical to `gen_trip` after the
    /// hour choice.
    pub(crate) fn gen_trip_in_hour<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        id: TaskId,
        hour: usize,
    ) -> TripRecord {
        // Region draw first, so single-region traces consume the RNG
        // exactly as before `with_regions` existed (seed stability).
        let region = if self.region_count > 1 {
            rng.gen_range(0..self.region_count)
        } else {
            0
        };
        let within = rng.gen_range(0..3600);
        let pickup_deadline = Timestamp::from_hours(hour as i64) + TimeDelta::from_secs(within);

        let origin = self.sample_pickup_point(rng);
        let driven_km = self.distance_km.sample(rng);
        let destination = self.sample_destination(rng, origin, driven_km);
        // Realised driven distance after the in-box clamp.
        let driven_km = self
            .speed
            .driven_km(origin, destination)
            .max(self.distance_km.xmin());

        let base = self.speed.travel_time_for_km(driven_km);
        let duration =
            TimeDelta::from_secs_f64(base.as_secs() as f64 * self.duration_noise.sample(rng))
                .max(TimeDelta::from_secs(60));

        let slack_secs = (duration.as_secs() as f64 * self.window_slack_factor) as i64 + 120;
        let completion_deadline = pickup_deadline + duration + TimeDelta::from_secs(slack_secs);

        let lead = rng.gen_range(self.lead_time_mins.0..=self.lead_time_mins.1);
        let publish_time = pickup_deadline - TimeDelta::from_mins(lead);

        let trip = TripRecord {
            id,
            publish_time,
            // The translation shifts every point of the region by the same
            // longitude delta, so it preserves within-region distances and
            // everything derived from them above.
            origin: self.translate_to_region(origin, region),
            destination: self.translate_to_region(destination, region),
            pickup_deadline,
            completion_deadline,
            distance_km: driven_km,
            duration,
        };
        debug_assert!(trip.validate().is_ok(), "generated invalid trip");
        trip
    }

    pub(crate) fn gen_driver<R: Rng + ?Sized>(&self, rng: &mut R, id: DriverId) -> DriverShift {
        let region = if self.region_count > 1 {
            rng.gen_range(0..self.region_count)
        } else {
            0
        };
        let shift = self.gen_driver_in_base(rng, id);
        DriverShift {
            source: self.translate_to_region(shift.source, region),
            destination: self.translate_to_region(shift.destination, region),
            ..shift
        }
    }

    fn gen_driver_in_base<R: Rng + ?Sized>(&self, rng: &mut R, id: DriverId) -> DriverShift {
        match self.driver_model {
            DriverModel::HomeWorkHome => {
                let home = self.bbox.lerp(rng.gen(), rng.gen());
                let len_h = rng.gen_range(self.shift_hours.0..self.shift_hours.1);
                let latest_start = (24.0 - len_h).max(0.0);
                let start_h = rng.gen_range(0.0..latest_start);
                let start = Timestamp::from_secs((start_h * 3600.0) as i64);
                let end = start + TimeDelta::from_secs((len_h * 3600.0) as i64);
                DriverShift {
                    id,
                    source: home,
                    destination: home,
                    shift_start: start,
                    shift_end: end,
                    model: DriverModel::HomeWorkHome,
                }
            }
            DriverModel::Hitchhiking => {
                let source = self.sample_pickup_point(rng);
                let mut destination = self.sample_pickup_point(rng);
                // A commute of zero length defeats the model; nudge apart.
                if source.equirectangular_km(destination) < 0.5 {
                    destination = destination.offset_km(1.0, 1.0);
                }
                let commute = self.speed.travel_time(source, destination);
                let slack = rng.gen_range(self.hitchhike_slack.0..self.hitchhike_slack.1);
                let window = TimeDelta::from_secs_f64(commute.as_secs() as f64 * slack)
                    .max(TimeDelta::from_mins(30));
                let latest = (24 * 3600 - window.as_secs()).max(0);
                let start = Timestamp::from_secs(rng.gen_range(0..=latest));
                DriverShift {
                    id,
                    source,
                    destination,
                    shift_start: start,
                    shift_end: start + window,
                    model: DriverModel::Hitchhiking,
                }
            }
        }
    }
}

/// One generated day of market activity.
#[derive(Clone, Debug)]
pub struct Trace {
    /// Customer orders, sorted by publish time.
    pub trips: Vec<TripRecord>,
    /// Driver shifts.
    pub drivers: Vec<DriverShift>,
    /// The speed/cost model the trace was generated with.
    pub speed: SpeedModel,
    /// The service area.
    pub bbox: BoundingBox,
}

impl Trace {
    /// Total driven distance over all trips, in kilometres.
    #[must_use]
    pub fn total_trip_km(&self) -> f64 {
        self.trips.iter().map(|t| t.distance_km).sum()
    }

    /// Truncates the trace to its first `n` trips (by publish order).
    #[must_use]
    pub fn with_first_trips(mut self, n: usize) -> Self {
        self.trips.truncate(n);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Trace {
        TraceConfig::porto()
            .with_seed(42)
            .with_task_count(300)
            .with_driver_count(30, DriverModel::Hitchhiking)
            .generate()
    }

    #[test]
    fn all_records_valid() {
        let t = small();
        for trip in &t.trips {
            trip.validate().unwrap();
            assert!(t.bbox.contains(trip.origin), "origin outside box");
            assert!(t.bbox.contains(trip.destination), "destination outside box");
        }
        for d in &t.drivers {
            d.validate().unwrap();
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = small();
        let b = small();
        assert_eq!(a.trips, b.trips);
        assert_eq!(a.drivers, b.drivers);
        let c = TraceConfig::porto()
            .with_seed(43)
            .with_task_count(300)
            .with_driver_count(30, DriverModel::Hitchhiking)
            .generate();
        assert_ne!(a.trips, c.trips);
    }

    #[test]
    fn trips_sorted_and_densely_numbered() {
        let t = small();
        for (i, trip) in t.trips.iter().enumerate() {
            assert_eq!(trip.id.index(), i);
        }
        assert!(t
            .trips
            .windows(2)
            .all(|w| w[0].publish_time <= w[1].publish_time));
    }

    #[test]
    fn home_work_home_loops() {
        let t = TraceConfig::porto()
            .with_seed(9)
            .with_task_count(10)
            .with_driver_count(50, DriverModel::HomeWorkHome)
            .generate();
        for d in &t.drivers {
            assert_eq!(d.source, d.destination);
            assert_eq!(d.model, DriverModel::HomeWorkHome);
            let h = d.shift_length().as_hours_f64();
            assert!((3.0..=8.0).contains(&h), "shift {h}h out of range");
        }
    }

    #[test]
    fn hitchhiking_shifts_cover_commute() {
        let t = small();
        for d in &t.drivers {
            let commute = t.speed.travel_time(d.source, d.destination);
            assert!(
                d.shift_length() >= commute,
                "shift shorter than direct commute"
            );
        }
    }

    #[test]
    fn distances_heavy_tailed() {
        let t = TraceConfig::porto()
            .with_seed(3)
            .with_task_count(5000)
            .with_driver_count(1, DriverModel::Hitchhiking)
            .generate();
        let mut kms: Vec<f64> = t.trips.iter().map(|x| x.distance_km).collect();
        kms.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = kms[kms.len() / 2];
        let mean = kms.iter().sum::<f64>() / kms.len() as f64;
        assert!(mean > 1.2 * median, "mean {mean} median {median}");
        // Porto trips: median around 2-4 km.
        assert!((1.0..6.0).contains(&median), "median {median}");
    }

    #[test]
    fn demand_profile_respected() {
        // All demand at hour 12 → every pickup deadline in [12:00, 13:00).
        let mut demand = [0.0; 24];
        demand[12] = 1.0;
        let t = TraceConfig::porto()
            .with_seed(5)
            .with_task_count(200)
            .with_hourly_demand(demand)
            .generate();
        for trip in &t.trips {
            let h = trip.pickup_deadline.as_secs() / 3600;
            assert_eq!(h, 12);
        }
    }

    #[test]
    fn with_first_trips_truncates() {
        let t = small().with_first_trips(10);
        assert_eq!(t.trips.len(), 10);
    }

    #[test]
    fn delivery_preset_has_delivery_time_structure() {
        let rides = TraceConfig::porto()
            .with_seed(12)
            .with_task_count(400)
            .generate();
        let deliveries = TraceConfig::porto_delivery()
            .with_seed(12)
            .with_task_count(400)
            .generate();
        let avg_lead = |t: &Trace| {
            t.trips
                .iter()
                .map(|x| (x.pickup_deadline - x.publish_time).as_mins_f64())
                .sum::<f64>()
                / t.trips.len() as f64
        };
        let avg_slack = |t: &Trace| {
            t.trips
                .iter()
                .map(|x| x.window_slack().as_mins_f64())
                .sum::<f64>()
                / t.trips.len() as f64
        };
        assert!(
            avg_lead(&deliveries) > 3.0 * avg_lead(&rides),
            "delivery lead {} vs ride lead {}",
            avg_lead(&deliveries),
            avg_lead(&rides)
        );
        assert!(
            avg_slack(&deliveries) > 3.0 * avg_slack(&rides),
            "delivery slack {} vs ride slack {}",
            avg_slack(&deliveries),
            avg_slack(&rides)
        );
        for trip in &deliveries.trips {
            trip.validate().unwrap();
        }
    }

    #[test]
    fn delivery_pickups_cluster_at_depots() {
        let t = TraceConfig::porto_delivery()
            .with_seed(13)
            .with_task_count(500)
            .generate();
        let depot_west = GeoPoint::new(41.2050, -8.6900);
        let depot_east = GeoPoint::new(41.1700, -8.5500);
        let near_depot = t
            .trips
            .iter()
            .filter(|x| {
                x.origin.haversine_km(depot_west) < 2.0 || x.origin.haversine_km(depot_east) < 2.0
            })
            .count();
        assert!(
            near_depot as f64 > 0.8 * t.trips.len() as f64,
            "only {near_depot}/500 pickups near a depot"
        );
    }

    #[test]
    fn regions_are_disjoint_beyond_interaction_range() {
        let cfg = TraceConfig::porto()
            .with_seed(21)
            .with_task_count(400)
            .with_driver_count(40, DriverModel::Hitchhiking)
            .with_regions(3);
        let t = cfg.generate();
        let boxes = cfg.region_boxes();
        assert_eq!(boxes.len(), 3);
        let region_of = |p: GeoPoint| boxes.iter().position(|b| b.contains(p));

        let mut seen = [false; 3];
        for trip in &t.trips {
            let r = region_of(trip.origin).expect("origin outside every region");
            assert_eq!(region_of(trip.destination), Some(r), "trip crosses regions");
            seen[r] = true;
        }
        for d in &t.drivers {
            let r = region_of(d.source).expect("driver outside every region");
            assert_eq!(region_of(d.destination), Some(r), "driver crosses regions");
        }
        assert!(seen.iter().all(|&s| s), "a region got no demand");

        // Legality: no driver can reach a foreign task's pickup within its
        // publish→deadline lead — the sharding proof obligation.
        for d in &t.drivers {
            let dr = region_of(d.source).unwrap();
            for trip in &t.trips {
                if region_of(trip.origin) == Some(dr) {
                    continue;
                }
                let lead = trip.pickup_deadline - trip.publish_time;
                assert!(
                    t.speed.travel_time(d.source, trip.origin)
                        > lead + rideshare_types::TimeDelta::from_secs(1),
                    "driver {} can interact with foreign trip {}",
                    d.id,
                    trip.id
                );
            }
        }
    }

    #[test]
    fn region_translation_preserves_trip_statistics() {
        // Multi-region trips have the same distance/duration marginals as
        // the base city: translation is geometry-preserving.
        let base = TraceConfig::porto().with_seed(22).with_task_count(1500);
        let split = base.clone().with_regions(4);
        let median = |mut v: Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        let base_med = median(
            base.generate()
                .trips
                .iter()
                .map(|t| t.distance_km)
                .collect(),
        );
        let split_med = median(
            split
                .generate()
                .trips
                .iter()
                .map(|t| t.distance_km)
                .collect(),
        );
        assert!(
            (base_med - split_med).abs() / base_med < 0.25,
            "base {base_med} vs regional {split_med}"
        );
        for trip in split.generate().trips.iter().take(200) {
            trip.validate().unwrap();
            assert!(split.bounding_box().contains(trip.origin));
            assert!(split.bounding_box().contains(trip.destination));
        }
    }

    #[test]
    fn single_region_is_seed_stable() {
        // `with_regions(1)` must not consume RNG differently from the
        // pre-region generator: existing seeds keep their traces.
        let a = TraceConfig::porto()
            .with_seed(23)
            .with_task_count(60)
            .generate();
        let b = TraceConfig::porto()
            .with_seed(23)
            .with_task_count(60)
            .with_regions(1)
            .generate();
        assert_eq!(a.trips, b.trips);
        assert_eq!(a.drivers, b.drivers);
    }

    #[test]
    fn regional_stream_matches_regional_generate_contract() {
        // The lazy stream honours regions too: publish-sorted, dense ids,
        // all points inside some region box.
        let cfg = TraceConfig::porto()
            .with_seed(24)
            .with_task_count(300)
            .with_driver_count(20, DriverModel::Hitchhiking)
            .with_regions(2);
        let stream = cfg.stream();
        let boxes = stream.region_boxes();
        assert_eq!(boxes.len(), 2);
        let mut last = Timestamp::from_secs(i64::MIN);
        for (i, trip) in stream.enumerate() {
            assert_eq!(trip.id.index(), i);
            assert!(trip.publish_time >= last);
            last = trip.publish_time;
            assert!(
                boxes.iter().any(|b| b.contains(trip.origin)),
                "origin in no region"
            );
        }
    }

    #[test]
    fn lead_time_builder_validates() {
        let t = TraceConfig::porto()
            .with_seed(14)
            .with_task_count(50)
            .with_lead_time_mins(20, 40)
            .generate();
        for trip in &t.trips {
            let lead = (trip.pickup_deadline - trip.publish_time).as_mins_f64();
            assert!((20.0..=40.0).contains(&lead), "lead {lead}");
        }
    }

    #[test]
    #[should_panic(expected = "0 < lo <= hi")]
    fn bad_lead_time_rejected() {
        let _ = TraceConfig::porto().with_lead_time_mins(10, 5);
    }
}
