//! Trip (task) records.

use rideshare_geo::GeoPoint;
use rideshare_types::{MarketError, Result, TaskId, TimeDelta, Timestamp};

/// One customer order, the paper's task `m`.
///
/// Field correspondence to §III-A:
///
/// | Paper | Field |
/// |---|---|
/// | `t̄ₘ` (publish time) | `publish_time` |
/// | `s̄ₘ`, `t̄⁻ₘ` | `origin`, `pickup_deadline` |
/// | `d̄ₘ`, `t̄⁺ₘ` | `destination`, `completion_deadline` |
///
/// `distance_km` is the driven (road) distance from origin to destination
/// and `duration` the in-service travel time `l̂`, both carried explicitly
/// so replays do not depend on which speed model regenerated them.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TripRecord {
    /// Task identifier, dense within a trace.
    pub id: TaskId,
    /// When the customer submitted the order (`t̄ₘ`).
    pub publish_time: Timestamp,
    /// Pickup location (`s̄ₘ`).
    pub origin: GeoPoint,
    /// Drop-off location (`d̄ₘ`).
    pub destination: GeoPoint,
    /// Deadline for the pickup (`t̄⁻ₘ`).
    pub pickup_deadline: Timestamp,
    /// Deadline for the drop-off (`t̄⁺ₘ`).
    pub completion_deadline: Timestamp,
    /// Driven origin→destination distance in kilometres.
    pub distance_km: f64,
    /// In-service travel time (`l̂` for the serving driver).
    pub duration: TimeDelta,
}

impl TripRecord {
    /// Validates the paper's ordering invariant `t̄ₘ < t̄⁻ₘ < t̄⁺ₘ` plus
    /// positivity of distance and duration.
    ///
    /// # Errors
    ///
    /// Returns [`MarketError::PublishAfterStart`] or
    /// [`MarketError::InvalidTimeWindow`] on violation.
    pub fn validate(&self) -> Result<()> {
        if self.publish_time >= self.pickup_deadline {
            return Err(MarketError::PublishAfterStart(self.id));
        }
        if self.pickup_deadline >= self.completion_deadline {
            return Err(MarketError::InvalidTimeWindow {
                entity: format!("{}", self.id),
            });
        }
        if self.distance_km < 0.0 || self.duration.is_negative() {
            return Err(MarketError::InvalidTimeWindow {
                entity: format!("{} (negative distance or duration)", self.id),
            });
        }
        Ok(())
    }

    /// The slack between the trip's own duration and its time window; a trip
    /// is internally consistent when this is non-negative.
    #[must_use]
    pub fn window_slack(&self) -> TimeDelta {
        (self.completion_deadline - self.pickup_deadline) - self.duration
    }

    /// Synthesises the trip's GPS trajectory in the ECML/PKDD-15 format:
    /// one fix every 15 seconds of the trip's duration, along a gently
    /// curved path whose bend is sized so the polyline length approximates
    /// the trip's driven `distance_km`.
    ///
    /// Deterministic (the bend direction/size derive from the trip data),
    /// so exports are reproducible.
    #[must_use]
    pub fn polyline(&self) -> rideshare_geo::Polyline {
        let n_fixes =
            ((self.duration.as_secs() / rideshare_geo::GPS_SAMPLE_SECS).max(1) + 1) as usize;
        // A mid-path quadratic bend of height h adds ≈ 8h²/(3L) to a
        // straight segment of length L (parabola arc-length, small-h
        // expansion) — invert to hit the driven distance.
        let crow = self.origin.haversine_km(self.destination);
        let excess = (self.distance_km - crow).max(0.0);
        let bend_km = if crow > 1e-9 {
            (3.0 * crow * excess / 8.0).sqrt()
        } else {
            // Round trip (origin == destination): loop sized by distance.
            self.distance_km / core::f64::consts::PI
        };
        rideshare_geo::Polyline::synthesize(self.origin, self.destination, n_fixes, bend_km)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trip() -> TripRecord {
        TripRecord {
            id: TaskId::new(0),
            publish_time: Timestamp::from_secs(0),
            origin: GeoPoint::new(41.15, -8.61),
            destination: GeoPoint::new(41.16, -8.60),
            pickup_deadline: Timestamp::from_secs(300),
            completion_deadline: Timestamp::from_secs(900),
            distance_km: 2.0,
            duration: TimeDelta::from_secs(480),
        }
    }

    #[test]
    fn valid_trip_passes() {
        assert!(trip().validate().is_ok());
        assert_eq!(trip().window_slack(), TimeDelta::from_secs(120));
    }

    #[test]
    fn publish_after_pickup_rejected() {
        let mut t = trip();
        t.publish_time = Timestamp::from_secs(300);
        assert!(matches!(
            t.validate(),
            Err(MarketError::PublishAfterStart(_))
        ));
    }

    #[test]
    fn inverted_window_rejected() {
        let mut t = trip();
        t.completion_deadline = Timestamp::from_secs(200);
        assert!(matches!(
            t.validate(),
            Err(MarketError::InvalidTimeWindow { .. })
        ));
    }

    #[test]
    fn polyline_matches_trip_marginals() {
        let mut t = trip();
        t.destination = GeoPoint::new(41.15, -8.61).offset_km(0.0, 3.0);
        t.origin = GeoPoint::new(41.15, -8.61);
        t.distance_km = 3.6; // 20% road detour over the 3 km crow distance
        t.duration = rideshare_types::TimeDelta::from_secs(600);
        let line = t.polyline();
        // Endpoints anchored.
        assert!(line.start().unwrap().haversine_km(t.origin) < 1e-6);
        assert!(line.end().unwrap().haversine_km(t.destination) < 1e-6);
        // Sampling: 600 s / 15 s = 40 intervals → 41 fixes.
        assert_eq!(line.len(), 41);
        assert_eq!(line.duration_secs(), 600);
        // Length approximates the driven distance (parabolic-bend model).
        let err = (line.length_km() - t.distance_km).abs() / t.distance_km;
        assert!(
            err < 0.15,
            "polyline {} vs driven {}",
            line.length_km(),
            t.distance_km
        );
    }

    #[test]
    fn generated_trip_polylines_are_sane() {
        let trace = crate::TraceConfig::porto()
            .with_seed(33)
            .with_task_count(50)
            .generate();
        for trip in &trace.trips {
            let line = trip.polyline();
            assert!(line.len() >= 2);
            assert!(line.length_km() >= line.crow_km() - 1e-9);
        }
    }

    #[test]
    fn negative_duration_rejected() {
        let mut t = trip();
        t.duration = TimeDelta::from_secs(-1);
        assert!(matches!(
            t.validate(),
            Err(MarketError::InvalidTimeWindow { .. })
        ));
    }
}
