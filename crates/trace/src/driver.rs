//! Driver shift records and the paper's two working models.

use rideshare_geo::GeoPoint;
use rideshare_types::{DriverId, MarketError, Result, TimeDelta, Timestamp};

/// The two driver working models of §VI-A.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DriverModel {
    /// "A driver leaves from a fixed place (may be her home) and returns
    /// after her daily work" — source equals destination. The working model
    /// of full-time Uber drivers.
    HomeWorkHome,
    /// The driver has distinct source and destination (she was travelling
    /// anyway) — the working model of part-time drivers on Google's Waze
    /// Rider.
    Hitchhiking,
}

impl DriverModel {
    /// Human-readable label used in experiment output.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            DriverModel::HomeWorkHome => "home-work-home",
            DriverModel::Hitchhiking => "hitchhiking",
        }
    }
}

impl core::fmt::Display for DriverModel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// One driver's daily travel plan, the paper's `(sₙ, dₙ, t⁻ₙ, t⁺ₙ)`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DriverShift {
    /// Driver identifier, dense within a trace.
    pub id: DriverId,
    /// Where the driver starts her day (`sₙ`).
    pub source: GeoPoint,
    /// Where she must end it (`dₙ`).
    pub destination: GeoPoint,
    /// Start of availability (`t⁻ₙ`).
    pub shift_start: Timestamp,
    /// End of availability (`t⁺ₙ`).
    pub shift_end: Timestamp,
    /// Which working model generated this shift.
    pub model: DriverModel,
}

impl DriverShift {
    /// Validates `t⁻ₙ < t⁺ₙ` and, for home-work-home shifts, that source
    /// and destination coincide.
    ///
    /// # Errors
    ///
    /// Returns [`MarketError::InvalidTimeWindow`] on violation.
    pub fn validate(&self) -> Result<()> {
        if self.shift_start >= self.shift_end {
            return Err(MarketError::InvalidTimeWindow {
                entity: format!("{}", self.id),
            });
        }
        if self.model == DriverModel::HomeWorkHome && self.source != self.destination {
            return Err(MarketError::InvalidTimeWindow {
                entity: format!("{} (home-work-home with source != destination)", self.id),
            });
        }
        Ok(())
    }

    /// Length of the driver's working window.
    #[must_use]
    pub fn shift_length(&self) -> TimeDelta {
        self.shift_end - self.shift_start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shift() -> DriverShift {
        DriverShift {
            id: DriverId::new(0),
            source: GeoPoint::new(41.15, -8.61),
            destination: GeoPoint::new(41.15, -8.61),
            shift_start: Timestamp::from_hours(8),
            shift_end: Timestamp::from_hours(12),
            model: DriverModel::HomeWorkHome,
        }
    }

    #[test]
    fn valid_shift() {
        assert!(shift().validate().is_ok());
        assert_eq!(shift().shift_length(), TimeDelta::from_hours(4));
    }

    #[test]
    fn inverted_window_rejected() {
        let mut s = shift();
        s.shift_end = Timestamp::from_hours(7);
        assert!(s.validate().is_err());
    }

    #[test]
    fn home_work_home_requires_loop() {
        let mut s = shift();
        s.destination = GeoPoint::new(41.2, -8.5);
        assert!(s.validate().is_err());
        s.model = DriverModel::Hitchhiking;
        assert!(s.validate().is_ok());
    }

    #[test]
    fn model_labels() {
        assert_eq!(DriverModel::HomeWorkHome.to_string(), "home-work-home");
        assert_eq!(DriverModel::Hitchhiking.to_string(), "hitchhiking");
    }
}
