//! Multi-day trace generation.
//!
//! The paper's dataset is a **year** of Porto activity; per-day markets are
//! solved independently ("each driver reveals her travel plan … everyday").
//! This module generates a sequence of day traces with realistic
//! day-to-day structure: weekday/weekend demand modulation, per-day RNG
//! streams derived from one master seed, and absolute timestamps offset by
//! the day index so a week can be replayed as one stream or day by day.

use rideshare_types::TimeDelta;

use crate::{Trace, TraceConfig};

/// Relative demand by weekday (Mon..Sun): weekdays flat, Friday busier,
/// Saturday busiest, Sunday quietest — the canonical urban taxi pattern.
const WEEKDAY_DEMAND: [f64; 7] = [1.0, 0.97, 0.98, 1.02, 1.18, 1.25, 0.78];

/// A generated multi-day horizon.
#[derive(Clone, Debug)]
pub struct MultiDayTrace {
    /// One trace per day, timestamps offset by `day × 24 h`.
    pub days: Vec<Trace>,
}

impl MultiDayTrace {
    /// Total number of trips across all days.
    #[must_use]
    pub fn total_trips(&self) -> usize {
        self.days.iter().map(|d| d.trips.len()).sum()
    }

    /// Flattens all days into a single publish-ordered trace (driver lists
    /// are taken from day 0 — cross-day replay reuses the same fleet).
    ///
    /// Returns `None` for an empty horizon.
    #[must_use]
    pub fn flattened(&self) -> Option<Trace> {
        let first = self.days.first()?;
        let mut all = first.clone();
        for day in &self.days[1..] {
            all.trips.extend(day.trips.iter().copied());
        }
        all.trips.sort_by_key(|t| t.publish_time);
        for (i, t) in all.trips.iter_mut().enumerate() {
            t.id = rideshare_types::TaskId::new(i as u32);
        }
        Some(all)
    }
}

/// Generates `num_days` consecutive days from `base` starting on a Monday.
///
/// Each day `d` uses seed `base.seed + d` (independent randomness), scales
/// its task count by the weekday factor, and offsets all timestamps by
/// `d × 24 h`.
///
/// # Examples
///
/// ```
/// use rideshare_trace::{generate_days, DriverModel, TraceConfig};
///
/// let week = generate_days(
///     &TraceConfig::porto()
///         .with_seed(30)
///         .with_task_count(100)
///         .with_driver_count(10, DriverModel::Hitchhiking),
///     7,
/// );
/// assert_eq!(week.days.len(), 7);
/// // Saturday (index 5) out-demands Sunday (index 6).
/// assert!(week.days[5].trips.len() > week.days[6].trips.len());
/// ```
#[must_use]
pub fn generate_days(base: &TraceConfig, num_days: usize) -> MultiDayTrace {
    let base_tasks = base.task_count();
    let days = (0..num_days)
        .map(|d| {
            let weekday = d % 7;
            let tasks = ((base_tasks as f64) * WEEKDAY_DEMAND[weekday])
                .round()
                .max(0.0) as usize;
            let mut day = base
                .clone()
                .with_seed(base.seed().wrapping_add(d as u64))
                .with_task_count(tasks)
                .generate();
            let offset = TimeDelta::from_hours(24 * d as i64);
            for t in &mut day.trips {
                t.publish_time += offset;
                t.pickup_deadline += offset;
                t.completion_deadline += offset;
            }
            for drv in &mut day.drivers {
                drv.shift_start += offset;
                drv.shift_end += offset;
            }
            day
        })
        .collect();
    MultiDayTrace { days }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DriverModel;

    fn base() -> TraceConfig {
        TraceConfig::porto()
            .with_seed(123)
            .with_task_count(120)
            .with_driver_count(8, DriverModel::Hitchhiking)
    }

    #[test]
    fn week_structure() {
        let week = generate_days(&base(), 7);
        assert_eq!(week.days.len(), 7);
        let counts: Vec<usize> = week.days.iter().map(|d| d.trips.len()).collect();
        // Friday (4) and Saturday (5) above Monday; Sunday below.
        assert!(counts[4] > counts[0]);
        assert!(counts[5] > counts[0]);
        assert!(counts[6] < counts[0]);
        assert_eq!(week.total_trips(), counts.iter().sum());
    }

    #[test]
    fn days_offset_and_valid() {
        let two = generate_days(&base(), 2);
        for (d, day) in two.days.iter().enumerate() {
            let lo = 24 * 3600 * d as i64 - 3600; // publish may precede 0h slightly
            let hi = 24 * 3600 * (d as i64 + 1);
            for t in &day.trips {
                t.validate().unwrap();
                assert!(
                    t.pickup_deadline.as_secs() >= lo && t.pickup_deadline.as_secs() <= hi,
                    "day {d}: pickup {} outside [{lo}, {hi}]",
                    t.pickup_deadline
                );
            }
            for drv in &day.drivers {
                drv.validate().unwrap();
            }
        }
    }

    #[test]
    fn days_are_independent_draws() {
        let two = generate_days(&base(), 2);
        // Same weekday factor would give equal counts only by coincidence
        // of the rounding; the actual trips must differ.
        let a = &two.days[0].trips;
        let b = &two.days[1].trips;
        assert!(a.first().map(|t| t.origin) != b.first().map(|t| t.origin));
    }

    #[test]
    fn flattened_is_publish_sorted_and_renumbered() {
        let week = generate_days(&base(), 3);
        let flat = week.flattened().expect("non-empty");
        assert_eq!(flat.trips.len(), week.total_trips());
        assert!(flat
            .trips
            .windows(2)
            .all(|w| w[0].publish_time <= w[1].publish_time));
        for (i, t) in flat.trips.iter().enumerate() {
            assert_eq!(t.id.index(), i);
        }
    }

    #[test]
    fn empty_horizon() {
        let none = generate_days(&base(), 0);
        assert_eq!(none.total_trips(), 0);
        assert!(none.flattened().is_none());
    }
}
