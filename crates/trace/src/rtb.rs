//! `.rtb` — the fixed-width binary trace format for replay input.
//!
//! `rideshare export --format bin` writes a priced event stream as a flat
//! sequence of fixed-width records so `rideshare replay --input <file.rtb>`
//! can run the dispatch engines without the trace generator, the pricer,
//! or a line parser anywhere in the hot loop. The layout is *mmap-able by
//! design*: every record is decodable in place from any `&[u8]` with no
//! intermediate allocation ([`RtbSlice`]), so a consumer may map or slurp
//! the file once and stream events out of the raw bytes. A bounded-memory
//! chunked reader ([`RtbFileReader`]) covers files larger than RAM.
//!
//! ## Layout (version 1, all integers little-endian)
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 4    | magic `b"RTB1"` |
//! | 4      | 2    | format version (`u16`, currently 1) |
//! | 6      | 2    | reserved, must be zero |
//! | 8      | 8    | event count (`u64`; [`COUNT_UNKNOWN`] if the producer streamed blind) |
//! | 16     | …    | records |
//!
//! Each record is exactly a [`crate::wire`] frame *body* — one tag byte
//! followed by that tag's fixed-width payload, floats as IEEE-754 bits —
//! without the socket format's `u32` length prefix. Fixed widths make the
//! prefix redundant: a reader that sees the tag knows the record boundary
//! ([`crate::wire::body_len`]), and decoding reuses
//! [`crate::wire::decode_frame_body`]'s bounds-checked cursor, so hostile
//! bytes surface as typed errors, never panics. The stream is terminated
//! by a single end-of-stream record ([`WireEvent::Eos`]); bytes after it
//! are an error, and a file that ends without it was truncated mid-write.

use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, Read, Write};
use std::path::Path;

use crate::wire::{self, WireError, WireEvent};

/// The four magic bytes every `.rtb` file starts with.
pub const MAGIC: [u8; 4] = *b"RTB1";

/// Current format version written by [`RtbWriter`].
pub const VERSION: u16 = 1;

/// Header size in bytes; records start at this offset.
pub const HEADER_LEN: usize = 16;

/// Sentinel event count for producers that stream without knowing the
/// total in advance (e.g. writing to a pipe). Readers skip the count
/// check when the header carries this value.
pub const COUNT_UNKNOWN: u64 = u64::MAX;

/// Widest possible record (the task record); sized so the chunked reader
/// can use one fixed stack buffer. Pinned against [`wire::body_len`] by a
/// unit test.
const MAX_RECORD: usize = 93;

/// A structural failure while reading an `.rtb` stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtbError {
    /// The first four bytes are not [`MAGIC`] — not an `.rtb` file.
    BadMagic {
        /// The bytes found instead.
        got: [u8; 4],
    },
    /// The header's version field is one this reader does not understand.
    UnsupportedVersion {
        /// The version found.
        got: u16,
    },
    /// The reserved header field was non-zero (written by a future,
    /// incompatible producer).
    ReservedNonZero {
        /// The value found.
        got: u16,
    },
    /// The byte stream ended before the end-of-stream record — the
    /// producer died mid-write or the file was cut short.
    Truncated {
        /// Byte offset at which the next record should have started.
        offset: u64,
    },
    /// A record failed to decode (unknown tag or malformed payload).
    Record(WireError),
    /// Bytes follow the end-of-stream record.
    TrailingBytes {
        /// Byte offset of the first trailing byte.
        offset: u64,
    },
    /// The header declared an event count and the stream carried a
    /// different number of events.
    CountMismatch {
        /// Count from the header.
        declared: u64,
        /// Events actually decoded before end-of-stream.
        decoded: u64,
    },
    /// Transport-level I/O failure while reading.
    Io(String),
}

impl fmt::Display for RtbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtbError::BadMagic { got } => {
                write!(f, "not an .rtb file (magic bytes {got:?})")
            }
            RtbError::UnsupportedVersion { got } => {
                write!(
                    f,
                    "unsupported .rtb version {got} (reader supports {VERSION})"
                )
            }
            RtbError::ReservedNonZero { got } => {
                write!(f, "reserved .rtb header field is {got}, expected 0")
            }
            RtbError::Truncated { offset } => {
                write!(
                    f,
                    ".rtb stream truncated at byte {offset} (no end-of-stream record)"
                )
            }
            RtbError::Record(e) => write!(f, "bad .rtb record: {e}"),
            RtbError::TrailingBytes { offset } => {
                write!(
                    f,
                    "bytes after the .rtb end-of-stream record at byte {offset}"
                )
            }
            RtbError::CountMismatch { declared, decoded } => write!(
                f,
                ".rtb header declared {declared} event(s) but the stream carried {decoded}"
            ),
            RtbError::Io(msg) => write!(f, ".rtb I/O failure: {msg}"),
        }
    }
}

impl std::error::Error for RtbError {}

impl From<WireError> for RtbError {
    fn from(e: WireError) -> Self {
        RtbError::Record(e)
    }
}

/// Builds the 16-byte header for `count` events ([`COUNT_UNKNOWN`] when
/// streaming blind).
#[must_use]
pub fn encode_header(count: u64) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..4].copy_from_slice(&MAGIC);
    h[4..6].copy_from_slice(&VERSION.to_le_bytes());
    // bytes 6..8 reserved, zero
    h[8..16].copy_from_slice(&count.to_le_bytes());
    h
}

/// Parses and validates a header, returning the declared event count.
///
/// # Errors
///
/// Returns the typed [`RtbError`] for a short, foreign, or
/// future-versioned header.
pub fn decode_header(bytes: &[u8]) -> Result<u64, RtbError> {
    let Some(h) = bytes.get(..HEADER_LEN) else {
        return Err(RtbError::Truncated {
            // audit:allow(as-cast): usize -> u64 widens losslessly on every supported target (usize is at most 64 bits); byte offsets in diagnostics only.
            offset: bytes.len() as u64,
        });
    };
    if h[..4] != MAGIC {
        let mut got = [0u8; 4];
        got.copy_from_slice(&h[..4]);
        return Err(RtbError::BadMagic { got });
    }
    let version = u16::from_le_bytes([h[4], h[5]]);
    if version != VERSION {
        return Err(RtbError::UnsupportedVersion { got: version });
    }
    let reserved = u16::from_le_bytes([h[6], h[7]]);
    if reserved != 0 {
        return Err(RtbError::ReservedNonZero { got: reserved });
    }
    let mut count = [0u8; 8];
    count.copy_from_slice(&h[8..16]);
    Ok(u64::from_le_bytes(count))
}

/// Streams events into an `.rtb` byte sink.
///
/// The header is written up front with [`COUNT_UNKNOWN`] (the writer
/// cannot seek back on a pipe); [`RtbWriter::finish`] appends the
/// end-of-stream record and returns the sink plus the event count, which
/// a seekable caller may patch into bytes 8..16 if it wants an exact
/// header. One scratch buffer is reused across records — the writer
/// allocates nothing per event.
pub struct RtbWriter<W: Write> {
    inner: W,
    scratch: Vec<u8>,
    written: u64,
    finished: bool,
}

impl<W: Write> RtbWriter<W> {
    /// Writes the header and readies the record stream.
    ///
    /// # Errors
    ///
    /// Propagates the sink's I/O error.
    pub fn new(mut inner: W) -> io::Result<Self> {
        inner.write_all(&encode_header(COUNT_UNKNOWN))?;
        Ok(Self {
            inner,
            scratch: Vec::with_capacity(MAX_RECORD),
            written: 0,
            finished: false,
        })
    }

    /// Appends one event record. Writing [`WireEvent::Eos`] explicitly is
    /// equivalent to calling [`RtbWriter::finish`] for the record stream
    /// (the terminator is emitted exactly once either way).
    ///
    /// # Errors
    ///
    /// Propagates the sink's I/O error.
    ///
    /// # Panics
    ///
    /// Panics if called after the stream was finished — the format allows
    /// nothing after the terminator.
    pub fn write_event(&mut self, event: &WireEvent) -> io::Result<()> {
        assert!(!self.finished, "write_event after .rtb end-of-stream");
        self.scratch.clear();
        wire::encode_frame_body(event, &mut self.scratch);
        self.inner.write_all(&self.scratch)?;
        if matches!(event, WireEvent::Eos) {
            self.finished = true;
        } else {
            self.written += 1;
        }
        Ok(())
    }

    /// Terminates the stream (writing the end-of-stream record if the
    /// caller has not already), flushes, and returns the sink together
    /// with the number of events written.
    ///
    /// # Errors
    ///
    /// Propagates the sink's I/O error.
    pub fn finish(mut self) -> io::Result<(W, u64)> {
        if !self.finished {
            self.write_event(&WireEvent::Eos)?;
        }
        self.inner.flush()?;
        Ok((self.inner, self.written))
    }
}

/// Zero-copy `.rtb` reader over an in-memory byte slice (a slurped or
/// memory-mapped file). Records decode straight out of `data` — the
/// reader holds no buffer and performs no per-event allocation.
pub struct RtbSlice<'a> {
    data: &'a [u8],
    pos: usize,
    decoded: u64,
    declared: u64,
    done: bool,
}

impl<'a> RtbSlice<'a> {
    /// Validates the header and positions the reader at the first record.
    ///
    /// # Errors
    ///
    /// Returns the typed [`RtbError`] for a short or foreign header.
    pub fn new(data: &'a [u8]) -> Result<Self, RtbError> {
        let declared = decode_header(data)?;
        Ok(Self {
            data,
            pos: HEADER_LEN,
            decoded: 0,
            declared,
            done: false,
        })
    }

    /// The header's event count, or `None` if the producer streamed blind.
    #[must_use]
    pub fn declared_count(&self) -> Option<u64> {
        (self.declared != COUNT_UNKNOWN).then_some(self.declared)
    }

    /// Events decoded so far.
    #[must_use]
    pub fn decoded_count(&self) -> u64 {
        self.decoded
    }

    /// The next event, or `Ok(None)` after a clean end-of-stream record.
    ///
    /// # Errors
    ///
    /// Returns the typed [`RtbError`] on truncation, a malformed record,
    /// trailing bytes, or a header/stream count mismatch; never panics on
    /// hostile input.
    // Fallible-iterator pull, same idiom as `FrameDecoder::next`.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<WireEvent>, RtbError> {
        if self.done {
            return Ok(None);
        }
        let Some(&tag) = self.data.get(self.pos) else {
            return Err(RtbError::Truncated {
                // audit:allow(as-cast): usize -> u64 widens losslessly on every supported target (usize is at most 64 bits); byte offsets in diagnostics only.
                offset: self.pos as u64,
            });
        };
        let Some(len) = wire::body_len(tag) else {
            return Err(RtbError::Record(WireError::UnknownTag(tag)));
        };
        let end = self.pos + len;
        let Some(body) = self.data.get(self.pos..end) else {
            return Err(RtbError::Truncated {
                // audit:allow(as-cast): usize -> u64 widens losslessly on every supported target (usize is at most 64 bits); byte offsets in diagnostics only.
                offset: self.pos as u64,
            });
        };
        let event = wire::decode_frame_body(body)?;
        self.pos = end;
        if matches!(event, WireEvent::Eos) {
            self.finish_stream(self.data.len() != self.pos)?;
            return Ok(None);
        }
        self.decoded += 1;
        Ok(Some(event))
    }

    fn finish_stream(&mut self, trailing: bool) -> Result<(), RtbError> {
        if trailing {
            return Err(RtbError::TrailingBytes {
                // audit:allow(as-cast): usize -> u64 widens losslessly on every supported target (usize is at most 64 bits); byte offsets in diagnostics only.
                offset: self.pos as u64,
            });
        }
        if self.declared != COUNT_UNKNOWN && self.declared != self.decoded {
            return Err(RtbError::CountMismatch {
                declared: self.declared,
                decoded: self.decoded,
            });
        }
        self.done = true;
        Ok(())
    }
}

/// Bounded-memory chunked `.rtb` reader for files larger than RAM (or any
/// non-seekable byte stream). Holds one record-sized stack buffer; chunk
/// boundaries are invisible to the decode (pinned equal to [`RtbSlice`]
/// by test).
pub struct RtbFileReader<R: Read = BufReader<File>> {
    inner: R,
    offset: u64,
    decoded: u64,
    declared: u64,
    done: bool,
    buf: [u8; MAX_RECORD],
}

impl RtbFileReader<BufReader<File>> {
    /// Opens `path` buffered and validates its header.
    ///
    /// # Errors
    ///
    /// Returns [`RtbError::Io`] if the file cannot be opened, or the
    /// header's typed error.
    pub fn open(path: &Path) -> Result<Self, RtbError> {
        let file =
            File::open(path).map_err(|e| RtbError::Io(format!("{}: {e}", path.display())))?;
        Self::from_reader(BufReader::new(file))
    }
}

impl<R: Read> RtbFileReader<R> {
    /// Wraps any byte stream (reads the header immediately).
    ///
    /// # Errors
    ///
    /// Returns the header's typed error, or [`RtbError::Io`] on a
    /// transport failure.
    pub fn from_reader(mut inner: R) -> Result<Self, RtbError> {
        let mut header = [0u8; HEADER_LEN];
        read_exact_at(&mut inner, &mut header, 0)?;
        let declared = decode_header(&header)?;
        Ok(Self {
            inner,
            // audit:allow(as-cast): usize -> u64 widens losslessly on every supported target (usize is at most 64 bits); byte offsets in diagnostics only.
            offset: HEADER_LEN as u64,
            decoded: 0,
            declared,
            done: false,
            buf: [0u8; MAX_RECORD],
        })
    }

    /// The header's event count, or `None` if the producer streamed blind.
    #[must_use]
    pub fn declared_count(&self) -> Option<u64> {
        (self.declared != COUNT_UNKNOWN).then_some(self.declared)
    }

    /// The next event, or `Ok(None)` after a clean end-of-stream record.
    ///
    /// # Errors
    ///
    /// Same contract as [`RtbSlice::next`], plus [`RtbError::Io`] for
    /// transport failures.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<WireEvent>, RtbError> {
        if self.done {
            return Ok(None);
        }
        let mut tag = [0u8; 1];
        read_exact_at(&mut self.inner, &mut tag, self.offset)?;
        let Some(len) = wire::body_len(tag[0]) else {
            return Err(RtbError::Record(WireError::UnknownTag(tag[0])));
        };
        self.buf[0] = tag[0];
        read_exact_at(&mut self.inner, &mut self.buf[1..len], self.offset)?;
        let event = wire::decode_frame_body(&self.buf[..len])?;
        // audit:allow(as-cast): usize -> u64 widens losslessly on every supported target (usize is at most 64 bits); byte offsets in diagnostics only.
        self.offset += len as u64;
        if matches!(event, WireEvent::Eos) {
            self.finish_stream()?;
            return Ok(None);
        }
        self.decoded += 1;
        Ok(Some(event))
    }

    fn finish_stream(&mut self) -> Result<(), RtbError> {
        let mut probe = [0u8; 1];
        loop {
            match self.inner.read(&mut probe) {
                Ok(0) => break,
                Ok(_) => {
                    return Err(RtbError::TrailingBytes {
                        offset: self.offset,
                    })
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(RtbError::Io(e.to_string())),
            }
        }
        if self.declared != COUNT_UNKNOWN && self.declared != self.decoded {
            return Err(RtbError::CountMismatch {
                declared: self.declared,
                decoded: self.decoded,
            });
        }
        self.done = true;
        Ok(())
    }
}

/// `read_exact` with `.rtb` error mapping: end-of-stream mid-record is
/// [`RtbError::Truncated`] at `offset`, everything else [`RtbError::Io`].
fn read_exact_at<R: Read>(inner: &mut R, buf: &mut [u8], offset: u64) -> Result<(), RtbError> {
    inner.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            RtbError::Truncated { offset }
        } else {
            RtbError::Io(e.to_string())
        }
    })
}

/// Decodes a whole in-memory `.rtb` stream (convenience over
/// [`RtbSlice`]).
///
/// # Errors
///
/// Returns the first typed [`RtbError`].
pub fn read_events(data: &[u8]) -> Result<Vec<WireEvent>, RtbError> {
    let mut slice = RtbSlice::new(data)?;
    // Capacity hint only — capped so a hostile header cannot force a
    // huge allocation before a single record has decoded.
    let hint = slice.declared_count().unwrap_or(0).min(65_536);
    let mut out = Vec::with_capacity(usize::try_from(hint).unwrap_or(0));
    while let Some(e) = slice.next()? {
        out.push(e);
    }
    Ok(out)
}

/// Writes `events` (terminator excluded — it is appended automatically)
/// as a complete `.rtb` stream, returning the event count.
///
/// # Errors
///
/// Propagates the sink's I/O error.
pub fn write_events<'e, W, I>(sink: W, events: I) -> io::Result<u64>
where
    W: Write,
    I: IntoIterator<Item = &'e WireEvent>,
{
    let mut writer = RtbWriter::new(sink)?;
    for e in events {
        writer.write_event(e)?;
    }
    let (_, count) = writer.finish()?;
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DriverModel;
    use rideshare_geo::GeoPoint;
    use rideshare_types::{TimeDelta, Timestamp};
    use std::io::Cursor;

    fn sample_events() -> Vec<WireEvent> {
        vec![
            WireEvent::DriverOnline(wire::WireDriver {
                id: 0,
                source: GeoPoint::new(41.1579, -8.6291),
                destination: GeoPoint::new(41.2, -8.5),
                shift_start: Timestamp::from_secs(0),
                shift_end: Timestamp::from_secs(36_000),
                model: DriverModel::Hitchhiking,
            }),
            WireEvent::TaskPublished(wire::WireTask {
                id: 7,
                publish_time: Timestamp::from_secs(3600),
                origin: GeoPoint::new(41.15, -8.61),
                destination: GeoPoint::new(41.16, -8.58),
                pickup_deadline: Timestamp::from_secs(3900),
                completion_deadline: Timestamp::from_secs(5400),
                duration: TimeDelta::from_secs(740),
                price: 6.25,
                valuation: 0.1 + 0.2,
                service_cost: 1.0 / 3.0,
            }),
            WireEvent::DriverOffline(0),
            WireEvent::EpochTick(i64::MIN),
        ]
    }

    fn encode(events: &[WireEvent]) -> Vec<u8> {
        let mut bytes = Vec::new();
        write_events(&mut bytes, events).unwrap();
        bytes
    }

    #[test]
    fn round_trip_is_identity() {
        let events = sample_events();
        let bytes = encode(&events);
        assert_eq!(read_events(&bytes).unwrap(), events);
    }

    #[test]
    fn max_record_covers_every_tag() {
        let widest = (0..=u8::MAX).filter_map(wire::body_len).max().unwrap();
        assert_eq!(widest, MAX_RECORD);
    }

    #[test]
    fn chunked_reader_equals_slice_reader() {
        let bytes = encode(&sample_events());
        let mut from_slice = Vec::new();
        let mut slice = RtbSlice::new(&bytes).unwrap();
        while let Some(e) = slice.next().unwrap() {
            from_slice.push(e);
        }
        // A 3-byte BufReader forces every record across chunk boundaries.
        let tiny = BufReader::with_capacity(3, Cursor::new(bytes));
        let mut reader = RtbFileReader::from_reader(tiny).unwrap();
        let mut from_chunks = Vec::new();
        while let Some(e) = reader.next().unwrap() {
            from_chunks.push(e);
        }
        assert_eq!(from_slice, from_chunks);
    }

    #[test]
    fn header_is_validated() {
        let events = sample_events();
        let good = encode(&events);

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            RtbSlice::new(&bad),
            Err(RtbError::BadMagic { .. })
        ));

        let mut bad = good.clone();
        bad[4] = 99;
        assert_eq!(
            RtbSlice::new(&bad).err(),
            Some(RtbError::UnsupportedVersion { got: 99 })
        );

        let mut bad = good.clone();
        bad[6] = 1;
        assert_eq!(
            RtbSlice::new(&bad).err(),
            Some(RtbError::ReservedNonZero { got: 1 })
        );

        assert!(matches!(
            RtbSlice::new(&good[..7]),
            Err(RtbError::Truncated { .. })
        ));
    }

    #[test]
    fn declared_count_is_checked() {
        let events = sample_events();
        let mut bytes = encode(&events);
        // Patch an exact (correct) count into the header: accepted.
        bytes[8..16].copy_from_slice(&(events.len() as u64).to_le_bytes());
        assert_eq!(read_events(&bytes).unwrap(), events);
        // Patch a wrong count: typed mismatch.
        bytes[8..16].copy_from_slice(&7u64.to_le_bytes());
        assert_eq!(
            read_events(&bytes).err(),
            Some(RtbError::CountMismatch {
                declared: 7,
                decoded: events.len() as u64,
            })
        );
    }

    #[test]
    fn truncation_and_trailing_bytes_are_typed() {
        let bytes = encode(&sample_events());

        // Cut mid-record (drop the Eos terminator and then some).
        for cut in [bytes.len() - 1, bytes.len() - 2, HEADER_LEN + 1] {
            let err = read_events(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, RtbError::Truncated { .. }),
                "cut at {cut}: {err:?}"
            );
        }

        // Bytes after the terminator.
        let mut padded = bytes.clone();
        padded.push(0xAB);
        assert!(matches!(
            read_events(&padded).unwrap_err(),
            RtbError::TrailingBytes { .. }
        ));

        // Unknown record tag.
        let mut corrupt = bytes.clone();
        corrupt[HEADER_LEN] = 200;
        assert_eq!(
            read_events(&corrupt).unwrap_err(),
            RtbError::Record(WireError::UnknownTag(200))
        );

        // The chunked reader agrees on all of it.
        let cut = &bytes[..bytes.len() - 1];
        let mut reader = RtbFileReader::from_reader(Cursor::new(cut.to_vec())).unwrap();
        let err = loop {
            match reader.next() {
                Ok(Some(_)) => {}
                Ok(None) => panic!("expected truncation"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, RtbError::Truncated { .. }));
    }

    #[test]
    fn writer_rejects_records_after_finish() {
        let mut bytes = Vec::new();
        let mut w = RtbWriter::new(&mut bytes).unwrap();
        w.write_event(&WireEvent::EpochTick(5)).unwrap();
        w.write_event(&WireEvent::Eos).unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = w.write_event(&WireEvent::EpochTick(6));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn empty_stream_is_just_header_plus_terminator() {
        let bytes = encode(&[]);
        assert_eq!(bytes.len(), HEADER_LEN + 1);
        assert_eq!(read_events(&bytes).unwrap(), Vec::new());
    }
}
