//! Synthetic Porto-calibrated taxi-trace generation.
//!
//! The paper's evaluation (§VI-A) replays one year of trajectories of the
//! 442 taxis of Porto, Portugal (the ECML/PKDD-15 Kaggle dataset). That
//! dataset cannot be redistributed here, so this crate **synthesises a
//! statistically equivalent trace**:
//!
//! - trip *travel distance* and *travel time* follow truncated power-law
//!   (Pareto) marginals — the paper's own Figs. 3–4 report exactly this
//!   shape for the real trace,
//! - pickups cluster around Porto's demand hotspots (downtown, Campanhã
//!   station, the airport) with Gaussian dispersion,
//! - task arrival times follow the double-peaked daily demand profile of
//!   urban taxi markets,
//! - drivers come in the paper's two working models: **home-work-home**
//!   (source = destination, the full-time Uber model) and **hitchhiking**
//!   (random source/destination, the Waze Rider commuter model), generated
//!   by the Monte-Carlo method of §VI-A.
//!
//! Everything is deterministic given a seed, so experiments are exactly
//! reproducible.
//!
//! # Examples
//!
//! ```
//! use rideshare_trace::{DriverModel, TraceConfig};
//!
//! let trace = TraceConfig::porto()
//!     .with_seed(7)
//!     .with_task_count(100)
//!     .with_driver_count(25, DriverModel::Hitchhiking)
//!     .generate();
//! assert_eq!(trace.trips.len(), 100);
//! assert_eq!(trace.drivers.len(), 25);
//! // Trips are sorted by publish time, ready for online replay.
//! assert!(trace
//!     .trips
//!     .windows(2)
//!     .all(|w| w[0].publish_time <= w[1].publish_time));
//! ```

// Lint levels (unsafe_code, missing_docs) come from [workspace.lints].

mod csv;
mod driver;
mod generator;
mod multi_day;
pub mod rtb;
mod sampler;
pub mod stats;
mod stream;
mod trip;
pub mod wire;

pub use csv::{drivers_from_csv, drivers_to_csv, trips_from_csv, trips_to_csv};
pub use driver::{DriverModel, DriverShift};
pub use generator::{Trace, TraceConfig};
pub use multi_day::{generate_days, MultiDayTrace};
pub use sampler::{sample_categorical, LogNormal, TruncatedPareto};
pub use stream::TraceStream;
pub use trip::TripRecord;
