//! CSV import/export for traces.
//!
//! Hand-rolled (the values are all numeric, with no quoting or escaping
//! needs) so the workspace needs no CSV/serde dependency. The format is
//! stable and documented per function, making generated traces portable to
//! external plotting tools and back.

use rideshare_geo::GeoPoint;
use rideshare_types::{DriverId, TaskId, TimeDelta, Timestamp};

use crate::{DriverModel, DriverShift, TripRecord};

/// Header used by [`trips_to_csv`].
const TRIP_HEADER: &str =
    "id,publish_secs,origin_lat,origin_lon,dest_lat,dest_lon,pickup_secs,completion_secs,distance_km,duration_secs";

/// Header used by [`drivers_to_csv`].
const DRIVER_HEADER: &str =
    "id,source_lat,source_lon,dest_lat,dest_lon,shift_start_secs,shift_end_secs,model";

/// Serialises trips to CSV (header + one row per trip).
///
/// # Examples
///
/// ```
/// use rideshare_trace::{trips_from_csv, trips_to_csv, TraceConfig};
/// let trace = TraceConfig::porto().with_task_count(5).generate();
/// let csv = trips_to_csv(&trace.trips);
/// let back = trips_from_csv(&csv).unwrap();
/// assert_eq!(back.len(), 5);
/// ```
#[must_use]
pub fn trips_to_csv(trips: &[TripRecord]) -> String {
    let mut out = String::with_capacity(64 * (trips.len() + 1));
    out.push_str(TRIP_HEADER);
    out.push('\n');
    for t in trips {
        out.push_str(&format!(
            "{},{},{:.7},{:.7},{:.7},{:.7},{},{},{:.5},{}\n",
            t.id.raw(),
            t.publish_time.as_secs(),
            t.origin.lat(),
            t.origin.lon(),
            t.destination.lat(),
            t.destination.lon(),
            t.pickup_deadline.as_secs(),
            t.completion_deadline.as_secs(),
            t.distance_km,
            t.duration.as_secs(),
        ));
    }
    out
}

/// Parses the output of [`trips_to_csv`].
///
/// # Errors
///
/// Returns a human-readable description of the first malformed line.
pub fn trips_from_csv(csv: &str) -> Result<Vec<TripRecord>, String> {
    let mut lines = csv.lines();
    match lines.next() {
        Some(h) if h == TRIP_HEADER => {}
        other => return Err(format!("bad trip header: {other:?}")),
    }
    let mut out = Vec::new();
    for (ln, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != 10 {
            return Err(format!(
                "line {}: expected 10 fields, got {}",
                ln + 2,
                f.len()
            ));
        }
        let err = |what: &str| format!("line {}: bad {what}", ln + 2);
        out.push(TripRecord {
            id: TaskId::new(f[0].parse().map_err(|_| err("id"))?),
            publish_time: Timestamp::from_secs(f[1].parse().map_err(|_| err("publish_secs"))?),
            origin: GeoPoint::new(
                f[2].parse().map_err(|_| err("origin_lat"))?,
                f[3].parse().map_err(|_| err("origin_lon"))?,
            ),
            destination: GeoPoint::new(
                f[4].parse().map_err(|_| err("dest_lat"))?,
                f[5].parse().map_err(|_| err("dest_lon"))?,
            ),
            pickup_deadline: Timestamp::from_secs(f[6].parse().map_err(|_| err("pickup_secs"))?),
            completion_deadline: Timestamp::from_secs(
                f[7].parse().map_err(|_| err("completion_secs"))?,
            ),
            distance_km: f[8].parse().map_err(|_| err("distance_km"))?,
            duration: TimeDelta::from_secs(f[9].parse().map_err(|_| err("duration_secs"))?),
        });
    }
    Ok(out)
}

/// Serialises driver shifts to CSV (header + one row per driver).
#[must_use]
pub fn drivers_to_csv(drivers: &[DriverShift]) -> String {
    let mut out = String::with_capacity(48 * (drivers.len() + 1));
    out.push_str(DRIVER_HEADER);
    out.push('\n');
    for d in drivers {
        out.push_str(&format!(
            "{},{:.7},{:.7},{:.7},{:.7},{},{},{}\n",
            d.id.raw(),
            d.source.lat(),
            d.source.lon(),
            d.destination.lat(),
            d.destination.lon(),
            d.shift_start.as_secs(),
            d.shift_end.as_secs(),
            match d.model {
                DriverModel::HomeWorkHome => "hwh",
                DriverModel::Hitchhiking => "hitch",
            },
        ));
    }
    out
}

/// Parses the output of [`drivers_to_csv`].
///
/// # Errors
///
/// Returns a human-readable description of the first malformed line.
pub fn drivers_from_csv(csv: &str) -> Result<Vec<DriverShift>, String> {
    let mut lines = csv.lines();
    match lines.next() {
        Some(h) if h == DRIVER_HEADER => {}
        other => return Err(format!("bad driver header: {other:?}")),
    }
    let mut out = Vec::new();
    for (ln, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != 8 {
            return Err(format!(
                "line {}: expected 8 fields, got {}",
                ln + 2,
                f.len()
            ));
        }
        let err = |what: &str| format!("line {}: bad {what}", ln + 2);
        out.push(DriverShift {
            id: DriverId::new(f[0].parse().map_err(|_| err("id"))?),
            source: GeoPoint::new(
                f[1].parse().map_err(|_| err("source_lat"))?,
                f[2].parse().map_err(|_| err("source_lon"))?,
            ),
            destination: GeoPoint::new(
                f[3].parse().map_err(|_| err("dest_lat"))?,
                f[4].parse().map_err(|_| err("dest_lon"))?,
            ),
            shift_start: Timestamp::from_secs(f[5].parse().map_err(|_| err("shift_start_secs"))?),
            shift_end: Timestamp::from_secs(f[6].parse().map_err(|_| err("shift_end_secs"))?),
            model: match f[7].trim() {
                "hwh" => DriverModel::HomeWorkHome,
                "hitch" => DriverModel::Hitchhiking,
                other => return Err(format!("line {}: bad model {other:?}", ln + 2)),
            },
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceConfig;

    #[test]
    fn trip_round_trip() {
        let trace = TraceConfig::porto()
            .with_seed(1)
            .with_task_count(20)
            .generate();
        let csv = trips_to_csv(&trace.trips);
        let back = trips_from_csv(&csv).unwrap();
        assert_eq!(back.len(), trace.trips.len());
        for (a, b) in trace.trips.iter().zip(&back) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.publish_time, b.publish_time);
            assert_eq!(a.pickup_deadline, b.pickup_deadline);
            assert_eq!(a.completion_deadline, b.completion_deadline);
            assert_eq!(a.duration, b.duration);
            assert!((a.distance_km - b.distance_km).abs() < 1e-4);
            assert!(a.origin.haversine_km(b.origin) < 0.01);
        }
    }

    #[test]
    fn driver_round_trip_both_models() {
        for model in [DriverModel::HomeWorkHome, DriverModel::Hitchhiking] {
            let trace = TraceConfig::porto()
                .with_seed(2)
                .with_task_count(1)
                .with_driver_count(10, model)
                .generate();
            let csv = drivers_to_csv(&trace.drivers);
            let back = drivers_from_csv(&csv).unwrap();
            assert_eq!(back.len(), 10);
            for (a, b) in trace.drivers.iter().zip(&back) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.model, b.model);
                assert_eq!(a.shift_start, b.shift_start);
                assert_eq!(a.shift_end, b.shift_end);
            }
        }
    }

    #[test]
    fn rejects_bad_header() {
        assert!(trips_from_csv("nope\n1,2,3").is_err());
        assert!(drivers_from_csv("nope\n1,2,3").is_err());
    }

    #[test]
    fn rejects_malformed_rows() {
        let good = TraceConfig::porto()
            .with_seed(1)
            .with_task_count(1)
            .generate();
        let mut csv = trips_to_csv(&good.trips);
        csv.push_str("1,2,3\n");
        let e = trips_from_csv(&csv).unwrap_err();
        assert!(e.contains("expected 10 fields"), "{e}");

        let mut csv2 = drivers_to_csv(&good.drivers);
        csv2 = csv2.replace("hitch", "teleport");
        let e2 = drivers_from_csv(&csv2).unwrap_err();
        assert!(e2.contains("bad model"), "{e2}");
    }

    #[test]
    fn empty_lines_skipped() {
        let trace = TraceConfig::porto()
            .with_seed(4)
            .with_task_count(3)
            .generate();
        let mut csv = trips_to_csv(&trace.trips);
        csv.push('\n');
        assert_eq!(trips_from_csv(&csv).unwrap().len(), 3);
    }
}
