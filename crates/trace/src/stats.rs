//! Distribution statistics for trace validation (Figs. 3–4).
//!
//! The paper cleans the Porto trace with Pandas and plots the travel-time
//! and travel-distance distributions, observing power-law shapes. This
//! module provides the equivalent native tooling: histograms (linear and
//! logarithmic bins), empirical CCDFs, summary percentiles, and a
//! maximum-likelihood power-law exponent fit.

/// A fixed-bin histogram over `[lo, hi)`.
///
/// # Examples
///
/// ```
/// use rideshare_trace::stats::Histogram;
/// let mut h = Histogram::linear(0.0, 10.0, 5);
/// for x in [1.0, 1.5, 7.0] {
///     h.add(x);
/// }
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bin_counts()[0], 2);
/// ```
#[derive(Clone, Debug)]
pub struct Histogram {
    edges: Vec<f64>,
    counts: Vec<u64>,
    below: u64,
    above: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins on `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    #[must_use]
    pub fn linear(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(hi > lo, "hi must exceed lo");
        let w = (hi - lo) / bins as f64;
        let edges = (0..=bins).map(|i| lo + w * i as f64).collect();
        Self {
            edges,
            counts: vec![0; bins],
            below: 0,
            above: 0,
        }
    }

    /// Creates a histogram with `bins` logarithmically spaced bins on
    /// `[lo, hi)` — the natural binning for power-law data.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`, `lo <= 0`, or `hi <= lo`.
    #[must_use]
    pub fn logarithmic(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(lo > 0.0, "log bins need positive lo");
        assert!(hi > lo, "hi must exceed lo");
        let (llo, lhi) = (lo.ln(), hi.ln());
        let w = (lhi - llo) / bins as f64;
        let edges = (0..=bins).map(|i| (llo + w * i as f64).exp()).collect();
        Self {
            edges,
            counts: vec![0; bins],
            below: 0,
            above: 0,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        let lo = self.edges[0];
        let hi = *self.edges.last().expect("non-empty edges");
        if x < lo {
            self.below += 1;
            return;
        }
        if x >= hi {
            self.above += 1;
            return;
        }
        // Binary search for the bin (edges are sorted).
        let idx = match self
            .edges
            .binary_search_by(|e| e.partial_cmp(&x).expect("finite edge"))
        {
            Ok(i) => i.min(self.counts.len() - 1),
            Err(i) => i - 1,
        };
        self.counts[idx] += 1;
    }

    /// Adds every observation from the slice.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.add(x);
        }
    }

    /// Per-bin counts.
    #[must_use]
    pub fn bin_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Bin edges (`bins + 1` values).
    #[must_use]
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Number of in-range observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Observations that fell outside `[lo, hi)` as `(below, above)`.
    #[must_use]
    pub fn out_of_range(&self) -> (u64, u64) {
        (self.below, self.above)
    }

    /// `(bin centre, density)` pairs, normalised so densities integrate
    /// to the in-range fraction — comparable across bin widths, which is
    /// what a log-binned power-law plot needs.
    #[must_use]
    pub fn density(&self) -> Vec<(f64, f64)> {
        let total = self.count().max(1) as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let (lo, hi) = (self.edges[i], self.edges[i + 1]);
                let center = f64::midpoint(lo, hi);
                let width = hi - lo;
                (center, c as f64 / (total * width))
            })
            .collect()
    }
}

/// Empirical complementary CDF: fraction of observations `> x` at each
/// distinct observation, sorted ascending.
///
/// # Examples
///
/// ```
/// use rideshare_trace::stats::ccdf;
/// let pts = ccdf(&[1.0, 2.0, 2.0, 4.0]);
/// assert_eq!(pts[0], (1.0, 0.75));
/// assert_eq!(pts.last().copied(), Some((4.0, 0.0)));
/// ```
#[must_use]
pub fn ccdf(xs: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite observation"));
    let n = sorted.len();
    let mut out: Vec<(f64, f64)> = Vec::new();
    let mut i = 0;
    while i < n {
        let x = sorted[i];
        let mut j = i;
        while j < n && sorted[j] == x {
            j += 1;
        }
        out.push((x, (n - j) as f64 / n as f64));
        i = j;
    }
    out
}

/// Maximum-likelihood estimate of a continuous power-law exponent `α` for
/// observations with lower cutoff `xmin` (Clauset–Shalizi–Newman):
/// `α̂ = 1 + n / Σ ln(xᵢ / xmin)` over `xᵢ ≥ xmin`.
///
/// Returns `None` if fewer than 10 observations exceed `xmin`.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use rideshare_trace::{stats::fit_power_law, TruncatedPareto};
/// let d = TruncatedPareto::new(1.0, 1e6, 2.5);
/// let mut rng = StdRng::seed_from_u64(2);
/// let xs: Vec<f64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
/// let alpha = fit_power_law(&xs, 1.0).unwrap();
/// assert!((alpha - 2.5).abs() < 0.1);
/// ```
#[must_use]
pub fn fit_power_law(xs: &[f64], xmin: f64) -> Option<f64> {
    assert!(xmin > 0.0, "xmin must be positive");
    let tail: Vec<f64> = xs.iter().copied().filter(|&x| x >= xmin).collect();
    if tail.len() < 10 {
        return None;
    }
    let log_sum: f64 = tail.iter().map(|&x| (x / xmin).ln()).sum();
    if log_sum <= 0.0 {
        return None;
    }
    Some(1.0 + tail.len() as f64 / log_sum)
}

/// Summary percentiles of a sample.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum observation.
    pub max: f64,
}

/// Computes [`Summary`] statistics; returns `None` on an empty sample.
#[must_use]
pub fn summarize(xs: &[f64]) -> Option<Summary> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite observation"));
    let pct = |q: f64| -> f64 {
        let idx = ((sorted.len() as f64 - 1.0) * q).floor() as usize;
        sorted[idx]
    };
    Some(Summary {
        count: sorted.len(),
        mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
        p50: pct(0.50),
        p90: pct(0.90),
        p99: pct(0.99),
        max: *sorted.last().expect("non-empty"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_histogram_binning() {
        let mut h = Histogram::linear(0.0, 10.0, 10);
        h.extend(&[0.0, 0.5, 1.0, 9.99, -1.0, 10.0, 25.0]);
        assert_eq!(h.bin_counts()[0], 2);
        assert_eq!(h.bin_counts()[1], 1);
        assert_eq!(h.bin_counts()[9], 1);
        assert_eq!(h.count(), 4);
        assert_eq!(h.out_of_range(), (1, 2));
    }

    #[test]
    fn log_histogram_covers_decades() {
        let mut h = Histogram::logarithmic(0.1, 100.0, 3);
        // Bins: [0.1,1), [1,10), [10,100).
        h.extend(&[0.5, 5.0, 50.0]);
        assert_eq!(h.bin_counts(), &[1, 1, 1]);
        let e = h.edges();
        assert!((e[1] - 1.0).abs() < 1e-9);
        assert!((e[2] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn density_integrates_to_one() {
        let mut h = Histogram::logarithmic(1.0, 100.0, 20);
        let xs: Vec<f64> = (1..1000).map(|i| 1.0 + (i as f64) * 0.099).collect();
        h.extend(&xs);
        let integral: f64 = h
            .density()
            .iter()
            .zip(h.edges().windows(2))
            .map(|((_, d), e)| d * (e[1] - e[0]))
            .sum();
        assert!((integral - 1.0).abs() < 1e-9, "integral {integral}");
    }

    #[test]
    fn ccdf_monotone_nonincreasing() {
        let pts = ccdf(&[3.0, 1.0, 2.0, 2.0, 5.0]);
        assert_eq!(pts.len(), 4);
        assert!(pts.windows(2).all(|w| w[0].1 >= w[1].1));
        assert!(pts.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(pts.last().expect("non-empty").1, 0.0);
    }

    #[test]
    fn fit_power_law_needs_data() {
        assert!(fit_power_law(&[1.0, 2.0], 1.0).is_none());
        assert!(fit_power_law(&[0.5; 100], 1.0).is_none());
    }

    #[test]
    fn summary_percentiles() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = summarize(&xs).unwrap();
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p90, 90.0);
        assert_eq!(s.p99, 99.0);
        assert_eq!(s.max, 100.0);
        assert!(summarize(&[]).is_none());
    }
}
