//! Ablation bench: spatial grid index vs linear scan for online candidate
//! generation (identical dispatch decisions — see the online crate's
//! `grid_and_linear_scan_agree` test — different asymptotics).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rideshare_bench::build_market;
use rideshare_online::{MaxMargin, SimulationOptions, Simulator};
use rideshare_trace::DriverModel;

fn bench_grid_vs_linear(c: &mut Criterion) {
    let mut group = c.benchmark_group("candidate_search");
    group.sample_size(10);
    for &drivers in &[50usize, 200] {
        let market = build_market(3, 400, drivers, DriverModel::Hitchhiking);
        let sim = Simulator::new(&market);
        group.bench_with_input(BenchmarkId::new("linear", drivers), &sim, |b, sim| {
            b.iter(|| {
                let mut p = MaxMargin::new();
                black_box(sim.run(&mut p, SimulationOptions::default()))
            });
        });
        group.bench_with_input(BenchmarkId::new("grid", drivers), &sim, |b, sim| {
            b.iter(|| {
                let mut p = MaxMargin::new();
                black_box(sim.run(
                    &mut p,
                    SimulationOptions {
                        use_grid: true,
                        ..Default::default()
                    },
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_grid_vs_linear);
criterion_main!(benches);
