//! Criterion benchmarks of the hand-rolled LP/MILP substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rideshare_lp::{BranchAndBound, Cmp, LinearProgram, PackingLp};

/// A dense n×n assignment LP (integral relaxation, exercises pivoting).
fn assignment_lp(n: usize) -> LinearProgram {
    let mut lp = LinearProgram::maximize();
    let mut vars = vec![vec![0usize; n]; n];
    let mut state = 123u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    for (i, row) in vars.iter_mut().enumerate() {
        for (j, v) in row.iter_mut().enumerate() {
            *v = lp.add_var(format!("a{i}{j}"), 1.0 + 9.0 * next());
        }
    }
    for (i, row) in vars.iter().enumerate() {
        lp.add_constraint(row.iter().map(|&v| (v, 1.0)).collect(), Cmp::Le, 1.0);
        lp.add_constraint((0..n).map(|j| (vars[j][i], 1.0)).collect(), Cmp::Le, 1.0);
    }
    lp
}

fn bench_simplex(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_simplex_assignment");
    for &n in &[8usize, 16, 32] {
        let lp = assignment_lp(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &lp, |b, lp| {
            b.iter(|| black_box(lp.solve().expect("solvable")));
        });
    }
    group.finish();
}

fn bench_packing_warm_start(c: &mut Criterion) {
    c.bench_function("packing_lp_incremental_200cols", |b| {
        b.iter(|| {
            let rows = 40;
            let mut lp = PackingLp::new(rows);
            let mut state = 5u64;
            let mut next = move || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as usize
            };
            // Column-generation-like loop: add a few columns, re-optimise.
            for batch in 0..20 {
                for k in 0..10 {
                    let a = next() % rows;
                    let b2 = next() % rows;
                    let mut support = if a == b2 {
                        vec![a]
                    } else {
                        vec![a.min(b2), a.max(b2)]
                    };
                    support.dedup();
                    lp.add_column(1.0 + ((batch * 10 + k) % 7) as f64, &support);
                }
                lp.optimize().expect("packing LP always solvable");
            }
            black_box(lp.objective())
        });
    });
}

fn bench_branch_and_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("branch_and_bound_knapsack");
    group.sample_size(10);
    for &n in &[10usize, 14] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut lp = LinearProgram::maximize();
                let vars: Vec<usize> = (0..n)
                    .map(|i| lp.add_var(format!("x{i}"), 10.0 + i as f64))
                    .collect();
                let coeffs: Vec<(usize, f64)> = vars
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| (v, 11.0 + (i % 5) as f64))
                    .collect();
                lp.add_constraint(coeffs, Cmp::Le, (3 * n) as f64);
                black_box(
                    BranchAndBound::new(lp, vars)
                        .solve()
                        .expect("knapsack solvable"),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_simplex,
    bench_packing_warm_start,
    bench_branch_and_bound
);
criterion_main!(benches);
