//! Criterion benchmarks for the framework's extensions: batched dispatch,
//! geographic partitioning, and dynamic surge pricing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rideshare_bench::build_market;
use rideshare_core::{partition::solve_partitioned, Market, MarketBuildOptions, Objective};
use rideshare_online::run_batched;
use rideshare_trace::{DriverModel, TraceConfig};
use rideshare_types::TimeDelta;

fn bench_batched(c: &mut Criterion) {
    let mut group = c.benchmark_group("batched_dispatch");
    group.sample_size(10);
    let market = build_market(3, 300, 40, DriverModel::Hitchhiking);
    for &mins in &[0i64, 2, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(mins), &mins, |b, &mins| {
            b.iter(|| black_box(run_batched(&market, TimeDelta::from_mins(mins))));
        });
    }
    group.finish();
}

fn bench_partitioned(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioned_greedy");
    group.sample_size(10);
    let market = build_market(3, 400, 60, DriverModel::Hitchhiking);
    for &k in &[1u16, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| black_box(solve_partitioned(&market, k, Objective::Profit)));
        });
    }
    group.finish();
}

fn bench_dynamic_surge_pricing(c: &mut Criterion) {
    let trace = TraceConfig::porto()
        .with_seed(3)
        .with_task_count(1000)
        .with_driver_count(100, DriverModel::Hitchhiking)
        .generate();
    c.bench_function("market_build_static_surge_1000", |b| {
        b.iter(|| black_box(Market::from_trace(&trace, &MarketBuildOptions::default())));
    });
    c.bench_function("market_build_dynamic_surge_1000", |b| {
        b.iter(|| {
            black_box(Market::from_trace(
                &trace,
                &MarketBuildOptions {
                    surge_window: Some(TimeDelta::from_mins(30)),
                    ..Default::default()
                },
            ))
        });
    });
}

criterion_group!(
    benches,
    bench_batched,
    bench_partitioned,
    bench_dynamic_surge_pricing
);
criterion_main!(benches);
