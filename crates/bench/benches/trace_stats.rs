//! Criterion benchmarks for trace generation and the Fig. 3–4 statistics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rideshare_trace::stats::{ccdf, fit_power_law, Histogram};
use rideshare_trace::{DriverModel, TraceConfig};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    for &trips in &[1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(trips), &trips, |b, &trips| {
            b.iter(|| {
                black_box(
                    TraceConfig::porto()
                        .with_seed(1)
                        .with_task_count(trips)
                        .with_driver_count(100, DriverModel::Hitchhiking)
                        .generate(),
                )
            });
        });
    }
    group.finish();
}

fn bench_stats(c: &mut Criterion) {
    let trace = TraceConfig::porto()
        .with_seed(1)
        .with_task_count(20_000)
        .with_driver_count(10, DriverModel::Hitchhiking)
        .generate();
    let kms: Vec<f64> = trace.trips.iter().map(|t| t.distance_km).collect();

    c.bench_function("histogram_log_20k", |b| {
        b.iter(|| {
            let mut h = Histogram::logarithmic(0.5, 40.0, 24);
            h.extend(&kms);
            black_box(h.density())
        });
    });
    c.bench_function("ccdf_20k", |b| {
        b.iter(|| black_box(ccdf(&kms)));
    });
    c.bench_function("power_law_fit_20k", |b| {
        b.iter(|| black_box(fit_power_law(&kms, 1.0)));
    });
}

criterion_group!(benches, bench_generation, bench_stats);
criterion_main!(benches);
