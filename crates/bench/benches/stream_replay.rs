//! Criterion bench for the streaming replay engine: end-to-end throughput
//! (lazy trace generation → incremental pricing → bounded-memory dispatch
//! → windowed metrics) in tasks per second, for the instant and batched
//! policies, with and without the spatial grid.
//!
//! This is the pipeline behind `rideshare replay --tasks 1000000`; the
//! bench pins its tasks/sec (reported time ÷ the task count below) and —
//! in the smoke pass — asserts the peak-resident high-water mark stays
//! `O(active tasks + drivers)`, never `O(trace)`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rideshare_core::StreamPricer;
use rideshare_metrics::StreamMetrics;
use rideshare_online::{
    GreedyPairMatcher, MaxMargin, StreamEngine, StreamEvent, StreamOptions, StreamPolicy,
    StreamSummary,
};
use rideshare_trace::{DriverModel, TraceConfig};
use rideshare_types::TimeDelta;

const TASKS: usize = 20_000;
const DRIVERS: usize = 300;

fn config() -> TraceConfig {
    TraceConfig::porto()
        .with_seed(7)
        .with_task_count(TASKS)
        .with_driver_count(DRIVERS, DriverModel::Hitchhiking)
}

/// Runs the whole streaming pipeline once and returns its summary.
fn run_pipeline(batched: Option<TimeDelta>, use_grid: bool) -> StreamSummary {
    let config = config();
    let stream = config.stream();
    let bbox = stream.bounding_box();
    let speed = stream.speed();
    let build = rideshare_core::MarketBuildOptions {
        surge_window: Some(TimeDelta::from_mins(30)),
        ..rideshare_core::MarketBuildOptions::default()
    };
    let mut pricer = StreamPricer::new(&build, bbox, speed, stream.drivers());

    let mut mm = MaxMargin::new();
    let mut greedy = GreedyPairMatcher;
    let mut policy = match batched {
        None => StreamPolicy::Instant(&mut mm),
        Some(window) => StreamPolicy::Batched {
            window,
            matcher: &mut greedy,
        },
    };
    let options = if use_grid {
        StreamOptions::default().grid(bbox)
    } else {
        StreamOptions::default()
    };
    let mut metrics = StreamMetrics::hourly();
    let mut engine = StreamEngine::new(speed, options);
    for shift in stream.drivers() {
        engine.push(
            StreamEvent::DriverOnline(rideshare_core::Driver::from(shift)),
            &mut policy,
            &mut metrics,
        );
    }
    for trip in stream {
        let task = pricer.price(&trip);
        engine.push(StreamEvent::TaskPublished(task), &mut policy, &mut metrics);
    }
    engine.finish(&mut policy, &mut metrics)
}

fn bench_stream_replay(c: &mut Criterion) {
    // Smoke invariants (also exercised by `cargo test --benches`): the
    // replay consumed everything and resident state stayed bounded.
    let summary = run_pipeline(Some(TimeDelta::from_mins(2)), true);
    assert_eq!(summary.tasks, TASKS);
    assert!(summary.served > 0);
    assert!(
        summary.peak_held_tasks < TASKS / 10,
        "peak held {} for {TASKS} tasks — stream is materialising",
        summary.peak_held_tasks
    );

    let mut group = c.benchmark_group("stream_replay");
    group.sample_size(10);
    for (label, batched) in [
        ("instant", None),
        ("batch-2m", Some(TimeDelta::from_mins(2))),
    ] {
        for (idx, use_grid) in [("grid", true), ("scan", false)] {
            group.bench_with_input(
                BenchmarkId::new(label, format!("{TASKS}tasks/{idx}")),
                &batched,
                |b, &batched| b.iter(|| black_box(run_pipeline(batched, use_grid))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_stream_replay);
criterion_main!(benches);
