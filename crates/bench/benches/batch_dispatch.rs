//! Criterion bench for the batch engine: grid-pruned candidate generation
//! vs the full-driver scan (identical results — see the oracle tests in
//! `rideshare-online` and `tests/batch_decision_time.rs` — different
//! asymptotics), and the greedy vs LP-optimal per-batch matcher.
//!
//! `porto-large` (1200 tasks, 150 drivers) is the headline case: the batch
//! inner loop regenerates candidate sets every round, so pruning the
//! driver scan is where the engine's wall-time goes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rideshare_bench::Scenario;
use rideshare_online::{run_batched_with, BatchOptions, MatcherKind};
use rideshare_types::TimeDelta;

fn bench_grid_vs_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_candidates");
    group.sample_size(10);
    for name in ["porto-day", "porto-large"] {
        let market = Scenario::by_name(name)
            .expect("catalog scenario")
            .build_market();
        let base = BatchOptions::with_window(TimeDelta::from_mins(3));
        for (label, opts) in [("scan", base), ("grid", base.grid(true))] {
            group.bench_with_input(BenchmarkId::new(label, name), &market, |b, m| {
                b.iter(|| black_box(run_batched_with(m, opts)));
            });
        }
    }
    group.finish();
}

fn bench_matchers(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_matchers");
    group.sample_size(10);
    let market = Scenario::by_name("porto-day")
        .expect("catalog scenario")
        .build_market();
    for (label, matcher) in [
        ("greedy", MatcherKind::Greedy),
        ("optimal", MatcherKind::Optimal),
    ] {
        let opts = BatchOptions::with_window(TimeDelta::from_mins(3))
            .matcher(matcher)
            .grid(true);
        group.bench_with_input(BenchmarkId::new(label, "porto-day"), &market, |b, m| {
            b.iter(|| black_box(run_batched_with(m, opts)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_grid_vs_scan, bench_matchers);
criterion_main!(benches);
