//! Criterion micro-benchmarks of the paper's algorithms.
//!
//! One group per moving part: task-map construction (§III-B, the `O(NM²)`
//! step), the offline greedy (Alg. 1), both online heuristics (Algs. 3–4),
//! and the column-generation upper bound. These are the kernels behind
//! every figure; regressions here directly scale experiment wall-time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rideshare_bench::build_market;
use rideshare_core::{
    lp_upper_bound, solve_greedy, DriverView, Market, MarketBuildOptions, Objective,
    UpperBoundOptions,
};
use rideshare_online::{MaxMargin, NearestDriver, SimulationOptions, Simulator};
use rideshare_trace::{DriverModel, TraceConfig};

fn bench_task_map(c: &mut Criterion) {
    let mut group = c.benchmark_group("task_map_construction");
    for &tasks in &[100usize, 300, 600] {
        let trace = TraceConfig::porto()
            .with_seed(9)
            .with_task_count(tasks)
            .with_driver_count(30, DriverModel::Hitchhiking)
            .generate();
        group.bench_with_input(BenchmarkId::from_parameter(tasks), &trace, |b, t| {
            b.iter(|| black_box(Market::from_trace(t, &MarketBuildOptions::default())));
        });
    }
    group.finish();
}

fn bench_driver_view(c: &mut Criterion) {
    let market = build_market(9, 400, 40, DriverModel::Hitchhiking);
    let view = DriverView::new(&market, 0);
    let removed = vec![false; market.num_tasks()];
    c.bench_function("best_path_dp_400_tasks", |b| {
        b.iter(|| black_box(view.best_path(&market, Objective::Profit, &removed)));
    });
}

fn bench_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_offline");
    group.sample_size(10);
    for &drivers in &[20usize, 60, 120] {
        let market = build_market(9, 300, drivers, DriverModel::Hitchhiking);
        group.bench_with_input(BenchmarkId::from_parameter(drivers), &market, |b, m| {
            b.iter(|| black_box(solve_greedy(m, Objective::Profit)));
        });
    }
    group.finish();
}

fn bench_online(c: &mut Criterion) {
    let market = build_market(9, 300, 60, DriverModel::Hitchhiking);
    let sim = Simulator::new(&market);
    c.bench_function("online_max_margin_300x60", |b| {
        b.iter(|| {
            let mut policy = MaxMargin::new();
            black_box(sim.run(&mut policy, SimulationOptions::default()))
        });
    });
    c.bench_function("online_nearest_300x60", |b| {
        b.iter(|| {
            let mut policy = NearestDriver::with_seed(0);
            black_box(sim.run(&mut policy, SimulationOptions::default()))
        });
    });
}

fn bench_upper_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("column_generation");
    group.sample_size(10);
    let market = build_market(9, 150, 20, DriverModel::Hitchhiking);
    group.bench_function("zf_star_150x20", |b| {
        b.iter(|| {
            black_box(
                lp_upper_bound(&market, Objective::Profit, UpperBoundOptions::default())
                    .expect("converges"),
            )
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_task_map,
    bench_driver_view,
    bench_greedy,
    bench_online,
    bench_upper_bound
);
criterion_main!(benches);
