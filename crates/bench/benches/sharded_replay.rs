//! Criterion bench for the region-sharded parallel streaming engine:
//! end-to-end throughput of `rideshare replay --shards N` (lazy regional
//! trace generation → incremental pricing → sharded bounded-memory
//! dispatch → merged windowed metrics) against the sequential engine on
//! the *same* regional trace.
//!
//! The smoke pass asserts what the determinism battery pins at test scale:
//! sharded metrics are **exactly equal** (fixed-point `StreamMetrics`
//! equality, not a tolerance) to the sequential replay's. Timing is
//! reported, never asserted — the speed-up needs real cores:
//! `cargo bench --bench sharded_replay` on an N-core machine shows the
//! `shards/4` row beating `sequential`; on a single-core container the
//! sequential row wins and the sharded rows measure pure orchestration
//! overhead. Either way the *baseline to beat* (PR 4's ~200k tasks/s
//! single-core pipeline) is the `stream_replay` bench next door.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rideshare_core::StreamPricer;
use rideshare_metrics::StreamMetrics;
use rideshare_online::{
    replay_sharded, replay_stream, BoxPartitioner, MaxMargin, ShardOptions, ShardPolicySpec,
    StreamEvent, StreamOptions, StreamPolicy, StreamSummary,
};
use rideshare_trace::{DriverModel, TraceConfig};
use rideshare_types::TimeDelta;

const TASKS: usize = 20_000;
const DRIVERS: usize = 300;
const REGIONS: usize = 4;

fn config() -> TraceConfig {
    TraceConfig::porto()
        .with_seed(7)
        .with_task_count(TASKS)
        .with_driver_count(DRIVERS, DriverModel::Hitchhiking)
        .with_regions(REGIONS)
}

/// The lazy regional pipeline's event stream plus everything the engines
/// need to consume it.
fn pipeline_events() -> (rideshare_geo::SpeedModel, StreamOptions, Vec<StreamEvent>) {
    let config = config();
    let stream = config.stream();
    let speed = stream.speed();
    let bbox = stream.bounding_box();
    let build = rideshare_core::MarketBuildOptions {
        surge_window: Some(TimeDelta::from_mins(30)),
        ..rideshare_core::MarketBuildOptions::default()
    };
    let mut pricer = StreamPricer::new(&build, bbox, speed, stream.drivers());
    let mut events: Vec<StreamEvent> = stream
        .drivers()
        .iter()
        .map(|s| StreamEvent::DriverOnline(rideshare_core::Driver::from(s)))
        .collect();
    events.extend(stream.map(|trip| StreamEvent::TaskPublished(pricer.price(&trip))));
    (speed, StreamOptions::default().grid(bbox), events)
}

fn run_sequential(
    speed: rideshare_geo::SpeedModel,
    options: StreamOptions,
    events: &[StreamEvent],
) -> (StreamSummary, StreamMetrics) {
    let mut metrics = StreamMetrics::hourly();
    let mut mm = MaxMargin::new();
    let mut policy = StreamPolicy::Instant(&mut mm);
    let summary = replay_stream(
        speed,
        events.iter().copied(),
        &mut policy,
        options,
        &mut metrics,
    );
    (summary, metrics)
}

fn run_sharded(
    speed: rideshare_geo::SpeedModel,
    options: StreamOptions,
    events: &[StreamEvent],
    shards: usize,
) -> (StreamSummary, StreamMetrics) {
    let partitioner = BoxPartitioner::new(config().region_boxes());
    let mut metrics = StreamMetrics::hourly();
    let summary = replay_sharded(
        speed,
        events.iter().copied(),
        ShardPolicySpec::MaxMargin,
        &partitioner,
        ShardOptions::new(shards).stream(options).validate(false),
        &mut metrics,
    );
    (summary, metrics)
}

fn bench_sharded_replay(c: &mut Criterion) {
    // Smoke invariants (also exercised by `cargo test --benches`): the
    // sharded replay consumes everything and its merged metrics are
    // *exactly* the sequential metrics — the byte-identity acceptance
    // criterion at bench scale.
    let (speed, options, events) = pipeline_events();
    let (seq_summary, seq_metrics) = run_sequential(speed, options, &events);
    assert_eq!(seq_summary.tasks, TASKS);
    for shards in [2usize, 4] {
        let (summary, metrics) = run_sharded(speed, options, &events, shards);
        assert_eq!(summary.tasks, TASKS);
        assert_eq!(summary.served, seq_summary.served, "shards={shards}");
        assert_eq!(
            metrics, seq_metrics,
            "sharded metrics diverged at {shards} shards"
        );
    }

    let mut group = c.benchmark_group("sharded_replay");
    group.sample_size(10);
    group.bench_function(
        BenchmarkId::new("sequential", format!("{TASKS}tasks")),
        |b| b.iter(|| black_box(run_sequential(speed, options, &events))),
    );
    for shards in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("shards", format!("{shards}x{TASKS}tasks")),
            &shards,
            |b, &shards| b.iter(|| black_box(run_sharded(speed, options, &events, shards))),
        );
    }
    // The full pipeline (generation + pricing included), sequential vs
    // 4-shard — the `rideshare replay --shards` wall-clock.
    group.bench_function(BenchmarkId::new("pipeline", "sequential"), |b| {
        b.iter(|| {
            let (speed, options, events) = pipeline_events();
            black_box(run_sequential(speed, options, &events))
        })
    });
    group.bench_function(BenchmarkId::new("pipeline", "4shards"), |b| {
        b.iter(|| {
            let (speed, options, events) = pipeline_events();
            black_box(run_sharded(speed, options, &events, 4))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sharded_replay);
criterion_main!(benches);
