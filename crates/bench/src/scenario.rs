//! The declarative scenario catalog: named, seeded market presets.
//!
//! A [`Scenario`] is everything needed to rebuild one evaluation market
//! bit-for-bit: a name, a seed, and either a [`TraceConfig`] +
//! [`MarketBuildOptions`] pair (optionally spanning several days) or an
//! analytic construction such as the Fig. 2 tightness family. The
//! [`Scenario::catalog`] spans the paper's workloads — Porto rides,
//! same-day delivery, rush-hour surge, multi-day horizons, sparse and
//! dense driver ratios, and the adversarial `1/(D+1)` family — so "run the
//! paper's figures" becomes "sweep the catalog" (see [`crate::sweep`]).
//!
//! Every scenario is deterministic: building the same scenario twice
//! yields identical markets, which is what lets the golden regression
//! suite pin profits and ratios to exact values.

use rideshare_core::{tightness::fig2_instance, Market, MarketBuildOptions};
use rideshare_trace::{generate_days, DriverModel, TraceConfig};
use rideshare_types::TimeDelta;

/// How a scenario constructs its market.
#[derive(Clone, Debug)]
pub enum ScenarioKind {
    /// Generate a trace (possibly multi-day, flattened to one stream) and
    /// price it into a market.
    Trace {
        /// The trace generator configuration (seed included), boxed to
        /// keep the enum small next to the parameter-only variants.
        config: Box<TraceConfig>,
        /// Market construction options (fares, surge, WTP).
        build: MarketBuildOptions,
        /// Number of consecutive days; `1` is a single day, larger values
        /// use [`generate_days`] and flatten into one order stream.
        days: usize,
    },
    /// The Fig. 2 adversarial family showing `1/(D+1)` is tight.
    Tightness {
        /// Chain length / diameter parameter `D ≥ 1`.
        d: usize,
        /// Profit wedge `ε ∈ (0, 1)`.
        epsilon: f64,
    },
}

/// One named, reproducible market preset.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Catalog key, e.g. `"porto-day"`.
    pub name: &'static str,
    /// One-line description for `--help`-style listings.
    pub summary: &'static str,
    /// The construction recipe.
    pub kind: ScenarioKind,
}

impl Scenario {
    /// Materialises the scenario's market. Deterministic: equal scenarios
    /// build equal markets.
    #[must_use]
    pub fn build_market(&self) -> Market {
        match &self.kind {
            ScenarioKind::Trace {
                config,
                build,
                days,
            } => {
                let trace = if *days <= 1 {
                    config.generate()
                } else {
                    generate_days(config, *days)
                        .flattened()
                        .expect("non-zero day count")
                };
                Market::from_trace(&trace, build)
            }
            ScenarioKind::Tightness { d, epsilon } => fig2_instance(*d, *epsilon).market,
        }
    }

    /// The full catalog, in report order.
    ///
    /// Sizes are chosen so the whole catalog sweeps in seconds in release
    /// mode; `porto-large` is the deliberately heavy preset for measuring
    /// the parallel speed-up.
    #[must_use]
    pub fn catalog() -> Vec<Scenario> {
        let mut out = Self::tiny_catalog();
        out.extend([
            Scenario {
                name: "porto-day",
                summary: "one Porto day, balanced supply (300 tasks, 40 commuters)",
                kind: ScenarioKind::Trace {
                    config: Box::new(
                        TraceConfig::porto()
                            .with_seed(11)
                            .with_task_count(300)
                            .with_driver_count(40, DriverModel::Hitchhiking),
                    ),
                    build: MarketBuildOptions::default(),
                    days: 1,
                },
            },
            Scenario {
                name: "porto-sparse",
                summary: "driver drought: 300 tasks chased by 10 drivers",
                kind: ScenarioKind::Trace {
                    config: Box::new(
                        TraceConfig::porto()
                            .with_seed(12)
                            .with_task_count(300)
                            .with_driver_count(10, DriverModel::Hitchhiking),
                    ),
                    build: MarketBuildOptions::default(),
                    days: 1,
                },
            },
            Scenario {
                name: "porto-dense",
                summary: "driver glut: 300 tasks, 120 drivers, thick candidate sets",
                kind: ScenarioKind::Trace {
                    config: Box::new(
                        TraceConfig::porto()
                            .with_seed(13)
                            .with_task_count(300)
                            .with_driver_count(120, DriverModel::Hitchhiking),
                    ),
                    build: MarketBuildOptions::default(),
                    days: 1,
                },
            },
            Scenario {
                name: "delivery-day",
                summary: "same-day delivery: depot pickups, long leads, loose windows",
                kind: ScenarioKind::Trace {
                    config: Box::new(
                        TraceConfig::porto_delivery()
                            .with_seed(14)
                            .with_task_count(250)
                            .with_driver_count(30, DriverModel::HomeWorkHome),
                    ),
                    build: MarketBuildOptions::default(),
                    days: 1,
                },
            },
            Scenario {
                name: "rush-hour",
                summary: "twin commute peaks with dynamic (publish-time) surge",
                kind: ScenarioKind::Trace {
                    config: Box::new(
                        TraceConfig::porto()
                            .with_seed(15)
                            .with_task_count(250)
                            .with_driver_count(35, DriverModel::Hitchhiking)
                            .with_hourly_demand(rush_hour_demand()),
                    ),
                    build: MarketBuildOptions {
                        surge_window: Some(TimeDelta::from_mins(30)),
                        ..MarketBuildOptions::default()
                    },
                    days: 1,
                },
            },
            Scenario {
                name: "porto-week",
                summary: "three weekday traffic replayed as one stream, one fleet",
                kind: ScenarioKind::Trace {
                    config: Box::new(
                        TraceConfig::porto()
                            .with_seed(16)
                            .with_task_count(120)
                            .with_driver_count(25, DriverModel::Hitchhiking),
                    ),
                    build: MarketBuildOptions::default(),
                    days: 3,
                },
            },
            Scenario {
                name: "porto-large",
                summary: "the heavy preset: 1200 tasks, 150 drivers (parallel speed-up demo)",
                kind: ScenarioKind::Trace {
                    config: Box::new(
                        TraceConfig::porto()
                            .with_seed(17)
                            .with_task_count(1200)
                            .with_driver_count(150, DriverModel::Hitchhiking),
                    ),
                    build: MarketBuildOptions::default(),
                    days: 1,
                },
            },
            Scenario {
                name: "porto-regions",
                summary: "four disjoint service regions (legal sharding partition by construction)",
                kind: ScenarioKind::Trace {
                    config: Box::new(
                        TraceConfig::porto()
                            .with_seed(18)
                            .with_task_count(400)
                            .with_driver_count(60, DriverModel::Hitchhiking)
                            .with_regions(4),
                    ),
                    build: MarketBuildOptions::default(),
                    days: 1,
                },
            },
        ]);
        out
    }

    /// The trace generator behind a trace-backed scenario — region-tagged
    /// scenarios expose it so sharding consumers can recover the region
    /// boxes (`TraceConfig::region_boxes`) that make their partition legal.
    #[must_use]
    pub fn trace_config(&self) -> Option<&TraceConfig> {
        match &self.kind {
            ScenarioKind::Trace { config, .. } => Some(config),
            ScenarioKind::Tightness { .. } => None,
        }
    }

    /// The tiny sub-catalog used by the golden regression tests and the CI
    /// snapshot sweep: small enough to solve (LP bound included) in debug
    /// builds in well under a second each.
    #[must_use]
    pub fn tiny_catalog() -> Vec<Scenario> {
        vec![
            Scenario {
                name: "tiny-rides",
                summary: "golden preset: 80 Porto orders, 10 commuters",
                kind: ScenarioKind::Trace {
                    config: Box::new(
                        TraceConfig::porto()
                            .with_seed(101)
                            .with_task_count(80)
                            .with_driver_count(10, DriverModel::Hitchhiking),
                    ),
                    build: MarketBuildOptions::default(),
                    days: 1,
                },
            },
            Scenario {
                name: "tiny-delivery",
                summary: "golden preset: 60 depot deliveries, 8 couriers",
                kind: ScenarioKind::Trace {
                    config: Box::new(
                        TraceConfig::porto_delivery()
                            .with_seed(102)
                            .with_task_count(60)
                            .with_driver_count(8, DriverModel::HomeWorkHome),
                    ),
                    build: MarketBuildOptions::default(),
                    days: 1,
                },
            },
            Scenario {
                name: "tiny-rush",
                summary: "golden preset: 70 rush-hour orders under dynamic surge",
                kind: ScenarioKind::Trace {
                    config: Box::new(
                        TraceConfig::porto()
                            .with_seed(103)
                            .with_task_count(70)
                            .with_driver_count(9, DriverModel::Hitchhiking)
                            .with_hourly_demand(rush_hour_demand()),
                    ),
                    build: MarketBuildOptions {
                        surge_window: Some(TimeDelta::from_mins(30)),
                        ..MarketBuildOptions::default()
                    },
                    days: 1,
                },
            },
            Scenario {
                name: "tightness-d4",
                summary: "Fig. 2 adversarial family at D = 4, ε = 0.05",
                kind: ScenarioKind::Tightness {
                    d: 4,
                    epsilon: 0.05,
                },
            },
        ]
    }

    /// Looks a scenario up by catalog name.
    #[must_use]
    pub fn by_name(name: &str) -> Option<Scenario> {
        Self::catalog().into_iter().find(|s| s.name == name)
    }
}

/// A demand profile with nothing but the two commute peaks.
fn rush_hour_demand() -> [f64; 24] {
    let mut demand = [0.2; 24];
    demand[7] = 5.0;
    demand[8] = 8.0;
    demand[9] = 4.0;
    demand[17] = 5.0;
    demand[18] = 8.0;
    demand[19] = 4.0;
    demand
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique_and_resolvable() {
        let cat = Scenario::catalog();
        assert!(cat.len() >= 8, "catalog holds {} scenarios", cat.len());
        let mut names: Vec<&str> = cat.iter().map(|s| s.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate scenario name");
        for s in &cat {
            assert!(Scenario::by_name(s.name).is_some(), "{} not found", s.name);
        }
        assert!(Scenario::by_name("no-such-scenario").is_none());
    }

    #[test]
    fn scenarios_build_deterministic_markets() {
        for s in Scenario::tiny_catalog() {
            let a = s.build_market();
            let b = s.build_market();
            assert_eq!(a.num_tasks(), b.num_tasks(), "{}", s.name);
            assert_eq!(a.num_drivers(), b.num_drivers(), "{}", s.name);
            assert_eq!(a.tasks(), b.tasks(), "{} tasks differ", s.name);
            assert!(a.num_tasks() > 0, "{} is empty", s.name);
        }
    }

    #[test]
    fn multi_day_scenario_spans_days() {
        let week = Scenario::by_name("porto-week").unwrap();
        let m = week.build_market();
        let last_publish = m
            .tasks()
            .iter()
            .map(|t| t.publish_time)
            .max()
            .expect("non-empty");
        assert!(
            last_publish.as_secs() > 24 * 3600,
            "publish times never leave day 0"
        );
    }
}
