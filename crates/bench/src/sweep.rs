//! The parallel sharded sweep engine: scenario × policy → one report.
//!
//! [`run_sweep`] evaluates every catalog scenario under every requested
//! policy and emits one machine-readable [`SweepReport`] (JSON or CSV) of
//! `{profit, served, ratio vs Z_f*, wall-time}` per cell. Work is sharded
//! two ways, both with `std::thread::scope` and no external dependencies:
//!
//! - **across scenarios**: each scenario unit (market build, `Z_f*` bound,
//!   and all policy runs) is an independent shard, merged back in catalog
//!   order;
//! - **within a market**: the offline solver and the LP bound run per
//!   disjoint component via [`rideshare_core::solve_sharded`] /
//!   [`rideshare_core::sharded_upper_bound`], the lossless decomposition
//!   of the paper's "partitioned deployment" argument (§I).
//!
//! Every cell is computed by deterministic code on deterministic inputs,
//! and shards are merged by index — so the *results* are byte-identical
//! for every `threads` value; only wall-times vary. [`SweepReport::to_json`]
//! with `with_timing = false` (the *canonical* report) therefore makes a
//! stable regression snapshot, which CI diffs on every push.

use std::fmt::Write as _;
use std::time::Instant;

use rideshare_core::partition::map_sharded;
use rideshare_core::{
    components_upper_bound, disjoint_components_sharded, solve_components, solve_sharded, Market,
    Objective, SubMarket, UpperBoundOptions,
};
use rideshare_metrics::render_pivot;
use rideshare_online::{
    run_batched_with, BatchOptions, MatcherKind, MaxMargin, NearestDriver, RandomDispatch,
    SimulationOptions, Simulator,
};
use rideshare_types::TimeDelta;

use crate::scenario::Scenario;

/// One policy column of the sweep matrix.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum PolicySpec {
    /// The offline greedy GA (Alg. 1), solved per disjoint component.
    Greedy,
    /// Online maxMargin dispatch (Alg. 4).
    MaxMargin,
    /// Online nearest-driver dispatch (Alg. 3), tie-break seed 0.
    Nearest,
    /// The uniform-random feasible baseline, seed 0.
    Random,
    /// Batched dispatch with the given hold window (greedy pair matcher,
    /// grid-pruned candidates).
    Batched(TimeDelta),
    /// Batched dispatch with the given hold window and the per-round
    /// optimal assignment matcher (grid-pruned candidates).
    BatchedOptimal(TimeDelta),
}

impl PolicySpec {
    /// The default policy set for reports: offline reference plus the
    /// paper's two online heuristics and the batched mode under both
    /// matchers.
    #[must_use]
    pub fn default_set() -> Vec<PolicySpec> {
        vec![
            PolicySpec::Greedy,
            PolicySpec::MaxMargin,
            PolicySpec::Nearest,
            PolicySpec::Batched(TimeDelta::from_mins(3)),
            PolicySpec::BatchedOptimal(TimeDelta::from_mins(3)),
        ]
    }

    /// The batching study: the instant baselines plus a sweep of the hold
    /// window `W` under both matchers — the "how much latency buys how much
    /// matching quality" experiment (`rideshare sweep --policies w-sweep`).
    #[must_use]
    pub fn w_sweep_set() -> Vec<PolicySpec> {
        let mut out = vec![PolicySpec::Greedy, PolicySpec::MaxMargin];
        for mins in [0i64, 1, 3, 10] {
            out.push(PolicySpec::Batched(TimeDelta::from_mins(mins)));
        }
        for mins in [1i64, 3, 10] {
            out.push(PolicySpec::BatchedOptimal(TimeDelta::from_mins(mins)));
        }
        out
    }

    /// Stable column label: whole-minute windows label as `"batch-3m"` /
    /// `"batch-opt-3m"`, sub-minute ones as `"batch-90s"` so distinct
    /// windows never collide.
    #[must_use]
    pub fn label(&self) -> String {
        fn window(secs: i64) -> String {
            if secs % 60 == 0 {
                format!("{}m", secs / 60)
            } else {
                format!("{secs}s")
            }
        }
        match self {
            PolicySpec::Greedy => "greedy".into(),
            PolicySpec::MaxMargin => "maxMargin".into(),
            PolicySpec::Nearest => "nearest".into(),
            PolicySpec::Random => "random".into(),
            PolicySpec::Batched(w) => format!("batch-{}", window(w.as_secs())),
            PolicySpec::BatchedOptimal(w) => format!("batch-opt-{}", window(w.as_secs())),
        }
    }

    /// The canonical [`BatchOptions`] of a batched policy column (grid
    /// pruning on — result-neutral, see the oracle tests), or `None` for
    /// the non-batched policies. The CLI's `simulate --policy batch-…` and
    /// the sweep engine both dispatch through this, so they can never
    /// drift apart.
    #[must_use]
    pub fn batch_options(&self) -> Option<BatchOptions> {
        match self {
            PolicySpec::Batched(w) => Some(BatchOptions::with_window(*w).grid(true)),
            PolicySpec::BatchedOptimal(w) => Some(
                BatchOptions::with_window(*w)
                    .matcher(MatcherKind::Optimal)
                    .grid(true),
            ),
            _ => None,
        }
    }

    /// Parses a label as produced by [`PolicySpec::label`].
    #[must_use]
    pub fn parse(label: &str) -> Option<PolicySpec> {
        fn window(rest: &str) -> Option<TimeDelta> {
            let w = if let Some(mins) = rest.strip_suffix('m') {
                TimeDelta::from_mins(mins.parse().ok()?)
            } else {
                TimeDelta::from_secs(rest.strip_suffix('s')?.parse().ok()?)
            };
            w.is_non_negative().then_some(w)
        }
        match label {
            "greedy" => Some(PolicySpec::Greedy),
            "maxmargin" | "maxMargin" | "margin" => Some(PolicySpec::MaxMargin),
            "nearest" => Some(PolicySpec::Nearest),
            "random" => Some(PolicySpec::Random),
            _ => {
                if let Some(rest) = label.strip_prefix("batch-opt-") {
                    Some(PolicySpec::BatchedOptimal(window(rest)?))
                } else {
                    Some(PolicySpec::Batched(window(label.strip_prefix("batch-")?)?))
                }
            }
        }
    }

    /// Runs the policy on `market` and returns `(profit, served)`.
    /// `threads` is honoured by the component-sharded offline solver;
    /// online replays are inherently sequential per market.
    #[must_use]
    pub fn run(&self, market: &Market, threads: usize) -> (f64, usize) {
        self.run_with(market, None, threads)
    }

    /// [`PolicySpec::run`] with an optional precomputed
    /// [`rideshare_core::disjoint_components`] decomposition, so callers
    /// evaluating several policies (or a policy plus the `Z_f*` bound) on
    /// one market pay for the decomposition once.
    #[must_use]
    pub fn run_with(
        &self,
        market: &Market,
        components: Option<&[SubMarket]>,
        threads: usize,
    ) -> (f64, usize) {
        let assignment = match self {
            PolicySpec::Greedy => match components {
                Some(c) => solve_components(market, c, Objective::Profit, threads),
                None => solve_sharded(market, Objective::Profit, threads),
            },
            PolicySpec::MaxMargin => {
                Simulator::new(market)
                    .run(&mut MaxMargin::new(), SimulationOptions::default())
                    .assignment
            }
            PolicySpec::Nearest => {
                Simulator::new(market)
                    .run(
                        &mut NearestDriver::with_seed(0),
                        SimulationOptions::default(),
                    )
                    .assignment
            }
            PolicySpec::Random => {
                Simulator::new(market)
                    .run(
                        &mut RandomDispatch::with_seed(0),
                        SimulationOptions::default(),
                    )
                    .assignment
            }
            PolicySpec::Batched(_) | PolicySpec::BatchedOptimal(_) => {
                let opts = self.batch_options().expect("batched variant");
                run_batched_with(market, opts).assignment
            }
        };
        (
            assignment
                .objective_value(market, Objective::Profit)
                .as_f64(),
            assignment.served_count(),
        )
    }
}

/// Options for [`run_sweep`].
#[derive(Clone, Copy, Debug)]
pub struct SweepOptions {
    /// Total thread budget for both sharding axes.
    pub threads: usize,
    /// Compute the `Z_f*` denominator per scenario (skip for speed).
    pub compute_bound: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self {
            threads: 1,
            compute_bound: true,
        }
    }
}

/// One `(scenario, policy)` cell of the report.
#[derive(Clone, Debug)]
pub struct SweepCell {
    /// Scenario name.
    pub scenario: String,
    /// Policy label.
    pub policy: String,
    /// Market size `M` (tasks).
    pub tasks: usize,
    /// Market size `N` (drivers).
    pub drivers: usize,
    /// Tasks served by the policy.
    pub served: usize,
    /// Drivers' total profit (Eq. 4).
    pub profit: f64,
    /// `profit / Z_f*` — the paper's performance ratio; `None` when the
    /// bound was skipped or the scenario is worthless (`Z_f* = 0`).
    ///
    /// Offline policies land in `(0, 1]`, but online policies may
    /// legitimately exceed `1.0` on loose-window workloads: early finishes
    /// create task chains the *offline* task map (whose relaxation `Z_f*`
    /// bounds) does not contain, so `Z_f*` is not an upper bound for
    /// simulated dispatch. A ratio above 1 signals that effect, not a
    /// solver bug.
    pub ratio: Option<f64>,
    /// Wall-clock milliseconds spent running the policy (excludes market
    /// build and bound).
    pub wall_ms: f64,
}

/// The sweep result: one cell per `(scenario, policy)`, in catalog ×
/// policy order.
#[derive(Clone, Debug, Default)]
pub struct SweepReport {
    /// All cells, scenario-major.
    pub cells: Vec<SweepCell>,
}

/// Formats a float with fixed precision, trimming `-0.0000` to `0.0000`.
fn fixed(v: f64, decimals: usize) -> String {
    let s = format!("{v:.decimals$}");
    match s.strip_prefix('-') {
        Some(rest) if rest.chars().all(|c| c == '0' || c == '.') => rest.to_string(),
        _ => s,
    }
}

impl SweepReport {
    /// Serialises the report as JSON (`rideshare-sweep/1` schema). With
    /// `with_timing = false` the output is *canonical*: wall-times are
    /// omitted, so equal results serialise to equal bytes regardless of
    /// thread count or machine — the form CI snapshots.
    #[must_use]
    pub fn to_json(&self, with_timing: bool) -> String {
        let mut out = String::from("{\n  \"schema\": \"rideshare-sweep/1\",\n  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let ratio = c.ratio.map_or_else(|| "null".into(), |r| fixed(r, 4));
            let _ = write!(
                out,
                "    {{\"scenario\": \"{}\", \"policy\": \"{}\", \"tasks\": {}, \"drivers\": {}, \
                 \"served\": {}, \"profit\": {}, \"ratio\": {}",
                c.scenario,
                c.policy,
                c.tasks,
                c.drivers,
                c.served,
                fixed(c.profit, 4),
                ratio,
            );
            if with_timing {
                let _ = write!(out, ", \"wall_ms\": {}", fixed(c.wall_ms, 3));
            }
            out.push('}');
            if i + 1 < self.cells.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Serialises the report as CSV with a header row. Timing column
    /// included only `with_timing`.
    #[must_use]
    pub fn to_csv(&self, with_timing: bool) -> String {
        let mut out = String::from("scenario,policy,tasks,drivers,served,profit,ratio");
        if with_timing {
            out.push_str(",wall_ms");
        }
        out.push('\n');
        for c in &self.cells {
            let ratio = c.ratio.map_or_else(String::new, |r| fixed(r, 4));
            let _ = write!(
                out,
                "{},{},{},{},{},{},{ratio}",
                c.scenario,
                c.policy,
                c.tasks,
                c.drivers,
                c.served,
                fixed(c.profit, 4),
            );
            if with_timing {
                let _ = write!(out, ",{}", fixed(c.wall_ms, 3));
            }
            out.push('\n');
        }
        out
    }

    /// Renders the scenario × policy profit matrix (ratio in parentheses
    /// when available) as an aligned text table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut scenarios: Vec<&str> = Vec::new();
        let mut policies: Vec<&str> = Vec::new();
        for c in &self.cells {
            if !scenarios.contains(&c.scenario.as_str()) {
                scenarios.push(&c.scenario);
            }
            if !policies.contains(&c.policy.as_str()) {
                policies.push(&c.policy);
            }
        }
        let cells: Vec<Vec<String>> = scenarios
            .iter()
            .map(|s| {
                policies
                    .iter()
                    .map(|p| {
                        self.cells
                            .iter()
                            .find(|c| c.scenario == *s && c.policy == *p)
                            .map_or_else(String::new, |c| match c.ratio {
                                Some(r) => format!("{} ({})", fixed(c.profit, 2), fixed(r, 3)),
                                None => fixed(c.profit, 2),
                            })
                    })
                    .collect()
            })
            .collect();
        render_pivot("scenario", &scenarios, &policies, &cells)
    }
}

/// Runs the scenario × policy sweep.
///
/// Scenario units are sharded across `opts.threads` scoped threads; any
/// leftover budget goes to the within-market component shards. Results are
/// merged by `(scenario, policy)` index, so the report's cells (and its
/// canonical serialisation) are **byte-identical for every thread count**.
///
/// # Examples
///
/// ```
/// use rideshare_bench::{run_sweep, PolicySpec, Scenario, SweepOptions};
///
/// let report = run_sweep(
///     &Scenario::tiny_catalog()[..1],
///     &[PolicySpec::Greedy, PolicySpec::Nearest],
///     SweepOptions { threads: 2, compute_bound: false },
/// );
/// assert_eq!(report.cells.len(), 2);
/// assert_eq!(report.cells[0].policy, "greedy");
/// ```
#[must_use]
pub fn run_sweep(
    scenarios: &[Scenario],
    policies: &[PolicySpec],
    opts: SweepOptions,
) -> SweepReport {
    let threads = opts.threads.max(1);
    // Split the budget: outer shards over scenarios; if scenarios are
    // scarcer than threads, components soak up the rest. The floor split
    // keeps outer × inner within the budget, and any split yields
    // identical results — this only balances wall-time.
    let inner_threads = (threads / scenarios.len().max(1)).max(1);

    let units: Vec<Scenario> = scenarios.to_vec();
    let mut rows = map_sharded(units, threads, |scenario| {
        let market = scenario.build_market();
        // One decomposition serves the bound and every sharded policy run.
        let components = disjoint_components_sharded(&market, inner_threads);
        let bound = opts.compute_bound.then(|| {
            components_upper_bound(
                &components,
                Objective::Profit,
                UpperBoundOptions::default(),
                inner_threads,
            )
            .expect("column generation on a catalog market")
            .bound
        });
        policies
            .iter()
            .map(|p| {
                let start = Instant::now();
                let (profit, served) = p.run_with(&market, Some(&components), inner_threads);
                let wall_ms = start.elapsed().as_secs_f64() * 1e3;
                SweepCell {
                    scenario: scenario.name.to_string(),
                    policy: p.label(),
                    tasks: market.num_tasks(),
                    drivers: market.num_drivers(),
                    served,
                    profit,
                    ratio: bound.and_then(|b| (b > 0.0).then(|| profit / b)),
                    wall_ms,
                }
            })
            .collect::<Vec<SweepCell>>()
    });

    SweepReport {
        cells: rows.drain(..).flatten().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_two() -> Vec<Scenario> {
        Scenario::tiny_catalog().into_iter().take(2).collect()
    }

    #[test]
    fn report_shape_matches_matrix() {
        let scenarios = tiny_two();
        let policies = [PolicySpec::Greedy, PolicySpec::Nearest];
        let r = run_sweep(
            &scenarios,
            &policies,
            SweepOptions {
                threads: 1,
                compute_bound: false,
            },
        );
        assert_eq!(r.cells.len(), 4);
        assert_eq!(r.cells[0].scenario, scenarios[0].name);
        assert_eq!(r.cells[1].policy, "nearest");
        assert_eq!(r.cells[2].scenario, scenarios[1].name);
        for c in &r.cells {
            assert!(c.served <= c.tasks);
            assert!(c.ratio.is_none());
        }
    }

    #[test]
    fn parallel_sweep_is_byte_identical_to_sequential() {
        let scenarios = tiny_two();
        let policies = [
            PolicySpec::Greedy,
            PolicySpec::MaxMargin,
            PolicySpec::Batched(TimeDelta::from_mins(2)),
        ];
        let seq = run_sweep(
            &scenarios,
            &policies,
            SweepOptions {
                threads: 1,
                compute_bound: true,
            },
        );
        let par = run_sweep(
            &scenarios,
            &policies,
            SweepOptions {
                threads: 4,
                compute_bound: true,
            },
        );
        assert_eq!(seq.to_json(false), par.to_json(false));
        assert_eq!(seq.to_csv(false), par.to_csv(false));
    }

    #[test]
    fn ratio_uses_the_bound_denominator() {
        let scenarios: Vec<Scenario> = Scenario::tiny_catalog()
            .into_iter()
            .filter(|s| s.name == "tightness-d4")
            .collect();
        let r = run_sweep(
            &scenarios,
            &[PolicySpec::Greedy],
            SweepOptions {
                threads: 1,
                compute_bound: true,
            },
        );
        let cell = &r.cells[0];
        let ratio = cell.ratio.expect("bound computed");
        // Fig. 2 at D=4, ε=0.05: greedy earns 1, Z_f* ≥ (D+1)(1−ε) = 4.75.
        assert!((cell.profit - 1.0).abs() < 1e-6, "profit {}", cell.profit);
        assert!(ratio <= 1.0 / 4.75 + 1e-3, "ratio {ratio} not tight");
        assert!(ratio > 0.0);
    }

    #[test]
    fn serialisations_are_well_formed() {
        let r = run_sweep(
            &tiny_two()[..1],
            &[PolicySpec::Greedy, PolicySpec::Random],
            SweepOptions {
                threads: 1,
                compute_bound: false,
            },
        );
        let json = r.to_json(true);
        assert!(json.contains("\"schema\": \"rideshare-sweep/1\""));
        assert!(json.contains("\"wall_ms\""));
        assert!(!r.to_json(false).contains("wall_ms"));
        let csv = r.to_csv(false);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("scenario,policy,"));
        let table = r.render();
        assert!(table.contains("greedy") && table.contains("random"));
    }

    #[test]
    fn policy_labels_round_trip() {
        for p in [
            PolicySpec::Greedy,
            PolicySpec::MaxMargin,
            PolicySpec::Nearest,
            PolicySpec::Random,
            PolicySpec::Batched(TimeDelta::from_mins(5)),
            PolicySpec::Batched(TimeDelta::from_secs(90)),
            PolicySpec::BatchedOptimal(TimeDelta::from_mins(5)),
            PolicySpec::BatchedOptimal(TimeDelta::from_secs(90)),
        ] {
            assert_eq!(PolicySpec::parse(&p.label()), Some(p));
        }
        for p in PolicySpec::w_sweep_set() {
            assert_eq!(PolicySpec::parse(&p.label()), Some(p));
        }
        // Distinct sub-minute windows get distinct labels.
        assert_eq!(
            PolicySpec::Batched(TimeDelta::from_secs(150)).label(),
            "batch-150s"
        );
        assert_eq!(
            PolicySpec::Batched(TimeDelta::from_secs(180)).label(),
            "batch-3m"
        );
        assert_eq!(
            PolicySpec::BatchedOptimal(TimeDelta::from_secs(180)).label(),
            "batch-opt-3m"
        );
        assert_eq!(PolicySpec::parse("margin"), Some(PolicySpec::MaxMargin));
        assert!(PolicySpec::parse("batch-xm").is_none());
        assert!(PolicySpec::parse("batch-opt-xm").is_none());
        assert!(PolicySpec::parse("no-such").is_none());
    }
}
