//! Multi-process sweep fan-out: the spool protocol, crash-safe workers,
//! and the deterministic merge.
//!
//! The paper's §IV decomposition argument is that a sweep is lossless to
//! partition: every `(scenario, policy)` cell is a pure function of the
//! catalog, so *where* it runs cannot change *what* it computes. This
//! module takes that from threads (see [`crate::sweep`]) to processes:
//!
//! - [`orchestrate`] splits a catalog into one self-describing **unit**
//!   spec file per scenario under `spool/units/`, spawns N `rideshare
//!   worker` children, and merges their results in catalog order — the
//!   merged report is **byte-identical** to a single-process
//!   [`run_sweep`] of the same catalog (`SweepReport::to_json(false)`).
//! - [`run_worker`] is the child side: it claims units via atomic
//!   `rename` (the filesystem is the lock), runs them through the same
//!   [`run_sweep`] core, and publishes canonical `rideshare-sweep/1`
//!   results with a tmp-write + rename so readers never see a torn file.
//!
//! Crash safety is structural, not transactional: a unit lives in
//! exactly one of `units/` (pending), `claimed/w<id>/` (running),
//! `results/` (done), or `poison/` (failed `max_attempts` times). A
//! worker that dies mid-unit leaves its claim behind; the parent requeues
//! it with an incremented attempt counter, and `--resume` applies the
//! same recovery to a whole interrupted run without recomputing finished
//! units. Results are idempotent — re-running a unit rewrites the same
//! bytes — so every recovery path is safe to race.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use rideshare_trace::wire::{parse_json, JsonValue};
use rideshare_types::{ConfigError, OrchestrateError};

use crate::scenario::Scenario;
use crate::sweep::{run_sweep, PolicySpec, SweepCell, SweepOptions, SweepReport};

const SPOOL_SCHEMA: &str = "rideshare-sweep-spool/1";
const UNIT_SCHEMA: &str = "rideshare-sweep-unit/1";
const SWEEP_SCHEMA: &str = "rideshare-sweep/1";

/// Options for [`orchestrate`].
#[derive(Clone, Debug)]
pub struct OrchestrateOptions {
    /// Number of worker child processes to keep alive while units remain.
    pub workers: usize,
    /// Command line prefix that launches one worker (e.g. `[rideshare,
    /// worker]`); the orchestrator appends `--spool`, `--id`, and
    /// `--threads`.
    pub worker_cmd: Vec<String>,
    /// Extra arguments appended to every worker invocation (used by the
    /// CI fault-injection smoke).
    pub worker_extra_args: Vec<String>,
    /// Thread budget handed to each worker's in-process sweep.
    pub threads_per_worker: usize,
    /// Compute the `Z_f*` ratio denominator per scenario.
    pub compute_bound: bool,
    /// Continue a partial spool instead of refusing to reuse it.
    pub resume: bool,
    /// How long a claimed unit may run before the parent assumes the
    /// worker is stuck, kills it, and requeues the unit.
    pub unit_timeout: Duration,
    /// Attempts per unit before it is poisoned (first run included).
    pub max_attempts: usize,
    /// Parent monitor / worker idle poll cadence.
    pub poll_interval: Duration,
}

impl Default for OrchestrateOptions {
    fn default() -> Self {
        Self {
            workers: 1,
            worker_cmd: Vec::new(),
            worker_extra_args: Vec::new(),
            threads_per_worker: 1,
            compute_bound: true,
            resume: false,
            unit_timeout: Duration::from_secs(300),
            max_attempts: 3,
            poll_interval: Duration::from_millis(25),
        }
    }
}

/// What [`orchestrate`] did, beyond the merged report.
#[derive(Clone, Debug)]
pub struct OrchestrateOutcome {
    /// The merged sweep, cell-for-cell equal to an in-process
    /// [`run_sweep`] of the same catalog.
    pub report: SweepReport,
    /// Units executed or recovered from a previous run.
    pub units: usize,
    /// Units found already finished in the spool (only under `--resume`).
    pub resumed: usize,
    /// Times a unit was requeued after a worker death or timeout.
    pub requeues: usize,
    /// Worker processes spawned beyond the initial pool.
    pub respawns: usize,
}

/// Options for [`run_worker`].
#[derive(Clone, Debug)]
pub struct WorkerOptions {
    /// The spool directory shared with the orchestrator.
    pub spool: PathBuf,
    /// Claim-directory suffix; must be unique among live workers. The
    /// orchestrator passes its spawn sequence number.
    pub id: String,
    /// Thread budget for the in-process sweep of each claimed unit.
    pub threads: usize,
    /// Idle poll cadence while waiting for requeued units.
    pub poll_interval: Duration,
    /// Fault injection: if this marker file does not exist yet, create it
    /// and report [`WorkerOutcome::CrashRequested`] right after the next
    /// claim, leaving the claim orphaned. The marker is created with
    /// `create_new`, so exactly one worker per marker crashes.
    pub crash_once: Option<PathBuf>,
    /// Fault injection: always crash right after claiming this scenario —
    /// the deterministic way to exhaust a unit's retry budget.
    pub crash_on_unit: Option<String>,
}

/// How a worker's run ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WorkerOutcome {
    /// Every catalog unit is accounted for in `results/` or `poison/`.
    Drained {
        /// Units this worker executed itself.
        units_done: usize,
    },
    /// A fault-injection flag asked this worker to die mid-unit; the
    /// claim was deliberately left behind for the parent to recover.
    CrashRequested,
}

// ---------------------------------------------------------------------------
// Spool layout
// ---------------------------------------------------------------------------

/// The spool directory layout. A unit spec file moves `units/` →
/// `claimed/w<id>/` → deleted, while its result appears in `results/`;
/// units that exhaust their retry budget land in `poison/` instead.
#[derive(Clone, Debug)]
struct Spool {
    root: PathBuf,
}

impl Spool {
    fn new(root: &Path) -> Self {
        Self {
            root: root.to_path_buf(),
        }
    }
    fn catalog(&self) -> PathBuf {
        self.root.join("catalog.json")
    }
    fn units(&self) -> PathBuf {
        self.root.join("units")
    }
    fn claimed(&self) -> PathBuf {
        self.root.join("claimed")
    }
    fn results(&self) -> PathBuf {
        self.root.join("results")
    }
    fn poison(&self) -> PathBuf {
        self.root.join("poison")
    }
}

fn io_err(op: &str, path: &Path, e: &io::Error) -> OrchestrateError {
    OrchestrateError::Io {
        op: op.to_string(),
        path: path.display().to_string(),
        detail: e.to_string(),
    }
}

/// Minimal JSON string escaping for names and labels.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Writes `text` to `path` atomically: tmp file in the same directory,
/// then rename. Readers either see the whole file or no file.
fn write_atomic(path: &Path, text: &str, tmp_tag: &str) -> Result<(), OrchestrateError> {
    let dir = path.parent().unwrap_or(Path::new("."));
    let tmp = dir.join(format!(
        ".tmp-{tmp_tag}-{}",
        path.file_name().and_then(|n| n.to_str()).unwrap_or("unit")
    ));
    fs::write(&tmp, text).map_err(|e| io_err("write tmp file", &tmp, &e))?;
    fs::rename(&tmp, path).map_err(|e| io_err("commit tmp file", path, &e))
}

// ---------------------------------------------------------------------------
// Unit specs and the spool manifest
// ---------------------------------------------------------------------------

/// One shard execution unit: a scenario and the policies to run on it.
/// Self-describing — a worker needs nothing but this file and the
/// scenario catalog compiled into the binary.
#[derive(Clone, PartialEq, Eq, Debug)]
struct UnitSpec {
    /// File stem, e.g. `0003-porto-day`; the index prefix pins catalog
    /// order and keeps duplicate scenario names distinct.
    unit: String,
    scenario: String,
    policies: Vec<String>,
    bound: bool,
    attempt: usize,
}

impl UnitSpec {
    fn file_name(&self) -> String {
        format!("{}.json", self.unit)
    }

    fn to_json(&self) -> String {
        let policies: Vec<String> = self.policies.iter().map(|p| json_str(p)).collect();
        format!(
            "{{\"schema\": {}, \"unit\": {}, \"scenario\": {}, \"policies\": [{}], \
             \"bound\": {}, \"attempt\": {}}}\n",
            json_str(UNIT_SCHEMA),
            json_str(&self.unit),
            json_str(&self.scenario),
            policies.join(", "),
            self.bound,
            self.attempt,
        )
    }

    fn parse(text: &str, path: &Path) -> Result<UnitSpec, OrchestrateError> {
        let corrupt = |detail: String| OrchestrateError::CorruptUnit {
            path: path.display().to_string(),
            detail,
        };
        let v = parse_json(text).map_err(&corrupt)?;
        let schema = v.get("schema").and_then(JsonValue::as_str);
        if schema != Some(UNIT_SCHEMA) {
            return Err(corrupt(format!(
                "schema {schema:?}, expected {UNIT_SCHEMA:?}"
            )));
        }
        let str_field = |key: &str| {
            v.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| corrupt(format!("missing string field {key:?}")))
        };
        let policies = v
            .get("policies")
            .and_then(JsonValue::arr)
            .ok_or_else(|| corrupt("missing policies array".into()))?
            .iter()
            .map(|p| {
                p.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| corrupt("non-string policy label".into()))
            })
            .collect::<Result<Vec<String>, _>>()?;
        Ok(UnitSpec {
            unit: str_field("unit")?,
            scenario: str_field("scenario")?,
            policies,
            bound: v
                .get("bound")
                .and_then(JsonValue::as_bool)
                .ok_or_else(|| corrupt("missing bool field \"bound\"".into()))?,
            attempt: v
                .get("attempt")
                .and_then(JsonValue::num)
                .and_then(|n| n.parse().ok())
                .ok_or_else(|| corrupt("missing numeric field \"attempt\"".into()))?,
        })
    }
}

/// The spool manifest (`catalog.json`): what the run is sweeping. Written
/// last during init, so a spool without one is an uncommitted leftover.
#[derive(Clone, PartialEq, Eq, Debug)]
struct Manifest {
    scenarios: Vec<String>,
    policies: Vec<String>,
    bound: bool,
    /// Unit file stems, catalog order — the merge order.
    units: Vec<String>,
}

impl Manifest {
    fn to_json(&self) -> String {
        let list = |items: &[String]| {
            items
                .iter()
                .map(|s| json_str(s))
                .collect::<Vec<_>>()
                .join(", ")
        };
        format!(
            "{{\n  \"schema\": {},\n  \"bound\": {},\n  \"scenarios\": [{}],\n  \
             \"policies\": [{}],\n  \"units\": [{}]\n}}\n",
            json_str(SPOOL_SCHEMA),
            self.bound,
            list(&self.scenarios),
            list(&self.policies),
            list(&self.units),
        )
    }

    fn parse(text: &str, path: &Path) -> Result<Manifest, OrchestrateError> {
        let corrupt = |detail: String| OrchestrateError::CorruptUnit {
            path: path.display().to_string(),
            detail,
        };
        let v = parse_json(text).map_err(&corrupt)?;
        let schema = v.get("schema").and_then(JsonValue::as_str);
        if schema != Some(SPOOL_SCHEMA) {
            return Err(corrupt(format!(
                "schema {schema:?}, expected {SPOOL_SCHEMA:?}"
            )));
        }
        let str_list = |key: &str| {
            v.get(key)
                .and_then(JsonValue::arr)
                .ok_or_else(|| corrupt(format!("missing array field {key:?}")))?
                .iter()
                .map(|s| {
                    s.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| corrupt(format!("non-string entry in {key:?}")))
                })
                .collect::<Result<Vec<String>, OrchestrateError>>()
        };
        Ok(Manifest {
            scenarios: str_list("scenarios")?,
            policies: str_list("policies")?,
            bound: v
                .get("bound")
                .and_then(JsonValue::as_bool)
                .ok_or_else(|| corrupt("missing bool field \"bound\"".into()))?,
            units: str_list("units")?,
        })
    }

    fn load(spool: &Spool) -> Result<Manifest, OrchestrateError> {
        let path = spool.catalog();
        let text =
            fs::read_to_string(&path).map_err(|e| io_err("read spool catalog", &path, &e))?;
        Manifest::parse(&text, &path)
    }
}

// ---------------------------------------------------------------------------
// Spool init / resume / recovery
// ---------------------------------------------------------------------------

/// Sorted `.json` entries of a directory; missing directory reads empty.
fn sorted_json_files(dir: &Path) -> Result<Vec<PathBuf>, OrchestrateError> {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(io_err("list spool dir", dir, &e)),
    };
    let mut out = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| io_err("list spool dir", dir, &e))?;
        let path = entry.path();
        if path.extension().is_some_and(|x| x == "json") {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}

/// Every per-worker claim file currently in the spool, sorted.
fn claimed_files(spool: &Spool) -> Result<Vec<PathBuf>, OrchestrateError> {
    let dir = spool.claimed();
    let entries = match fs::read_dir(&dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(io_err("list claim dirs", &dir, &e)),
    };
    let mut out = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| io_err("list claim dirs", &dir, &e))?;
        if entry.path().is_dir() {
            out.extend(sorted_json_files(&entry.path())?);
        }
    }
    out.sort();
    Ok(out)
}

/// Moves an orphaned claim (or poison file, on resume) back into play:
/// requeued into `units/` with the attempt counter bumped to `attempt`,
/// or poisoned when the retry budget is spent. A claim that vanished
/// (its worker finished after all) is skipped. Returns whether the unit
/// went back to `units/`.
fn recover_unit(
    spool: &Spool,
    claim: &Path,
    max_attempts: usize,
    forced_attempt: Option<usize>,
) -> Result<bool, OrchestrateError> {
    let text = match fs::read_to_string(claim) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(false),
        Err(e) => return Err(io_err("read claim", claim, &e)),
    };
    let spec = match UnitSpec::parse(&text, claim) {
        Ok(spec) => spec,
        Err(_) => {
            // An unparseable unit can never succeed: poison it directly,
            // keeping the raw bytes for post-mortems.
            let name = claim
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("corrupt.json");
            let dest = spool.poison().join(name);
            fs::rename(claim, &dest).map_err(|e| io_err("poison corrupt unit", &dest, &e))?;
            return Ok(false);
        }
    };
    let attempt = forced_attempt.unwrap_or(spec.attempt + 1);
    if attempt > max_attempts {
        let dest = spool.poison().join(spec.file_name());
        write_atomic(&dest, &spec.to_json(), "poison")?;
        fs::remove_file(claim).ok();
        return Ok(false);
    }
    let requeued = UnitSpec { attempt, ..spec };
    let dest = spool.units().join(requeued.file_name());
    write_atomic(&dest, &requeued.to_json(), "requeue")?;
    fs::remove_file(claim).ok();
    Ok(true)
}

/// Creates a fresh spool or, under `resume`, adopts a partial one:
/// finished results stay, orphaned claims requeue with a bumped attempt,
/// poisoned units get a fresh budget.
fn init_spool(
    spool: &Spool,
    scenarios: &[Scenario],
    policies: &[PolicySpec],
    opts: &OrchestrateOptions,
) -> Result<Manifest, OrchestrateError> {
    let scenario_names: Vec<String> = scenarios.iter().map(|s| s.name.to_string()).collect();
    let policy_labels: Vec<String> = policies.iter().map(PolicySpec::label).collect();
    let catalog_exists = spool.catalog().exists();

    if catalog_exists && !opts.resume {
        return Err(OrchestrateError::SpoolExists {
            path: spool.root.display().to_string(),
        });
    }

    if catalog_exists {
        let manifest = Manifest::load(spool)?;
        if manifest.scenarios != scenario_names
            || manifest.policies != policy_labels
            || manifest.bound != opts.compute_bound
        {
            return Err(OrchestrateError::ManifestMismatch {
                detail: format!(
                    "spool swept {:?} × {:?} (bound: {}), invocation asks {:?} × {:?} (bound: {})",
                    manifest.scenarios,
                    manifest.policies,
                    manifest.bound,
                    scenario_names,
                    policy_labels,
                    opts.compute_bound,
                ),
            });
        }
        // Orphaned claims lost a worker mid-run: bump their attempt.
        for claim in claimed_files(spool)? {
            recover_unit(spool, &claim, opts.max_attempts, None)?;
        }
        // Poisoned units get a fresh budget — resuming is an explicit
        // request to try again.
        for poisoned in sorted_json_files(&spool.poison())? {
            recover_unit(spool, &poisoned, opts.max_attempts, Some(1))?;
        }
        return Ok(manifest);
    }

    // Fresh init. A spool without a catalog is an uncommitted leftover;
    // clear its state dirs so stale files cannot leak into this run.
    for dir in [
        spool.units(),
        spool.claimed(),
        spool.results(),
        spool.poison(),
    ] {
        if dir.exists() {
            fs::remove_dir_all(&dir).map_err(|e| io_err("clear stale spool dir", &dir, &e))?;
        }
        fs::create_dir_all(&dir).map_err(|e| io_err("create spool dir", &dir, &e))?;
    }
    let mut units = Vec::with_capacity(scenarios.len());
    for (i, scenario) in scenarios.iter().enumerate() {
        let spec = UnitSpec {
            unit: format!("{i:04}-{}", scenario.name),
            scenario: scenario.name.to_string(),
            policies: policy_labels.clone(),
            bound: opts.compute_bound,
            attempt: 1,
        };
        let path = spool.units().join(spec.file_name());
        fs::write(&path, spec.to_json()).map_err(|e| io_err("write unit spec", &path, &e))?;
        units.push(spec.unit);
    }
    let manifest = Manifest {
        scenarios: scenario_names,
        policies: policy_labels,
        bound: opts.compute_bound,
        units,
    };
    // The catalog is the commit point: written last, atomically.
    write_atomic(&spool.catalog(), &manifest.to_json(), "catalog")?;
    Ok(manifest)
}

/// Which units are finished (result present) or poisoned.
fn spool_progress(spool: &Spool, manifest: &Manifest) -> (usize, Vec<String>) {
    let mut done = 0;
    let mut poisoned = Vec::new();
    for unit in &manifest.units {
        if spool.results().join(format!("{unit}.json")).exists() {
            done += 1;
        } else if spool.poison().join(format!("{unit}.json")).exists() {
            poisoned.push(unit.clone());
        }
    }
    (done, poisoned)
}

fn spool_complete(spool: &Spool, manifest: &Manifest) -> bool {
    let (done, poisoned) = spool_progress(spool, manifest);
    done + poisoned.len() == manifest.units.len()
}

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

/// Claims the lexicographically first pending unit by renaming it into
/// this worker's claim directory. The rename is the mutual exclusion:
/// exactly one claimant wins, losers see `NotFound` and move on.
fn claim_next(spool: &Spool, my_claims: &Path) -> Result<Option<PathBuf>, OrchestrateError> {
    for unit in sorted_json_files(&spool.units())? {
        let Some(name) = unit.file_name() else {
            continue;
        };
        let dest = my_claims.join(name);
        match fs::rename(&unit, &dest) {
            Ok(()) => return Ok(Some(dest)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
            Err(e) => return Err(io_err("claim unit", &unit, &e)),
        }
    }
    Ok(None)
}

/// Runs one claimed unit through the in-process sweep core and publishes
/// its canonical result. Deterministic spec-level failures (unknown
/// scenario or policy) are poisoned immediately — retrying cannot fix
/// them — while I/O failures bubble up as errors.
fn execute_unit(
    spool: &Spool,
    claim: &Path,
    spec: &UnitSpec,
    threads: usize,
) -> Result<(), OrchestrateError> {
    let scenario = Scenario::by_name(&spec.scenario);
    let policies: Option<Vec<PolicySpec>> = spec
        .policies
        .iter()
        .map(|label| PolicySpec::parse(label))
        .collect();
    let (Some(scenario), Some(policies)) = (scenario, policies) else {
        let dest = spool.poison().join(spec.file_name());
        write_atomic(&dest, &spec.to_json(), "poison")?;
        fs::remove_file(claim).ok();
        return Ok(());
    };
    let report = run_sweep(
        &[scenario],
        &policies,
        SweepOptions {
            threads,
            compute_bound: spec.bound,
        },
    );
    let dest = spool.results().join(spec.file_name());
    write_atomic(&dest, &report.to_json(false), "result")?;
    // The claim may already be gone if the parent timed this unit out and
    // requeued it; the published result stands either way.
    fs::remove_file(claim).ok();
    Ok(())
}

/// The worker side of the spool protocol: claim → run → publish, until
/// every catalog unit is accounted for in `results/` or `poison/`.
///
/// # Errors
///
/// Returns [`OrchestrateError`] on spool I/O failures or a missing /
/// corrupt catalog. A corrupt *unit* is poisoned, not an error.
pub fn run_worker(opts: &WorkerOptions) -> Result<WorkerOutcome, OrchestrateError> {
    let spool = Spool::new(&opts.spool);
    let manifest = Manifest::load(&spool)?;
    let my_claims = spool.claimed().join(format!("w{}", opts.id));
    fs::create_dir_all(&my_claims).map_err(|e| io_err("create claim dir", &my_claims, &e))?;

    let mut units_done = 0usize;
    loop {
        let Some(claim) = claim_next(&spool, &my_claims)? else {
            if spool_complete(&spool, &manifest) {
                return Ok(WorkerOutcome::Drained { units_done });
            }
            std::thread::sleep(opts.poll_interval);
            continue;
        };
        let text =
            fs::read_to_string(&claim).map_err(|e| io_err("read claimed unit", &claim, &e))?;
        let spec = match UnitSpec::parse(&text, &claim) {
            Ok(spec) => spec,
            Err(_) => {
                recover_unit(&spool, &claim, 0, None)?; // budget 0 ⇒ straight to poison
                continue;
            }
        };
        if let Some(marker) = &opts.crash_once {
            // `create_new` makes the crash exclusive: one worker per marker.
            if fs::File::options()
                .write(true)
                .create_new(true)
                .open(marker)
                .is_ok()
            {
                return Ok(WorkerOutcome::CrashRequested);
            }
        }
        if opts.crash_on_unit.as_deref() == Some(spec.scenario.as_str()) {
            return Ok(WorkerOutcome::CrashRequested);
        }
        execute_unit(&spool, &claim, &spec, opts.threads)?;
        units_done += 1;
    }
}

// ---------------------------------------------------------------------------
// Orchestrator
// ---------------------------------------------------------------------------

struct WorkerSlot {
    child: Child,
    claim_dir: PathBuf,
}

fn spawn_worker(
    spool: &Spool,
    opts: &OrchestrateOptions,
    seq: usize,
) -> Result<WorkerSlot, OrchestrateError> {
    let (program, prefix) = opts
        .worker_cmd
        .split_first()
        .ok_or_else(|| ConfigError::InvalidValue {
            option: "worker_cmd".into(),
            reason: "empty worker command line".into(),
        })
        .map_err(OrchestrateError::from)?;
    let child = Command::new(program)
        .args(prefix)
        .arg("--spool")
        .arg(&spool.root)
        .args(["--id", &seq.to_string()])
        .args(["--threads", &opts.threads_per_worker.to_string()])
        .args(&opts.worker_extra_args)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .spawn()
        .map_err(|e| OrchestrateError::Spawn {
            detail: format!("{program}: {e}"),
        })?;
    Ok(WorkerSlot {
        child,
        claim_dir: spool.claimed().join(format!("w{seq}")),
    })
}

/// Parses one canonical `rideshare-sweep/1` unit result back into cells.
/// The float fields survive byte-exactly: the canonical form prints four
/// fixed decimals, and re-formatting the parsed `f64` reproduces those
/// digits at these magnitudes.
fn parse_result(text: &str, path: &Path) -> Result<Vec<SweepCell>, OrchestrateError> {
    let corrupt = |detail: String| OrchestrateError::CorruptResult {
        path: path.display().to_string(),
        detail,
    };
    let v = parse_json(text).map_err(&corrupt)?;
    let schema = v.get("schema").and_then(JsonValue::as_str);
    if schema != Some(SWEEP_SCHEMA) {
        return Err(corrupt(format!(
            "schema {schema:?}, expected {SWEEP_SCHEMA:?}"
        )));
    }
    let cells = v
        .get("cells")
        .and_then(JsonValue::arr)
        .ok_or_else(|| corrupt("missing cells array".into()))?;
    let mut out = Vec::with_capacity(cells.len());
    for cell in cells {
        let str_field = |key: &str| {
            cell.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| corrupt(format!("missing string field {key:?}")))
        };
        let num_field = |key: &str| {
            cell.get(key)
                .and_then(JsonValue::num)
                .ok_or_else(|| corrupt(format!("missing numeric field {key:?}")))
        };
        let usize_field = |key: &str| {
            num_field(key).and_then(|n| {
                n.parse::<usize>()
                    .map_err(|e| corrupt(format!("bad {key:?}: {e}")))
            })
        };
        let ratio = match cell.get("ratio") {
            Some(JsonValue::Null) | None => None,
            Some(r) => Some(
                r.num()
                    .and_then(|n| n.parse::<f64>().ok())
                    .ok_or_else(|| corrupt("bad \"ratio\"".into()))?,
            ),
        };
        out.push(SweepCell {
            scenario: str_field("scenario")?,
            policy: str_field("policy")?,
            tasks: usize_field("tasks")?,
            drivers: usize_field("drivers")?,
            served: usize_field("served")?,
            profit: num_field("profit")?
                .parse::<f64>()
                .map_err(|e| corrupt(format!("bad \"profit\": {e}")))?,
            ratio,
            wall_ms: 0.0,
        });
    }
    Ok(out)
}

/// Merges unit results in catalog order into one report.
fn merge_results(spool: &Spool, manifest: &Manifest) -> Result<SweepReport, OrchestrateError> {
    let mut cells = Vec::with_capacity(manifest.units.len() * manifest.policies.len());
    for unit in &manifest.units {
        let path = spool.results().join(format!("{unit}.json"));
        let text = fs::read_to_string(&path).map_err(|e| io_err("read unit result", &path, &e))?;
        let unit_cells = parse_result(&text, &path)?;
        if unit_cells.len() != manifest.policies.len() {
            return Err(OrchestrateError::CorruptResult {
                path: path.display().to_string(),
                detail: format!(
                    "{} cells for {} policies",
                    unit_cells.len(),
                    manifest.policies.len()
                ),
            });
        }
        cells.extend(unit_cells);
    }
    Ok(SweepReport { cells })
}

/// Runs a scenario × policy sweep across `opts.workers` child processes
/// and merges their results deterministically.
///
/// The merged report's canonical serialisation
/// (`SweepReport::to_json(false)`) is byte-identical to an in-process
/// [`run_sweep`] of the same catalog, for any worker count — the §IV
/// decomposition carried across the process boundary.
///
/// # Errors
///
/// Typed [`OrchestrateError`]s for every failure mode: rejected
/// configuration, spool I/O, an existing spool without `resume`, a
/// mismatched resume manifest, worker spawn failures, an exhausted
/// respawn budget, and units poisoned after `max_attempts` failures.
/// The spool is left intact on error so `resume` can continue it.
pub fn orchestrate(
    spool_dir: &Path,
    scenarios: &[Scenario],
    policies: &[PolicySpec],
    opts: &OrchestrateOptions,
) -> Result<OrchestrateOutcome, OrchestrateError> {
    if opts.workers == 0 {
        return Err(ConfigError::ZeroWorkers.into());
    }
    if opts.max_attempts == 0 {
        return Err(ConfigError::ZeroAttempts.into());
    }
    if opts.unit_timeout.is_zero() {
        return Err(OrchestrateError::Config(ConfigError::InvalidValue {
            option: "unit_timeout".into(),
            reason: "must be positive".into(),
        }));
    }

    let spool = Spool::new(spool_dir);
    fs::create_dir_all(&spool.root).map_err(|e| io_err("create spool", &spool.root, &e))?;
    let manifest = init_spool(&spool, scenarios, policies, opts)?;
    let (resumed, _) = spool_progress(&spool, &manifest);

    let mut requeues = 0usize;
    let mut respawns = 0usize;
    let mut spawned = 0usize;
    // Enough budget to retry every unit to poison and still replace the
    // initial pool; a run needing more is wedged, not unlucky.
    let spawn_budget = opts.workers + manifest.units.len() * opts.max_attempts;
    let mut slots: Vec<WorkerSlot> = Vec::with_capacity(opts.workers);
    for _ in 0..opts.workers.min(manifest.units.len().max(1)) {
        slots.push(spawn_worker(&spool, opts, spawned)?);
        spawned += 1;
    }

    let mut first_seen: BTreeMap<PathBuf, Instant> = BTreeMap::new();
    loop {
        // Reap dead workers and recover whatever they were holding.
        let mut i = 0;
        while i < slots.len() {
            let exited = slots[i]
                .child
                .try_wait()
                .map_err(|e| io_err("reap worker", &slots[i].claim_dir, &e))?
                .is_some();
            if exited {
                let slot = slots.remove(i);
                for claim in sorted_json_files(&slot.claim_dir)? {
                    first_seen.remove(&claim);
                    if recover_unit(&spool, &claim, opts.max_attempts, None)? {
                        requeues += 1;
                    }
                }
            } else {
                i += 1;
            }
        }

        // Time out stuck units: kill the owner (its claim is recovered on
        // the next reap pass) so a wedged child cannot hold a unit forever.
        let now = Instant::now();
        let claims = claimed_files(&spool)?;
        first_seen.retain(|path, _| claims.contains(path));
        for claim in claims {
            let seen = *first_seen.entry(claim.clone()).or_insert(now);
            if now.duration_since(seen) >= opts.unit_timeout {
                let owner = claim.parent().map(Path::to_path_buf).unwrap_or_default();
                for slot in &mut slots {
                    if slot.claim_dir == owner {
                        slot.child.kill().ok();
                    }
                }
            }
        }

        if spool_complete(&spool, &manifest) {
            break;
        }

        // Keep the pool at strength while work remains claimable.
        let pending = !sorted_json_files(&spool.units())?.is_empty();
        if pending && slots.len() < opts.workers {
            if spawned >= spawn_budget {
                if slots.is_empty() {
                    return Err(OrchestrateError::SpawnBudgetExhausted { attempts: spawned });
                }
            } else {
                slots.push(spawn_worker(&spool, opts, spawned)?);
                spawned += 1;
                respawns += 1;
            }
        } else if pending && slots.is_empty() {
            return Err(OrchestrateError::SpawnBudgetExhausted { attempts: spawned });
        }

        std::thread::sleep(opts.poll_interval);
    }

    // Drain: workers exit on their own once they observe completion; give
    // them a grace window, then kill stragglers (e.g. a timed-out unit
    // still computing a result that is no longer needed).
    let deadline = Instant::now() + Duration::from_secs(5);
    for slot in &mut slots {
        loop {
            match slot.child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if Instant::now() >= deadline => {
                    slot.child.kill().ok();
                    slot.child.wait().ok();
                    break;
                }
                Ok(None) => std::thread::sleep(opts.poll_interval),
                Err(_) => break,
            }
        }
    }

    let (_, poisoned) = spool_progress(&spool, &manifest);
    if !poisoned.is_empty() {
        return Err(OrchestrateError::Poisoned { units: poisoned });
    }
    let report = merge_results(&spool, &manifest)?;
    Ok(OrchestrateOutcome {
        report,
        units: manifest.units.len(),
        resumed,
        requeues,
        respawns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tmp_spool(tag: &str) -> PathBuf {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "rideshare-distrib-{tag}-{}-{n}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn tiny_two() -> Vec<Scenario> {
        Scenario::tiny_catalog().into_iter().take(2).collect()
    }

    #[test]
    fn unit_spec_round_trips() {
        let spec = UnitSpec {
            unit: "0001-tiny-rides".into(),
            scenario: "tiny-rides".into(),
            policies: vec!["greedy".into(), "batch-3m".into()],
            bound: true,
            attempt: 2,
        };
        let parsed = UnitSpec::parse(&spec.to_json(), Path::new("x.json")).unwrap();
        assert_eq!(parsed, spec);
        assert!(UnitSpec::parse("{}", Path::new("x.json")).is_err());
        assert!(UnitSpec::parse("not json", Path::new("x.json")).is_err());
    }

    #[test]
    fn manifest_round_trips() {
        let m = Manifest {
            scenarios: vec!["a".into(), "b".into()],
            policies: vec!["greedy".into()],
            bound: false,
            units: vec!["0000-a".into(), "0001-b".into()],
        };
        assert_eq!(
            Manifest::parse(&m.to_json(), Path::new("c.json")).unwrap(),
            m
        );
    }

    #[test]
    fn in_process_worker_drains_spool_and_merge_is_byte_identical() {
        let dir = tmp_spool("drain");
        let scenarios = tiny_two();
        let policies = [PolicySpec::Greedy, PolicySpec::Nearest];
        let opts = OrchestrateOptions {
            compute_bound: false,
            ..OrchestrateOptions::default()
        };
        let spool = Spool::new(&dir);
        let manifest = init_spool(&spool, &scenarios, &policies, &opts).unwrap();
        let outcome = run_worker(&WorkerOptions {
            spool: dir.clone(),
            id: "t".into(),
            threads: 1,
            poll_interval: Duration::from_millis(1),
            crash_once: None,
            crash_on_unit: None,
        })
        .unwrap();
        assert_eq!(outcome, WorkerOutcome::Drained { units_done: 2 });
        let merged = merge_results(&spool, &manifest).unwrap();
        let reference = run_sweep(
            &scenarios,
            &policies,
            SweepOptions {
                threads: 1,
                compute_bound: false,
            },
        );
        assert_eq!(merged.to_json(false), reference.to_json(false));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fresh_spool_refuses_reuse_without_resume() {
        let dir = tmp_spool("reuse");
        let scenarios = tiny_two();
        let policies = [PolicySpec::Greedy];
        let opts = OrchestrateOptions {
            compute_bound: false,
            ..OrchestrateOptions::default()
        };
        let spool = Spool::new(&dir);
        init_spool(&spool, &scenarios, &policies, &opts).unwrap();
        let err = init_spool(&spool, &scenarios, &policies, &opts).unwrap_err();
        assert!(matches!(err, OrchestrateError::SpoolExists { .. }), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_rejects_mismatched_manifest_and_requeues_claims() {
        let dir = tmp_spool("resume");
        let scenarios = tiny_two();
        let policies = [PolicySpec::Greedy];
        let opts = OrchestrateOptions {
            compute_bound: false,
            resume: true,
            ..OrchestrateOptions::default()
        };
        let spool = Spool::new(&dir);
        init_spool(&spool, &scenarios, &policies, &opts).unwrap();

        // Orphan one claim as if a worker died mid-unit.
        let unit = sorted_json_files(&spool.units()).unwrap().remove(0);
        let claim_dir = spool.claimed().join("wdead");
        fs::create_dir_all(&claim_dir).unwrap();
        let claim = claim_dir.join(unit.file_name().unwrap());
        fs::rename(&unit, &claim).unwrap();

        // Mismatched policies must refuse to resume.
        let err = init_spool(&spool, &scenarios, &[PolicySpec::Random], &opts).unwrap_err();
        assert!(
            matches!(err, OrchestrateError::ManifestMismatch { .. }),
            "{err}"
        );

        // A matching resume requeues the orphan with a bumped attempt.
        init_spool(&spool, &scenarios, &policies, &opts).unwrap();
        assert!(!claim.exists());
        let requeued = sorted_json_files(&spool.units()).unwrap();
        assert_eq!(requeued.len(), 2);
        let spec =
            UnitSpec::parse(&fs::read_to_string(&requeued[0]).unwrap(), &requeued[0]).unwrap();
        assert_eq!(spec.attempt, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_unit_poisons_after_budget() {
        let dir = tmp_spool("poison");
        let scenarios = tiny_two();
        let policies = [PolicySpec::Greedy];
        let opts = OrchestrateOptions {
            compute_bound: false,
            max_attempts: 2,
            ..OrchestrateOptions::default()
        };
        let spool = Spool::new(&dir);
        init_spool(&spool, &scenarios, &policies, &opts).unwrap();
        let unit = sorted_json_files(&spool.units()).unwrap().remove(0);
        let claim_dir = spool.claimed().join("w0");
        fs::create_dir_all(&claim_dir).unwrap();
        let claim = claim_dir.join(unit.file_name().unwrap());

        // Attempt 1 → requeue as attempt 2; attempt 2 → poison.
        fs::rename(&unit, &claim).unwrap();
        assert!(recover_unit(&spool, &claim, 2, None).unwrap());
        let requeued = &sorted_json_files(&spool.units()).unwrap()[0];
        fs::rename(requeued, &claim).unwrap();
        assert!(!recover_unit(&spool, &claim, 2, None).unwrap());
        assert_eq!(sorted_json_files(&spool.poison()).unwrap().len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn orchestrate_rejects_bad_config() {
        let dir = tmp_spool("cfg");
        let scenarios = tiny_two();
        let err = orchestrate(
            &dir,
            &scenarios,
            &[PolicySpec::Greedy],
            &OrchestrateOptions {
                workers: 0,
                ..OrchestrateOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(
            err,
            OrchestrateError::Config(ConfigError::ZeroWorkers)
        ));
        let err = orchestrate(
            &dir,
            &scenarios,
            &[PolicySpec::Greedy],
            &OrchestrateOptions {
                max_attempts: 0,
                ..OrchestrateOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(
            err,
            OrchestrateError::Config(ConfigError::ZeroAttempts)
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_result_round_trips_cells() {
        let scenarios = tiny_two();
        let report = run_sweep(
            &scenarios[..1],
            &[PolicySpec::Greedy, PolicySpec::Random],
            SweepOptions {
                threads: 1,
                compute_bound: true,
            },
        );
        let cells = parse_result(&report.to_json(false), Path::new("r.json")).unwrap();
        let round = SweepReport { cells };
        assert_eq!(round.to_json(false), report.to_json(false));
        assert!(parse_result("{}", Path::new("r.json")).is_err());
    }
}
