//! All figures in one command: sweep the full scenario catalog under the
//! default policy set and emit one machine-readable report.
//!
//! This is the catalog-driven successor of the per-figure binaries: every
//! workload the paper evaluates (plus the extended ones — delivery,
//! rush-hour surge, multi-day) runs through the same parallel sharded
//! sweep engine and lands in one `scenario × policy` table of
//! `{profit, served, ratio vs Z_f*, wall-time}`.
//!
//! Usage: `cargo run --release --bin fig_all [--quick] [--threads N]
//!         [--no-bound] [--json PATH] [--csv PATH]`
//!
//! `--quick` restricts the run to the tiny catalog (the CI snapshot
//! matrix); `--threads` sets the shard fan-out (default: all cores);
//! `--no-bound` skips the `Z_f*` denominators; `--json`/`--csv` also write
//! the report to files (timing included).

use rideshare_bench::{run_sweep, PolicySpec, Scenario, SweepOptions};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let threads: usize = match flag_value("--threads") {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("error: bad value '{v}' for --threads");
            std::process::exit(1);
        }),
        None => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    };
    let scenarios = if args.iter().any(|a| a == "--quick") {
        Scenario::tiny_catalog()
    } else {
        Scenario::catalog()
    };
    let opts = SweepOptions {
        threads,
        compute_bound: !args.iter().any(|a| a == "--no-bound"),
    };

    eprintln!(
        "sweeping {} scenarios × {} policies on {threads} thread(s)…",
        scenarios.len(),
        PolicySpec::default_set().len()
    );
    let start = std::time::Instant::now();
    let report = run_sweep(&scenarios, &PolicySpec::default_set(), opts);
    let elapsed = start.elapsed().as_secs_f64();

    println!("{}", report.render());
    println!("cells are profit (ratio vs Z_f*); swept in {elapsed:.2}s");

    if let Some(path) = flag_value("--json") {
        std::fs::write(&path, report.to_json(true)).expect("write JSON report");
        eprintln!("wrote {path}");
    }
    if let Some(path) = flag_value("--csv") {
        std::fs::write(&path, report.to_csv(true)).expect("write CSV report");
        eprintln!("wrote {path}");
    }
}
