//! Quality ablations for the design choices flagged in DESIGN.md §5.
//!
//! - **Dispatch criterion**: maxMargin (Eq. 14) vs Nearest arrival vs
//!   Random candidate — isolates how much the selection rule contributes
//!   beyond feasibility filtering.
//! - **Surge pricing on/off**: effect on total revenue and served rate
//!   (the §VI-C congestion-control discussion).
//! - **Chain-wait cap**: pruning long idle gaps from the task map — the
//!   offline greedy's quality/speed trade-off.
//! - **Upper-bound validation**: `Z_f*` vs exact `Z*` gap at small scale.
//!
//! Usage: `cargo run --release --bin ablations [--quick]`

use rideshare_core::{
    lp_upper_bound, solve_exact, solve_greedy, ExactOptions, Market, MarketBuildOptions, Objective,
    UpperBoundOptions,
};
use rideshare_metrics::render_table;
use rideshare_online::{MaxMargin, NearestDriver, RandomDispatch, SimulationOptions, Simulator};
use rideshare_pricing::SurgeConfig;
use rideshare_trace::{DriverModel, TraceConfig};
use rideshare_types::TimeDelta;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let tasks = if quick { 150 } else { 600 };
    let drivers = if quick { 25 } else { 80 };

    dispatch_criterion(tasks, drivers);
    surge_on_off(tasks, drivers);
    chain_wait_cap(tasks, drivers);
    partitioning_loss(tasks, drivers);
    objective_comparison(tasks, drivers);
    bound_vs_exact();
}

fn trace(tasks: usize, drivers: usize) -> rideshare_trace::Trace {
    TraceConfig::porto()
        .with_seed(77)
        .with_task_count(tasks)
        .with_driver_count(drivers, DriverModel::Hitchhiking)
        .generate()
}

fn dispatch_criterion(tasks: usize, drivers: usize) {
    println!("== Ablation: dispatch criterion ({tasks} tasks, {drivers} drivers) ==");
    let market = Market::from_trace(&trace(tasks, drivers), &MarketBuildOptions::default());
    let sim = Simulator::new(&market);
    let mut rows = Vec::new();
    let mut policies: Vec<Box<dyn rideshare_online::DispatchPolicy>> = vec![
        Box::new(MaxMargin::new()),
        Box::new(NearestDriver::with_seed(0)),
        Box::new(RandomDispatch::with_seed(0)),
    ];
    for policy in &mut policies {
        let r = sim.run(policy.as_mut(), SimulationOptions::default());
        rows.push(vec![
            policy.name().to_string(),
            format!("{:.2}", r.total_profit(&market).as_f64()),
            format!("{:.3}", r.service_rate()),
        ]);
    }
    println!(
        "{}",
        render_table(&["policy", "profit", "served rate"], &rows)
    );
}

fn surge_on_off(tasks: usize, drivers: usize) {
    println!("== Ablation: surge pricing on/off ==");
    let t = trace(tasks, drivers);
    let mut rows = Vec::new();
    for (label, surge) in [
        ("uber-like (√ratio, cap 3×)", SurgeConfig::uber_like()),
        ("disabled (α ≡ 1)", SurgeConfig::disabled()),
    ] {
        let market = Market::from_trace(
            &t,
            &MarketBuildOptions {
                surge,
                ..Default::default()
            },
        );
        let sim = Simulator::new(&market);
        let r = sim.run(&mut MaxMargin::new(), SimulationOptions::default());
        rows.push(vec![
            label.to_string(),
            format!("{:.2}", r.assignment.total_revenue(&market).as_f64()),
            format!("{:.2}", r.total_profit(&market).as_f64()),
            format!("{:.3}", r.service_rate()),
        ]);
    }
    println!(
        "{}",
        render_table(&["surge", "revenue", "profit", "served rate"], &rows)
    );
}

fn chain_wait_cap(tasks: usize, drivers: usize) {
    println!("== Ablation: chain-wait cap on the offline task map ==");
    let t = trace(tasks, drivers);
    let mut rows = Vec::new();
    for (label, cap) in [
        ("uncapped (paper model)", None),
        ("≤ 60 min", Some(TimeDelta::from_mins(60))),
        ("≤ 15 min", Some(TimeDelta::from_mins(15))),
    ] {
        let market = Market::from_trace(
            &t,
            &MarketBuildOptions {
                max_chain_wait: cap,
                ..Default::default()
            },
        );
        let ga = solve_greedy(&market, Objective::Profit);
        rows.push(vec![
            label.to_string(),
            market.chain_arc_count().to_string(),
            format!(
                "{:.2}",
                ga.assignment
                    .objective_value(&market, Objective::Profit)
                    .as_f64()
            ),
            ga.evaluations.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(&["cap", "chain arcs", "greedy profit", "DP evals"], &rows)
    );
}

fn partitioning_loss(tasks: usize, drivers: usize) {
    println!("== Ablation: geographic partitioning loss (§I's distribution claim) ==");
    let market = Market::from_trace(&trace(tasks, drivers), &MarketBuildOptions::default());
    let global = solve_greedy(&market, Objective::Profit)
        .assignment
        .objective_value(&market, Objective::Profit)
        .as_f64();
    let mut rows = vec![vec![
        "global (k=1)".to_string(),
        format!("{global:.2}"),
        "100.0%".to_string(),
    ]];
    for k in [2u16, 4, 8] {
        let merged = rideshare_core::partition::solve_partitioned(&market, k, Objective::Profit);
        merged
            .validate(&market)
            .expect("merged assignment feasible");
        let p = merged.objective_value(&market, Objective::Profit).as_f64();
        rows.push(vec![
            format!("{k}x{k} cells"),
            format!("{p:.2}"),
            format!("{:.1}%", p / global.max(1e-9) * 100.0),
        ]);
    }
    println!(
        "{}",
        render_table(&["partition", "greedy profit", "vs global"], &rows)
    );
}

fn objective_comparison(tasks: usize, drivers: usize) {
    println!("== Ablation: drivers'-profit (Eq. 4) vs social-welfare (Eq. 6) objective ==");
    let market = Market::from_trace(&trace(tasks, drivers), &MarketBuildOptions::default());
    let mut rows = Vec::new();
    for objective in [Objective::Profit, Objective::Welfare] {
        let a = solve_greedy(&market, objective).assignment;
        rows.push(vec![
            format!("{objective:?}-greedy"),
            format!(
                "{:.2}",
                a.objective_value(&market, Objective::Profit).as_f64()
            ),
            format!(
                "{:.2}",
                a.objective_value(&market, Objective::Welfare).as_f64()
            ),
            a.served_count().to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["optimised for", "profit value", "welfare value", "served"],
            &rows
        )
    );
}

fn bound_vs_exact() {
    println!("== Ablation: Z_f* (column generation) vs exact Z* at small scale ==");
    let mut rows = Vec::new();
    for (tasks, drivers) in [(10, 5), (14, 7), (18, 8)] {
        let market = Market::from_trace(&trace(tasks, drivers), &MarketBuildOptions::default());
        let exact = solve_exact(&market, Objective::Profit, ExactOptions::default())
            .expect("small instance solves");
        let ub = lp_upper_bound(&market, Objective::Profit, UpperBoundOptions::default())
            .expect("column generation converges");
        let gap = if exact.objective_value.abs() < 1e-9 {
            0.0
        } else {
            (ub.bound - exact.objective_value) / exact.objective_value.max(1e-9)
        };
        rows.push(vec![
            format!("{tasks}×{drivers}"),
            format!("{:.4}", exact.objective_value),
            format!("{:.4}", ub.bound),
            format!("{:.2}%", gap * 100.0),
            ub.rounds.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(&["M×N", "Z*", "Z_f*", "gap", "CG rounds"], &rows)
    );
}
