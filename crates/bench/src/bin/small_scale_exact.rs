//! Small-scale exact evaluation (§VI-B): "for the evaluation of small-scale
//! problems … we can use the integer programming solvers of CPLEX or MOSEK
//! to calculate the exact value of the best integer solution Z*, and then
//! use Z* as the upper bound".
//!
//! This binary is that mode with the workspace's branch-and-bound standing
//! in for CPLEX: on a grid of small instances it reports Z*, Z_f*, and each
//! algorithm's exact performance ratio (vs Z*), plus GA's worst observed
//! ratio against its 1/(D+1) guarantee.
//!
//! Usage: `cargo run --release --bin small_scale_exact [seeds]`

use rideshare_bench::{build_market, run_all_algorithms};
use rideshare_core::{
    lp_upper_bound, solve_exact, ExactOptions, MarketSummary, Objective, UpperBoundOptions,
};
use rideshare_metrics::render_table;
use rideshare_trace::DriverModel;

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);

    println!("== Small-scale exact evaluation: Z* (branch & bound) vs algorithms ==");
    let mut rows = Vec::new();
    let mut worst_ga_ratio = f64::INFINITY;
    let mut worst_guarantee = 0.0f64;
    for seed in 0..seeds {
        for (tasks, drivers) in [(10usize, 4usize), (14, 5), (18, 6)] {
            let market = build_market(1000 + seed, tasks, drivers, DriverModel::Hitchhiking);
            let summary = MarketSummary::of(&market);
            let exact = match solve_exact(&market, Objective::Profit, ExactOptions::default()) {
                Ok(e) if e.proven_optimal => e,
                _ => continue, // node budget blown — skip the point
            };
            if exact.objective_value < 1e-6 {
                continue; // degenerate instance with nothing to serve
            }
            let ub = lp_upper_bound(&market, Objective::Profit, UpperBoundOptions::default())
                .expect("column generation on a small market");
            let runs = run_all_algorithms(&market);
            let ratio = |profit: f64| profit / exact.objective_value;
            let ga = ratio(runs[0].profit);
            worst_ga_ratio = worst_ga_ratio.min(ga);
            worst_guarantee = worst_guarantee.max(summary.greedy_guarantee);
            rows.push(vec![
                format!("{seed}/{tasks}x{drivers}"),
                format!("{:.3}", exact.objective_value),
                format!("{:.3}", ub.bound),
                format!("{ga:.3}"),
                format!("{:.3}", ratio(runs[1].profit)),
                format!("{:.3}", ratio(runs[2].profit)),
                summary.diameter.to_string(),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "seed/size",
                "Z*",
                "Z_f*",
                "Greedy",
                "maxMargin",
                "Nearest",
                "D"
            ],
            &rows
        )
    );
    println!(
        "worst observed GA ratio: {worst_ga_ratio:.3} (Theorem 1 floor at the largest D seen: {worst_guarantee:.3})"
    );
}
