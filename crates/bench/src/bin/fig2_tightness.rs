//! Figure 2 / Lemma 3 — tightness of the 1/(D+1) approximation ratio.
//!
//! Builds the geometric adversarial family of §IV-B for a sweep of
//! diameters `D`, runs GA and the exact ILP on each instance, and reports
//! the achieved ratio against the theoretical `1/(D+1)` floor.
//!
//! Usage: `cargo run --release --bin fig2_tightness [max_d]`

use rideshare_core::tightness::fig2_instance;
use rideshare_core::{solve_exact, solve_greedy, ExactOptions, Objective};
use rideshare_metrics::render_table;

fn main() {
    let max_d: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    let epsilon = 0.02;

    println!("== Fig. 2 — tightness of GA's 1/(D+1) ratio (ε = {epsilon}) ==");
    let mut rows = Vec::new();
    for d in 1..=max_d {
        let inst = fig2_instance(d, epsilon);
        let ga = solve_greedy(&inst.market, Objective::Profit);
        let ga_profit = ga
            .assignment
            .objective_value(&inst.market, Objective::Profit)
            .as_f64();
        // Exact ILP is exponential-ish; cap it at moderate D and fall back
        // to the analytic optimum beyond.
        let opt = if d <= 4 {
            solve_exact(&inst.market, Objective::Profit, ExactOptions::default())
                .map(|e| e.objective_value)
                .unwrap_or_else(|_| inst.expected_opt())
        } else {
            inst.expected_opt()
        };
        let ratio = ga_profit / opt;
        rows.push(vec![
            d.to_string(),
            format!("{ga_profit:.4}"),
            format!("{opt:.4}"),
            format!("{ratio:.4}"),
            format!("{:.4}", 1.0 / (d as f64 + 1.0)),
        ]);
    }
    println!(
        "{}",
        render_table(&["D", "GA profit", "OPT", "ratio", "1/(D+1)"], &rows)
    );
    println!("expected shape: ratio tracks 1/(D+1) from above as ε → 0.");
}
