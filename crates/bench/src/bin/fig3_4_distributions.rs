//! Figures 3 & 4 — travel-time and travel-distance distributions.
//!
//! The paper plots the marginal distributions of trip travel time (Fig. 3)
//! and travel distance (Fig. 4) of the Porto trace and observes that both
//! "exhibit the shape following the power law distribution". This binary
//! generates the synthetic trace, prints log-binned densities for both
//! marginals, and reports the maximum-likelihood power-law exponent so the
//! shape claim can be checked quantitatively.
//!
//! Usage: `cargo run --release --bin fig3_4_distributions [trips]`

use rideshare_metrics::render_table;
use rideshare_trace::stats::{ccdf, fit_power_law, summarize, Histogram};
use rideshare_trace::{DriverModel, TraceConfig};

fn main() {
    let trips: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);

    let trace = TraceConfig::porto()
        .with_seed(1907)
        .with_task_count(trips)
        .with_driver_count(442, DriverModel::HomeWorkHome)
        .generate();

    let times_min: Vec<f64> = trace
        .trips
        .iter()
        .map(|t| t.duration.as_mins_f64())
        .collect();
    let dists_km: Vec<f64> = trace.trips.iter().map(|t| t.distance_km).collect();

    print_figure(
        "Fig. 3 — travel time distribution (minutes)",
        &times_min,
        1.0,
    );
    println!();
    print_figure("Fig. 4 — travel distance distribution (km)", &dists_km, 1.0);
}

fn print_figure(title: &str, xs: &[f64], fit_xmin: f64) {
    println!("== {title} ==");
    let s = summarize(xs).expect("non-empty sample");
    println!(
        "n = {}   mean = {:.2}   p50 = {:.2}   p90 = {:.2}   p99 = {:.2}   max = {:.2}",
        s.count, s.mean, s.p50, s.p90, s.p99, s.max
    );
    match fit_power_law(xs, fit_xmin) {
        Some(alpha) => println!("power-law MLE exponent (x ≥ {fit_xmin}): α̂ = {alpha:.3}"),
        None => println!("power-law fit: insufficient tail data"),
    }

    let max = xs.iter().copied().fold(f64::MIN, f64::max);
    let mut hist = Histogram::logarithmic(fit_xmin.max(0.1), max + 1.0, 12);
    hist.extend(xs);
    let rows: Vec<Vec<String>> = hist
        .density()
        .iter()
        .zip(hist.edges().windows(2))
        .map(|((center, dens), edge)| {
            vec![
                format!("[{:.2}, {:.2})", edge[0], edge[1]),
                format!("{center:.2}"),
                format!("{dens:.5}"),
            ]
        })
        .collect();
    println!("{}", render_table(&["bin", "center", "density"], &rows));

    // A handful of CCDF anchor points for the log-log tail plot.
    let tail = ccdf(xs);
    let picks = [0.5, 0.1, 0.01];
    for p in picks {
        if let Some((x, _)) = tail.iter().find(|(_, frac)| *frac <= p) {
            println!("CCDF: P(X > {x:.2}) ≈ {p}");
        }
    }
}
