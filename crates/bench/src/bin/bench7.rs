//! BENCH_7 harness: wall-clock throughput of the dispatch hot path,
//! before/after the zero-alloc `.rtb` replay work, emitted as
//! machine-checkable JSON (`BENCH_7.json` at the repo root).
//!
//! Three measurements, all MaxMargin + spatial grid on the Porto trace
//! (best-of-N wall clock, tasks ÷ seconds):
//!
//! - **sequential `.rtb` input** — the gated metric: a pre-encoded
//!   in-memory `.rtb` stream decoded zero-copy straight into
//!   [`StreamEngine`], exactly the `rideshare replay --input` path,
//!   through the instant MaxMargin policy with the grid on,
//! - **sequential full pipeline** — lazy generation → incremental surge
//!   pricing → dispatch, the PR 5 `rideshare replay` path (its committed
//!   baseline: 272,808 tasks/s at 1M tasks),
//! - **sharded `.rtb` input** — the same stream through
//!   `replay_sharded` at 4 shards / 4 regions.
//!
//! Usage:
//!   `cargo run --release --bin bench7 -- [--tasks N] [--drivers N]
//!    [--seed N] [--best-of N] [--out PATH] [--check PATH]`
//!
//! `--out` writes the JSON report; `--check` additionally compares the
//! measured sequential `.rtb` throughput against the value committed in
//! an existing report and exits non-zero on a >10% regression — the CI
//! bench-smoke gate.

use std::time::Instant;

use rideshare_core::{Driver, MarketBuildOptions, StreamPricer};
use rideshare_geo::{BoundingBox, SpeedModel};
use rideshare_metrics::StreamMetrics;
use rideshare_online::{
    event_to_wire, wire_to_event, BoxPartitioner, MaxMargin, ShardOptions, ShardPolicySpec,
    StreamEngine, StreamEvent, StreamOptions, StreamPolicy,
};
use rideshare_trace::{rtb, DriverModel, TraceConfig};
use rideshare_types::TimeDelta;

/// PR 5's committed sequential full-pipeline throughput at 1M tasks
/// (tasks/s) — the denominator for the headline speedup.
const PR5_SEQUENTIAL_TASKS_PER_S: f64 = 272_808.0;

/// Fraction of the committed throughput the measured value must reach
/// for `--check` to pass (ISSUE 7: fail on >10% regression).
const GATE_MIN_FRACTION: f64 = 0.9;

struct Config {
    tasks: usize,
    drivers: usize,
    seed: u64,
    regions: usize,
    shards: usize,
    best_of: usize,
    out: Option<String>,
    check: Option<String>,
}

fn parse_args() -> Config {
    let mut config = Config {
        tasks: 1_000_000,
        drivers: 450,
        seed: 0,
        regions: 4,
        shards: 4,
        best_of: 3,
        out: None,
        check: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--tasks" => config.tasks = value("--tasks").parse().expect("--tasks: integer"),
            "--drivers" => config.drivers = value("--drivers").parse().expect("--drivers: integer"),
            "--seed" => config.seed = value("--seed").parse().expect("--seed: integer"),
            "--best-of" => {
                config.best_of = value("--best-of").parse().expect("--best-of: integer");
                config.best_of = config.best_of.max(1);
            }
            "--out" => config.out = Some(value("--out")),
            "--check" => config.check = Some(value("--check")),
            other => panic!("unknown flag {other:?} (see //! docs for usage)"),
        }
    }
    config
}

/// The generator→pricer pipeline shared by `export` and `replay`:
/// every shift announced up front, then surge-priced trips in publish
/// order.
struct Pipeline {
    speed: SpeedModel,
    bbox: BoundingBox,
    region_boxes: Vec<BoundingBox>,
    events: Vec<StreamEvent>,
}

fn build_pipeline(config: &Config) -> Pipeline {
    let trace = TraceConfig::porto()
        .with_seed(config.seed)
        .with_task_count(config.tasks)
        .with_driver_count(config.drivers, DriverModel::Hitchhiking)
        .with_regions(config.regions);
    let region_boxes = trace.region_boxes();
    let stream = trace.stream();
    let speed = stream.speed();
    let bbox = stream.bounding_box();
    let build = MarketBuildOptions {
        surge_window: Some(TimeDelta::from_mins(30)),
        ..MarketBuildOptions::default()
    };
    let mut pricer = StreamPricer::new(&build, bbox, speed, stream.drivers());
    let mut events: Vec<StreamEvent> = stream
        .drivers()
        .iter()
        .map(|shift| StreamEvent::DriverOnline(Driver::from(shift)))
        .collect();
    for trip in stream {
        events.push(StreamEvent::TaskPublished(pricer.price(&trip)));
    }
    Pipeline {
        speed,
        bbox,
        region_boxes,
        events,
    }
}

fn encode_rtb(events: &[StreamEvent]) -> Vec<u8> {
    let mut bytes = Vec::new();
    let wire: Vec<_> = events.iter().map(event_to_wire).collect();
    rtb::write_events(&mut bytes, &wire).expect("in-memory encode cannot fail");
    bytes
}

/// One `replay --input` pass: decode the `.rtb` stream zero-copy and
/// push every event through the instant MaxMargin engine. Returns the
/// served count (a cross-run sanity pin) and elapsed seconds.
fn run_sequential_rtb(p: &Pipeline, bytes: &[u8]) -> (usize, f64) {
    let mut slice = rtb::RtbSlice::new(bytes).expect("encoded stream must open");
    let mut mm = MaxMargin::new();
    let mut policy = StreamPolicy::Instant(&mut mm);
    let mut metrics = StreamMetrics::hourly();
    let mut engine = StreamEngine::new(p.speed, StreamOptions::default().grid(p.bbox));
    let start = Instant::now();
    while let Some(wire) = slice.next().expect("encoded stream must decode") {
        match wire_to_event(wire) {
            Some(event) => engine.push(event, &mut policy, &mut metrics),
            None => break,
        }
    }
    let summary = engine.finish(&mut policy, &mut metrics);
    (summary.served, start.elapsed().as_secs_f64())
}

/// One PR 5-shaped pass: regenerate and reprice the trace inside the
/// timed region, exactly what `rideshare replay` (no `--input`) does.
fn run_full_pipeline(config: &Config) -> (usize, f64) {
    let trace = TraceConfig::porto()
        .with_seed(config.seed)
        .with_task_count(config.tasks)
        .with_driver_count(config.drivers, DriverModel::Hitchhiking)
        .with_regions(config.regions);
    let start = Instant::now();
    let stream = trace.stream();
    let speed = stream.speed();
    let bbox = stream.bounding_box();
    let build = MarketBuildOptions {
        surge_window: Some(TimeDelta::from_mins(30)),
        ..MarketBuildOptions::default()
    };
    let mut pricer = StreamPricer::new(&build, bbox, speed, stream.drivers());
    let mut mm = MaxMargin::new();
    let mut policy = StreamPolicy::Instant(&mut mm);
    let mut metrics = StreamMetrics::hourly();
    let mut engine = StreamEngine::new(speed, StreamOptions::default().grid(bbox));
    for shift in stream.drivers() {
        engine.push(
            StreamEvent::DriverOnline(Driver::from(shift)),
            &mut policy,
            &mut metrics,
        );
    }
    for trip in stream {
        let task = pricer.price(&trip);
        engine.push(StreamEvent::TaskPublished(task), &mut policy, &mut metrics);
    }
    let summary = engine.finish(&mut policy, &mut metrics);
    (summary.served, start.elapsed().as_secs_f64())
}

/// One sharded pass over the `.rtb` stream at `config.shards` shards.
fn run_sharded_rtb(p: &Pipeline, bytes: &[u8], config: &Config) -> (usize, f64) {
    let partitioner = BoxPartitioner::new(p.region_boxes.clone());
    let mut slice = rtb::RtbSlice::new(bytes).expect("encoded stream must open");
    let events = std::iter::from_fn(move || {
        slice
            .next()
            .expect("encoded stream must decode")
            .and_then(wire_to_event)
    });
    let mut metrics = StreamMetrics::hourly();
    let start = Instant::now();
    let summary = rideshare_online::replay_sharded(
        p.speed,
        events,
        ShardPolicySpec::MaxMargin,
        &partitioner,
        ShardOptions::new(config.shards)
            .stream(StreamOptions::default().grid(p.bbox))
            .validate(false),
        &mut metrics,
    );
    (summary.served, start.elapsed().as_secs_f64())
}

/// Best-of-N wall clock: the minimum elapsed seconds across runs, with
/// the served count pinned identical across every run.
fn best_of<F: FnMut() -> (usize, f64)>(n: usize, mut run: F) -> (usize, f64) {
    let (served, mut best) = run();
    for _ in 1..n {
        let (s, elapsed) = run();
        assert_eq!(s, served, "served count drifted between repeat runs");
        best = best.min(elapsed);
    }
    (served, best)
}

/// Extracts `"after"`'s gated metric from a committed `BENCH_7.json`.
/// The report is our own hand-rolled format, so a string scan is exact.
fn committed_gate_value(json: &str) -> Option<f64> {
    let after = json.find("\"after\"")?;
    let key = "\"sequential_rtb_input_tasks_per_s\":";
    let at = after + json[after..].find(key)? + key.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[allow(clippy::too_many_arguments)]
fn render_report(
    config: &Config,
    served: usize,
    rtb_tps: f64,
    full_tps: f64,
    sharded_tps: f64,
) -> String {
    let speedup = rtb_tps / PR5_SEQUENTIAL_TASKS_PER_S;
    format!(
        concat!(
            "{{\n",
            "  \"issue\": 7,\n",
            "  \"generated_by\": \"cargo run --release --bin bench7 -- --out BENCH_7.json\",\n",
            "  \"config\": {{\n",
            "    \"tasks\": {tasks},\n",
            "    \"drivers\": {drivers},\n",
            "    \"seed\": {seed},\n",
            "    \"regions\": {regions},\n",
            "    \"shards\": {shards},\n",
            "    \"policy\": \"margin\",\n",
            "    \"grid\": true,\n",
            "    \"best_of\": {best_of}\n",
            "  }},\n",
            "  \"before\": {{\n",
            "    \"sequential_full_pipeline_tasks_per_s\": {pr5},\n",
            "    \"note\": \"PR 5 `rideshare replay` at 1M tasks; no .rtb input path existed\"\n",
            "  }},\n",
            "  \"after\": {{\n",
            "    \"sequential_rtb_input_tasks_per_s\": {rtb:.0},\n",
            "    \"sequential_full_pipeline_tasks_per_s\": {full:.0},\n",
            "    \"sharded_rtb_input_tasks_per_s\": {sharded:.0},\n",
            "    \"served\": {served},\n",
            "    \"speedup_vs_before\": {speedup:.2}\n",
            "  }},\n",
            "  \"gate\": {{\n",
            "    \"metric\": \"after.sequential_rtb_input_tasks_per_s\",\n",
            "    \"min_fraction_of_committed\": {gate}\n",
            "  }}\n",
            "}}\n",
        ),
        tasks = config.tasks,
        drivers = config.drivers,
        seed = config.seed,
        regions = config.regions,
        shards = config.shards,
        best_of = config.best_of,
        pr5 = PR5_SEQUENTIAL_TASKS_PER_S,
        rtb = rtb_tps,
        full = full_tps,
        sharded = sharded_tps,
        served = served,
        speedup = speedup,
        gate = GATE_MIN_FRACTION,
    )
}

fn main() {
    let config = parse_args();
    eprintln!(
        "bench7: {} tasks, {} drivers, seed {}, {} regions, best-of-{}",
        config.tasks, config.drivers, config.seed, config.regions, config.best_of
    );

    eprintln!("bench7: building event stream + .rtb encoding (untimed)...");
    let p = build_pipeline(&config);
    let bytes = encode_rtb(&p.events);
    eprintln!(
        "bench7: {} events, {} .rtb bytes",
        p.events.len(),
        bytes.len()
    );

    let (served, rtb_secs) = best_of(config.best_of, || run_sequential_rtb(&p, &bytes));
    let rtb_tps = config.tasks as f64 / rtb_secs;
    eprintln!("bench7: sequential .rtb     {rtb_tps:>12.0} tasks/s ({served} served)");

    let (full_served, full_secs) = best_of(config.best_of, || run_full_pipeline(&config));
    let full_tps = config.tasks as f64 / full_secs;
    eprintln!("bench7: sequential pipeline {full_tps:>12.0} tasks/s ({full_served} served)");
    assert_eq!(
        full_served, served,
        ".rtb-fed and generator-fed replays must serve identically"
    );

    let (sharded_served, sharded_secs) =
        best_of(config.best_of, || run_sharded_rtb(&p, &bytes, &config));
    let sharded_tps = config.tasks as f64 / sharded_secs;
    eprintln!(
        "bench7: sharded .rtb (x{})   {sharded_tps:>12.0} tasks/s ({sharded_served} served)",
        config.shards
    );

    let report = render_report(&config, served, rtb_tps, full_tps, sharded_tps);
    println!("{report}");
    if let Some(path) = &config.out {
        std::fs::write(path, &report).expect("writing --out report");
        eprintln!("bench7: wrote {path}");
    }

    if let Some(path) = &config.check {
        let committed = std::fs::read_to_string(path).expect("reading --check report");
        let committed = committed_gate_value(&committed)
            .expect("--check file has no after.sequential_rtb_input_tasks_per_s");
        let floor = committed * GATE_MIN_FRACTION;
        if rtb_tps < floor {
            eprintln!(
                "bench7: REGRESSION — sequential .rtb {rtb_tps:.0} tasks/s is below \
                 {floor:.0} ({GATE_MIN_FRACTION} x committed {committed:.0})"
            );
            std::process::exit(1);
        }
        eprintln!(
            "bench7: gate passed — {rtb_tps:.0} tasks/s >= {floor:.0} \
             ({GATE_MIN_FRACTION} x committed {committed:.0})"
        );
    }
}
