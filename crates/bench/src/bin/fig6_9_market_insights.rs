//! Figures 6–9 — market-density insights (§VI-C).
//!
//! Using the general "hitchhiking" model (drivers with random sources and
//! destinations), sweep the number of drivers and report, per algorithm
//! (Greedy = red line, maxMargin = blue, Nearest = orange in the paper):
//!
//! - Fig. 6: total revenue in the market (increases with drivers),
//! - Fig. 7: rate of served tasks (increases),
//! - Fig. 8: average revenue per worker (decreases — congestion),
//! - Fig. 9: average tasks per worker (decreases).
//!
//! Usage: `cargo run --release --bin fig6_9_market_insights [tasks] [--quick]`

use rideshare_bench::{build_market, run_all_algorithms, DRIVER_SWEEP};
use rideshare_metrics::{render_series, Series};
use rideshare_trace::DriverModel;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let tasks: usize = args
        .iter()
        .find_map(|a| a.parse().ok())
        .unwrap_or(if quick { 200 } else { 1000 });
    let sweep: Vec<usize> = if quick {
        vec![20, 60, 150]
    } else {
        DRIVER_SWEEP.to_vec()
    };

    let algos = ["Greedy", "maxMargin", "Nearest"];
    let mut revenue: Vec<Series> = algos.iter().map(|a| Series::new(*a)).collect();
    let mut served: Vec<Series> = algos.iter().map(|a| Series::new(*a)).collect();
    let mut rev_per_worker: Vec<Series> = algos.iter().map(|a| Series::new(*a)).collect();
    let mut tasks_per_worker: Vec<Series> = algos.iter().map(|a| Series::new(*a)).collect();

    for &drivers in &sweep {
        let market = build_market(1907, tasks, drivers, DriverModel::Hitchhiking);
        let runs = run_all_algorithms(&market);
        for run in &runs {
            let Some(k) = algos.iter().position(|a| *a == run.name) else {
                continue;
            };
            let x = drivers as f64;
            revenue[k].push(x, run.metrics.total_revenue);
            served[k].push(x, run.metrics.served_rate);
            rev_per_worker[k].push(x, run.metrics.avg_revenue_per_worker);
            tasks_per_worker[k].push(x, run.metrics.avg_tasks_per_worker);
        }
        eprintln!("  drivers={drivers} done");
    }

    println!("== Fig. 6 — total revenue in the market ({tasks} tasks) ==");
    println!("{}", render_series("drivers", &revenue));
    println!("== Fig. 7 — rate of served tasks ==");
    println!("{}", render_series("drivers", &served));
    println!("== Fig. 8 — average revenue per worker ==");
    println!("{}", render_series("drivers", &rev_per_worker));
    println!("== Fig. 9 — average tasks per worker ==");
    println!("{}", render_series("drivers", &tasks_per_worker));
    println!(
        "expected shape: Figs. 6–7 increase with drivers; Figs. 8–9 decrease \
         (market congestion, §VI-C)."
    );
}
