//! Figure 5 — performance ratio of Greedy / maxMargin / Nearest against
//! the LP upper bound `Z_f*`, for both driver working models.
//!
//! The paper selects 1000 task records from one day and sweeps the number
//! of available drivers from 20 to 300; the left panel uses the
//! "hitchhiking" model, the right panel "home-work-home". The performance
//! ratio reported here is `algorithm profit / Z_f*` (∈ [0, 1], higher is
//! better; the paper plots the same comparison with the axes in its own
//! orientation).
//!
//! Usage: `cargo run --release --bin fig5_performance_ratio [tasks]
//!         [--quick] [--model hitch|hwh] [--rounds N]`
//!
//! `--quick` shrinks the sweep for smoke-testing; `--model` runs one panel
//! only; `--rounds` caps the column-generation rounds (the Lagrangian
//! fallback keeps the truncated bound valid — see `lp_upper_bound` — at
//! the cost of a slightly looser denominator).

use rideshare_bench::{build_market, run_all_algorithms, DRIVER_SWEEP};
use rideshare_core::{lp_upper_bound, Objective, UpperBoundOptions};
use rideshare_metrics::{render_series, Series};
use rideshare_trace::DriverModel;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let tasks: usize = args
        .iter()
        .find_map(|a| a.parse().ok())
        .unwrap_or(if quick { 200 } else { 1000 });
    let sweep: Vec<usize> = if quick {
        vec![20, 60, 150]
    } else {
        DRIVER_SWEEP.to_vec()
    };
    let models: Vec<DriverModel> = match args
        .iter()
        .position(|a| a == "--model")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        Some("hitch") => vec![DriverModel::Hitchhiking],
        Some("hwh") => vec![DriverModel::HomeWorkHome],
        _ => vec![DriverModel::Hitchhiking, DriverModel::HomeWorkHome],
    };
    let max_rounds: usize = args
        .iter()
        .position(|a| a == "--rounds")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);

    let upper_bound = |market: &rideshare_core::Market| {
        lp_upper_bound(
            market,
            Objective::Profit,
            UpperBoundOptions {
                max_rounds,
                ..Default::default()
            },
        )
        .expect("column generation on a well-formed market")
        .bound
    };

    for model in models {
        println!(
            "== Fig. 5 ({}) — performance ratio vs Z_f*, {tasks} tasks ==",
            model.label()
        );
        let mut greedy = Series::new("Greedy");
        let mut max_margin = Series::new("maxMargin");
        let mut nearest = Series::new("Nearest");
        for &drivers in &sweep {
            let market = build_market(1907, tasks, drivers, model);
            let bound = upper_bound(&market);
            let runs = run_all_algorithms(&market);
            for run in &runs {
                let ratio = if bound <= f64::EPSILON {
                    1.0
                } else {
                    run.profit / bound
                };
                match run.name {
                    "Greedy" => greedy.push(drivers as f64, ratio),
                    "maxMargin" => max_margin.push(drivers as f64, ratio),
                    "Nearest" => nearest.push(drivers as f64, ratio),
                    _ => {}
                }
            }
            eprintln!(
                "  [{}] drivers={drivers} done (Z_f* = {bound:.1})",
                model.label()
            );
        }
        println!(
            "{}",
            render_series("drivers", &[greedy, max_margin, nearest])
        );
    }
    println!("expected shape: Greedy ≥ maxMargin ≥ Nearest; hitchhiking ≥ home-work-home.");
}
