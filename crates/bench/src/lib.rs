//! Shared experiment harness for the paper's evaluation (§VI).
//!
//! The figure binaries (`src/bin/fig*.rs`) and the Criterion benches both
//! build their workloads through this crate so that every reported number
//! comes from one code path: [`build_market`] fixes the trace/market
//! construction, [`run_all_algorithms`] runs the paper's three algorithms
//! plus the random baseline on one market, and [`AlgorithmRun`] carries the
//! per-algorithm outcomes.
//!
//! ```
//! use rideshare_bench::{build_market, run_all_algorithms};
//! use rideshare_trace::DriverModel;
//!
//! // A miniature sweep point: 40 tasks, 5 drivers.
//! let market = build_market(7, 40, 5, DriverModel::Hitchhiking);
//! let runs = run_all_algorithms(&market);
//! let names: Vec<&str> = runs.iter().map(|r| r.name).collect();
//! assert_eq!(names, ["Greedy", "maxMargin", "Nearest", "Random"]);
//! // The offline greedy sees the whole day; no online policy beats it.
//! assert!(runs[1..].iter().all(|r| r.profit <= runs[0].profit + 1e-9));
//! ```

// Lint levels (unsafe_code, missing_docs) come from [workspace.lints].

pub mod distrib;
pub mod scenario;
pub mod sweep;

pub use distrib::{
    orchestrate, run_worker, OrchestrateOptions, OrchestrateOutcome, WorkerOptions, WorkerOutcome,
};
pub use scenario::{Scenario, ScenarioKind};
pub use sweep::{run_sweep, PolicySpec, SweepCell, SweepOptions, SweepReport};

use rideshare_core::{
    lp_upper_bound, solve_greedy, Market, MarketBuildOptions, Objective, UpperBoundOptions,
};
use rideshare_metrics::MarketMetrics;
use rideshare_online::{MaxMargin, NearestDriver, RandomDispatch, SimulationOptions, Simulator};
use rideshare_trace::{DriverModel, TraceConfig};

/// The driver counts swept by Figs. 5–9 ("gradually increasing the number
/// of drivers available in the market from 20 to 300").
pub const DRIVER_SWEEP: [usize; 8] = [20, 40, 60, 100, 150, 200, 250, 300];

/// The paper's task-count setting: "We select 1000 records during one day".
pub const PAPER_TASK_COUNT: usize = 1000;

/// Builds the evaluation market for one sweep point.
#[must_use]
pub fn build_market(seed: u64, tasks: usize, drivers: usize, model: DriverModel) -> Market {
    let trace = TraceConfig::porto()
        .with_seed(seed)
        .with_task_count(tasks)
        .with_driver_count(drivers, model)
        .generate();
    Market::from_trace(&trace, &MarketBuildOptions::default())
}

/// One algorithm's outcome on one market.
#[derive(Clone, Debug)]
pub struct AlgorithmRun {
    /// Algorithm label as used in the paper's legends.
    pub name: &'static str,
    /// Drivers' total profit (Eq. 4).
    pub profit: f64,
    /// Market metrics of the produced assignment (Figs. 6–9 inputs).
    pub metrics: MarketMetrics,
}

/// Runs Greedy (offline, Alg. 1), maxMargin (Alg. 4), Nearest (Alg. 3), and
/// the Random baseline on `market`, in the paper's legend order.
#[must_use]
pub fn run_all_algorithms(market: &Market) -> Vec<AlgorithmRun> {
    let mut out = Vec::with_capacity(4);

    let greedy = solve_greedy(market, Objective::Profit);
    out.push(AlgorithmRun {
        name: "Greedy",
        profit: greedy
            .assignment
            .objective_value(market, Objective::Profit)
            .as_f64(),
        metrics: MarketMetrics::of(market, &greedy.assignment),
    });

    let sim = Simulator::new(market);
    let mm = sim.run(&mut MaxMargin::new(), SimulationOptions::default());
    out.push(AlgorithmRun {
        name: "maxMargin",
        profit: mm.total_profit(market).as_f64(),
        metrics: MarketMetrics::of(market, &mm.assignment),
    });

    let nearest = sim.run(
        &mut NearestDriver::with_seed(0),
        SimulationOptions::default(),
    );
    out.push(AlgorithmRun {
        name: "Nearest",
        profit: nearest.total_profit(market).as_f64(),
        metrics: MarketMetrics::of(market, &nearest.assignment),
    });

    let random = sim.run(
        &mut RandomDispatch::with_seed(0),
        SimulationOptions::default(),
    );
    out.push(AlgorithmRun {
        name: "Random",
        profit: random.total_profit(market).as_f64(),
        metrics: MarketMetrics::of(market, &random.assignment),
    });

    out
}

/// Computes the upper bound `Z_f*` used as the Fig. 5 denominator.
#[must_use]
pub fn upper_bound(market: &Market) -> f64 {
    lp_upper_bound(market, Objective::Profit, UpperBoundOptions::default())
        .expect("column generation on a well-formed market")
        .bound
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_produces_expected_legend() {
        let market = build_market(1, 60, 8, DriverModel::Hitchhiking);
        let runs = run_all_algorithms(&market);
        let names: Vec<&str> = runs.iter().map(|r| r.name).collect();
        assert_eq!(names, vec!["Greedy", "maxMargin", "Nearest", "Random"]);
        let ub = upper_bound(&market);
        for r in &runs {
            assert!(
                r.profit <= ub + 1e-6,
                "{} profit {} above bound {ub}",
                r.name,
                r.profit
            );
        }
    }
}
