//! Topological ordering (Kahn's algorithm) over the enabled subgraph.

use crate::Dag;

/// Returns a topological order of the enabled nodes of `dag`, or `None`
/// if the enabled subgraph contains a cycle.
///
/// # Examples
///
/// ```
/// use rideshare_graph::{topological_order, Dag};
/// let mut dag = Dag::new(3);
/// dag.add_edge(2, 1, 0.0);
/// dag.add_edge(1, 0, 0.0);
/// assert_eq!(topological_order(&dag), Some(vec![2, 1, 0]));
/// ```
#[must_use]
pub fn topological_order(dag: &Dag) -> Option<Vec<usize>> {
    topological_order_of(dag)
}

/// Returns `true` if the enabled subgraph of `dag` is acyclic.
///
/// # Examples
///
/// ```
/// use rideshare_graph::{is_acyclic, Dag};
/// let mut dag = Dag::new(2);
/// dag.add_edge(0, 1, 0.0);
/// assert!(is_acyclic(&dag));
/// dag.add_edge(1, 0, 0.0);
/// assert!(!is_acyclic(&dag));
/// ```
#[must_use]
pub fn is_acyclic(dag: &Dag) -> bool {
    topological_order_of(dag).is_some()
}

pub(crate) fn topological_order_of(dag: &Dag) -> Option<Vec<usize>> {
    let n = dag.node_count();
    let mut in_deg = vec![0usize; n];
    let mut enabled_nodes = 0usize;
    for (v, deg) in in_deg.iter_mut().enumerate() {
        if !dag.is_enabled(v) {
            continue;
        }
        enabled_nodes += 1;
        *deg = dag.in_degree(v);
    }
    // Deterministic order: lower-indexed roots first.
    let mut queue: std::collections::VecDeque<usize> = (0..n)
        .filter(|&v| dag.is_enabled(v) && in_deg[v] == 0)
        .collect();
    let mut order = Vec::with_capacity(enabled_nodes);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for (v, _) in dag.out_edges(u) {
            in_deg[v] -= 1;
            if in_deg[v] == 0 {
                queue.push_back(v);
            }
        }
    }
    if order.len() == enabled_nodes {
        Some(order)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_edges() {
        let mut g = Dag::new(5);
        g.add_edge(0, 2, 0.0);
        g.add_edge(1, 2, 0.0);
        g.add_edge(2, 3, 0.0);
        g.add_edge(2, 4, 0.0);
        let order = topological_order(&g).unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; 5];
            for (i, &v) in order.iter().enumerate() {
                p[v] = i;
            }
            p
        };
        assert!(pos[0] < pos[2]);
        assert!(pos[1] < pos[2]);
        assert!(pos[2] < pos[3]);
        assert!(pos[2] < pos[4]);
        assert_eq!(order.len(), 5);
    }

    #[test]
    fn detects_cycle() {
        let mut g = Dag::new(3);
        g.add_edge(0, 1, 0.0);
        g.add_edge(1, 2, 0.0);
        g.add_edge(2, 0, 0.0);
        assert!(topological_order(&g).is_none());
        assert!(!is_acyclic(&g));
    }

    #[test]
    fn disabled_node_can_break_cycle() {
        let mut g = Dag::new(3);
        g.add_edge(0, 1, 0.0);
        g.add_edge(1, 2, 0.0);
        g.add_edge(2, 0, 0.0);
        g.disable_node(2);
        let order = topological_order(&g).unwrap();
        assert_eq!(order, vec![0, 1]);
        assert!(is_acyclic(&g));
    }

    #[test]
    fn empty_and_isolated() {
        let g = Dag::new(0);
        assert_eq!(topological_order(&g), Some(vec![]));
        let g = Dag::new(3);
        assert_eq!(topological_order(&g).unwrap().len(), 3);
    }
}
