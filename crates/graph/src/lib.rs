//! Directed-acyclic-graph substrate for the ride-sharing framework.
//!
//! The paper's offline algorithm (Alg. 1, "GA") repeatedly extracts the
//! maximum-profit source→destination path from a merged task-map DAG, and
//! its LP upper bound prices columns by solving longest-path problems in the
//! same DAGs. Both reduce to one primitive this crate provides:
//! **maximum-weight path in a node- and edge-weighted DAG**, computable in
//! linear time by dynamic programming over a topological order (the paper's
//! §IV-B cites the classic longest-path-in-a-DAG routine).
//!
//! Contents:
//!
//! - [`Dag`]: an append-only adjacency-list DAG with `f64` node and edge
//!   weights and cheap node *disabling* (GA removes the chosen path's nodes
//!   after every iteration — disabling avoids rebuilding the graph),
//! - [`topological_order`] / [`is_acyclic`]: Kahn's algorithm,
//! - [`Dag::max_profit_path`]: the DP, with an overload taking per-call
//!   weight overrides for column-generation pricing
//!   ([`Dag::max_profit_path_with`]).
//!
//! # Examples
//!
//! ```
//! use rideshare_graph::Dag;
//!
//! // A diamond: 0 -> {1, 2} -> 3, where node 2 is more profitable.
//! let mut dag = Dag::new(4);
//! dag.set_node_weight(1, 5.0);
//! dag.set_node_weight(2, 9.0);
//! dag.add_edge(0, 1, 0.0);
//! dag.add_edge(0, 2, 0.0);
//! dag.add_edge(1, 3, 0.0);
//! dag.add_edge(2, 3, 0.0);
//!
//! let best = dag.max_profit_path(0, 3).expect("path exists");
//! assert_eq!(best.nodes, vec![0, 2, 3]);
//! assert_eq!(best.profit, 9.0);
//! ```

// Lint levels (unsafe_code, missing_docs) come from [workspace.lints].

mod dag;
mod disjoint;
mod path;
mod topo;

pub use dag::Dag;
pub use disjoint::{greedy_disjoint_paths, total_profit, DisjointPath};
pub use path::PathResult;
pub use topo::{is_acyclic, topological_order};
