//! The abstract MDP problem: maximum-value **node-disjoint paths** between
//! terminal pairs in a DAG.
//!
//! This is the graph-theoretic form the paper reduces its market to (§IV-A,
//! Eq. 9–10): each source–destination pair is a driver, interior nodes are
//! tasks, and the goal is a set of terminal-to-terminal paths, no two
//! sharing a node, maximising total path weight. [`greedy_disjoint_paths`]
//! is Algorithm 1 at this abstraction level, with the same `1/(D+1)`
//! guarantee (Theorem 1), where `D` bounds interior path length.
//!
//! The market solver in `rideshare-core` uses a specialised implementation
//! (factored per-driver views); this generic one serves standalone graph
//! workloads and differential tests.

use crate::{Dag, PathResult};

/// One selected terminal pair and its path.
#[derive(Clone, PartialEq, Debug)]
pub struct DisjointPath {
    /// Index of the `(source, sink)` pair in the input slice.
    pub pair: usize,
    /// The chosen path.
    pub path: PathResult,
}

/// Greedily selects node-disjoint paths for the given `(source, sink)`
/// pairs, maximising total profit.
///
/// Every iteration picks the globally best remaining pair/path with
/// strictly positive profit, then removes the path's nodes (and the chosen
/// pair) from contention — exactly the paper's Algorithm 1. Terminal nodes
/// must be distinct across pairs; interior nodes may be shared candidates.
///
/// The input DAG's enabled/disabled state is restored before returning.
///
/// # Panics
///
/// Panics if any terminal index is out of range or if two pairs share a
/// terminal node.
///
/// # Examples
///
/// ```
/// use rideshare_graph::{greedy_disjoint_paths, Dag};
///
/// // Two pairs compete for interior node 2.
/// // 0 → 2 → 1 (pair 0) and 4 → 2 → 5 (pair 1); node 2 worth 10.
/// let mut dag = Dag::new(6);
/// dag.set_node_weight(2, 10.0);
/// dag.add_edge(0, 2, 0.0);
/// dag.add_edge(2, 1, 0.0);
/// dag.add_edge(4, 2, -1.0); // pair 1 pays a toll
/// dag.add_edge(2, 5, 0.0);
/// let picked = greedy_disjoint_paths(&mut dag, &[(0, 1), (4, 5)]);
/// assert_eq!(picked.len(), 1); // node 2 can serve only one pair
/// assert_eq!(picked[0].pair, 0); // the toll-free pair wins
/// ```
#[must_use]
pub fn greedy_disjoint_paths(dag: &mut Dag, pairs: &[(usize, usize)]) -> Vec<DisjointPath> {
    let n = dag.node_count();
    {
        let mut seen = std::collections::HashSet::new();
        for &(s, t) in pairs {
            assert!(s < n && t < n, "terminal out of range");
            assert!(seen.insert(s), "terminal {s} reused");
            assert!(seen.insert(t), "terminal {t} reused");
        }
    }
    let initial_enabled: Vec<bool> = (0..n).map(|v| dag.is_enabled(v)).collect();

    let mut taken = vec![false; pairs.len()];
    let mut out = Vec::new();
    loop {
        let mut best: Option<(usize, PathResult)> = None;
        for (i, &(s, t)) in pairs.iter().enumerate() {
            if taken[i] {
                continue;
            }
            let Some(p) = dag.max_profit_path(s, t) else {
                continue;
            };
            if p.profit <= 1e-12 {
                continue;
            }
            let better = match &best {
                None => true,
                Some((bi, bp)) => {
                    p.profit > bp.profit + 1e-12
                        || ((p.profit - bp.profit).abs() <= 1e-12 && i < *bi)
                }
            };
            if better {
                best = Some((i, p));
            }
        }
        let Some((i, p)) = best else {
            break;
        };
        for &v in &p.nodes {
            dag.disable_node(v);
        }
        taken[i] = true;
        out.push(DisjointPath { pair: i, path: p });
    }

    // Restore the caller's enabled set.
    for (v, &was) in initial_enabled.iter().enumerate() {
        if was {
            dag.enable_node(v);
        } else {
            dag.disable_node(v);
        }
    }
    out
}

/// Total profit of a set of selected paths.
#[must_use]
pub fn total_profit(paths: &[DisjointPath]) -> f64 {
    paths.iter().map(|p| p.path.profit).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Chain of `k` interior nodes between terminals `0` and `1`, each
    /// interior node worth 1.
    fn chain_dag(k: usize) -> (Dag, usize, usize) {
        let mut g = Dag::new(k + 2);
        let (s, t) = (0, 1);
        for i in 0..k {
            g.set_node_weight(2 + i, 1.0);
        }
        if k == 0 {
            g.add_edge(s, t, 0.1);
        } else {
            g.add_edge(s, 2, 0.0);
            for i in 0..k - 1 {
                g.add_edge(2 + i, 3 + i, 0.0);
            }
            g.add_edge(k + 1, t, 0.0);
        }
        (g, s, t)
    }

    #[test]
    fn single_pair_takes_whole_chain() {
        let (mut g, s, t) = chain_dag(4);
        let picked = greedy_disjoint_paths(&mut g, &[(s, t)]);
        assert_eq!(picked.len(), 1);
        assert_eq!(picked[0].path.interior_len(), 4);
        assert!((total_profit(&picked) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn contention_resolved_by_profit() {
        // Pairs (0,1) and (2,3) both want node 4 (worth 5); pair 1 reaches
        // it over a costlier edge.
        let mut g = Dag::new(5);
        g.set_node_weight(4, 5.0);
        g.add_edge(0, 4, 0.0);
        g.add_edge(4, 1, 0.0);
        g.add_edge(2, 4, -2.0);
        g.add_edge(4, 3, 0.0);
        let picked = greedy_disjoint_paths(&mut g, &[(0, 1), (2, 3)]);
        assert_eq!(picked.len(), 1);
        assert_eq!(picked[0].pair, 0);
        assert!((picked[0].path.profit - 5.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_interior_both_selected() {
        let mut g = Dag::new(6);
        g.set_node_weight(4, 3.0);
        g.set_node_weight(5, 2.0);
        g.add_edge(0, 4, 0.0);
        g.add_edge(4, 1, 0.0);
        g.add_edge(2, 5, 0.0);
        g.add_edge(5, 3, 0.0);
        let picked = greedy_disjoint_paths(&mut g, &[(0, 1), (2, 3)]);
        assert_eq!(picked.len(), 2);
        assert!((total_profit(&picked) - 5.0).abs() < 1e-12);
        // Higher-profit pair selected first.
        assert_eq!(picked[0].pair, 0);
    }

    #[test]
    fn zero_profit_paths_skipped() {
        let mut g = Dag::new(2);
        g.add_edge(0, 1, 0.0);
        let picked = greedy_disjoint_paths(&mut g, &[(0, 1)]);
        assert!(picked.is_empty());
    }

    #[test]
    fn enabled_state_restored() {
        let (mut g, s, t) = chain_dag(3);
        g.disable_node(3); // pre-disabled interior node
        let _ = greedy_disjoint_paths(&mut g, &[(s, t)]);
        assert!(
            !g.is_enabled(3),
            "caller's disabled node must stay disabled"
        );
        assert!(g.is_enabled(2), "nodes eaten by paths must be re-enabled");
    }

    #[test]
    fn theorem_one_bound_on_fig2_shape() {
        // Graph-level replica of Fig. 2: one long chain for pair 0 of
        // profit 1, plus D single-task pairs of profit 1−ε each sharing the
        // chain's nodes. Greedy earns 1; optimum earns (D+1)(1−ε).
        let d = 4usize;
        let eps = 0.05;
        // Nodes: terminals for D+1 pairs (2·(D+1)), D chain nodes, 1 decoy.
        let mut g = Dag::new(2 * (d + 1) + d + 1);
        let chain0 = 2 * (d + 1);
        let decoy = chain0 + d;
        let pairs: Vec<(usize, usize)> = (0..=d).map(|i| (2 * i, 2 * i + 1)).collect();
        // Pair 0's chain: per-node value 1/D through all chain nodes.
        for i in 0..d {
            g.set_node_weight(chain0 + i, 1.0 / d as f64);
        }
        g.set_node_weight(decoy, 1.0 - eps);
        g.add_edge(pairs[0].0, chain0, 0.0);
        for i in 0..d - 1 {
            g.add_edge(chain0 + i, chain0 + i + 1, 0.0);
        }
        g.add_edge(chain0 + d - 1, pairs[0].1, 0.0);
        // Pair 0 can also reach the decoy instead.
        g.add_edge(pairs[0].0, decoy, 0.0);
        g.add_edge(decoy, pairs[0].1, 0.0);
        // Pair i (1-based) reaches only chain node i−1, netting 1−ε.
        for (i, &(ps, pt)) in pairs.iter().enumerate().skip(1) {
            g.add_edge(ps, chain0 + i - 1, 0.0 - (1.0 / d as f64) + (1.0 - eps));
            g.add_edge(chain0 + i - 1, pt, 0.0);
        }
        let picked = greedy_disjoint_paths(&mut g, &pairs);
        // Greedy grabs pair 0's full chain (profit 1) and strands the rest
        // except the decoy is pair-0-only, so nothing else fits.
        assert_eq!(picked.len(), 1);
        assert!((total_profit(&picked) - 1.0).abs() < 1e-9);
        let opt = (d as f64 + 1.0) * (1.0 - eps);
        let ratio = total_profit(&picked) / opt;
        assert!(ratio >= 1.0 / (d as f64 + 1.0) - 1e-9, "Theorem 1 violated");
        assert!(ratio <= 1.0 / (d as f64 + 1.0) + 0.02, "family is tight");
    }

    #[test]
    #[should_panic(expected = "terminal 0 reused")]
    fn shared_terminals_rejected() {
        let mut g = Dag::new(3);
        let _ = greedy_disjoint_paths(&mut g, &[(0, 1), (0, 2)]);
    }
}
