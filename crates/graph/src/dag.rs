//! The weighted DAG container.

use crate::topo::topological_order_of;

/// A directed graph with `f64` node and edge weights, intended to stay
/// acyclic (task maps are DAGs by construction: arcs always point forward in
/// time).
///
/// Nodes are dense indices `0..node_count`. Each node can be *disabled*,
/// which removes it (and all incident edges) from every query without
/// mutating the adjacency structure — this is how the greedy algorithm
/// "removes the source and destination nodes … and all the task nodes"
/// (paper Alg. 1 step (b)) in `O(path length)` per iteration.
///
/// Acyclicity is *checked* by [`crate::is_acyclic`] and by the path DP
/// (which fails on cyclic graphs) rather than enforced per insertion, so
/// bulk construction stays `O(1)` amortised per edge.
///
/// # Examples
///
/// ```
/// use rideshare_graph::Dag;
/// let mut dag = Dag::new(3);
/// dag.add_edge(0, 1, 1.5);
/// dag.add_edge(1, 2, 2.5);
/// assert_eq!(dag.edge_count(), 2);
/// dag.disable_node(1);
/// assert!(dag.max_profit_path(0, 2).is_none());
/// ```
#[derive(Clone, Debug)]
pub struct Dag {
    node_weights: Vec<f64>,
    /// Outgoing adjacency: `out[u] = [(v, w), ...]`.
    out: Vec<Vec<(u32, f64)>>,
    /// Incoming adjacency mirror, kept for the DP's predecessor scan.
    incoming: Vec<Vec<(u32, f64)>>,
    enabled: Vec<bool>,
    edge_count: usize,
}

impl Dag {
    /// Creates a DAG with `nodes` isolated nodes of weight zero.
    #[must_use]
    pub fn new(nodes: usize) -> Self {
        Self {
            node_weights: vec![0.0; nodes],
            out: vec![Vec::new(); nodes],
            incoming: vec![Vec::new(); nodes],
            enabled: vec![true; nodes],
            edge_count: 0,
        }
    }

    /// Number of nodes (enabled or not).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node_weights.len()
    }

    /// Number of edges ever added (edges to/from disabled nodes included).
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Appends a new node with the given weight, returning its index.
    pub fn add_node(&mut self, weight: f64) -> usize {
        self.node_weights.push(weight);
        self.out.push(Vec::new());
        self.incoming.push(Vec::new());
        self.enabled.push(true);
        self.node_weights.len() - 1
    }

    /// Adds a directed edge `from → to` with the given weight.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range or if `from == to`
    /// (self-loops would make the graph cyclic).
    pub fn add_edge(&mut self, from: usize, to: usize, weight: f64) {
        assert!(from < self.node_count(), "edge source {from} out of range");
        assert!(to < self.node_count(), "edge target {to} out of range");
        assert_ne!(from, to, "self-loop at node {from}");
        self.out[from].push((to as u32, weight));
        self.incoming[to].push((from as u32, weight));
        self.edge_count += 1;
    }

    /// Sets the weight of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set_node_weight(&mut self, node: usize, weight: f64) {
        self.node_weights[node] = weight;
    }

    /// Returns the weight of a node.
    #[must_use]
    pub fn node_weight(&self, node: usize) -> f64 {
        self.node_weights[node]
    }

    /// Disables a node, hiding it and its incident edges from all queries.
    pub fn disable_node(&mut self, node: usize) {
        self.enabled[node] = false;
    }

    /// Re-enables a previously disabled node.
    pub fn enable_node(&mut self, node: usize) {
        self.enabled[node] = true;
    }

    /// Returns `true` if the node is currently enabled.
    #[must_use]
    pub fn is_enabled(&self, node: usize) -> bool {
        self.enabled[node]
    }

    /// Number of currently enabled nodes.
    #[must_use]
    pub fn enabled_count(&self) -> usize {
        self.enabled.iter().filter(|&&e| e).count()
    }

    /// Iterates over enabled out-neighbours of `node` with edge weights.
    pub fn out_edges(&self, node: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.out[node]
            .iter()
            .filter(move |(v, _)| self.enabled[*v as usize])
            .map(|&(v, w)| (v as usize, w))
    }

    /// Iterates over enabled in-neighbours of `node` with edge weights.
    pub fn in_edges(&self, node: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.incoming[node]
            .iter()
            .filter(move |(u, _)| self.enabled[*u as usize])
            .map(|&(u, w)| (u as usize, w))
    }

    /// Out-degree counting only enabled endpoints.
    #[must_use]
    pub fn out_degree(&self, node: usize) -> usize {
        self.out_edges(node).count()
    }

    /// In-degree counting only enabled endpoints.
    #[must_use]
    pub fn in_degree(&self, node: usize) -> usize {
        self.in_edges(node).count()
    }

    /// A topological order of the enabled subgraph, or `None` if it contains
    /// a cycle.
    #[must_use]
    pub fn topological_order(&self) -> Option<Vec<usize>> {
        topological_order_of(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_degrees() {
        let mut g = Dag::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(0, 2, 2.0);
        g.add_edge(1, 3, 3.0);
        g.add_edge(2, 3, 4.0);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.in_degree(0), 0);
    }

    #[test]
    fn add_node_appends() {
        let mut g = Dag::new(1);
        let n = g.add_node(7.5);
        assert_eq!(n, 1);
        assert_eq!(g.node_weight(1), 7.5);
        g.add_edge(0, 1, 0.0);
        assert_eq!(g.out_degree(0), 1);
    }

    #[test]
    fn disabling_hides_edges() {
        let mut g = Dag::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        assert_eq!(g.out_degree(0), 1);
        g.disable_node(1);
        assert_eq!(g.out_degree(0), 0);
        assert_eq!(g.in_degree(2), 0);
        assert_eq!(g.enabled_count(), 2);
        g.enable_node(1);
        assert_eq!(g.out_degree(0), 1);
        assert!(g.is_enabled(1));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        let mut g = Dag::new(2);
        g.add_edge(1, 1, 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_edge() {
        let mut g = Dag::new(2);
        g.add_edge(0, 5, 0.0);
    }

    #[test]
    fn node_weight_set_get() {
        let mut g = Dag::new(2);
        g.set_node_weight(0, -3.25);
        assert_eq!(g.node_weight(0), -3.25);
        assert_eq!(g.node_weight(1), 0.0);
    }
}
