//! Maximum-profit path in a weighted DAG by dynamic programming.

use crate::topo::topological_order_of;
use crate::Dag;

/// A source→sink path and its total profit.
///
/// The profit of a path is the sum of the weights of its nodes plus the sum
/// of the weights of its edges — matching the paper's path profit `r_π`
/// (task payoffs minus excess travel costs) when task maps are encoded with
/// payoffs on nodes and (negative) travel costs on edges.
#[derive(Clone, PartialEq, Debug)]
pub struct PathResult {
    /// Node indices from source to sink inclusive.
    pub nodes: Vec<usize>,
    /// Total path weight (node weights + edge weights).
    pub profit: f64,
}

impl PathResult {
    /// Number of *interior* nodes (excludes source and sink) — the paper's
    /// path length for the diameter bound `D`.
    #[must_use]
    pub fn interior_len(&self) -> usize {
        self.nodes.len().saturating_sub(2)
    }
}

impl Dag {
    /// Finds a maximum-profit path from `source` to `sink` using the stored
    /// node and edge weights.
    ///
    /// Returns `None` when `sink` is unreachable from `source` in the
    /// enabled subgraph, when either endpoint is disabled or out of range,
    /// or when the enabled subgraph is cyclic.
    ///
    /// Runs in `O(V + E)` after the `O(V + E)` topological sort.
    #[must_use]
    pub fn max_profit_path(&self, source: usize, sink: usize) -> Option<PathResult> {
        self.max_profit_path_with(source, sink, |v| self.node_weight(v), |_, _, w| w)
    }

    /// Finds a maximum-profit path with *per-call* weight overrides.
    ///
    /// `node_weight(v)` replaces the stored node weight and
    /// `edge_weight(u, v, stored)` replaces the stored edge weight. This is
    /// the pricing oracle of the column-generation upper bound: dual values
    /// are subtracted from node weights without mutating the graph, so
    /// pricing rounds can run concurrently over one immutable DAG.
    #[must_use]
    pub fn max_profit_path_with<FN, FE>(
        &self,
        source: usize,
        sink: usize,
        node_weight: FN,
        edge_weight: FE,
    ) -> Option<PathResult>
    where
        FN: Fn(usize) -> f64,
        FE: Fn(usize, usize, f64) -> f64,
    {
        let n = self.node_count();
        if source >= n || sink >= n || !self.is_enabled(source) || !self.is_enabled(sink) {
            return None;
        }
        let order = topological_order_of(self)?;

        const NEG_INF: f64 = f64::NEG_INFINITY;
        let mut dp = vec![NEG_INF; n];
        let mut pred: Vec<usize> = vec![usize::MAX; n];
        dp[source] = node_weight(source);

        for &u in &order {
            if dp[u] == NEG_INF {
                continue;
            }
            if u == sink {
                // Edges out of the sink can never improve a source→sink path.
                continue;
            }
            for (v, stored) in self.out_edges(u) {
                let cand = dp[u] + edge_weight(u, v, stored) + node_weight(v);
                if cand > dp[v] {
                    dp[v] = cand;
                    pred[v] = u;
                }
            }
        }

        if dp[sink] == NEG_INF {
            return None;
        }
        let mut nodes = vec![sink];
        let mut cur = sink;
        while cur != source {
            cur = pred[cur];
            debug_assert_ne!(cur, usize::MAX, "broken predecessor chain");
            nodes.push(cur);
        }
        nodes.reverse();
        Some(PathResult {
            nodes,
            profit: dp[sink],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 → 1 → 3, 0 → 2 → 3, node weights make 0→2→3 better.
    fn diamond() -> Dag {
        let mut g = Dag::new(4);
        g.set_node_weight(1, 5.0);
        g.set_node_weight(2, 9.0);
        g.add_edge(0, 1, 0.0);
        g.add_edge(0, 2, 0.0);
        g.add_edge(1, 3, 0.0);
        g.add_edge(2, 3, 0.0);
        g
    }

    #[test]
    fn picks_heavier_branch() {
        let p = diamond().max_profit_path(0, 3).unwrap();
        assert_eq!(p.nodes, vec![0, 2, 3]);
        assert_eq!(p.profit, 9.0);
        assert_eq!(p.interior_len(), 1);
    }

    #[test]
    fn edge_weights_count() {
        let mut g = diamond();
        // Make the lighter branch win through a big edge bonus.
        g.add_edge(0, 1, 100.0);
        let p = g.max_profit_path(0, 3).unwrap();
        assert_eq!(p.nodes, vec![0, 1, 3]);
        assert_eq!(p.profit, 105.0);
    }

    #[test]
    fn direct_edge_vs_longer_path() {
        let mut g = Dag::new(3);
        g.add_edge(0, 2, 1.0);
        g.add_edge(0, 1, 0.0);
        g.add_edge(1, 2, 0.0);
        g.set_node_weight(1, 0.5);
        let p = g.max_profit_path(0, 2).unwrap();
        // Direct edge worth 1.0 beats interior node worth 0.5.
        assert_eq!(p.nodes, vec![0, 2]);
        assert_eq!(p.profit, 1.0);
    }

    #[test]
    fn negative_weights_handled() {
        let mut g = Dag::new(4);
        g.add_edge(0, 1, -5.0);
        g.add_edge(1, 3, -5.0);
        g.add_edge(0, 2, -1.0);
        g.add_edge(2, 3, -1.0);
        g.set_node_weight(1, 100.0);
        let p = g.max_profit_path(0, 3).unwrap();
        assert_eq!(p.nodes, vec![0, 1, 3]);
        assert_eq!(p.profit, 90.0);
    }

    #[test]
    fn unreachable_sink() {
        let mut g = Dag::new(3);
        g.add_edge(0, 1, 0.0);
        assert!(g.max_profit_path(0, 2).is_none());
        assert!(g.max_profit_path(5, 1).is_none());
    }

    #[test]
    fn disabled_endpoint_or_interior() {
        let mut g = diamond();
        g.disable_node(2);
        let p = g.max_profit_path(0, 3).unwrap();
        assert_eq!(p.nodes, vec![0, 1, 3]);
        g.disable_node(1);
        assert!(g.max_profit_path(0, 3).is_none());
        g.enable_node(1);
        g.disable_node(0);
        assert!(g.max_profit_path(0, 3).is_none());
    }

    #[test]
    fn source_equals_sink() {
        let mut g = Dag::new(2);
        g.set_node_weight(0, 3.0);
        g.add_edge(0, 1, 0.0);
        let p = g.max_profit_path(0, 0).unwrap();
        assert_eq!(p.nodes, vec![0]);
        assert_eq!(p.profit, 3.0);
        assert_eq!(p.interior_len(), 0);
    }

    #[test]
    fn weight_overrides() {
        let g = diamond();
        // Override: subtract a "dual" of 6 from node 2; branch 1 now wins.
        let p = g
            .max_profit_path_with(
                0,
                3,
                |v| g.node_weight(v) - if v == 2 { 6.0 } else { 0.0 },
                |_, _, w| w,
            )
            .unwrap();
        assert_eq!(p.nodes, vec![0, 1, 3]);
        assert_eq!(p.profit, 5.0);
    }

    #[test]
    fn cyclic_graph_returns_none() {
        let mut g = Dag::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 1, 1.0);
        assert!(g.max_profit_path(0, 2).is_none());
    }

    #[test]
    fn long_chain_accumulates() {
        let mut g = Dag::new(100);
        for i in 0..99 {
            g.add_edge(i, i + 1, 1.0);
            g.set_node_weight(i, 0.5);
        }
        g.set_node_weight(99, 0.5);
        let p = g.max_profit_path(0, 99).unwrap();
        assert_eq!(p.nodes.len(), 100);
        assert!((p.profit - (99.0 + 50.0)).abs() < 1e-9);
    }
}
