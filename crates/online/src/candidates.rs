//! Shared candidate generation — step (a) of Algorithms 3–4.
//!
//! Both dispatch paths of this crate ask the same question: *given the
//! drivers' projected states, who can feasibly serve this task if the
//! dispatch decision is made at time `t`, and at what marginal value
//! (Eq. 14)?* The per-task [`crate::Simulator`] asks it with `t` equal to
//! the task's publish time (instant dispatch); the
//! [`crate::BatchEngine`] asks it with `t` equal to the batch decision
//! epoch, which may be up to the hold window `W` later. [`CandidateEngine`]
//! is the single implementation of that question, so the feasibility
//! predicates and the Eq. 14 marginal value can never drift apart between
//! the two paths.
//!
//! The engine optionally maintains a [`GridIndex`] over the drivers'
//! projected locations. Radius pruning is *lossless*: a driver departs no
//! earlier than the decision time, so any driver farther than the speed
//! model can cover within `pickup_deadline − decision_time` cannot arrive
//! in time and would be rejected by the arrival check anyway — the grid
//! only skips work, never changes results (pinned by the oracle tests).

use rideshare_core::Market;
use rideshare_geo::{GeoPoint, GridIndex};
use rideshare_types::Timestamp;

use crate::policy::Candidate;

/// Per-driver projected state during a replay (shared by the per-task
/// simulator and the batch engine).
#[derive(Clone, Copy, Debug)]
pub(crate) struct DriverState {
    /// Where the driver will next be free.
    pub(crate) location: GeoPoint,
    /// When she is free there (actual projected finish, which may precede
    /// the running task's deadline — the paper's early-finish rule).
    pub(crate) available_at: Timestamp,
    /// Tasks served so far (for Eq. 14's `m' = 0` case and diagnostics).
    pub(crate) tasks_taken: u32,
}

/// The shared candidate generator: driver states plus an optional spatial
/// index over their projected locations.
#[derive(Clone, Debug)]
pub(crate) struct CandidateEngine<'m> {
    market: &'m Market,
    grid: Option<GridIndex<u32>>,
}

impl<'m> CandidateEngine<'m> {
    /// Creates the generator and the initial driver states (every driver at
    /// her source, free from her shift start). With `use_grid` the states
    /// are also indexed spatially.
    pub(crate) fn new(market: &'m Market, use_grid: bool) -> (Self, Vec<DriverState>) {
        let states: Vec<DriverState> = market
            .drivers()
            .iter()
            .map(|d| DriverState {
                location: d.source,
                available_at: d.shift_start,
                tasks_taken: 0,
            })
            .collect();
        let grid = use_grid.then(|| {
            let mut g = GridIndex::new(market_bbox(market), 16, 16);
            for (i, s) in states.iter().enumerate() {
                g.insert(s.location, i as u32);
            }
            g
        });
        (Self { market, grid }, states)
    }

    /// Every driver who can feasibly serve `task_idx` when the dispatch
    /// decision is made at `decision_time`: she can reach the pickup from
    /// her projected position by the deadline (departing no earlier than
    /// the decision), can still get home afterwards, and is inside her
    /// shift. Candidates are returned sorted by driver index, each carrying
    /// the Eq. 14 marginal value.
    pub(crate) fn candidates_at(
        &self,
        states: &[DriverState],
        task_idx: usize,
        decision_time: Timestamp,
    ) -> Vec<Candidate> {
        let market = self.market;
        let task = &market.tasks()[task_idx];
        if !task.window_feasible() || decision_time > task.pickup_deadline {
            return Vec::new();
        }

        let mut out = Vec::new();
        match &self.grid {
            Some(g) => {
                // Any driver farther than the loosest possible travel
                // budget — she departs no earlier than the decision —
                // cannot arrive in time. One second of slack keeps the
                // prune lossless: travel times round to whole seconds, so
                // a driver fractionally past the exact radius can still
                // round down into the budget. The coarse query yields a
                // superset (no per-entry distance filter — `evaluate`
                // re-checks arrival exactly anyway), so the prune stays
                // lossless while each distance is computed once instead of
                // twice.
                let budget =
                    task.pickup_deadline - decision_time + rideshare_types::TimeDelta::from_secs(1);
                let radius = market.speed().reachable_km(budget);
                for d in g.query_radius_coarse(task.origin, radius) {
                    out.extend(self.evaluate(states, task_idx, decision_time, d as usize));
                }
            }
            None => {
                for d in 0..states.len() {
                    out.extend(self.evaluate(states, task_idx, decision_time, d));
                }
            }
        }
        out.sort_by_key(|c| c.driver);
        out
    }

    /// Evaluates one *(driver, task)* pair under a decision made at
    /// `decision_time`: `Some(candidate)` iff feasible. This is the exact
    /// per-pair predicate behind [`CandidateEngine::candidates_at`]; the
    /// batch engine also probes it directly to refresh only the entries of
    /// drivers whose state changed.
    pub(crate) fn candidate_for(
        &self,
        states: &[DriverState],
        task_idx: usize,
        decision_time: Timestamp,
        d: usize,
    ) -> Option<Candidate> {
        let task = &self.market.tasks()[task_idx];
        if !task.window_feasible() || decision_time > task.pickup_deadline {
            return None;
        }
        self.evaluate(states, task_idx, decision_time, d)
    }

    /// The feasibility predicates and Eq. 14 value for one pair (window
    /// feasibility of the task itself is the caller's precondition).
    fn evaluate(
        &self,
        states: &[DriverState],
        task_idx: usize,
        decision_time: Timestamp,
        d: usize,
    ) -> Option<Candidate> {
        let market = self.market;
        let speed = market.speed();
        let task = &market.tasks()[task_idx];
        let driver = &market.drivers()[d];
        let st = &states[d];
        // Departure: not before the order exists, the dispatch decision
        // is made, the driver is free, and her shift has started.
        let depart = st
            .available_at
            .max(task.publish_time)
            .max(decision_time)
            .max(driver.shift_start);
        let to_pickup = speed.travel_time(st.location, task.origin);
        let arrival = depart + to_pickup;
        if arrival > task.pickup_deadline {
            return None;
        }
        // Return-home feasibility against the task's completion deadline
        // (conservative: the driver may finish earlier, but she must be
        // able to honour the promised window).
        let back = speed.travel_time(task.destination, driver.destination);
        if task.completion_deadline + back > driver.shift_end {
            return None;
        }
        // Eq. 14: δₙ,ₘ = pₘ − (cₙ,ₘ,₋₁ + ĉₙ,ₘ + cₙ,ₘ',ₘ − cₙ,ₘ',₋₁).
        let to_pickup_cost = speed.travel_cost(st.location, task.origin);
        let new_return = speed.travel_cost(task.destination, driver.destination);
        let old_return = speed.travel_cost(st.location, driver.destination);
        let delta = task.price - new_return - task.service_cost - to_pickup_cost + old_return;
        Some(Candidate {
            driver: d,
            arrival,
            marginal_value: delta.as_f64(),
        })
    }

    /// The latest instant a dispatch decision for `task_idx` could still be
    /// made with some driver reaching the pickup from her current projected
    /// position, clamped to `[publish_time, cap]` — the batch engine's
    /// early-flush epoch. A heuristic against the states known when the
    /// window opens (drivers may still move before the epoch fires), but
    /// always causally valid: never before publication, never past `cap`.
    pub(crate) fn latest_decision(
        &self,
        states: &[DriverState],
        task_idx: usize,
        cap: Timestamp,
    ) -> Timestamp {
        let market = self.market;
        let speed = market.speed();
        let task = &market.tasks()[task_idx];
        let mut best = task.publish_time;
        let mut consider = |d: usize| {
            let latest = task.pickup_deadline - speed.travel_time(states[d].location, task.origin);
            if latest > best {
                best = latest;
            }
        };
        match &self.grid {
            Some(g) => {
                // Drivers beyond the publish-time budget have
                // `pickup_deadline − travel < publish`, which can never
                // raise `best` above its `publish_time` floor — pruning
                // them is lossless here too (same 1 s rounding slack).
                let budget = task.pickup_deadline - task.publish_time
                    + rideshare_types::TimeDelta::from_secs(1);
                let radius = speed.reachable_km(budget);
                for d in g.query_radius_coarse(task.origin, radius) {
                    consider(d as usize);
                }
            }
            None => {
                for d in 0..states.len() {
                    consider(d);
                }
            }
        }
        best.min(cap)
    }

    /// Commits a dispatch: projects driver `d` onto the task's destination,
    /// free at `arrival + duration`, and keeps the spatial index in sync.
    pub(crate) fn commit(
        &mut self,
        states: &mut [DriverState],
        d: usize,
        task_idx: usize,
        arrival: Timestamp,
    ) {
        let task = &self.market.tasks()[task_idx];
        let old_loc = states[d].location;
        states[d] = DriverState {
            location: task.destination,
            available_at: arrival + task.duration,
            tasks_taken: states[d].tasks_taken + 1,
        };
        if let Some(g) = self.grid.as_mut() {
            g.relocate(old_loc, task.destination, d as u32);
        }
    }
}

/// Covers every driver and task location with a margin; degenerate markets
/// fall back to a unit box.
fn market_bbox(market: &Market) -> rideshare_geo::BoundingBox {
    let mut pts = market
        .drivers()
        .iter()
        .map(|d| d.source)
        .chain(market.drivers().iter().map(|d| d.destination))
        .chain(market.tasks().iter().map(|t| t.origin))
        .chain(market.tasks().iter().map(|t| t.destination));
    let Some(first) = pts.next() else {
        return rideshare_geo::BoundingBox::new(0.0, 1.0, 0.0, 1.0);
    };
    let (mut lat_lo, mut lat_hi) = (first.lat(), first.lat());
    let (mut lon_lo, mut lon_hi) = (first.lon(), first.lon());
    for p in pts {
        lat_lo = lat_lo.min(p.lat());
        lat_hi = lat_hi.max(p.lat());
        lon_lo = lon_lo.min(p.lon());
        lon_hi = lon_hi.max(p.lon());
    }
    rideshare_geo::BoundingBox::new(lat_lo - 0.01, lat_hi + 0.01, lon_lo - 0.01, lon_hi + 0.01)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rideshare_core::MarketBuildOptions;
    use rideshare_trace::{DriverModel, TraceConfig};

    fn market(seed: u64, tasks: usize, drivers: usize) -> Market {
        let trace = TraceConfig::porto()
            .with_seed(seed)
            .with_task_count(tasks)
            .with_driver_count(drivers, DriverModel::Hitchhiking)
            .generate();
        Market::from_trace(&trace, &MarketBuildOptions::default())
    }

    #[test]
    fn grid_pruning_is_lossless_at_any_decision_time() {
        let m = market(71, 60, 25);
        let (linear, states) = CandidateEngine::new(&m, false);
        let (grid, _) = CandidateEngine::new(&m, true);
        for t in 0..m.num_tasks() {
            let publish = m.tasks()[t].publish_time;
            for delay_mins in [0i64, 2, 10, 45] {
                let at = publish + rideshare_types::TimeDelta::from_mins(delay_mins);
                assert_eq!(
                    linear.candidates_at(&states, t, at),
                    grid.candidates_at(&states, t, at),
                    "task {t} at {at}"
                );
            }
        }
    }

    #[test]
    fn later_decisions_never_grow_the_candidate_set() {
        // A later decision only delays departures, so feasibility shrinks
        // monotonically (driver states held fixed).
        let m = market(72, 40, 15);
        let (engine, states) = CandidateEngine::new(&m, false);
        for t in 0..m.num_tasks() {
            let publish = m.tasks()[t].publish_time;
            let now = engine.candidates_at(&states, t, publish);
            let later = engine.candidates_at(
                &states,
                t,
                publish + rideshare_types::TimeDelta::from_mins(5),
            );
            let now_drivers: Vec<usize> = now.iter().map(|c| c.driver).collect();
            for c in &later {
                assert!(now_drivers.contains(&c.driver), "candidate appeared late");
            }
        }
    }

    #[test]
    fn decision_past_pickup_deadline_is_empty() {
        let m = market(73, 20, 10);
        let (engine, states) = CandidateEngine::new(&m, false);
        for t in 0..m.num_tasks() {
            let past = m.tasks()[t].pickup_deadline + rideshare_types::TimeDelta::from_secs(1);
            assert!(engine.candidates_at(&states, t, past).is_empty());
        }
    }

    #[test]
    fn commit_moves_the_driver_and_the_index() {
        let m = market(74, 30, 6);
        let (mut engine, mut states) = CandidateEngine::new(&m, true);
        let task = 0usize;
        let publish = m.tasks()[task].publish_time;
        let cands = engine.candidates_at(&states, task, publish);
        if let Some(c) = cands.first() {
            engine.commit(&mut states, c.driver, task, c.arrival);
            assert_eq!(states[c.driver].location, m.tasks()[task].destination);
            assert_eq!(states[c.driver].tasks_taken, 1);
            // The index tracked the move: a fresh linear engine over the
            // mutated states agrees with the grid one.
            let (linear, _) = CandidateEngine::new(&m, false);
            for t in 1..m.num_tasks() {
                let at = m.tasks()[t].publish_time;
                assert_eq!(
                    linear.candidates_at(&states, t, at),
                    engine.candidates_at(&states, t, at)
                );
            }
        }
    }
}
