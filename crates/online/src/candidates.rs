//! Shared candidate generation — step (a) of Algorithms 3–4.
//!
//! Every dispatch path of this crate asks the same question: *given the
//! drivers' projected states, who can feasibly serve this task if the
//! dispatch decision is made at time `t`, and at what marginal value
//! (Eq. 14)?* The per-task [`crate::Simulator`] asks it with `t` equal to
//! the task's publish time (instant dispatch); the
//! [`crate::BatchEngine`] asks it with `t` equal to the batch decision
//! epoch, which may be up to the hold window `W` later; the
//! [`crate::StreamEngine`] asks it while consuming an unbounded event
//! stream. [`CandidateEngine`] is the single implementation of that
//! question, so the feasibility predicates and the Eq. 14 marginal value
//! can never drift apart between the paths.
//!
//! The engine deliberately does **not** hold a `&Market`: it owns only the
//! travel model, the optional spatial index, and per-driver flags, while
//! tasks and drivers are passed in by the caller. That is what lets the
//! streaming replay engine — which never materialises a market — reuse the
//! exact same code as the materialized simulator, which is in turn what
//! makes the stream-vs-materialized oracle tests meaningful.
//!
//! The engine optionally maintains a [`GridIndex`] over the drivers'
//! projected locations. Radius pruning is *lossless*: a driver departs no
//! earlier than the decision time, so any driver farther than the speed
//! model can cover within `pickup_deadline − decision_time` cannot arrive
//! in time and would be rejected by the arrival check anyway — the grid
//! only skips work, never changes results (pinned by the oracle tests).
//! The same argument covers *expired* drivers (streaming replay marks a
//! driver expired once the stream clock passes her shift end): any task
//! decided after `t⁺ₙ` fails the return-home check, so skipping her is
//! equally lossless.

use rideshare_core::{Driver, Market, Task};
use rideshare_geo::{BoundingBox, GeoPoint, GridIndex, SpeedModel};
use rideshare_types::Timestamp;

use crate::policy::Candidate;

/// Grid resolution used by every candidate engine.
const GRID_ROWS: u16 = 16;
/// Grid resolution used by every candidate engine.
const GRID_COLS: u16 = 16;

/// Tag bit marking a grid entry as a ghost (a compacted driver's frozen
/// projected location, visible to [`CandidateEngine::latest_decision`] but
/// never to candidate generation). Real driver indices stay below this.
const GHOST_BIT: u32 = 1 << 31;

/// Per-driver projected state during a replay (shared by the per-task
/// simulator, the batch engine, and the streaming engine), laid out as a
/// struct of arrays. Candidate generation touches `locations` for every
/// scanned driver but `available_at`/`tasks_taken` only for the survivors,
/// so keeping the fields in parallel dense vectors makes the hot scan
/// cache-linear (16-byte stride instead of a padded 32-byte record).
#[derive(Clone, Debug, Default)]
pub(crate) struct DriverStates {
    /// Where each driver will next be free.
    locations: Vec<GeoPoint>,
    /// When she is free there (actual projected finish, which may precede
    /// the running task's deadline — the paper's early-finish rule).
    available_at: Vec<Timestamp>,
    /// Tasks served so far (for Eq. 14's `m' = 0` case and diagnostics).
    tasks_taken: Vec<u32>,
}

impl DriverStates {
    /// No drivers yet (the streaming starting point).
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Number of tracked drivers.
    pub(crate) fn len(&self) -> usize {
        self.locations.len()
    }

    /// Driver `d`'s projected location.
    pub(crate) fn location(&self, d: usize) -> GeoPoint {
        self.locations[d]
    }

    /// Every driver's projected location, dense by driver index.
    pub(crate) fn locations(&self) -> &[GeoPoint] {
        &self.locations
    }

    /// When driver `d` is next free.
    #[cfg(test)]
    pub(crate) fn available_at(&self, d: usize) -> Timestamp {
        self.available_at[d]
    }

    /// Tasks driver `d` has served so far.
    #[cfg(test)]
    pub(crate) fn tasks_taken(&self, d: usize) -> u32 {
        self.tasks_taken[d]
    }

    fn push(&mut self, location: GeoPoint, available_at: Timestamp) {
        self.locations.push(location);
        self.available_at.push(available_at);
        self.tasks_taken.push(0);
    }

    /// Keeps exactly the drivers with `remap[d].is_some()`, in index order
    /// (the compaction step; `remap` is produced by the engine).
    fn retain_remapped(&mut self, remap: &[Option<usize>]) {
        let mut w = 0usize;
        for (d, r) in remap.iter().enumerate() {
            if r.is_some() {
                self.locations[w] = self.locations[d];
                self.available_at[w] = self.available_at[d];
                self.tasks_taken[w] = self.tasks_taken[d];
                w += 1;
            }
        }
        self.locations.truncate(w);
        self.available_at.truncate(w);
        self.tasks_taken.truncate(w);
    }
}

/// The shared candidate generator: the travel model, an optional spatial
/// index over the drivers' projected locations, and per-driver expiry
/// flags. Driver records and states are supplied by the caller on every
/// query, so the engine works equally over a materialised [`Market`] and
/// over a driver set that grows as a stream announces shifts.
#[derive(Clone, Debug)]
pub(crate) struct CandidateEngine {
    speed: SpeedModel,
    grid: Option<GridIndex<u32>>,
    /// `expired[d]` ⇒ driver `d` can never again be feasible (the current
    /// decision clock has passed her shift end, so the return-home check
    /// fails for every future task). Skipping her is lossless; she stays
    /// in the grid so [`CandidateEngine::latest_decision`] — which ignores
    /// feasibility by design — sees exactly the same driver set as a
    /// materialized engine would.
    expired: Vec<bool>,
    /// Frozen projected locations of *compacted* expired drivers. A
    /// compacted driver is gone from candidate generation (her record and
    /// state are freed), but `latest_decision` deliberately ignores
    /// feasibility, so dropping her location would move early-flush epochs
    /// away from what a materialized [`crate::BatchEngine`] (which never
    /// expires anyone) computes — the subtle case the module docs describe.
    /// Ghosts keep exactly the data `latest_decision` needs (one point) and
    /// nothing else. Instant-mode compaction skips ghosts entirely:
    /// `latest_decision` is never consulted there.
    ghosts: Vec<GeoPoint>,
    /// Per-grid-cell availability floor: `cell_floor[slot]` is the exact
    /// minimum `available_at` over the live drivers stored in that cell
    /// (`FLOOR_EMPTY` when the cell holds none — ghosts don't count). A
    /// candidate scan skips a whole cell with one compare when even its
    /// most-available driver cannot make the pickup deadline; that skip is
    /// lossless because the per-driver availability pre-reject would
    /// return `None` for every entry anyway. Maintained exactly on the
    /// rare state-changing events (add, commit, expire, compact), which
    /// each touch at most two cells. Empty when the grid is off.
    cell_floor: Vec<Timestamp>,
}

/// Floor value of a cell with no live drivers: later than every reachable
/// deadline, so such cells are skipped by the one-compare cell test.
const FLOOR_EMPTY: Timestamp = Timestamp::from_secs(i64::MAX);

/// The exact availability floor of cell `slot`: minimum `available_at`
/// over its live entries (ghost entries carry no state and are ignored).
fn floor_of(grid: &GridIndex<u32>, states: &DriverStates, slot: usize) -> Timestamp {
    let mut floor = FLOOR_EMPTY;
    for &(_, id) in grid.slot_entries(slot) {
        if id & GHOST_BIT == 0 {
            floor = floor.min(states.available_at[id as usize]);
        }
    }
    floor
}

impl CandidateEngine {
    /// Creates the generator and the initial driver states for a
    /// materialised market (every driver at her source, free from her
    /// shift start). With `use_grid` the states are also indexed
    /// spatially.
    pub(crate) fn for_market(market: &Market, use_grid: bool) -> (Self, DriverStates) {
        let mut engine = Self::streaming(market.speed(), use_grid.then(|| market_bbox(market)));
        let mut states = DriverStates::new();
        for d in market.drivers() {
            engine.add_driver(&mut states, d);
        }
        (engine, states)
    }

    /// Creates an empty engine for stream consumption: no drivers yet,
    /// spatial indexing over `bbox` when given (callers typically pass the
    /// trace's service area; the box only affects speed, never results).
    pub(crate) fn streaming(speed: SpeedModel, bbox: Option<BoundingBox>) -> Self {
        let grid = bbox.map(|b| GridIndex::new(b, GRID_ROWS, GRID_COLS));
        let cell_floor = grid
            .as_ref()
            .map_or_else(Vec::new, |g| vec![FLOOR_EMPTY; g.slot_count()]);
        Self {
            speed,
            grid,
            expired: Vec::new(),
            ghosts: Vec::new(),
            cell_floor,
        }
    }

    /// Registers one more driver (streaming `DriverOnline`): appends her
    /// initial state and indexes her spatially. Driver indices are
    /// positional — the `d`-th call corresponds to `drivers[d]`.
    pub(crate) fn add_driver(&mut self, states: &mut DriverStates, driver: &Driver) {
        if let Some(g) = self.grid.as_mut() {
            g.insert(driver.source, states.len() as u32);
            // She starts available at her shift start; an insert can only
            // lower the exact cell minimum, so one `min` keeps it exact.
            let slot = g.slot_of(driver.source);
            self.cell_floor[slot] = self.cell_floor[slot].min(driver.shift_start);
        }
        states.push(driver.source, driver.shift_start);
        self.expired.push(false);
    }

    /// Marks driver `d` as expired. Only call when the decision clock has
    /// provably passed her shift end — then every future candidacy would
    /// fail the return-home check anyway, so the flag is pure work-skipping
    /// and results stay byte-identical. Returns `true` if the flag was
    /// newly set (callers keep cumulative counts across compactions).
    ///
    /// Expiry also pins the driver's `available_at` to the far future, so
    /// the candidate scan's availability pre-reject retires her with the
    /// same flat compare it uses for busy drivers — no separate flag load
    /// on the hot path. (The flag itself remains the compaction
    /// bookkeeping ground truth.)
    pub(crate) fn expire(&mut self, states: &mut DriverStates, d: usize) -> bool {
        let newly = !self.expired[d];
        self.expired[d] = true;
        states.available_at[d] = Timestamp::from_secs(i64::MAX);
        if let Some(g) = self.grid.as_ref() {
            // Her availability just rose, so her cell's minimum may have
            // too — rescan its handful of entries to keep the floor exact.
            let slot = g.slot_of(states.location(d));
            self.cell_floor[slot] = floor_of(g, states, slot);
        }
        newly
    }

    /// Number of drivers currently marked expired (and not yet compacted).
    /// (The stream engine tracks this arithmetically on its hot path; the
    /// scan remains as the tests' ground truth.)
    #[cfg(test)]
    pub(crate) fn expired_count(&self) -> usize {
        self.expired.iter().filter(|&&e| e).count()
    }

    /// Frozen locations of compacted drivers (kept for
    /// [`CandidateEngine::latest_decision`] parity in batched mode).
    pub(crate) fn ghost_locations(&self) -> &[GeoPoint] {
        &self.ghosts
    }

    /// Garbage-collects every expired driver: her state is removed from the
    /// dense vectors and the spatial index, and surviving drivers are
    /// renumbered compactly. Returns the old→new index mapping (`None` for
    /// removed drivers) so the caller can remap its own per-driver tables.
    ///
    /// With `keep_ghosts` each removed driver leaves a frozen location
    /// behind for [`CandidateEngine::latest_decision`] — required for
    /// byte-identity with a materialized [`crate::BatchEngine`], which
    /// never expires anyone (see the `ghosts` field docs). Without it the
    /// location vanishes too; only lossless when `latest_decision` is never
    /// consulted (instant-mode streaming).
    pub(crate) fn compact(
        &mut self,
        states: &mut DriverStates,
        keep_ghosts: bool,
    ) -> Vec<Option<usize>> {
        let old_len = states.len();
        let mut remap: Vec<Option<usize>> = Vec::with_capacity(old_len);
        let mut kept = 0usize;
        for d in 0..old_len {
            if self.expired[d] {
                if keep_ghosts {
                    self.ghosts.push(states.location(d));
                }
                remap.push(None);
            } else {
                remap.push(Some(kept));
                kept += 1;
            }
        }
        states.retain_remapped(&remap);
        self.expired.clear();
        self.expired.resize(states.len(), false);
        if let Some(old) = self.grid.as_ref() {
            let mut grid = GridIndex::new(old.bounding_box(), GRID_ROWS, GRID_COLS);
            for (d, &loc) in states.locations().iter().enumerate() {
                grid.insert(loc, d as u32);
            }
            for (g, &loc) in self.ghosts.iter().enumerate() {
                grid.insert(loc, GHOST_BIT | g as u32);
            }
            self.cell_floor.clear();
            self.cell_floor.resize(grid.slot_count(), FLOOR_EMPTY);
            for (d, &loc) in states.locations().iter().enumerate() {
                let slot = grid.slot_of(loc);
                self.cell_floor[slot] = self.cell_floor[slot].min(states.available_at[d]);
            }
            self.grid = Some(grid);
        }
        remap
    }

    /// [`CandidateEngine::candidates_into`] with a fresh vector — the
    /// convenient form for tests; every replay hot path passes a reusable
    /// arena instead.
    #[cfg(test)]
    pub(crate) fn candidates_at(
        &self,
        drivers: &[Driver],
        states: &DriverStates,
        task: &Task,
        decision_time: Timestamp,
    ) -> Vec<Candidate> {
        let mut out = Vec::new();
        self.candidates_into(drivers, states, task, decision_time, &mut out);
        out
    }

    /// Every driver who can feasibly serve `task` when the dispatch
    /// decision is made at `decision_time`: she can reach the pickup from
    /// her projected position by the deadline (departing no earlier than
    /// the decision), can still get home afterwards, and is inside her
    /// shift. `out` is cleared and refilled sorted by driver index, each
    /// candidate carrying the Eq. 14 marginal value — callers keep one
    /// scratch vector per replay so the per-decision allocation disappears.
    pub(crate) fn candidates_into(
        &self,
        drivers: &[Driver],
        states: &DriverStates,
        task: &Task,
        decision_time: Timestamp,
        out: &mut Vec<Candidate>,
    ) {
        out.clear();
        if !task.window_feasible() || decision_time > task.pickup_deadline {
            return;
        }

        match &self.grid {
            Some(g) => {
                // Any driver farther than the loosest possible travel
                // budget — she departs no earlier than the decision —
                // cannot arrive in time. One second of slack keeps the
                // prune lossless: travel times round to whole seconds, so
                // a driver fractionally past the exact radius can still
                // round down into the budget. The coarse query yields a
                // superset (no per-entry distance filter — `evaluate`
                // re-checks arrival exactly anyway), so the prune stays
                // lossless while each distance is computed once instead of
                // twice.
                let budget =
                    task.pickup_deadline - decision_time + rideshare_types::TimeDelta::from_secs(1);
                let radius = self.speed.reachable_km(budget);
                for (slot, entries) in g.cells_near(task.origin, radius) {
                    // One compare retires the whole cell when even its
                    // most-available driver misses the pickup deadline —
                    // every entry would fail the same availability
                    // pre-reject inside `evaluate`, so the skip is
                    // lossless. Under saturation most cells die here.
                    if self.cell_floor[slot] > task.pickup_deadline {
                        continue;
                    }
                    for &(_, d) in entries {
                        if d & GHOST_BIT != 0 {
                            continue; // ghosts never generate candidates
                        }
                        out.extend(self.evaluate(drivers, states, task, decision_time, d as usize));
                    }
                }
            }
            None => {
                for d in 0..states.len() {
                    out.extend(self.evaluate(drivers, states, task, decision_time, d));
                }
            }
        }
        out.sort_by_key(|c| c.driver);
    }

    /// Evaluates one *(driver, task)* pair under a decision made at
    /// `decision_time`: `Some(candidate)` iff feasible. This is the exact
    /// per-pair predicate behind [`CandidateEngine::candidates_at`]; the
    /// batch engine also probes it directly to refresh only the entries of
    /// drivers whose state changed.
    pub(crate) fn candidate_for(
        &self,
        drivers: &[Driver],
        states: &DriverStates,
        task: &Task,
        decision_time: Timestamp,
        d: usize,
    ) -> Option<Candidate> {
        if !task.window_feasible() || decision_time > task.pickup_deadline {
            return None;
        }
        self.evaluate(drivers, states, task, decision_time, d)
    }

    /// The feasibility predicates and Eq. 14 value for one pair (window
    /// feasibility of the task itself is the caller's precondition).
    fn evaluate(
        &self,
        drivers: &[Driver],
        states: &DriverStates,
        task: &Task,
        decision_time: Timestamp,
        d: usize,
    ) -> Option<Candidate> {
        // Availability pre-reject: `available_at` starts at the shift
        // start and only ever grows (expiry pins it to the far future), and
        // `depart >= available_at`, so a driver unavailable past the pickup
        // deadline can never arrive in time — settled by one flat-array
        // compare, no distance needed. Under saturation this retires the
        // vast majority of pairs before any trigonometry, and it subsumes
        // the expired-driver skip.
        if states.available_at[d] > task.pickup_deadline {
            return None;
        }
        let speed = self.speed;
        let driver = &drivers[d];
        let location = states.location(d);
        // Departure: not before the order exists, the dispatch decision
        // is made, the driver is free, and her shift has started.
        let depart = states.available_at[d]
            .max(task.publish_time)
            .max(decision_time)
            .max(driver.shift_start);
        // Each pair needs three distances (driver→pickup, dropoff→home,
        // driver→home); compute each once and derive time and cost from it
        // (`travel_time`/`travel_cost` are exactly these compositions, so
        // results stay bit-identical).
        let to_pickup_km = speed.driven_km(location, task.origin);
        let arrival = depart + speed.travel_time_for_km(to_pickup_km);
        if arrival > task.pickup_deadline {
            return None;
        }
        // Return-home feasibility against the task's completion deadline
        // (conservative: the driver may finish earlier, but she must be
        // able to honour the promised window).
        let return_km = speed.driven_km(task.destination, driver.destination);
        if task.completion_deadline + speed.travel_time_for_km(return_km) > driver.shift_end {
            return None;
        }
        // Eq. 14: δₙ,ₘ = pₘ − (cₙ,ₘ,₋₁ + ĉₙ,ₘ + cₙ,ₘ',ₘ − cₙ,ₘ',₋₁).
        let to_pickup_cost = speed.cost_for_km(to_pickup_km);
        let new_return = speed.cost_for_km(return_km);
        let old_return = speed.travel_cost(location, driver.destination);
        let delta = task.price - new_return - task.service_cost - to_pickup_cost + old_return;
        Some(Candidate {
            driver: d,
            arrival,
            marginal_value: delta.as_f64(),
        })
    }

    /// The latest instant a dispatch decision for `task` could still be
    /// made with some driver reaching the pickup from her current projected
    /// position, clamped to `[publish_time, cap]` — the batch engine's
    /// early-flush epoch. A heuristic against the states known when the
    /// window opens (drivers may still move before the epoch fires), but
    /// always causally valid: never before publication, never past `cap`.
    ///
    /// Expired drivers are **not** skipped here: this bound deliberately
    /// ignores feasibility, and including them keeps streamed epochs
    /// byte-identical to a materialized [`crate::BatchEngine`] (which
    /// never expires anyone). For the same reason *compacted* drivers still
    /// count through their frozen ghost locations.
    pub(crate) fn latest_decision(
        &self,
        states: &DriverStates,
        task: &Task,
        cap: Timestamp,
    ) -> Timestamp {
        let speed = self.speed;
        let mut best = task.publish_time;
        let mut consider = |loc: GeoPoint| {
            let latest = task.pickup_deadline - speed.travel_time(loc, task.origin);
            if latest > best {
                best = latest;
            }
        };
        match &self.grid {
            Some(g) => {
                // Drivers beyond the publish-time budget have
                // `pickup_deadline − travel < publish`, which can never
                // raise `best` above its `publish_time` floor — pruning
                // them is lossless here too (same 1 s rounding slack).
                let budget = task.pickup_deadline - task.publish_time
                    + rideshare_types::TimeDelta::from_secs(1);
                let radius = speed.reachable_km(budget);
                for d in g.query_radius_coarse(task.origin, radius) {
                    if d & GHOST_BIT != 0 {
                        consider(self.ghosts[(d & !GHOST_BIT) as usize]);
                    } else {
                        consider(states.location(d as usize));
                    }
                }
            }
            None => {
                for &loc in states.locations() {
                    consider(loc);
                }
                for &loc in &self.ghosts {
                    consider(loc);
                }
            }
        }
        best.min(cap)
    }

    /// Commits a dispatch: projects driver `d` onto the task's destination,
    /// free at `arrival + duration`, and keeps the spatial index in sync.
    pub(crate) fn commit(
        &mut self,
        states: &mut DriverStates,
        d: usize,
        task: &Task,
        arrival: Timestamp,
    ) {
        let old_loc = states.locations[d];
        states.locations[d] = task.destination;
        states.available_at[d] = arrival + task.duration;
        states.tasks_taken[d] += 1;
        if let Some(g) = self.grid.as_mut() {
            g.relocate(old_loc, task.destination, d as u32);
        }
        if let Some(g) = self.grid.as_ref() {
            // The move changes at most two cells; rescanning both keeps
            // the floors exact (commits are rare next to candidate scans).
            let from = g.slot_of(old_loc);
            let to = g.slot_of(task.destination);
            self.cell_floor[from] = floor_of(g, states, from);
            if to != from {
                self.cell_floor[to] = floor_of(g, states, to);
            }
        }
    }
}

/// Covers every driver and task location with a margin; degenerate markets
/// fall back to a unit box.
fn market_bbox(market: &Market) -> BoundingBox {
    let mut pts = market
        .drivers()
        .iter()
        .map(|d| d.source)
        .chain(market.drivers().iter().map(|d| d.destination))
        .chain(market.tasks().iter().map(|t| t.origin))
        .chain(market.tasks().iter().map(|t| t.destination));
    let Some(first) = pts.next() else {
        return BoundingBox::new(0.0, 1.0, 0.0, 1.0);
    };
    let (mut lat_lo, mut lat_hi) = (first.lat(), first.lat());
    let (mut lon_lo, mut lon_hi) = (first.lon(), first.lon());
    for p in pts {
        lat_lo = lat_lo.min(p.lat());
        lat_hi = lat_hi.max(p.lat());
        lon_lo = lon_lo.min(p.lon());
        lon_hi = lon_hi.max(p.lon());
    }
    BoundingBox::new(lat_lo - 0.01, lat_hi + 0.01, lon_lo - 0.01, lon_hi + 0.01)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rideshare_core::MarketBuildOptions;
    use rideshare_trace::{DriverModel, TraceConfig};

    fn market(seed: u64, tasks: usize, drivers: usize) -> Market {
        let trace = TraceConfig::porto()
            .with_seed(seed)
            .with_task_count(tasks)
            .with_driver_count(drivers, DriverModel::Hitchhiking)
            .generate();
        Market::from_trace(&trace, &MarketBuildOptions::default())
    }

    #[test]
    fn grid_pruning_is_lossless_at_any_decision_time() {
        let m = market(71, 60, 25);
        let (linear, states) = CandidateEngine::for_market(&m, false);
        let (grid, _) = CandidateEngine::for_market(&m, true);
        for t in 0..m.num_tasks() {
            let task = &m.tasks()[t];
            let publish = task.publish_time;
            for delay_mins in [0i64, 2, 10, 45] {
                let at = publish + rideshare_types::TimeDelta::from_mins(delay_mins);
                assert_eq!(
                    linear.candidates_at(m.drivers(), &states, task, at),
                    grid.candidates_at(m.drivers(), &states, task, at),
                    "task {t} at {at}"
                );
            }
        }
    }

    #[test]
    fn later_decisions_never_grow_the_candidate_set() {
        // A later decision only delays departures, so feasibility shrinks
        // monotonically (driver states held fixed).
        let m = market(72, 40, 15);
        let (engine, states) = CandidateEngine::for_market(&m, false);
        for t in 0..m.num_tasks() {
            let task = &m.tasks()[t];
            let publish = task.publish_time;
            let now = engine.candidates_at(m.drivers(), &states, task, publish);
            let later = engine.candidates_at(
                m.drivers(),
                &states,
                task,
                publish + rideshare_types::TimeDelta::from_mins(5),
            );
            let now_drivers: Vec<usize> = now.iter().map(|c| c.driver).collect();
            for c in &later {
                assert!(now_drivers.contains(&c.driver), "candidate appeared late");
            }
        }
    }

    #[test]
    fn decision_past_pickup_deadline_is_empty() {
        let m = market(73, 20, 10);
        let (engine, states) = CandidateEngine::for_market(&m, false);
        for t in 0..m.num_tasks() {
            let task = &m.tasks()[t];
            let past = task.pickup_deadline + rideshare_types::TimeDelta::from_secs(1);
            assert!(engine
                .candidates_at(m.drivers(), &states, task, past)
                .is_empty());
        }
    }

    #[test]
    fn commit_moves_the_driver_and_the_index() {
        let m = market(74, 30, 6);
        let (mut engine, mut states) = CandidateEngine::for_market(&m, true);
        let task = &m.tasks()[0];
        let publish = task.publish_time;
        let cands = engine.candidates_at(m.drivers(), &states, task, publish);
        if let Some(c) = cands.first() {
            engine.commit(&mut states, c.driver, task, c.arrival);
            assert_eq!(states.location(c.driver), task.destination);
            assert_eq!(states.tasks_taken(c.driver), 1);
            assert_eq!(states.available_at(c.driver), c.arrival + task.duration);
            // The index tracked the move: a fresh linear engine over the
            // mutated states agrees with the grid one.
            let (linear, _) = CandidateEngine::for_market(&m, false);
            for t in 1..m.num_tasks() {
                let next = &m.tasks()[t];
                let at = next.publish_time;
                assert_eq!(
                    linear.candidates_at(m.drivers(), &states, next, at),
                    engine.candidates_at(m.drivers(), &states, next, at)
                );
            }
        }
    }

    #[test]
    fn incremental_driver_onboarding_matches_for_market() {
        // Announcing drivers one by one (the streaming path) yields the
        // same engine + states as building from the whole market.
        let m = market(75, 40, 12);
        let (batch, batch_states) = CandidateEngine::for_market(&m, true);
        let mut inc = CandidateEngine::streaming(m.speed(), Some(market_bbox(&m)));
        let mut inc_states = DriverStates::new();
        for d in m.drivers() {
            inc.add_driver(&mut inc_states, d);
        }
        for t in 0..m.num_tasks() {
            let task = &m.tasks()[t];
            let at = task.publish_time;
            assert_eq!(
                batch.candidates_at(m.drivers(), &batch_states, task, at),
                inc.candidates_at(m.drivers(), &inc_states, task, at),
                "task {t}"
            );
        }
    }

    #[test]
    fn compaction_keeps_latest_decision_only_through_ghosts() {
        // The subtle case the module docs warn about: an *expired* driver
        // can still determine a later task's early-flush epoch, because
        // `latest_decision` deliberately ignores feasibility. Compacting
        // her with a ghost preserves the epoch bit-for-bit; dropping her
        // outright moves it — which is why batched-mode compaction must
        // keep ghosts (and instant mode, which never consults
        // `latest_decision`, may drop them).
        use rideshare_types::{TimeDelta, Timestamp};
        let speed = rideshare_geo::SpeedModel::urban();
        let origin = GeoPoint::new(41.15, -8.61);
        let near_expired = Driver {
            id: rideshare_types::DriverId::new(0),
            source: origin.offset_km(0.3, 0.0), // ~1 min from the pickup
            destination: origin,
            shift_start: Timestamp::EPOCH,
            shift_end: Timestamp::from_hours(1), // long gone by publish
            model: rideshare_trace::DriverModel::Hitchhiking,
        };
        let far_live = Driver {
            id: rideshare_types::DriverId::new(1),
            source: origin.offset_km(0.0, 4.0), // ~13 min away
            destination: origin.offset_km(0.0, 4.0),
            shift_start: Timestamp::EPOCH,
            shift_end: Timestamp::from_hours(24),
            model: rideshare_trace::DriverModel::HomeWorkHome,
        };
        let task = Task {
            id: rideshare_types::TaskId::new(0),
            publish_time: Timestamp::from_hours(10),
            origin,
            destination: origin.offset_km(1.0, 1.0),
            pickup_deadline: Timestamp::from_hours(10) + TimeDelta::from_mins(15),
            completion_deadline: Timestamp::from_hours(10) + TimeDelta::from_mins(40),
            duration: TimeDelta::from_mins(10),
            price: rideshare_types::Money::new(10.0),
            valuation: rideshare_types::Money::new(12.0),
            service_cost: rideshare_types::Money::new(1.0),
        };
        let cap = task.pickup_deadline;

        for use_grid in [false, true] {
            let bbox = use_grid.then(|| BoundingBox::new(41.0, 41.3, -8.8, -8.3));
            let mut reference = CandidateEngine::streaming(speed, bbox);
            let mut states = DriverStates::new();
            reference.add_driver(&mut states, &near_expired);
            reference.add_driver(&mut states, &far_live);
            let baseline = reference.latest_decision(&states, &task, cap);
            // The near (but long-expired) driver determines the epoch.
            assert!(
                baseline > task.pickup_deadline - TimeDelta::from_mins(5),
                "baseline epoch {baseline} not driven by the near driver"
            );

            let compacted = |keep_ghosts: bool| {
                let mut engine = reference.clone();
                let mut st = states.clone();
                assert!(engine.expire(&mut st, 0));
                assert!(
                    !engine.expire(&mut st, 0),
                    "second expiry must not re-count"
                );
                let remap = engine.compact(&mut st, keep_ghosts);
                assert_eq!(remap, vec![None, Some(0)]);
                assert_eq!(engine.expired_count(), 0);
                (engine, st)
            };

            let (ghosted, ghost_states) = compacted(true);
            assert_eq!(ghosted.ghost_locations().len(), 1);
            assert_eq!(
                ghosted.latest_decision(&ghost_states, &task, cap),
                baseline,
                "ghost must preserve the epoch (grid={use_grid})"
            );

            let (dropped, drop_states) = compacted(false);
            assert_eq!(dropped.ghost_locations().len(), 0);
            assert_ne!(
                dropped.latest_decision(&drop_states, &task, cap),
                baseline,
                "dropping the location should move the epoch (grid={use_grid})"
            );

            // Candidate generation is identical either way: ghosts are
            // invisible to it, and the surviving driver was renumbered the
            // same. (The live far driver is the only candidate.)
            let live = vec![far_live];
            assert_eq!(
                ghosted.candidates_at(&live, &ghost_states, &task, task.publish_time),
                dropped.candidates_at(&live, &drop_states, &task, task.publish_time),
            );
        }
    }

    #[test]
    fn expiring_a_dead_driver_changes_nothing() {
        // Expire every driver whose shift ended before some cutoff; any
        // task decided after the cutoff sees identical candidates, and
        // `latest_decision` (which ignores feasibility) is untouched too.
        let m = market(76, 50, 20);
        let (plain, states) = CandidateEngine::for_market(&m, false);
        let (mut expired, mut ex_states) = CandidateEngine::for_market(&m, false);
        let cutoff = rideshare_types::Timestamp::from_hours(14);
        let mut expired_any = false;
        for (d, drv) in m.drivers().iter().enumerate() {
            if drv.shift_end < cutoff {
                expired.expire(&mut ex_states, d);
                expired_any = true;
            }
        }
        assert!(expired_any, "seed must produce an early shift");
        assert_eq!(expired.expired_count() > 0, expired_any);
        for t in 0..m.num_tasks() {
            let task = &m.tasks()[t];
            if task.publish_time < cutoff {
                continue;
            }
            let at = task.publish_time;
            assert_eq!(
                plain.candidates_at(m.drivers(), &states, task, at),
                expired.candidates_at(m.drivers(), &ex_states, task, at),
                "task {t}"
            );
            assert_eq!(
                plain.latest_decision(&states, task, at),
                expired.latest_decision(&ex_states, task, at),
            );
        }
    }
}
