//! Region-sharded parallel streaming replay.
//!
//! The sequential [`StreamEngine`] tops out around ~200k tasks/s on one
//! core. This module is the ROADMAP's named way past that ceiling: the
//! **online analogue of the paper's lossless disjoint-component
//! decomposition (§IV)**. Offline, `disjoint_components` splits a market
//! into independent sub-markets solvable in parallel with zero loss of
//! optimality. Online, the same idea shards the *live stream* by disjoint
//! service regions: every driver is owned by exactly one shard (the shard
//! of her announce region) and every order is routed to the shard of its
//! pickup region, each shard running an ordinary [`StreamEngine`] over its
//! slice of the stream.
//!
//! # The proof obligation
//!
//! The decomposition is lossless **iff the partition is legal**: no driver
//! of one shard may ever *interact* with a task of another. "Interact"
//! means more than "be a feasible candidate" — the batch engine's
//! early-flush epoch (`latest_decision`) deliberately ignores feasibility
//! and is raised by any driver within a task's publish→deadline lead
//! radius, expired or not. Both effects share one geometric bound, so a
//! single condition covers them: *every foreign driver stays farther (in
//! travel time from her current projected position) than the task's full
//! publish→deadline lead at every decision epoch.* This is exactly the
//! condition the region-tagged traces (`TraceConfig::with_regions`)
//! guarantee by construction, and the condition the **debug-mode
//! validator** ([`ShardOptions::validate`]) re-checks per task and per
//! window boundary, mirroring what `disjoint_components` proves offline.
//! An illegal partition (e.g. the [`GridHashPartitioner`] over one dense
//! city) does not crash the parallel engine — each shard still makes
//! internally valid dispatches — but results are no longer byte-identical
//! to a sequential replay, and the validator reports the first violating
//! (driver, task) pair.
//!
//! # Determinism: how byte-identity is engineered
//!
//! Three mechanisms make `--shards N` reproduce `--shards 1` exactly
//! (pinned by the facade's `shard_determinism` battery):
//!
//! - **Global window anchoring.** A sequential batched engine opens each
//!   hold window at the first pending order's publish time — a *global*
//!   fact no shard can see alone. The router therefore tracks window
//!   boundaries itself and broadcasts open anchors
//!   ([`StreamEngine::open_window`]) and closing ticks
//!   ([`StreamEvent::EpochTick`]) to every shard, so all shards close the
//!   very same windows the sequential engine would. (Instant-mode publish
//!   groups are self-aligning — every member shares one timestamp — so
//!   they need only the closing tick.)
//! - **Deterministic merge.** Worker shards emit their decisions per
//!   window; the merge stage re-serializes each window into global
//!   `(decision epoch, task id)` order and relabels driver ids back to
//!   their announced (global) identities before the caller's
//!   [`StreamSink`] sees them. Within an instant-mode group this *is* the
//!   sequential emission order; within a batched epoch the sequential
//!   engine emits in matcher-commit order instead, so byte-identity for
//!   batched replays is pinned on the canonical `(epoch, task id)` form.
//! - **Shard-stable policies.** A shard decides its tasks with its own
//!   policy instance, so policy choices must be pure functions of the
//!   candidate set: [`ShardPolicySpec`] covers maxMargin (deterministic
//!   argmax), nearest (decision-local hashed tie-break), and the batched
//!   matchers (deterministic round solutions). Candidate sets themselves
//!   are relabeling-invariant because shard-local driver numbering
//!   preserves the global announce order.
//!
//! Aggregate [`StreamMetrics`]-style accounting survives the reordering
//! because `rideshare-metrics` accumulates in order-independent
//! fixed-point (its `merge` is exact); see that crate's docs.
//!
//! [`StreamMetrics`]: ../../rideshare_metrics/struct.StreamMetrics.html
//!
//! # Example
//!
//! ```
//! use rideshare_core::{Market, MarketBuildOptions};
//! use rideshare_online::{
//!     market_events, replay_sharded, replay_stream, BoxPartitioner, CollectingSink, MaxMargin,
//!     ShardOptions, ShardPolicySpec, StreamOptions, StreamPolicy,
//! };
//! use rideshare_trace::{DriverModel, TraceConfig};
//!
//! let config = TraceConfig::porto()
//!     .with_seed(5)
//!     .with_task_count(120)
//!     .with_driver_count(16, DriverModel::Hitchhiking)
//!     .with_regions(2); // a legal partition by construction
//! let market = Market::from_trace(&config.generate(), &MarketBuildOptions::default());
//! let partitioner = BoxPartitioner::new(config.region_boxes());
//!
//! let mut sharded = CollectingSink::new();
//! let summary = replay_sharded(
//!     market.speed(),
//!     market_events(&market),
//!     ShardPolicySpec::MaxMargin,
//!     &partitioner,
//!     ShardOptions::new(2),
//!     &mut sharded,
//! );
//!
//! let mut sequential = CollectingSink::new();
//! replay_stream(
//!     market.speed(),
//!     market_events(&market),
//!     &mut StreamPolicy::Instant(&mut MaxMargin::new()),
//!     StreamOptions::default(),
//!     &mut sequential,
//! );
//! let (a, b) = (sharded.into_result(), sequential.into_result());
//! assert_eq!(a.dispatch, b.dispatch);
//! assert_eq!(a.events, b.events);
//! assert_eq!(summary.tasks, market.num_tasks());
//! ```

use std::collections::VecDeque;
use std::sync::mpsc;

use rideshare_core::{Driver, Task};
use rideshare_geo::{BoundingBox, GeoPoint, GridIndex, SpeedModel};
use rideshare_types::{ConfigError, DriverId, TimeDelta, Timestamp};

use crate::batch::{BatchMatcher, GreedyPairMatcher, MatcherKind, OptimalAssignmentMatcher};
use crate::policy::{splitmix64, DispatchPolicy, MaxMargin, NearestDriver};
use crate::simulator::DispatchEvent;
use crate::stream::{
    StreamEngine, StreamEvent, StreamOptions, StreamPolicy, StreamSink, StreamSummary,
};

/// Maps locations to disjoint service regions, and regions to shards.
///
/// The engine derives a driver's owning shard from her **announce
/// location** (`Driver::source`) and a task's from its pickup origin. The
/// partitioner carries the proof obligation described in the module docs:
/// sharded replay is byte-identical to sequential replay exactly when no
/// cross-shard (driver, task) pair can ever interact. Implementations
/// cannot promise that in general — the debug validator checks it against
/// the actual stream.
pub trait RegionPartitioner {
    /// Number of region labels this partitioner can produce.
    fn region_count(&self) -> usize;

    /// The region owning `point` (must be `< region_count`).
    fn region_of(&self, point: GeoPoint) -> usize;

    /// Region → shard assignment when regions outnumber shards. The
    /// default folds round-robin, keeping the region-tagged catalog's
    /// `k`-region / `k`-shard case one-to-one.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero — a value [`ShardOptions::try_new`]
    /// rejects as a typed error before any partitioner can see it.
    fn shard_of(&self, region: usize, shards: usize) -> usize {
        assert!(
            shards > 0,
            "shard count must be at least 1 (ShardOptions::try_new rejects 0)"
        );
        region % shards
    }
}

/// The default partitioner: a uniform grid over a bounding box, each cell
/// a region, cells **hashed** across shards (so adjacent cells spread
/// rather than stripe). Legal only for markets whose demand genuinely
/// never crosses cell boundaries within an order's lead radius — for one
/// dense city it is *not* legal, which the debug validator will report.
/// Use [`BoxPartitioner`] with region-tagged traces for provably lossless
/// sharding.
#[derive(Clone, Debug)]
pub struct GridHashPartitioner {
    grid: GridIndex<u32>,
}

impl GridHashPartitioner {
    /// A `rows × cols` cell grid over `bbox`.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    #[must_use]
    pub fn new(bbox: BoundingBox, rows: u16, cols: u16) -> Self {
        Self {
            grid: GridIndex::new(bbox, rows, cols),
        }
    }
}

impl RegionPartitioner for GridHashPartitioner {
    fn region_count(&self) -> usize {
        usize::from(self.grid.rows()) * usize::from(self.grid.cols())
    }

    fn region_of(&self, point: GeoPoint) -> usize {
        let cell = self.grid.cell_of(point);
        usize::from(cell.row()) * usize::from(self.grid.cols()) + usize::from(cell.col())
    }

    fn shard_of(&self, region: usize, shards: usize) -> usize {
        assert!(
            shards > 0,
            "shard count must be at least 1 (ShardOptions::try_new rejects 0)"
        );
        (splitmix64(region as u64) % shards as u64) as usize
    }
}

/// A partitioner over explicit region bounding boxes — the natural mate of
/// `TraceConfig::with_regions`' region tags. Points outside every box fall
/// back to the nearest box center (grid-index style clamping), so the
/// mapping is total.
#[derive(Clone, Debug)]
pub struct BoxPartitioner {
    boxes: Vec<BoundingBox>,
}

impl BoxPartitioner {
    /// A partitioner with one region per box.
    ///
    /// # Panics
    ///
    /// Panics if `boxes` is empty.
    #[must_use]
    pub fn new(boxes: Vec<BoundingBox>) -> Self {
        assert!(!boxes.is_empty(), "need at least one region box");
        Self { boxes }
    }
}

impl RegionPartitioner for BoxPartitioner {
    fn region_count(&self) -> usize {
        self.boxes.len()
    }

    fn region_of(&self, point: GeoPoint) -> usize {
        if let Some(r) = self.boxes.iter().position(|b| b.contains(point)) {
            return r;
        }
        // Total fallback: nearest box center.
        self.boxes
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let da = point.equirectangular_km(a.center());
                let db = point.equirectangular_km(b.center());
                da.partial_cmp(&db).expect("finite distance")
            })
            .map(|(r, _)| r)
            .expect("non-empty boxes")
    }
}

/// Which dispatch policy every shard runs. A value (not a `&mut dyn`
/// borrow like [`StreamPolicy`]) because the sharded engine must
/// *instantiate one policy per shard*; the variants are exactly the
/// shard-stable policies (see the module docs — `RandomDispatch`'s shared
/// RNG stream is order-dependent and deliberately absent).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ShardPolicySpec {
    /// Alg. 4 — maximum marginal value, instant dispatch.
    MaxMargin,
    /// Alg. 3 — nearest driver, instant dispatch, decision-local tie-break.
    Nearest {
        /// Tie-break seed (see [`NearestDriver::with_seed`]).
        seed: u64,
    },
    /// Batched dispatch: hold window + per-round matcher.
    Batched {
        /// The hold window `W ≥ 0`.
        window: TimeDelta,
        /// The per-round matcher.
        matcher: MatcherKind,
    },
}

/// Concrete policy storage materialised from a [`ShardPolicySpec`] — the
/// owner of the boxed policy/matcher a [`StreamPolicy`] borrows from.
/// Public so single-engine callers (the CLI's `--shards 1` path, tests)
/// can run the *same* spec through a sequential [`StreamEngine`] without
/// duplicating the spec→policy construction.
pub enum PolicyHolder {
    /// An instant-dispatch policy.
    Instant(Box<dyn DispatchPolicy + Send>),
    /// A batched hold window and its per-round matcher.
    Batched(TimeDelta, Box<dyn BatchMatcher + Send>),
}

impl ShardPolicySpec {
    /// Materialises one policy instance for one engine (each shard gets
    /// its own — that is the point of a spec over a `&mut dyn` borrow).
    #[must_use]
    pub fn holder(self) -> PolicyHolder {
        match self {
            ShardPolicySpec::MaxMargin => PolicyHolder::Instant(Box::new(MaxMargin::new())),
            ShardPolicySpec::Nearest { seed } => {
                PolicyHolder::Instant(Box::new(NearestDriver::with_seed(seed)))
            }
            ShardPolicySpec::Batched { window, matcher } => PolicyHolder::Batched(
                window,
                match matcher {
                    MatcherKind::Greedy => Box::new(GreedyPairMatcher),
                    MatcherKind::Optimal => Box::new(OptimalAssignmentMatcher),
                },
            ),
        }
    }

    /// The batched hold window, if this is a batched spec.
    fn window(self) -> Option<TimeDelta> {
        match self {
            ShardPolicySpec::Batched { window, .. } => Some(window),
            _ => None,
        }
    }
}

impl PolicyHolder {
    /// The [`StreamPolicy`] view an engine consumes, borrowing this
    /// holder's boxed policy state.
    #[must_use]
    pub fn as_policy(&mut self) -> StreamPolicy<'_> {
        match self {
            PolicyHolder::Instant(p) => StreamPolicy::Instant(p.as_mut()),
            PolicyHolder::Batched(window, matcher) => StreamPolicy::Batched {
                window: *window,
                matcher: matcher.as_mut(),
            },
        }
    }
}

/// Options for a sharded replay.
#[derive(Clone, Copy, Debug)]
pub struct ShardOptions {
    /// Number of worker shards (≥ 1).
    pub shards: usize,
    /// Per-shard [`StreamEngine`] options (grid pruning, compaction).
    pub stream: StreamOptions,
    /// Run the **sequential debug validator** instead of the parallel
    /// workers: one thread drives all shard engines and re-checks the
    /// partition proof obligation on every task and at every window
    /// boundary, panicking on the first cross-shard interaction. Results
    /// are identical to the parallel path (that's the whole point); only
    /// the wall-clock differs. Defaults to on under `debug_assertions`,
    /// off in release builds.
    pub validate: bool,
    /// Bound of each worker's input queue; backpressure keeps shard skew —
    /// and therefore merge-buffer memory — bounded.
    pub channel_capacity: usize,
}

impl ShardOptions {
    /// Options for `shards` workers with defaults (validator in debug
    /// builds, 1024-event channels, default engine options).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero; [`ShardOptions::try_new`] is the
    /// non-panicking form for validating external input.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        Self::try_new(shards).expect("need at least one shard")
    }

    /// [`ShardOptions::new`] with the zero-shard case rejected as a typed
    /// error instead of a panic — the form CLI / config boundaries should
    /// use. With `shards == 0` no partitioner could place a single
    /// region (`region % 0` divides by zero), so the value is rejected
    /// here, before any engine or partitioner sees it.
    ///
    /// # Errors
    ///
    /// [`ConfigError::ZeroShards`] when `shards` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use rideshare_online::ShardOptions;
    /// use rideshare_types::ConfigError;
    /// assert!(ShardOptions::try_new(2).is_ok());
    /// assert_eq!(ShardOptions::try_new(0).unwrap_err(), ConfigError::ZeroShards);
    /// ```
    pub fn try_new(shards: usize) -> Result<Self, ConfigError> {
        if shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        Ok(Self {
            shards,
            stream: StreamOptions::default(),
            validate: cfg!(debug_assertions),
            channel_capacity: 1024,
        })
    }

    /// Replaces the per-shard engine options.
    #[must_use]
    pub fn stream(mut self, stream: StreamOptions) -> Self {
        self.stream = stream;
        self
    }

    /// Forces the sequential validating path on or off.
    #[must_use]
    pub fn validate(mut self, validate: bool) -> Self {
        self.validate = validate;
        self
    }

    /// Replaces the worker input-queue bound.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn channel_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "channel capacity must be positive");
        self.channel_capacity = capacity;
        self
    }
}

/// One decided order, as collected inside a shard (driver ids still
/// shard-local) and re-emitted by the merge stage (driver ids global).
#[derive(Clone, Copy)]
enum Decision {
    Dispatched(DispatchEvent),
    Rejected(Timestamp),
}

/// A shard-local sink accumulating the decisions of the current window.
#[derive(Default)]
struct Collector {
    decided: Vec<(Task, Decision)>,
}

impl StreamSink for Collector {
    fn dispatched(&mut self, task: &Task, event: &DispatchEvent) {
        self.decided.push((*task, Decision::Dispatched(*event)));
    }

    fn rejected(&mut self, task: &Task, decision_time: Timestamp) {
        self.decided
            .push((*task, Decision::Rejected(decision_time)));
    }
}

/// The router's view of the global hold/window sequence. Window formation
/// depends only on publish times and `W` — never on decisions — so the
/// router can reproduce the sequential engine's window boundaries exactly
/// and broadcast them to all shards.
struct WindowClock {
    /// `Some(W)` for batched policies, `None` for instant publish groups.
    window: Option<TimeDelta>,
    /// Instant: the open group's timestamp. Batched: the open window end.
    hold_end: Option<Timestamp>,
}

/// What the router must broadcast before delivering the next task.
enum ClockStep {
    /// Deliver directly; the open hold absorbs it.
    Deliver,
    /// Open a batched window at the task's publish instant first.
    Open(Timestamp),
    /// Close the current hold (then, for batched policies, open the next
    /// window at the task's publish instant).
    CloseThenOpen {
        /// The epoch tick that closes every shard's hold.
        tick: Timestamp,
        /// The boundary decisions become final through — what the
        /// sequential engine reports via [`StreamSink::window_closed`].
        end: Timestamp,
        /// For batched policies, where to anchor the next window.
        reopen: Option<Timestamp>,
    },
}

impl WindowClock {
    fn new(window: Option<TimeDelta>) -> Self {
        Self {
            window,
            hold_end: None,
        }
    }

    fn on_task(&mut self, publish: Timestamp) -> ClockStep {
        match (self.hold_end, self.window) {
            (None, None) => {
                self.hold_end = Some(publish);
                ClockStep::Deliver
            }
            (None, Some(w)) => {
                self.hold_end = Some(publish + w);
                ClockStep::Open(publish)
            }
            (Some(end), None) if publish > end => {
                // Close the instant group strictly after it; the next task
                // publishes at `publish ≥ end + 1`, so the tick never
                // outruns the stream.
                self.hold_end = Some(publish);
                ClockStep::CloseThenOpen {
                    tick: end + TimeDelta::from_secs(1),
                    end,
                    reopen: None,
                }
            }
            (Some(end), Some(w)) if publish > end => {
                self.hold_end = Some(publish + w);
                ClockStep::CloseThenOpen {
                    tick: end + TimeDelta::from_secs(1),
                    end,
                    reopen: Some(publish),
                }
            }
            (Some(_), _) => ClockStep::Deliver,
        }
    }

    /// A tick closes the hold only when it passes the hold end — the same
    /// predicate the sequential engine applies. Returns the tick to
    /// broadcast and the boundary decisions become final through.
    fn on_tick(&mut self, t: Timestamp) -> Option<(Timestamp, Timestamp)> {
        match self.hold_end {
            Some(end) if end < t => {
                self.hold_end = None;
                Some((t, end))
            }
            _ => None,
        }
    }

    /// The still-open hold's boundary at end-of-stream, if any — the final
    /// window the shards close in `finish`, which the merge stage must
    /// still announce via [`StreamSink::window_closed`].
    fn final_end(&self) -> Option<Timestamp> {
        self.hold_end
    }
}

/// Messages from the router to a worker shard.
enum ShardMsg {
    Event(StreamEvent),
    /// Anchor a batched window opening at the instant (no-op for instant).
    Open(Timestamp),
    /// Close the current hold via an [`StreamEvent::EpochTick`] and ship
    /// the window's decisions to the merge stage.
    Close(Timestamp),
}

/// Messages from a worker shard to the merge stage.
enum WorkerOut {
    /// The decisions of one closed window, in shard emission order.
    Window(Vec<(Task, Decision)>),
    /// End of stream: the final (unclosed) window plus the shard summary.
    Done(Vec<(Task, Decision)>, StreamSummary),
}

/// The merge stage: per-shard FIFO queues of per-window decision batches.
/// Window `k`'s global decisions exist exactly when every shard has
/// shipped its `k`-th batch; they are then re-serialized into
/// `(decision epoch, task id)` order, relabeled to announced driver ids,
/// and replayed into the caller's sink.
struct Merger<'s> {
    queues: Vec<VecDeque<Vec<(Task, Decision)>>>,
    /// `maps[shard][local_announce_idx]` = the driver's global id.
    maps: Vec<Vec<DriverId>>,
    /// Window boundaries in close order, noted by the router *before* the
    /// shards' batches can arrive; each merged window pops one and fires
    /// [`StreamSink::window_closed`], reproducing the sequential engine's
    /// boundary announcements exactly (same ends, same count, same
    /// position between decision batches).
    boundaries: VecDeque<Timestamp>,
    /// Reusable merge arena: one window's decisions, re-sorted into the
    /// canonical order. Drained on every emit, so only its capacity
    /// persists between windows.
    window: Vec<(usize, Task, Decision)>,
    sink: &'s mut dyn StreamSink,
}

impl<'s> Merger<'s> {
    fn new(shards: usize, sink: &'s mut dyn StreamSink) -> Self {
        Self {
            queues: (0..shards).map(|_| VecDeque::new()).collect(),
            maps: vec![Vec::new(); shards],
            boundaries: VecDeque::new(),
            window: Vec::new(),
            sink,
        }
    }

    /// Records that the router just closed the global hold at `end`.
    fn note_boundary(&mut self, end: Timestamp) {
        self.boundaries.push_back(end);
    }

    /// Relays a (global) driver announcement to the caller's sink and
    /// registers the shard-local relabeling for later decision remaps.
    /// Returns the driver's shard-local id.
    fn announce(&mut self, shard: usize, driver: &Driver) -> DriverId {
        self.sink.driver_online(driver);
        let local = DriverId::new(self.maps[shard].len() as u32);
        self.maps[shard].push(driver.id);
        local
    }

    fn push_batch(&mut self, shard: usize, batch: Vec<(Task, Decision)>) {
        self.queues[shard].push_back(batch);
        self.emit_ready();
    }

    fn emit_ready(&mut self) {
        while self.queues.iter().all(|q| !q.is_empty()) {
            debug_assert!(self.window.is_empty());
            for (s, q) in self.queues.iter_mut().enumerate() {
                for (task, decision) in q.pop_front().expect("checked non-empty") {
                    self.window.push((s, task, decision));
                }
            }
            // The canonical merge order: decision epoch, then task id.
            self.window.sort_by_key(|(_, task, decision)| {
                let at = match decision {
                    Decision::Dispatched(e) => e.decision_time,
                    Decision::Rejected(at) => *at,
                };
                (at, task.id.index())
            });
            for (s, task, decision) in self.window.drain(..) {
                match decision {
                    Decision::Dispatched(mut event) => {
                        event.driver = self.maps[s][event.driver.index()];
                        self.sink.dispatched(&task, &event);
                    }
                    Decision::Rejected(at) => self.sink.rejected(&task, at),
                }
            }
            // One boundary per real window. The end-of-stream `Done`
            // batches form one extra merged "window" even when the hold
            // was already closed — it is empty then and has no boundary
            // note, so nothing fires (the sequential engine is silent in
            // that case too).
            if let Some(end) = self.boundaries.pop_front() {
                self.sink.window_closed(end);
            }
        }
    }

    /// Emits everything still queued (the per-shard final batches). Only
    /// valid once every shard has delivered its `Done` message, so the
    /// queues are ragged-free.
    fn finish(&mut self) {
        self.emit_ready();
        assert!(
            self.queues.iter().all(VecDeque::is_empty),
            "shards closed an unequal number of windows"
        );
    }
}

/// Folds per-shard summaries into the whole-stream aggregate. Counters are
/// sums and match a sequential replay exactly, except: `expired_drivers` /
/// `compacted_drivers` are work-skipping diagnostics whose timing differs
/// across shard counts, `peak_held_tasks` sums per-shard peaks (an upper
/// bound on the true global peak — shards peak at different instants), and
/// `clock` takes the max.
fn fold_summaries(parts: &[StreamSummary]) -> StreamSummary {
    let mut total = StreamSummary::default();
    for p in parts {
        total.tasks += p.tasks;
        total.served += p.served;
        total.rejected += p.rejected;
        total.drivers += p.drivers;
        total.expired_drivers += p.expired_drivers;
        total.compacted_drivers += p.compacted_drivers;
        total.peak_held_tasks += p.peak_held_tasks;
        total.clock = total.clock.max(p.clock);
    }
    total
}

/// Panics if any *foreign* shard could interact with `task` — the
/// validator's per-task incarnation of the partition proof obligation
/// (see [`StreamEngine`]'s `interaction_with` for the exact radius).
fn check_partition(engines: &[StreamEngine], shard: usize, task: &Task) {
    for (other, engine) in engines.iter().enumerate() {
        if other == shard {
            continue;
        }
        if let Some(driver) = engine.interaction_with(task) {
            panic!(
                "region partition violated: driver {driver} (shard {other}) can interact \
                 with task {} (shard {shard}) — sharded replay would diverge from a \
                 sequential one",
                task.id
            );
        }
    }
}

/// Closes the currently open hold on every shard engine (validator path):
/// re-checks each still-pending task against foreign shards, ticks every
/// engine past the hold end, and ships each shard's window batch to the
/// merge stage.
fn close_all_shards(
    engines: &mut [StreamEngine],
    holders: &mut [PolicyHolder],
    collectors: &mut [Collector],
    merger: &mut Merger<'_>,
    tick: Timestamp,
) {
    for shard in 0..engines.len() {
        for task in engines[shard].pending_tasks().to_vec() {
            check_partition(engines, shard, &task);
        }
    }
    for (shard, engine) in engines.iter_mut().enumerate() {
        let mut policy = holders[shard].as_policy();
        engine.push(
            StreamEvent::EpochTick(tick),
            &mut policy,
            &mut collectors[shard],
        );
    }
    for (shard, c) in collectors.iter_mut().enumerate() {
        merger.push_batch(shard, std::mem::take(&mut c.decided));
    }
}

/// One worker shard: an ordinary [`StreamEngine`] driven off a bounded
/// channel, shipping each closed window's decisions (and finally its
/// summary) to the merge stage.
fn shard_worker(
    shard: usize,
    rx: mpsc::Receiver<ShardMsg>,
    out: &mpsc::Sender<(usize, WorkerOut)>,
    speed: SpeedModel,
    options: StreamOptions,
    spec: ShardPolicySpec,
) {
    let mut holder = spec.holder();
    let mut policy = holder.as_policy();
    let mut engine = StreamEngine::new(speed, options);
    let mut collector = Collector::default();
    for msg in rx {
        match msg {
            ShardMsg::Event(e) => engine.push(e, &mut policy, &mut collector),
            ShardMsg::Open(at) => engine.open_window(at, &policy),
            ShardMsg::Close(tick) => {
                engine.push(StreamEvent::EpochTick(tick), &mut policy, &mut collector);
                let batch = std::mem::take(&mut collector.decided);
                if out.send((shard, WorkerOut::Window(batch))).is_err() {
                    return; // router gone; nothing left to report to
                }
            }
        }
    }
    let summary = engine.finish(&mut policy, &mut collector);
    let _ = out.send((shard, WorkerOut::Done(collector.decided, summary)));
}

/// The region-sharded parallel streaming replay engine: the configuration
/// triple (policy spec, partitioner, options) plus [`replay`] to run a
/// whole stream through it. See the module docs for the decomposition
/// argument and the determinism machinery.
///
/// [`replay`]: ShardedStreamEngine::replay
pub struct ShardedStreamEngine<'p> {
    spec: ShardPolicySpec,
    partitioner: &'p dyn RegionPartitioner,
    options: ShardOptions,
}

impl<'p> ShardedStreamEngine<'p> {
    /// Creates the engine.
    #[must_use]
    pub fn new(
        spec: ShardPolicySpec,
        partitioner: &'p dyn RegionPartitioner,
        options: ShardOptions,
    ) -> Self {
        Self {
            spec,
            partitioner,
            options,
        }
    }

    /// Replays a whole event stream: routes events to shards, anchors
    /// window boundaries globally, merges decisions deterministically into
    /// `sink`, and returns the folded summary (see `fold_summaries`'
    /// caveats on the diagnostic fields).
    ///
    /// With [`ShardOptions::validate`] the replay runs on one thread and
    /// panics on the first partition violation; otherwise each shard is a
    /// worker thread fed through a bounded channel.
    ///
    /// # Panics
    ///
    /// Panics when the stream violates the [`StreamEngine::push`]
    /// contract, when a worker shard panics, or (validator mode) when the
    /// partition proof obligation fails.
    pub fn replay<I>(
        &self,
        speed: SpeedModel,
        events: I,
        sink: &mut dyn StreamSink,
    ) -> StreamSummary
    where
        I: IntoIterator<Item = StreamEvent>,
    {
        if self.options.validate {
            self.replay_validating(speed, events, sink)
        } else {
            self.replay_parallel(speed, events, sink)
        }
    }

    fn shard_of_point(&self, point: GeoPoint) -> usize {
        let region = self.partitioner.region_of(point);
        let shards = self.options.shards;
        let shard = self.partitioner.shard_of(region, shards);
        assert!(
            shard < shards,
            "partitioner produced shard {shard} of {shards}"
        );
        shard
    }

    /// The sequential debug path: one thread owns every shard engine, so
    /// the partition proof obligation can be checked against live foreign
    /// driver state — on every routed task and on every still-pending task
    /// at every window boundary. Compaction is disabled so no interaction
    /// evidence is ever garbage-collected mid-check (results are unchanged
    /// either way — compaction is lossless).
    fn replay_validating<I>(
        &self,
        speed: SpeedModel,
        events: I,
        sink: &mut dyn StreamSink,
    ) -> StreamSummary
    where
        I: IntoIterator<Item = StreamEvent>,
    {
        let shards = self.options.shards;
        let stream_options = self.options.stream.no_compaction();
        let mut engines: Vec<StreamEngine> = (0..shards)
            .map(|_| StreamEngine::new(speed, stream_options))
            .collect();
        let mut holders: Vec<PolicyHolder> = (0..shards).map(|_| self.spec.holder()).collect();
        let mut collectors: Vec<Collector> = (0..shards).map(|_| Collector::default()).collect();
        let mut merger = Merger::new(shards, sink);
        let mut clock = WindowClock::new(self.spec.window());
        // Owning shard and shard-local id of every announced driver.
        let mut homes: Vec<(usize, DriverId)> = Vec::new();

        let open_all =
            |engines: &mut [StreamEngine], holders: &mut [PolicyHolder], at: Timestamp| {
                for (engine, holder) in engines.iter_mut().zip(holders.iter_mut()) {
                    engine.open_window(at, &holder.as_policy());
                }
            };

        for event in events {
            match event {
                StreamEvent::DriverOnline(driver) => {
                    let shard = self.shard_of_point(driver.source);
                    assert_eq!(
                        driver.id.index(),
                        homes.len(),
                        "driver ids must be dense in announcement order"
                    );
                    let local = merger.announce(shard, &driver);
                    homes.push((shard, local));
                    let mut policy = holders[shard].as_policy();
                    engines[shard].push(
                        StreamEvent::DriverOnline(Driver {
                            id: local,
                            ..driver
                        }),
                        &mut policy,
                        &mut collectors[shard],
                    );
                }
                StreamEvent::TaskPublished(task) => {
                    let shard = self.shard_of_point(task.origin);
                    match clock.on_task(task.publish_time) {
                        ClockStep::Deliver => {}
                        ClockStep::Open(at) => open_all(&mut engines, &mut holders, at),
                        ClockStep::CloseThenOpen { tick, end, reopen } => {
                            merger.note_boundary(end);
                            close_all_shards(
                                &mut engines,
                                &mut holders,
                                &mut collectors,
                                &mut merger,
                                tick,
                            );
                            if let Some(at) = reopen {
                                open_all(&mut engines, &mut holders, at);
                            }
                        }
                    }
                    check_partition(&engines, shard, &task);
                    let mut policy = holders[shard].as_policy();
                    engines[shard].push(
                        StreamEvent::TaskPublished(task),
                        &mut policy,
                        &mut collectors[shard],
                    );
                }
                StreamEvent::DriverOffline(id) => {
                    let (shard, local) = homes[id.index()];
                    let mut policy = holders[shard].as_policy();
                    engines[shard].push(
                        StreamEvent::DriverOffline(local),
                        &mut policy,
                        &mut collectors[shard],
                    );
                }
                StreamEvent::EpochTick(t) => {
                    if let Some((tick, end)) = clock.on_tick(t) {
                        merger.note_boundary(end);
                        close_all_shards(
                            &mut engines,
                            &mut holders,
                            &mut collectors,
                            &mut merger,
                            tick,
                        );
                    } else {
                        for (shard, engine) in engines.iter_mut().enumerate() {
                            let mut policy = holders[shard].as_policy();
                            engine.push(
                                StreamEvent::EpochTick(t),
                                &mut policy,
                                &mut collectors[shard],
                            );
                        }
                    }
                }
            }
        }

        // Final (unclosed) windows: check, finish, merge.
        for shard in 0..shards {
            for task in engines[shard].pending_tasks().to_vec() {
                check_partition(&engines, shard, &task);
            }
        }
        if let Some(end) = clock.final_end() {
            merger.note_boundary(end);
        }
        let mut summaries = Vec::with_capacity(shards);
        for (shard, engine) in engines.into_iter().enumerate() {
            let mut policy = holders[shard].as_policy();
            summaries.push(engine.finish(&mut policy, &mut collectors[shard]));
        }
        for (shard, c) in collectors.iter_mut().enumerate() {
            merger.push_batch(shard, std::mem::take(&mut c.decided));
        }
        merger.finish();
        fold_summaries(&summaries)
    }

    /// The parallel path: one worker thread per shard behind a bounded
    /// channel; the caller's thread routes events, broadcasts window
    /// anchors/boundaries, and runs the merge stage — draining worker
    /// output whenever a send would block, so backpressure bounds both the
    /// queues and the merge buffers.
    fn replay_parallel<I>(
        &self,
        speed: SpeedModel,
        events: I,
        sink: &mut dyn StreamSink,
    ) -> StreamSummary
    where
        I: IntoIterator<Item = StreamEvent>,
    {
        let shards = self.options.shards;
        let stream_options = self.options.stream;
        let spec = self.spec;
        let mut merger = Merger::new(shards, sink);
        let mut clock = WindowClock::new(spec.window());
        let mut homes: Vec<(usize, DriverId)> = Vec::new();
        let mut summaries: Vec<Option<StreamSummary>> = vec![None; shards];

        std::thread::scope(|scope| {
            let (out_tx, out_rx) = mpsc::channel::<(usize, WorkerOut)>();
            let mut txs: Vec<mpsc::SyncSender<ShardMsg>> = Vec::with_capacity(shards);
            for shard in 0..shards {
                let (tx, rx) = mpsc::sync_channel::<ShardMsg>(self.options.channel_capacity);
                txs.push(tx);
                let out = out_tx.clone();
                scope.spawn(move || shard_worker(shard, rx, &out, speed, stream_options, spec));
            }
            drop(out_tx);

            fn absorb(
                merger: &mut Merger<'_>,
                summaries: &mut [Option<StreamSummary>],
                shard: usize,
                out: WorkerOut,
            ) {
                match out {
                    WorkerOut::Window(batch) => merger.push_batch(shard, batch),
                    WorkerOut::Done(batch, summary) => {
                        merger.push_batch(shard, batch);
                        summaries[shard] = Some(summary);
                    }
                }
            }
            // Drains whatever the workers have produced so far, without
            // blocking. Called on every routed event (a `try_recv` on an
            // empty channel is a cheap atomic check) so decisions flow to
            // the caller's sink continuously and the merge buffers stay
            // bounded by worker skew — if the drain only happened when an
            // input queue filled up, a router-bound run (lazy generation +
            // pricing upstream) would accumulate every window's decisions
            // until end-of-stream, an O(trace) regression.
            let drain = |merger: &mut Merger<'_>, summaries: &mut [Option<StreamSummary>]| {
                while let Ok((s, out)) = out_rx.try_recv() {
                    absorb(merger, summaries, s, out);
                }
            };
            let send = |merger: &mut Merger<'_>,
                        summaries: &mut [Option<StreamSummary>],
                        shard: usize,
                        mut msg: ShardMsg| {
                loop {
                    match txs[shard].try_send(msg) {
                        Ok(()) => return,
                        Err(mpsc::TrySendError::Full(m)) => {
                            msg = m;
                            // The worker is behind: drain the merge so it
                            // keeps moving, then retry.
                            drain(merger, summaries);
                            std::thread::yield_now();
                        }
                        Err(mpsc::TrySendError::Disconnected(_)) => {
                            panic!("shard worker {shard} terminated early")
                        }
                    }
                }
            };

            for event in events {
                drain(&mut merger, &mut summaries);
                match event {
                    StreamEvent::DriverOnline(driver) => {
                        let shard = self.shard_of_point(driver.source);
                        assert_eq!(
                            driver.id.index(),
                            homes.len(),
                            "driver ids must be dense in announcement order"
                        );
                        let local = merger.announce(shard, &driver);
                        homes.push((shard, local));
                        send(
                            &mut merger,
                            &mut summaries,
                            shard,
                            ShardMsg::Event(StreamEvent::DriverOnline(Driver {
                                id: local,
                                ..driver
                            })),
                        );
                    }
                    StreamEvent::TaskPublished(task) => {
                        let shard = self.shard_of_point(task.origin);
                        match clock.on_task(task.publish_time) {
                            ClockStep::Deliver => {}
                            ClockStep::Open(at) => {
                                for s in 0..shards {
                                    send(&mut merger, &mut summaries, s, ShardMsg::Open(at));
                                }
                            }
                            ClockStep::CloseThenOpen { tick, end, reopen } => {
                                merger.note_boundary(end);
                                for s in 0..shards {
                                    send(&mut merger, &mut summaries, s, ShardMsg::Close(tick));
                                }
                                if let Some(at) = reopen {
                                    for s in 0..shards {
                                        send(&mut merger, &mut summaries, s, ShardMsg::Open(at));
                                    }
                                }
                            }
                        }
                        send(
                            &mut merger,
                            &mut summaries,
                            shard,
                            ShardMsg::Event(StreamEvent::TaskPublished(task)),
                        );
                    }
                    StreamEvent::DriverOffline(id) => {
                        let (shard, local) = homes[id.index()];
                        send(
                            &mut merger,
                            &mut summaries,
                            shard,
                            ShardMsg::Event(StreamEvent::DriverOffline(local)),
                        );
                    }
                    StreamEvent::EpochTick(t) => {
                        if let Some((tick, end)) = clock.on_tick(t) {
                            merger.note_boundary(end);
                            for s in 0..shards {
                                send(&mut merger, &mut summaries, s, ShardMsg::Close(tick));
                            }
                        } else {
                            for s in 0..shards {
                                send(
                                    &mut merger,
                                    &mut summaries,
                                    s,
                                    ShardMsg::Event(StreamEvent::EpochTick(t)),
                                );
                            }
                        }
                    }
                }
            }

            let _ = &send;
            if let Some(end) = clock.final_end() {
                merger.note_boundary(end);
            }
            drop(txs); // end-of-stream: workers finish and report
            while summaries.iter().any(Option::is_none) {
                match out_rx.recv() {
                    Ok((s, out)) => absorb(&mut merger, &mut summaries, s, out),
                    Err(_) => panic!("a shard worker panicked before finishing"),
                }
            }
            while let Ok((s, out)) = out_rx.try_recv() {
                absorb(&mut merger, &mut summaries, s, out);
            }
        });

        merger.finish();
        let parts: Vec<StreamSummary> = summaries
            .into_iter()
            .map(|s| s.expect("every worker reported"))
            .collect();
        fold_summaries(&parts)
    }
}

/// Replays a whole event stream through a [`ShardedStreamEngine`] — the
/// one-call form mirroring [`crate::replay_stream`]. See the module docs
/// for the legality condition under which this is byte-identical to the
/// sequential replay.
///
/// # Panics
///
/// See [`ShardedStreamEngine::replay`].
pub fn replay_sharded<I>(
    speed: SpeedModel,
    events: I,
    spec: ShardPolicySpec,
    partitioner: &dyn RegionPartitioner,
    options: ShardOptions,
    sink: &mut dyn StreamSink,
) -> StreamSummary
where
    I: IntoIterator<Item = StreamEvent>,
{
    ShardedStreamEngine::new(spec, partitioner, options).replay(speed, events, sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{market_events, replay_stream, CollectingSink};
    use crate::MatcherKind;
    use rideshare_core::{Market, MarketBuildOptions};
    use rideshare_trace::{DriverModel, TraceConfig};

    fn regional_config(seed: u64, tasks: usize, drivers: usize, regions: usize) -> TraceConfig {
        TraceConfig::porto()
            .with_seed(seed)
            .with_task_count(tasks)
            .with_driver_count(drivers, DriverModel::Hitchhiking)
            .with_regions(regions)
    }

    fn sequential(market: &Market, spec: ShardPolicySpec) -> crate::SimulationResult {
        let mut sink = CollectingSink::new();
        let mut holder = spec.holder();
        let mut policy = holder.as_policy();
        let _ = replay_stream(
            market.speed(),
            market_events(market),
            &mut policy,
            StreamOptions::default(),
            &mut sink,
        );
        sink.into_result()
    }

    #[test]
    fn window_clock_reproduces_sequential_boundaries() {
        use rideshare_types::Timestamp as T;
        // Instant: group per timestamp.
        let mut c = WindowClock::new(None);
        assert!(matches!(c.on_task(T::from_secs(10)), ClockStep::Deliver));
        assert!(matches!(c.on_task(T::from_secs(10)), ClockStep::Deliver));
        match c.on_task(T::from_secs(15)) {
            ClockStep::CloseThenOpen {
                tick,
                end,
                reopen: None,
            } => {
                assert_eq!(tick, T::from_secs(11));
                assert_eq!(end, T::from_secs(10));
            }
            other => panic!("unexpected {:?}", std::mem::discriminant(&other)),
        }
        // Batched: window end = open + W; ticks close only past the end.
        let mut c = WindowClock::new(Some(TimeDelta::from_secs(60)));
        match c.on_task(T::from_secs(100)) {
            ClockStep::Open(at) => assert_eq!(at, T::from_secs(100)),
            _ => panic!("expected open"),
        }
        assert!(matches!(c.on_task(T::from_secs(160)), ClockStep::Deliver));
        match c.on_task(T::from_secs(161)) {
            ClockStep::CloseThenOpen {
                tick,
                end,
                reopen: Some(at),
            } => {
                assert_eq!(tick, T::from_secs(161));
                assert_eq!(end, T::from_secs(160));
                assert_eq!(at, T::from_secs(161));
            }
            _ => panic!("expected close+open"),
        }
        assert_eq!(c.on_tick(T::from_secs(200)), None);
        assert_eq!(c.final_end(), Some(T::from_secs(221)));
        assert_eq!(
            c.on_tick(T::from_secs(222)),
            Some((T::from_secs(222), T::from_secs(221)))
        );
        assert_eq!(c.final_end(), None);
        assert_eq!(c.on_tick(T::from_secs(500)), None, "hold already closed");
    }

    #[test]
    fn partitioners_are_total_and_in_range() {
        let bbox = BoundingBox::new(41.0, 41.3, -8.8, -8.3);
        let grid = GridHashPartitioner::new(bbox, 4, 4);
        assert_eq!(grid.region_count(), 16);
        for (u, v) in [(0.0, 0.0), (0.5, 0.5), (1.0, 1.0), (2.0, -1.0)] {
            let p = bbox.lerp(u, v);
            let r = grid.region_of(p);
            assert!(r < grid.region_count());
            assert!(grid.shard_of(r, 3) < 3);
        }
        let boxes = vec![
            BoundingBox::new(41.0, 41.3, -8.8, -8.3),
            BoundingBox::new(41.0, 41.3, -7.0, -6.5),
        ];
        let part = BoxPartitioner::new(boxes.clone());
        assert_eq!(part.region_count(), 2);
        assert_eq!(part.region_of(boxes[0].center()), 0);
        assert_eq!(part.region_of(boxes[1].center()), 1);
        // Outside every box: nearest center wins.
        assert_eq!(part.region_of(GeoPoint::new(41.15, -6.0)), 1);
    }

    #[test]
    fn zero_shards_is_a_typed_error_not_a_division_panic() {
        // Regression: `GridHashPartitioner::shard_of(_, 0)` used to reach
        // `% 0` and die with an unhelpful arithmetic panic; the value is
        // now rejected as ConfigError at option construction.
        assert_eq!(
            ShardOptions::try_new(0).unwrap_err(),
            ConfigError::ZeroShards
        );
        assert!(ShardOptions::try_new(1).is_ok());
        assert_eq!(ShardOptions::try_new(4).unwrap().shards, 4);
    }

    #[test]
    #[should_panic(expected = "shard count must be at least 1")]
    fn grid_partitioner_names_the_zero_shard_bug() {
        let bbox = BoundingBox::new(41.0, 41.3, -8.8, -8.3);
        let grid = GridHashPartitioner::new(bbox, 2, 2);
        let _ = grid.shard_of(0, 0);
    }

    #[test]
    #[should_panic(expected = "shard count must be at least 1")]
    fn default_shard_fold_names_the_zero_shard_bug() {
        let part = BoxPartitioner::new(vec![BoundingBox::new(41.0, 41.3, -8.8, -8.3)]);
        let _ = part.shard_of(0, 0);
    }

    #[test]
    fn sharded_replay_matches_sequential_on_regional_market() {
        let config = regional_config(31, 160, 24, 2);
        let market = Market::from_trace(&config.generate(), &MarketBuildOptions::default());
        let partitioner = BoxPartitioner::new(config.region_boxes());
        let expected = sequential(&market, ShardPolicySpec::MaxMargin);
        for shards in [1usize, 2] {
            for validate in [true, false] {
                let mut sink = CollectingSink::new();
                let summary = replay_sharded(
                    market.speed(),
                    market_events(&market),
                    ShardPolicySpec::MaxMargin,
                    &partitioner,
                    ShardOptions::new(shards).validate(validate),
                    &mut sink,
                );
                let got = sink.into_result();
                assert_eq!(got.dispatch, expected.dispatch, "shards={shards}");
                assert_eq!(got.events, expected.events, "shards={shards}");
                assert_eq!(
                    got.assignment.routes(),
                    expected.assignment.routes(),
                    "shards={shards}"
                );
                assert_eq!(summary.tasks, market.num_tasks());
                assert_eq!(summary.served, expected.served);
                assert_eq!(summary.rejected, expected.rejected);
                assert_eq!(summary.drivers, market.num_drivers());
            }
        }
    }

    #[test]
    fn sharded_batched_replay_matches_batch_engine_canonically() {
        let config = regional_config(32, 140, 20, 2);
        let market = Market::from_trace(&config.generate(), &MarketBuildOptions::default());
        let partitioner = BoxPartitioner::new(config.region_boxes());
        let window = TimeDelta::from_mins(3);
        let spec = ShardPolicySpec::Batched {
            window,
            matcher: MatcherKind::Greedy,
        };
        let mut expected = sequential(&market, spec);
        // Canonical form: the merge emits (epoch, task id); the sequential
        // engine emits matcher-commit order inside an epoch.
        expected
            .events
            .sort_by_key(|e| (e.decision_time, e.task.index()));
        for shards in [1usize, 2] {
            let mut sink = CollectingSink::new();
            let _ = replay_sharded(
                market.speed(),
                market_events(&market),
                spec,
                &partitioner,
                ShardOptions::new(shards).validate(shards == 1),
                &mut sink,
            );
            let got = sink.into_result();
            assert_eq!(got.dispatch, expected.dispatch, "shards={shards}");
            assert_eq!(got.events, expected.events, "shards={shards}");
        }
    }

    #[test]
    #[should_panic(expected = "region partition violated")]
    fn validator_rejects_illegal_partition() {
        // One dense city hash-split into grid cells: drivers constantly
        // serve tasks across cell borders, so the proof obligation fails.
        let trace = TraceConfig::porto()
            .with_seed(33)
            .with_task_count(60)
            .with_driver_count(12, DriverModel::Hitchhiking)
            .generate();
        let market = Market::from_trace(&trace, &MarketBuildOptions::default());
        let partitioner = GridHashPartitioner::new(trace.bbox, 4, 4);
        let mut sink = CollectingSink::new();
        let _ = replay_sharded(
            market.speed(),
            market_events(&market),
            ShardPolicySpec::MaxMargin,
            &partitioner,
            ShardOptions::new(2).validate(true),
            &mut sink,
        );
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardOptions::new(0);
    }
}
